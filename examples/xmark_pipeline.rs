//! XMark pipeline: generate auction sites, prefilter them for a query, and
//! evaluate the query with the in-memory engine — demonstrating the
//! paper's Fig. 7(a) scenario where prefiltering lets a memory-bound
//! engine process documents it could not load whole.
//!
//! The documents live on disk and are delivered zero-copy through the
//! `DocSource` layer (`MmapSource`); a whole shard directory is
//! prefiltered as one batch through a single compiled automaton, sharded
//! across the work-stealing pool (`run_batch_parallel` — `SMPX_THREADS`
//! sets the worker count, default: the machine's available parallelism).
//!
//! Run with: `cargo run --release --example xmark_pipeline [size_mb]`

use smpx::core::runtime::source::MmapSource;
use smpx::core::{Pool, Prefilter};
use smpx::datagen::{xmark, GenOptions};
use smpx::dtd::Dtd;
use smpx::engine::{InMemEngine, StreamEngine};
use smpx::paths::xpath::XPath;
use smpx::paths::PathSet;
use std::time::Instant;

const SHARDS: usize = 4;

fn main() {
    let size_mb: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(8);
    let total_bytes = size_mb * 1024 * 1024;

    // A sharded corpus on disk: several auction sites, one file each.
    let tmp = std::env::temp_dir();
    let mut shard_paths = Vec::new();
    let mut corpus_bytes = 0usize;
    for i in 0..SHARDS {
        let doc = xmark::generate(GenOptions::sized(total_bytes / SHARDS).with_seed(i as u64));
        corpus_bytes += doc.len();
        let path = tmp.join(format!("smpx-xmark-{}-{i}.xml", std::process::id()));
        std::fs::write(&path, &doc).expect("write shard");
        shard_paths.push(path);
    }
    println!("generated {SHARDS} XMark-like shards: {corpus_bytes} bytes total");

    // XM13-style workload: Australian items with names and descriptions.
    let query = XPath::parse("/site/regions/australia/item/description").expect("query");
    let paths = PathSet::parse(&[
        "/*",
        "/site/regions/australia/item/name#",
        "/site/regions/australia/item/description#",
    ])
    .expect("paths");

    // An engine budget one raw shard cannot fit into (DOM ≈ 3-4x input).
    let engine = InMemEngine::with_budget(corpus_bytes / SHARDS);

    // Attempt 1: evaluate a raw shard directly (the paper: "QizX ... fails
    // for all queries on the 1GB and 5GB documents").
    let shard0 = std::fs::read(&shard_paths[0]).expect("read shard");
    match engine.load(&shard0) {
        Ok(loaded) => {
            let n = loaded.eval(&query).len();
            println!("direct evaluation unexpectedly fit the budget ({n} results)");
        }
        Err(e) => println!("direct evaluation of one raw shard: {e}"),
    }
    drop(shard0);

    // Attempt 2: batch-prefilter every shard through ONE compiled
    // automaton, mapped zero-copy from disk and sharded across the
    // work-stealing pool, then evaluate each projected shard within the
    // budget. Results come back in shard order whatever the completion
    // order was.
    let requested =
        std::env::var("SMPX_THREADS").ok().and_then(|v| v.parse::<usize>().ok()).unwrap_or(0);
    let threads = Pool::new(requested).threads();
    let dtd = Dtd::parse(xmark::XMARK_DTD.as_bytes()).expect("DTD");
    let pf = Prefilter::compile(&dtd, &paths).expect("compile");
    let t0 = Instant::now();
    let batch = shard_paths
        .iter()
        .map(|p| (MmapSource::open(p).expect("map shard"), Vec::new()))
        .collect::<Vec<_>>();
    let results = pf.run_batch_parallel(batch, threads).expect("batch filter");
    let pf_time = t0.elapsed();

    let projected_total: usize = results.iter().map(|(out, _)| out.len()).sum();
    let inspected: f64 =
        results.iter().map(|(_, s)| s.char_comp_pct()).sum::<f64>() / SHARDS as f64;
    println!(
        "batch-prefiltered {corpus_bytes} -> {projected_total} bytes \
         ({:.1}% kept) in {pf_time:?} via mmap over {threads} pool worker(s), \
         inspecting {inspected:.1}% of the input",
        100.0 * projected_total as f64 / corpus_bytes as f64,
    );

    let mut n_results = 0;
    let mut example = None;
    for (projected, _) in &results {
        let loaded = engine.load(projected).expect("projected shard fits the budget");
        let items = loaded.eval(&query);
        if example.is_none() {
            example = items.first().cloned();
        }
        n_results += items.len();
    }
    println!("query returned {n_results} description elements across the shards, e.g.:");
    if let Some(first) = example {
        let s = String::from_utf8_lossy(&first);
        println!("  {}", &s[..s.len().min(100)]);
    }

    // Cross-check with the streaming engine evaluating the whole batch of
    // projected shards in one pass sequence.
    let streamed = StreamEngine::new(query)
        .eval_many(results.iter().map(|(out, _)| out.as_slice()))
        .expect("stream eval over the batch");
    assert_eq!(streamed.items.len(), n_results, "engines must agree on the batch");
    println!("streaming engine agrees over the batch ({} items)", streamed.items.len());

    for p in &shard_paths {
        std::fs::remove_file(p).ok();
    }
}
