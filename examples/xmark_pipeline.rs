//! XMark pipeline: generate an auction site, prefilter it for a query, and
//! evaluate the query with the in-memory engine — demonstrating the
//! paper's Fig. 7(a) scenario where prefiltering lets a memory-bound
//! engine process documents it could not load whole.
//!
//! Run with: `cargo run --release --example xmark_pipeline [size_mb]`

use smpx::core::Prefilter;
use smpx::datagen::{xmark, GenOptions};
use smpx::dtd::Dtd;
use smpx::engine::InMemEngine;
use smpx::paths::xpath::XPath;
use smpx::paths::PathSet;
use std::time::Instant;

fn main() {
    let size_mb: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(8);
    let doc = xmark::generate(GenOptions::sized(size_mb * 1024 * 1024));
    println!("generated XMark-like document: {} bytes", doc.len());

    // XM13-style workload: Australian items with names and descriptions.
    let query = XPath::parse("/site/regions/australia/item/description").expect("query");
    let paths = PathSet::parse(&[
        "/*",
        "/site/regions/australia/item/name#",
        "/site/regions/australia/item/description#",
    ])
    .expect("paths");

    // An engine budget the raw document cannot fit into (DOM ≈ 3-4x input).
    let engine = InMemEngine::with_budget(doc.len());

    // Attempt 1: evaluate directly (the paper: "QizX ... fails for all
    // queries on the 1GB and 5GB documents").
    match engine.load(&doc) {
        Ok(loaded) => {
            let n = loaded.eval(&query).len();
            println!("direct evaluation unexpectedly fit the budget ({n} results)");
        }
        Err(e) => println!("direct evaluation: {e}"),
    }

    // Attempt 2: prefilter, then evaluate.
    let dtd = Dtd::parse(xmark::XMARK_DTD.as_bytes()).expect("DTD");
    let mut pf = Prefilter::compile(&dtd, &paths).expect("compile");
    let t0 = Instant::now();
    let (projected, stats) = pf.filter_to_vec(&doc).expect("filter");
    let pf_time = t0.elapsed();
    println!(
        "prefiltered {} -> {} bytes ({:.1}% kept) in {:?}, inspecting {:.1}% of the input",
        doc.len(),
        projected.len(),
        100.0 * stats.projection_ratio(),
        pf_time,
        stats.char_comp_pct(),
    );

    let loaded = engine.load(&projected).expect("projected document fits the budget");
    let results = loaded.eval(&query);
    println!("query returned {} description elements, e.g.:", results.len());
    if let Some(first) = results.first() {
        let s = String::from_utf8_lossy(first);
        println!("  {}", &s[..s.len().min(100)]);
    }
}
