//! MEDLINE scan: the paper's Table II / Fig. 7(b) scenario — XPath queries
//! with predicates over a citation corpus, prefiltered by SMP and piped
//! into the streaming engine.
//!
//! The corpus lives on disk and is delivered through the pluggable
//! `DocSource` layer: memory-mapped (zero-copy) instead of read into a
//! `Vec` by hand.
//!
//! Run with: `cargo run --release --example medline_scan [size_mb]`

use smpx::core::runtime::source::MmapSource;
use smpx::core::Prefilter;
use smpx::datagen::{medline, GenOptions};
use smpx::dtd::Dtd;
use smpx::engine::StreamEngine;
use smpx::paths::extract::extract_from_text;

const QUERIES: &[(&str, &str)] = &[
    ("M1", "/MedlineCitationSet//CollectionTitle"),
    ("M2", r#"/MedlineCitationSet//DataBank[DataBankName/text()="PDB"]/AccessionNumberList"#),
    ("M4", r#"/MedlineCitationSet//CopyrightInformation[contains(text(),"NASA")]"#),
    (
        "M5",
        r#"/MedlineCitationSet/MedlineCitation[contains(MedlineJournalInfo//text(),"Sterilization")]/DateCompleted"#,
    ),
];

fn main() {
    let size_mb: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(8);
    let doc = medline::generate(GenOptions::sized(size_mb * 1024 * 1024));
    let dtd = Dtd::parse(medline::MEDLINE_DTD.as_bytes()).expect("DTD");

    // Put the corpus on disk and deliver it through the source layer.
    let path = std::env::temp_dir().join(format!("smpx-medline-{}.xml", std::process::id()));
    std::fs::write(&path, &doc).expect("write corpus");
    println!("generated MEDLINE-like corpus: {} bytes at {}\n", doc.len(), path.display());

    for (id, xpath) in QUERIES {
        // Static analysis: projection paths from the query.
        let paths = extract_from_text(xpath).expect("extract");
        let mut pf = Prefilter::compile(&dtd, &paths).expect("compile");

        // Prefilter straight off the mapped file, then stream-evaluate
        // the *projected* document.
        let source = MmapSource::open(&path).expect("map corpus");
        let backend = if source.is_mapped() { "mmap" } else { "read-fallback" };
        let mut projected = Vec::new();
        let stats = pf.filter_source(source, &mut projected).expect("filter");
        let engine = StreamEngine::parse(xpath).expect("query");
        let piped = engine.eval(&projected).expect("eval");

        // Sanity: same results as evaluating the original document.
        let direct = engine.eval(&doc).expect("eval");
        assert_eq!(direct.items, piped.items, "{id}: projection must be safe");

        println!(
            "{id} [{backend}]: kept {:>6.2}% of input, inspected {:>5.1}%, avg shift {:>5.2}, {} results",
            100.0 * stats.projection_ratio(),
            stats.char_comp_pct(),
            stats.avg_shift(),
            piped.items.len(),
        );
        if let Some(first) = piped.items.first() {
            let s = String::from_utf8_lossy(first);
            println!("     e.g. {}", &s[..s.len().min(90)]);
        }
    }
    std::fs::remove_file(&path).ok();
    println!("\nall pipelined results verified against direct evaluation");
}
