//! Flat-string matching demo: the string-search substrate on its own.
//!
//! Shows the instrumented searchers on a classic task — find keywords in a
//! large text — and prints how many characters each algorithm actually
//! inspected, illustrating the skipping behaviour the paper builds on
//! (its "ICDE" introduction example).
//!
//! Run with: `cargo run --release --example flat_grep`

use smpx::stringmatch::{naive, AhoCorasick, BoyerMoore, CommentzWalter, Counters, Kmp};

fn main() {
    // A megabyte of text with a needle near the end.
    let mut hay = b"lorem ipsum dolor sit amet consectetur adipiscing elit ".repeat(20_000);
    hay.extend_from_slice(b"and the conference this year is ICDE two thousand eight.");

    let pat = b"ICDE";
    println!("haystack: {} bytes, searching for {:?}\n", hay.len(), "ICDE");

    // Boyer-Moore: right-to-left with skipping.
    let bm = BoyerMoore::new(pat);
    let mut c = Counters::default();
    let pos = bm.find_at(&hay, 0, &mut c).expect("found");
    report("Boyer-Moore", pos, &c, hay.len());

    // KMP: left-to-right, no skipping.
    let kmp = Kmp::new(pat);
    let mut c = Counters::default();
    let pos = kmp.find_at(&hay, 0, &mut c).expect("found");
    report("KMP", pos, &c, hay.len());

    // Naive: every alignment.
    let mut c = Counters::default();
    let pos = naive::find_at(&hay, pat, 0, &mut c).expect("found");
    report("naive", pos, &c, hay.len());

    // Multi-keyword: Commentz-Walter vs Aho-Corasick.
    let pats: Vec<&[u8]> = vec![b"ICDE", b"conference", b"thousand"];
    println!("\nmulti-keyword search for {:?}:", ["ICDE", "conference", "thousand"]);

    let cw = CommentzWalter::new(&pats);
    let mut c = Counters::default();
    let m = cw.find_at(&hay, 0, &mut c).expect("found");
    println!(
        "  Commentz-Walter: first match pattern #{} at {} — {} comparisons ({:.1}% of input), avg shift {:.2}",
        m.pattern,
        m.start,
        c.comparisons,
        100.0 * c.comparisons as f64 / hay.len() as f64,
        c.avg_shift(),
    );

    let ac = AhoCorasick::new(&pats);
    let mut c = Counters::default();
    let m = ac.find_at(&hay, 0, &mut c).expect("found");
    println!(
        "  Aho-Corasick:    first match pattern #{} at {} — {} comparisons ({:.1}% of input)",
        m.pattern,
        m.start,
        c.comparisons,
        100.0 * c.comparisons as f64 / hay.len() as f64,
    );
}

fn report(name: &str, pos: usize, c: &Counters, hay_len: usize) {
    println!(
        "{name:>12}: match at {pos} — {} comparisons ({:.1}% of input), avg shift {:.2}",
        c.comparisons,
        100.0 * c.comparisons as f64 / hay_len as f64,
        c.avg_shift(),
    );
}
