//! Quickstart: the paper's running example (Sec. I, Example 1).
//!
//! Prefilters the Fig. 2 document for the XQuery
//! `<q>{ //australia//description }</q>` against the Fig. 1 XMark DTD
//! excerpt, and prints the projected document plus the scan statistics —
//! including the fraction of characters inspected (the paper reports ~22 %
//! for this toy document).
//!
//! Run with: `cargo run --release --example quickstart`

use smpx::core::Prefilter;
use smpx::dtd::Dtd;
use smpx::paths::extract::extract_from_text;

/// The paper's Fig. 1 DTD excerpt (unlisted tags default to #PCDATA).
const FIG1_DTD: &[u8] = br#"<!DOCTYPE site [
<!ELEMENT site (regions)>
<!ELEMENT regions (africa, asia, australia)>
<!ELEMENT africa (item*)>
<!ELEMENT asia (item*)>
<!ELEMENT australia (item*)>
<!ELEMENT item (location,name,payment,description,shipping,incategory+)>
<!ELEMENT incategory EMPTY>
<!ATTLIST incategory category ID #REQUIRED>
]>"#;

/// The paper's Fig. 2 document (one line, as printed there).
const FIG2_DOC: &[u8] = b"<site><regions><africa><item><location>United States</location><name>T V</name><payment>Creditcard</payment><description>15''LCD-FlatPanel</description><shipping>Within country</shipping><incategory category=\"3\"/></item></africa><asia/><australia><item ><location>Egypt</location><name>PDA</name><payment>Check</payment><description>Palm Zire 71</description><shipping/><incategory category=\"3\"/></item></australia></regions></site>";

fn main() {
    // 1. Static analysis: extract projection paths from the query and
    //    compile the runtime automaton + lookup tables from the DTD.
    let dtd = Dtd::parse(FIG1_DTD).expect("parse DTD");
    let paths = extract_from_text("//australia//description").expect("extract paths");
    println!("projection paths: {paths}");

    let mut prefilter = Prefilter::compile(&dtd, &paths).expect("compile");
    let t = prefilter.tables();
    println!(
        "runtime automaton: {} states ({} CW + {} BM)",
        t.state_count(),
        t.cw_states(),
        t.bm_states()
    );

    // 2. Runtime: a single skipping pass over the document.
    let (projected, stats) = prefilter.filter_to_vec(FIG2_DOC).expect("filter");
    println!("\ninput   ({} bytes):\n{}", FIG2_DOC.len(), String::from_utf8_lossy(FIG2_DOC));
    println!("\noutput  ({} bytes):\n{}", projected.len(), String::from_utf8_lossy(&projected));

    // 3. The headline number: how little of the input was inspected.
    println!(
        "\ncharacters inspected: {:.1}%  (paper: ~22% on this example)",
        stats.char_comp_pct()
    );
    println!("average forward shift: {:.2} chars", stats.avg_shift());
    println!("initial-jump characters: {}", stats.initial_jump_chars);
    println!("false keyword matches rejected: {}", stats.false_matches);

    assert!(projected.starts_with(b"<site><australia>"));
    assert!(projected.ends_with(b"</australia></site>"));
}
