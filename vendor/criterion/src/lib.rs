//! Offline shim for the subset of the `criterion` API this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! minimal stand-in that keeps every bench target compiling and produces
//! honest wall-clock numbers: each [`Bencher::iter`] call runs a warm-up pass
//! and then `sample_size` timed samples, reporting the median per-iteration
//! time (and throughput when [`BenchmarkGroup::throughput`] was set). No
//! statistical analysis, no HTML reports, no saved baselines. Swap the
//! `[workspace.dependencies]` path entry for the registry crate when building
//! online; no call sites change.
//!
//! # Machine-readable output
//!
//! Passing `--json <path>` (or `--json=<path>`) to a bench binary — e.g.
//! `cargo bench -p smpx_bench --bench <name> ... -- --json bench.json` (scope to the bench
//! crate: the workspace-wide `cargo bench` also invokes the vendored
//! crates' libtest harnesses, which reject the flag) — **appends** one JSON
//! object per benchmark to `<path>` (JSON-lines: `{"bin", "bench",
//! "source", "median_ns", "throughput_bytes", "mib_per_s"}`). Append
//! semantics let one `cargo bench` invocation, which runs each bench
//! binary in turn with the same arguments, accumulate a single file;
//! delete the file before re-running to avoid mixing runs. The committed
//! `BENCH_*.json` baselines at the repository root are produced this way.
//!
//! The `source` field names the `DocSource` backend a benchmark ran over
//! so the committed JSON is self-describing. The real criterion API has
//! no per-bench tag channel, and call sites must stay registry-compatible
//! — so the shim infers it from the benchmark id, the way a
//! post-processing script over real criterion output would: an id segment
//! containing `mmap` tags `mmap`, one containing `stream` or `reader`
//! tags `reader`, everything else is `slice` (in-memory input).

use std::fmt;
use std::io::Write as _;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (shim of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, criterion: self }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_one(id, None, sample_size, f);
    }
}

/// A named set of benchmarks sharing a throughput setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Report per-iteration throughput alongside time.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.criterion.sample_size = n;
        self
    }

    /// Time one benchmark within the group.
    pub fn bench_function<I: IntoBenchmarkId, F>(&mut self, id: I, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&full, self.throughput.clone(), self.criterion.sample_size, f);
    }

    /// Close the group (no-op in the shim; kept for API compatibility).
    pub fn finish(self) {}
}

/// How much work one benchmark iteration performs.
#[derive(Clone, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A `function/parameter` benchmark identifier.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identify a benchmark as `name/parameter`.
    pub fn new<P: fmt::Display>(name: &str, parameter: P) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    /// Identify a benchmark by its parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Conversion into the printable benchmark identifier.
pub trait IntoBenchmarkId {
    /// The `group/…` suffix naming this benchmark.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Passed to the closure given to `bench_function`; call [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Run `routine` once as warm-up, then `sample_size` timed samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Results accumulated for `--json` output: `(id, median, throughput)`.
static RESULTS: Mutex<Vec<(String, Duration, Option<Throughput>)>> = Mutex::new(Vec::new());

fn run_one<F>(id: &str, throughput: Option<Throughput>, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher { samples: Vec::new(), sample_size };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<50} (no samples)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if median.as_nanos() > 0 => {
            let mib_s = n as f64 / (1 << 20) as f64 / median.as_secs_f64();
            format!("  thrpt: {mib_s:>10.1} MiB/s")
        }
        Some(Throughput::Elements(n)) if median.as_nanos() > 0 => {
            let elem_s = n as f64 / median.as_secs_f64();
            format!("  thrpt: {elem_s:>10.0} elem/s")
        }
        _ => String::new(),
    };
    println!("{id:<50} time: {median:>12.3?}{rate}");
    RESULTS.lock().expect("results poisoned").push((id.to_string(), median, throughput));
}

/// The document-source backend a benchmark id names (see the module docs:
/// inferred from the id because the real criterion API has no tag
/// channel). Segments are examined innermost-first so a function name
/// like `slice` wins over a group name like `prefilter/streaming` — the
/// function names the backend, the group names the scenario. `slice`
/// (in-memory input, the refactor's baseline) is the default.
fn source_of(id: &str) -> &'static str {
    for seg in id.rsplit('/') {
        let seg = seg.to_ascii_lowercase();
        if seg.starts_with("mmap") {
            return "mmap";
        }
        if seg.starts_with("prefetch") {
            return "prefetch";
        }
        if seg.starts_with("reader") || seg.starts_with("stream") {
            return "reader";
        }
        if seg.starts_with("slice") {
            return "slice";
        }
    }
    "slice"
}

/// The `--json <path>` / `--json=<path>` argument, if present.
fn json_path() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            return args.next();
        }
        if let Some(p) = a.strip_prefix("--json=") {
            return Some(p.to_string());
        }
    }
    None
}

/// Append every recorded result as one JSON object per line to the path
/// given via `--json`, if any. Called by the [`criterion_main!`] expansion
/// after all groups ran; not part of the real criterion API.
#[doc(hidden)]
pub fn write_json_results() {
    let Some(path) = json_path() else { return };
    let bin = std::env::args()
        .next()
        .map(|p| {
            std::path::Path::new(&p)
                .file_stem()
                .map_or_else(|| p.clone(), |s| s.to_string_lossy().into_owned())
        })
        .unwrap_or_default();
    // Bench binaries get a `-<hash>` suffix from cargo; strip it.
    let bin = match bin.rsplit_once('-') {
        Some((stem, suffix))
            if suffix.len() == 16 && suffix.bytes().all(|b| b.is_ascii_hexdigit()) =>
        {
            stem.to_string()
        }
        _ => bin,
    };
    let results = RESULTS.lock().expect("results poisoned");
    let mut out = String::new();
    for (id, median, throughput) in results.iter() {
        let ns = median.as_nanos();
        let (bytes, mib_s) = match throughput {
            Some(Throughput::Bytes(n)) if ns > 0 => {
                (Some(*n), Some(*n as f64 / (1 << 20) as f64 / median.as_secs_f64()))
            }
            _ => (None, None),
        };
        let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        out.push_str(&format!(
            "{{\"bin\":\"{}\",\"bench\":\"{}\",\"source\":\"{}\",\"median_ns\":{},\"throughput_bytes\":{},\"mib_per_s\":{}}}\n",
            esc(&bin),
            esc(id),
            source_of(id),
            ns,
            bytes.map_or("null".to_string(), |b| b.to_string()),
            mib_s.map_or("null".to_string(), |t| format!("{t:.3}")),
        ));
    }
    let res = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(out.as_bytes()));
    match res {
        Ok(()) => eprintln!("criterion-shim: appended {} result(s) to {path}", results.len()),
        Err(e) => eprintln!("criterion-shim: cannot write {path}: {e}"),
    }
}

/// Bundle benchmark functions into one runnable group
/// (shim of `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emit `main` running the given groups (shim of `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_json_results();
        }
    };
}
