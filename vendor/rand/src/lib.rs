//! Offline shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! an API-compatible stand-in: [`rngs::SmallRng`] is a SplitMix64 generator
//! (deterministic, seedable, not cryptographic — exactly what the
//! data generators and tests need), and [`Rng::gen_range`] supports
//! half-open and inclusive integer ranges. Swap the `[workspace.dependencies]`
//! path entry for the registry crate when building online; no call sites
//! change.

use core::ops::{Range, RangeInclusive};

/// Seedable generators (shim of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Construct a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random value generation (shim of `rand::Rng`).
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (integer `Range` / `RangeInclusive`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// A bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 random mantissa bits give a uniform f64 in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// Range types [`Rng::gen_range`] accepts (shim of `rand::distributions::uniform::SampleRange`).
///
/// Blanket-implemented over [`SampleUniform`] — one impl per range shape, so
/// unsuffixed integer literals infer their type from context exactly like
/// with the real crate.
pub trait SampleRange<T> {
    /// Sample uniformly from `self` using `rng`.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

/// Integer types uniformly sampleable by the shim
/// (shim of `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Widen to `i128` (all supported ints fit).
    fn to_i128(self) -> i128;
    /// Narrow from `i128` (caller guarantees the value is in range).
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = (self.end.to_i128() - self.start.to_i128()) as u128;
        T::from_i128(self.start.to_i128() + (rng.next_u64() as u128 % span) as i128)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let span = (hi.to_i128() - lo.to_i128()) as u128 + 1;
        T::from_i128(lo.to_i128() + (rng.next_u64() as u128 % span) as i128)
    }
}

/// Concrete generators (shim of `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, deterministic PRNG (SplitMix64), standing in for
    /// `rand::rngs::SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15) }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = r.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y: u32 = r.gen_range(1..=12);
            assert!((1..=12).contains(&y));
            let z: i64 = r.gen_range(-5..=5);
            assert!((-5..=5).contains(&z));
        }
    }
}
