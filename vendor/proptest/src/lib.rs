//! Offline shim for the subset of the `proptest` API this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors an
//! API-compatible stand-in that really runs the property tests: strategies
//! are deterministic generators driven by a seeded SplitMix64 PRNG, and the
//! [`proptest!`] macro expands each property into a `#[test]` that draws and
//! checks `ProptestConfig::cases` random cases. Differences from the real
//! crate: no shrinking (failures report the case index, which reproduces the
//! input deterministically), and `prop_assume!` skips the case instead of
//! resampling. Swap the `[workspace.dependencies]` path entry for the
//! registry crate when building online; no call sites change.

pub mod test_runner {
    //! Case-loop driver and the deterministic PRNG behind every strategy.

    /// Deterministic SplitMix64 generator that drives all strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator for the `case`-th test case (deterministic per case).
        pub fn for_case(case: u32) -> Self {
            TestRng {
                state: 0x5eed_c0de_0000_0000 ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        /// The next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform index in `0..n` (`n > 0`).
        pub fn below(&mut self, n: usize) -> usize {
            debug_assert!(n > 0);
            (self.next_u64() % n as u64) as usize
        }
    }

    /// Runner configuration (shim of `proptest::test_runner::Config`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property is checked against.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config that runs `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Drive one property: draw and check `config.cases` cases, panicking
    /// with the failing case index on the first `Err`.
    pub fn run<F>(config: ProptestConfig, mut property: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), String>,
    {
        for case in 0..config.cases {
            let mut rng = TestRng::for_case(case);
            if let Err(msg) = property(&mut rng) {
                panic!("proptest property failed at case {case}/{}: {msg}", config.cases);
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A generator of random values (shim of `proptest::strategy::Strategy`).
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draw one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform every drawn value with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Turn every drawn value into a new strategy and draw from that
        /// (shim of `prop_flat_map`; draws are fresh, no shrinking).
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erase this strategy behind a cheaply clonable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.new_value(rng)))
        }

        /// Build a recursive strategy: `self` is the leaf; `recurse` maps a
        /// strategy for depth `d` to one for depth `d + 1`, applied `depth`
        /// times with a coin-flip between leaf and deeper at each level.
        /// (`_desired_size` / `_expected_branch_size` are accepted for
        /// API compatibility and ignored.)
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                let deeper = recurse(strat).boxed();
                strat = Union::new(vec![leaf.clone(), deeper]).boxed();
            }
            strat
        }
    }

    /// A type-erased, cheaply clonable strategy handle.
    pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// The result of [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    /// Uniform choice among several strategies (backs [`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options` (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len());
            self.options[i].new_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

    /// Strategy for any value of a type with a canonical generator
    /// (shim of `proptest::arbitrary::any`).
    pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
        ArbitraryStrategy(PhantomData)
    }

    /// Types with a canonical strategy (shim of `proptest::arbitrary::Arbitrary`).
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct ArbitraryStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies (shim of `proptest::collection`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A strategy for `Vec`s of `elem` values with a length drawn from `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    /// The result of [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.start < self.len.end, "cannot sample empty length range");
            let span = self.len.end - self.len.start;
            let n = self.len.start + rng.below(span.max(1));
            (0..n).map(|_| self.elem.new_value(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything the `use proptest::prelude::*;` idiom expects.

    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Fail the current case unless `cond` holds. Only meaningful inside
/// [`proptest!`] bodies (expands to an early `return Err(..)`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", ::std::stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}: {}",
                ::std::stringify!($cond),
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                __l, __r,
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
                __l, __r, ::std::format!($($fmt)+),
            ));
        }
    }};
}

/// Fail the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `left != right`\n  both: `{:?}`",
                __l,
            ));
        }
    }};
}

/// Skip the current case unless `cond` holds (the shim skips instead of
/// resampling like the real crate).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Declare property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` checking `ProptestConfig::cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$attr:meta])*
      fn $name:ident( $($argpat:pat in $argstrat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run(__config, |__rng| {
                let ($($argpat,)+) = (
                    $($crate::strategy::Strategy::new_value(&($argstrat), __rng),)+
                );
                let __outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                __outcome
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}
