//! # smpx — XML Prefiltering as a String Matching Problem
//!
//! A complete Rust reproduction of **Koch, Scherzinger, Schmidt: "XML
//! Prefiltering as a String Matching Problem" (ICDE 2008)** — the SMP
//! system: XML projection that *skips* most of its input using
//! Boyer–Moore / Commentz–Walter search orchestrated by a statically
//! compiled automaton, instead of tokenizing every character.
//!
//! This umbrella crate re-exports the workspace:
//!
//! | module | contents |
//! |---|---|
//! | [`core`] | the SMP static analysis + skipping runtime ([`core::Prefilter`]) |
//! | [`stringmatch`] | Boyer–Moore, Commentz–Walter, Horspool, Aho–Corasick, KMP |
//! | [`dtd`] | DTD parsing, Glushkov automata, the DTD-automaton, minimal lengths |
//! | [`paths`] | projection paths, relevance (C1/C2/C3), XPath subset, extraction |
//! | [`xml`] | SAX tokenizer, arena DOM, serializer |
//! | [`datagen`] | XMark-like / MEDLINE-like / Protein-like generators |
//! | [`baselines`] | tokenizing projector (oracle + TBP stand-in), SAX, AC scanner |
//! | [`engine`] | in-memory (QizX-like) and streaming (SPEX-like) XPath engines |
//! | [`bench`] | experiment runners, measurement, JSON-lines emission |
//!
//! # Quickstart
//!
//! ```
//! use smpx::core::Prefilter;
//! use smpx::dtd::Dtd;
//! use smpx::paths::{extract, PathSet};
//!
//! // Schema + query → compiled prefilter.
//! let dtd = Dtd::parse(smpx::datagen::xmark::XMARK_DTD.as_bytes()).unwrap();
//! let paths = extract::extract_from_text("//australia//description").unwrap();
//! let mut pf = Prefilter::compile(&dtd, &paths).unwrap();
//!
//! // Generate a small auction site and project it.
//! let doc = smpx::datagen::xmark::generate(smpx::datagen::GenOptions::sized(64 * 1024));
//! let (projected, stats) = pf.filter_to_vec(&doc).unwrap();
//! assert!(projected.len() < doc.len());
//! // The skipping scan inspects a fraction of the input (9–23% in the paper).
//! assert!(stats.char_comp_pct() < 60.0);
//! ```

pub use smpx_baselines as baselines;
pub use smpx_bench as bench;
pub use smpx_core as core;
pub use smpx_datagen as datagen;
pub use smpx_dtd as dtd;
pub use smpx_engine as engine;
pub use smpx_paths as paths;
pub use smpx_stringmatch as stringmatch;
pub use smpx_xml as xml;
