//! `smpx` — command-line XML prefilter.
//!
//! ```text
//! USAGE:
//!   smpx --dtd SCHEMA.dtd (--paths P1,P2,… | --query XPATH) [INPUT.xml] [-o OUT.xml] [--stats]
//!
//! EXAMPLES:
//!   smpx --dtd site.dtd --query '//australia//description' big.xml -o small.xml --stats
//!   cat big.xml | smpx --dtd site.dtd --paths '/*,/site/people/person/name#' > small.xml
//! ```
//!
//! Reads the whole input when given a file smaller than the streaming
//! threshold, otherwise streams with the paper's chunked window.

use smpx::core::{runtime::DEFAULT_CHUNK, Prefilter};
use smpx::dtd::Dtd;
use smpx::paths::{extract, PathSet};
use std::io::{Read, Write};
use std::process::ExitCode;

struct Args {
    dtd: String,
    paths: Option<String>,
    query: Option<String>,
    input: Option<String>,
    output: Option<String>,
    stats: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: smpx --dtd SCHEMA.dtd (--paths 'P1,P2,…' | --query XPATH) \
         [INPUT.xml] [-o OUT.xml] [--stats]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        dtd: String::new(),
        paths: None,
        query: None,
        input: None,
        output: None,
        stats: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dtd" => args.dtd = it.next().unwrap_or_else(|| usage()),
            "--paths" => args.paths = Some(it.next().unwrap_or_else(|| usage())),
            "--query" => args.query = Some(it.next().unwrap_or_else(|| usage())),
            "-o" | "--output" => args.output = Some(it.next().unwrap_or_else(|| usage())),
            "--stats" => args.stats = true,
            "-h" | "--help" => usage(),
            other if !other.starts_with('-') && args.input.is_none() => {
                args.input = Some(other.to_string())
            }
            _ => usage(),
        }
    }
    if args.dtd.is_empty() || (args.paths.is_none() && args.query.is_none()) {
        usage();
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();

    let dtd_text = match std::fs::read(&args.dtd) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("smpx: cannot read DTD {}: {e}", args.dtd);
            return ExitCode::FAILURE;
        }
    };
    let dtd = match Dtd::parse(&dtd_text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("smpx: DTD error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let paths: PathSet = if let Some(q) = &args.query {
        match extract::extract_from_text(q) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("smpx: query error: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let texts: Vec<&str> = args.paths.as_deref().unwrap_or("").split(',').collect();
        match PathSet::parse(&texts) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("smpx: path error: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let mut pf = match Prefilter::compile(&dtd, &paths) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("smpx: compile error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.stats {
        let t = pf.tables();
        eprintln!(
            "smpx: projection paths: {paths}\nsmpx: {} states ({} CW + {} BM)",
            t.state_count(),
            t.cw_states(),
            t.bm_states()
        );
    }

    // Wire input and output.
    let result = {
        let out_writer: Box<dyn Write> = match &args.output {
            Some(p) => match std::fs::File::create(p) {
                Ok(f) => Box::new(std::io::BufWriter::new(f)),
                Err(e) => {
                    eprintln!("smpx: cannot create {p}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            None => Box::new(std::io::BufWriter::new(std::io::stdout())),
        };
        match &args.input {
            Some(p) => match std::fs::File::open(p) {
                Ok(f) => pf.filter_stream(std::io::BufReader::new(f), out_writer, DEFAULT_CHUNK),
                Err(e) => {
                    eprintln!("smpx: cannot open {p}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            None => {
                let stdin = std::io::stdin();
                let lock: Box<dyn Read> = Box::new(stdin.lock());
                pf.filter_stream(lock, out_writer, DEFAULT_CHUNK)
            }
        }
    };

    match result {
        Ok(stats) => {
            if args.stats {
                eprintln!(
                    "smpx: wrote {} bytes; inspected {} chars; vector-scanned {} bytes; \
                     avg shift {:.2}; initial jumps {} chars; {} tokens; {} false matches",
                    stats.output_bytes,
                    stats.chars_compared,
                    stats.bytes_scanned,
                    stats.avg_shift(),
                    stats.initial_jump_chars,
                    stats.tokens_matched,
                    stats.false_matches,
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("smpx: {e}");
            ExitCode::FAILURE
        }
    }
}
