//! `smpx` — command-line XML prefilter.
//!
//! ```text
//! USAGE:
//!   smpx --dtd SCHEMA.dtd (--paths P1,P2,… | --query XPATH [--query XPATH ...])
//!        [INPUT.xml | - ...] [-o OUT.xml] [--mmap] [--prefetch] [--chunk-kb N]
//!        [--threads N] [--shard-mb N] [--add-query XPATH] [--remove-query ID]
//!        [--stats] [--stats-json PATH|-] [--metrics PATH|-]
//!
//! EXAMPLES:
//!   smpx --dtd site.dtd --query '//australia//description' big.xml -o small.xml --stats
//!   smpx --dtd site.dtd --query '//name' --query '//price' shard*.xml > union.xml
//!   smpx --dtd site.dtd --paths '/*,//name#' --mmap --threads 0 shard*.xml > all.xml
//!   cat big.xml | smpx --dtd site.dtd --paths '/*,/site/people/person/name#' > small.xml
//!   smpx --dtd site.dtd --paths '/*,//name#' head.xml - tail.xml > all.xml
//! ```
//!
//! `--query` is repeatable. With several queries the whole workload is
//! compiled into one shared multi-query automaton
//! (`smpx_core::QueryRegistry`): each document is scanned **once**, the
//! union projection is written to the output, and a per-file verdict
//! line on stderr names the queries the document matched (`q0`, `q1`, …
//! in flag order). Verdicts carry the single-query false-positive
//! contract: a flagged query may turn out to have no answers once
//! predicates are evaluated, but a query with answers is always flagged.
//!
//! Document delivery is pluggable (`smpx_core::runtime::source`): files
//! stream through the paper's chunked window by default (`--chunk-kb`
//! sizes it), `--mmap` maps them zero-copy instead, and stdin — either
//! implicitly (no inputs) or as the explicit non-seekable `-` operand
//! anywhere in the input list — always streams through a reader
//! backend, even under `--mmap`. Several inputs are prefiltered as one
//! batch through a single compiled automaton; their projected outputs are
//! concatenated in argument order.
//!
//! Streamed deliveries *prefetch* by default where it pays: stdin/`-`
//! always routes through the double-buffered `PrefetchSource` (a
//! dedicated `smpx-io` thread reads the next chunk while the automaton
//! scans the current one), and non-mmap file inputs of at least 1 MiB
//! do too (vectored `readv` refills on 64-bit unix). `--prefetch` forces
//! the prefetching reader for file inputs below the threshold;
//! `SMPX_PREFETCH=0` is the kill switch that forces every delivery back
//! to the synchronous reader (output is byte-identical either way). In
//! pooled batches each worker opens its own source, so at most
//! `--threads` prefetch threads (and fds) exist at any time — the I/O
//! thread budget is bounded by the pool width.
//!
//! `--threads N` runs the batch through the work-stealing pool
//! (`smpx_core::runtime::parallel`) with `N` workers sharing the one
//! frozen automaton (`0` = the machine's available parallelism). Outputs
//! remain byte-identical and in argument order; per-file `--stats` rows
//! stay tagged with their backend, and the total row is accumulated on
//! the main thread from the ordered results, so no counter is ever
//! updated concurrently. In parallel mode each worker buffers its
//! documents' projected bytes before the ordered write-out, and at most
//! `N` inputs are open at once (sources open right before their run, as
//! in sequential mode).
//!
//! `--add-query XPATH` / `--remove-query ID` put the run in **dynamic
//! lifecycle mode** (`smpx_core::lifecycle`): the `--query` flags seed
//! generation 0 of a [`SharedPrefilter`], and the edits apply *between*
//! input files in argument order —
//!
//! ```text
//! smpx --dtd site.dtd --query '//name' a.xml \
//!      --add-query '//price' b.xml --remove-query 0 c.xml --stats
//! ```
//!
//! filters `a.xml` with `q0` alone, `b.xml` with `q0`+`q1`, and `c.xml`
//! with `q1` alone. Each edit's recompile runs on the lifecycle's
//! background compiler thread; the CLI settles (waits for the publish)
//! before the next batch so the demonstration is deterministic, and
//! `--stats` prints the generation number each batch ran on. Query ids
//! are stable across generations — a removed id keeps its slot and
//! reports unmatched; ids are never reused.
//!
//! `--stats-json PATH|-` writes the `--stats` rows (per file + total)
//! as JSON-lines; `--metrics PATH|-` (or `SMPX_METRICS`, flag wins)
//! enables the process-wide observability registry (`smpx_core::obs`)
//! and dumps one snapshot at exit — Prometheus text, or JSON-lines for
//! a `.json`/`.jsonl` path. `-` targets stderr in both cases, because
//! stdout carries the projected XML.
//!
//! A *single* large input with `--threads != 1` is sharded **within** the
//! document (`Prefilter::run_sharded`): the pool speculates from
//! top-level record boundaries and the stitched projection is
//! byte-identical to the sequential run. This engages automatically for
//! one file of at least 8 MiB; `--shard-mb N` forces it with N-MiB shards
//! (`--shard-mb 0` forces it with auto-sized shards). Stdin never shards
//! (a pipe has no known length and must stream).

use smpx::bench::json::{JsonSink, Value};
use smpx::core::obs::{self, MetricsTarget};
use smpx::core::runtime::source::{
    DocSource, MmapSource, PrefetchSource, ReaderSource, SourceKind,
};
use smpx::core::runtime::DEFAULT_CHUNK;
use smpx::core::{
    CoreError, MultiVerdict, Pool, Prefilter, QueryId, QueryRegistry, RunStats, SharedPrefilter,
    DEFAULT_AUTO_SHARD_BYTES,
};
use std::io::Write;
use std::process::ExitCode;

use smpx::dtd::Dtd;
use smpx::paths::{extract, PathSet};

struct Args {
    dtd: String,
    paths: Option<String>,
    queries: Vec<String>,
    inputs: Vec<String>,
    output: Option<String>,
    stats: bool,
    mmap: bool,
    /// Force the prefetching reader for file inputs below the default-on
    /// threshold (stdin always prefetches; `SMPX_PREFETCH=0` overrides
    /// everything back to the sync reader).
    prefetch: bool,
    chunk: usize,
    threads: usize,
    shard_mb: Option<usize>,
    /// `--metrics <path|->`: enable the process-wide observability
    /// registry and dump a snapshot at exit — `-` writes Prometheus text
    /// to stderr, a `.json`/`.jsonl` path the JSON-lines snapshot, any
    /// other path the Prometheus exposition. `SMPX_METRICS` is the
    /// env-var twin; the flag wins when both are present.
    metrics: Option<String>,
    /// `--stats-json <path|->`: machine-readable twin of `--stats` —
    /// the per-file and total rows as JSON-lines (appended to the path,
    /// or stderr for `-`).
    stats_json: Option<String>,
    /// Inputs and lifecycle edits in argument order. Only consulted when
    /// an `--add-query`/`--remove-query` flag put the run in lifecycle
    /// mode; plain runs keep using `inputs`.
    ops: Vec<LifeOp>,
}

/// One argument-order step of a lifecycle run: prefilter an input, or
/// edit the live query set between inputs.
enum LifeOp {
    Input(String),
    Add(String),
    Remove(u32),
}

fn usage() -> ! {
    eprintln!(
        "usage: smpx --dtd SCHEMA.dtd (--paths 'P1,P2,…' | --query XPATH [--query XPATH ...]) \
         [INPUT.xml | - ...] [-o OUT.xml] [--mmap] [--prefetch] [--chunk-kb N] [--threads N] \
         [--shard-mb N] [--add-query XPATH] [--remove-query ID] [--stats] \
         [--stats-json PATH|-] [--metrics PATH|-]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        dtd: String::new(),
        paths: None,
        queries: Vec::new(),
        inputs: Vec::new(),
        output: None,
        stats: false,
        mmap: false,
        prefetch: false,
        chunk: DEFAULT_CHUNK,
        threads: 1,
        shard_mb: None,
        metrics: None,
        stats_json: None,
        ops: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dtd" => args.dtd = it.next().unwrap_or_else(|| usage()),
            "--paths" => args.paths = Some(it.next().unwrap_or_else(|| usage())),
            "--query" => args.queries.push(it.next().unwrap_or_else(|| usage())),
            "-o" | "--output" => args.output = Some(it.next().unwrap_or_else(|| usage())),
            "--stats" => args.stats = true,
            "--stats-json" => args.stats_json = Some(it.next().unwrap_or_else(|| usage())),
            "--metrics" => args.metrics = Some(it.next().unwrap_or_else(|| usage())),
            "--mmap" => args.mmap = true,
            "--prefetch" => args.prefetch = true,
            "--chunk-kb" => {
                let kb: usize = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&kb| kb > 0)
                    .unwrap_or_else(|| usage());
                // KiB -> bytes can overflow usize; an absurd chunk size is
                // an operator error, not something to wrap silently.
                args.chunk = kb.checked_mul(1024).unwrap_or_else(|| usage());
            }
            "--threads" => {
                // 0 is meaningful: available parallelism.
                args.threads = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--shard-mb" => {
                // 0 is meaningful: force sharding with auto-sized shards.
                args.shard_mb =
                    Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()));
            }
            "--add-query" => {
                args.ops.push(LifeOp::Add(it.next().unwrap_or_else(|| usage())));
            }
            "--remove-query" => {
                // Accept the verdict-line spelling ("q3") as well as the
                // bare number.
                let id: u32 = it
                    .next()
                    .and_then(|v| v.trim().trim_start_matches('q').parse().ok())
                    .unwrap_or_else(|| usage());
                args.ops.push(LifeOp::Remove(id));
            }
            "-h" | "--help" => usage(),
            "-" => {
                args.inputs.push("-".to_string());
                args.ops.push(LifeOp::Input("-".to_string()));
            }
            other if !other.starts_with('-') => {
                args.inputs.push(other.to_string());
                args.ops.push(LifeOp::Input(other.to_string()));
            }
            _ => usage(),
        }
    }
    if args.dtd.is_empty() || (args.paths.is_none() && args.queries.is_empty()) {
        usage();
    }
    if args.mmap && args.inputs.iter().all(|p| p == "-") {
        eprintln!("smpx: --mmap requires file inputs (stdin cannot be mapped)");
        std::process::exit(2);
    }
    if args.mmap && args.prefetch {
        eprintln!("smpx: --mmap and --prefetch are mutually exclusive (mmap does not refill)");
        std::process::exit(2);
    }
    if args.inputs.iter().filter(|p| *p == "-").count() > 1 {
        eprintln!("smpx: the stdin operand '-' may appear at most once");
        std::process::exit(2);
    }
    args
}

/// Non-mmap file inputs at least this large prefetch by default: below
/// it the whole document fits in a window or two and the handoff cannot
/// hide any latency worth its thread.
const PREFETCH_MIN_BYTES: u64 = 1 << 20;

/// `SMPX_PREFETCH=0` is the kill switch for the prefetching reader: every
/// delivery that would prefetch (default-on stdin, large files,
/// `--prefetch`) falls back to the synchronous [`ReaderSource`]. Output
/// is byte-identical either way — the switch exists so the sync path
/// stays reachable in production and CI.
fn prefetch_allowed() -> bool {
    std::env::var("SMPX_PREFETCH").map_or(true, |v| v != "0")
}

/// Open one input through the backend the flags select. The non-seekable
/// `-` operand always takes a reader backend over stdin — `--mmap` and
/// slice paths cannot apply to a pipe, so it routes instead of erroring.
/// At most one input is open per worker at any time (sources open right
/// before their run), which also bounds the prefetch I/O threads by the
/// pool width.
fn open_source(path: &str, args: &Args) -> Result<(Box<dyn DocSource + Send>, String), CoreError> {
    let chunk_kb = args.chunk / 1024;
    let reader_tag = format!("{}/{}KiB", SourceKind::Reader, chunk_kb);
    let prefetch_tag = format!("{}/{}KiB", SourceKind::Prefetch, chunk_kb);
    if path == "-" {
        // `Stdin` handles chunked reads itself; workers never share one.
        // Pipes are exactly where overlapping read latency with scan time
        // pays, so stdin prefetches unless the kill switch says otherwise.
        return if prefetch_allowed() {
            Ok((Box::new(PrefetchSource::new(std::io::stdin(), args.chunk)), prefetch_tag))
        } else {
            Ok((Box::new(ReaderSource::new(std::io::stdin(), args.chunk)), reader_tag))
        };
    }
    if args.mmap {
        let m = MmapSource::open(path)?;
        // Honest tag: empty and non-regular files take the read-to-Vec
        // fallback inside the mmap backend.
        let tag = if m.is_mapped() {
            SourceKind::Mmap.as_str().to_string()
        } else {
            format!("{}/read-fallback", SourceKind::Mmap)
        };
        Ok((Box::new(m), tag))
    } else {
        let f = std::fs::File::open(path)?;
        // Default-on above the threshold (regular files only — a FIFO's
        // metadata length is meaningless, but as a stream it still
        // benefits, so `--prefetch` covers it explicitly).
        let big = f.metadata().map(|m| m.is_file() && m.len() >= PREFETCH_MIN_BYTES);
        if prefetch_allowed() && (args.prefetch || big.unwrap_or(false)) {
            return Ok((Box::new(PrefetchSource::from_file(f, args.chunk)), prefetch_tag));
        }
        Ok((Box::new(ReaderSource::new(std::io::BufReader::new(f), args.chunk)), reader_tag))
    }
}

/// One `--stats-json` record: the machine-readable twin of a
/// `print_stats` line (same per-file and total rows, JSON-lines shape).
fn stats_json_row(sink: &mut JsonSink, label: &str, source: &str, stats: &RunStats) {
    sink.push(&[
        ("file", Value::S(label.into())),
        ("source", Value::S(source.into())),
        ("input_bytes", Value::U(stats.input_bytes)),
        ("output_bytes", Value::U(stats.output_bytes)),
        ("chars_compared", Value::U(stats.chars_compared)),
        ("bytes_scanned", Value::U(stats.bytes_scanned)),
        ("avg_shift", Value::F(stats.avg_shift())),
        ("jump_pct", Value::F(stats.initial_jumps_pct())),
        ("char_pct", Value::F(stats.char_comp_pct())),
        ("scan_pct", Value::F(stats.scanned_pct())),
        ("tokens_matched", Value::U(stats.tokens_matched)),
        ("false_matches", Value::U(stats.false_matches)),
        ("shards", Value::U(stats.shards)),
    ]);
}

fn print_stats(label: &str, source: &str, stats: &RunStats) {
    let pct = if stats.input_bytes > 0 {
        format!(
            " ({:.1}% of {} input bytes)",
            100.0 * stats.output_bytes as f64 / stats.input_bytes as f64,
            stats.input_bytes
        )
    } else {
        String::new()
    };
    eprintln!(
        "smpx: {label} [{source}]: wrote {} bytes{pct}; inspected {} chars; \
         vector-scanned {} bytes; avg shift {:.2}; initial jumps {} chars; \
         {} tokens; {} false matches",
        stats.output_bytes,
        stats.chars_compared,
        stats.bytes_scanned,
        stats.avg_shift(),
        stats.initial_jump_chars,
        stats.tokens_matched,
        stats.false_matches,
    );
}

/// Prefilter the inputs queued in `pending` as one pooled batch on the
/// *settled* generation (every preceding edit compiled and published —
/// the CLI demonstrates the edit-visible points; servers would keep
/// running on the current generation instead). Writes projections to
/// `out` in argument order, prints a per-file verdict line in stable
/// external ids, and accumulates stats rows. `Err(())` means the failure
/// was already reported.
fn lifecycle_flush(
    shared: &SharedPrefilter,
    pending: &mut Vec<String>,
    args: &Args,
    out: &mut dyn Write,
    total: &mut RunStats,
    rows: &mut usize,
    sink: &mut Option<JsonSink>,
) -> Result<(), ()> {
    if pending.is_empty() {
        return Ok(());
    }
    let generation = shared.settle().map_err(|e| eprintln!("smpx: lifecycle: {e}"))?;
    if args.stats {
        eprintln!(
            "smpx: generation {} ({} live / {} allocated queries)",
            generation.gen_no(),
            generation.live_queries(),
            generation.id_width()
        );
    }
    let mut batch: Vec<(Box<dyn DocSource + Send>, Vec<u8>)> = Vec::new();
    let mut tags: Vec<String> = Vec::new();
    let mut sizes: Vec<Option<u64>> = Vec::new();
    for p in pending.iter() {
        sizes.push(if p == "-" {
            None
        } else {
            match std::fs::metadata(p) {
                Ok(m) => m.is_file().then_some(m.len()),
                Err(e) => {
                    eprintln!("smpx: cannot read {p}: {e}");
                    return Err(());
                }
            }
        });
        let (src, tag) = open_source(p, args).map_err(|e| {
            eprintln!("smpx: cannot open {p}: {e}");
        })?;
        batch.push((src, Vec::new()));
        tags.push(tag);
    }
    match shared.run_multi_batch_parallel(batch, args.threads) {
        Ok(done) => {
            for (i, (buf, verdict, mut stats)) in done.into_iter().enumerate() {
                if stats.input_bytes == 0 {
                    stats.input_bytes = sizes[i].unwrap_or(0);
                }
                out.write_all(&buf).map_err(|e| eprintln!("smpx: {e}"))?;
                let ids: Vec<String> =
                    verdict.matched_ids().iter().map(|q| q.to_string()).collect();
                eprintln!(
                    "smpx: {}: matched {}/{} queries [{}] (generation {})",
                    pending[i],
                    ids.len(),
                    verdict.n_queries,
                    ids.join(" "),
                    generation.gen_no()
                );
                if args.stats {
                    print_stats(&pending[i], &tags[i], &stats);
                }
                if let Some(sink) = sink {
                    stats_json_row(sink, &pending[i], &tags[i], &stats);
                }
                total.accumulate(&stats);
                *rows += 1;
            }
        }
        Err(e) => {
            eprintln!("smpx: {}: {}", pending[e.index], e.error);
            return Err(());
        }
    }
    pending.clear();
    Ok(())
}

/// The dynamic-lifecycle run: seed the registry from `--query` flags,
/// then walk inputs and `--add-query`/`--remove-query` edits in argument
/// order — contiguous inputs form one pooled batch, each edit is applied
/// (and, before the next batch, compiled and published) between batches.
fn run_lifecycle(args: &Args, dtd: Dtd, query_sets: Vec<PathSet>) -> ExitCode {
    let mut reg = QueryRegistry::new(dtd);
    for q in query_sets {
        reg.add_paths(q);
    }
    let shared = match reg.compile_shared() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("smpx: compile error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.stats {
        let g = shared.generation();
        let t = g.frozen().tables();
        eprintln!(
            "smpx: lifecycle mode: {} seed queries, {} states ({} CW + {} BM)",
            g.live_queries(),
            t.state_count(),
            t.cw_states(),
            t.bm_states()
        );
    }
    let mut out: Box<dyn Write> = match &args.output {
        Some(p) => match std::fs::File::create(p) {
            Ok(f) => Box::new(std::io::BufWriter::new(f)),
            Err(e) => {
                eprintln!("smpx: cannot create {p}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Box::new(std::io::BufWriter::new(std::io::stdout())),
    };
    let mut total = RunStats::default();
    let mut rows = 0usize;
    let mut sink = args.stats_json.as_ref().map(|p| JsonSink::to_path(p.clone()));
    let mut pending: Vec<String> = Vec::new();
    for op in &args.ops {
        match op {
            LifeOp::Input(p) => pending.push(p.clone()),
            LifeOp::Add(text) => {
                if lifecycle_flush(
                    &shared,
                    &mut pending,
                    args,
                    &mut out,
                    &mut total,
                    &mut rows,
                    &mut sink,
                )
                .is_err()
                {
                    return ExitCode::FAILURE;
                }
                match shared.add_query(text) {
                    Ok(id) => eprintln!("smpx: added query {id}: {text}"),
                    Err(e) => {
                        eprintln!("smpx: --add-query {text}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            LifeOp::Remove(n) => {
                if lifecycle_flush(
                    &shared,
                    &mut pending,
                    args,
                    &mut out,
                    &mut total,
                    &mut rows,
                    &mut sink,
                )
                .is_err()
                {
                    return ExitCode::FAILURE;
                }
                match shared.remove_query(QueryId(*n)) {
                    Ok(()) => eprintln!("smpx: removed query q{n}"),
                    Err(e) => {
                        eprintln!("smpx: --remove-query {n}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
    }
    if lifecycle_flush(&shared, &mut pending, args, &mut out, &mut total, &mut rows, &mut sink)
        .is_err()
    {
        return ExitCode::FAILURE;
    }
    // Trailing edits with no input after them still compile — surface
    // their errors rather than dropping them at exit.
    let last = match shared.settle() {
        Ok(g) => g,
        Err(e) => {
            eprintln!("smpx: lifecycle: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = out.flush() {
        eprintln!("smpx: {e}");
        return ExitCode::FAILURE;
    }
    if args.stats {
        if rows > 1 {
            print_stats("total", "lifecycle", &total);
        }
        eprintln!(
            "smpx: final generation {} ({} live / {} allocated queries)",
            last.gen_no(),
            last.live_queries(),
            last.id_width()
        );
    }
    if let Some(sink) = &mut sink {
        if rows > 1 {
            stats_json_row(sink, "total", "lifecycle", &total);
        }
        if let Err(e) = sink.flush() {
            eprintln!("smpx: --stats-json: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// `--metrics` beats `SMPX_METRICS`; a flag value that names no
/// destination is a usage error (the env path merely warns, because env
/// vars travel further from the invocation than flags do).
fn resolve_metrics(args: &Args) -> MetricsTarget {
    match &args.metrics {
        Some(v) => match obs::parse_metrics_value(v) {
            Ok(t) => t,
            Err(()) => {
                eprintln!(
                    "smpx: --metrics {v:?} names no destination; \
                     use a file path or `-` for stderr"
                );
                std::process::exit(2);
            }
        },
        None => obs::metrics_target_from_env(),
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let metrics = resolve_metrics(&args);
    if !matches!(metrics, MetricsTarget::Disabled) {
        obs::enable();
    }
    let code = run(args);
    // The snapshot covers the whole run, success or failure — a failed
    // run's counters are exactly what a postmortem wants.
    if let Err(e) = obs::emit(&metrics) {
        eprintln!("smpx: cannot write metrics snapshot: {e}");
        return ExitCode::FAILURE;
    }
    code
}

fn run(args: Args) -> ExitCode {
    let dtd_text = match std::fs::read(&args.dtd) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("smpx: cannot read DTD {}: {e}", args.dtd);
            return ExitCode::FAILURE;
        }
    };
    let dtd = match Dtd::parse(&dtd_text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("smpx: DTD error: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Per-query path sets (`--query`, repeatable). One query compiles the
    // classic single-query automaton; several compile one shared
    // multi-query automaton whose verdicts attribute each document to the
    // queries it matches.
    let mut query_sets: Vec<PathSet> = Vec::with_capacity(args.queries.len());
    for q in &args.queries {
        match extract::extract_from_text(q) {
            Ok(p) => query_sets.push(p),
            Err(e) => {
                eprintln!("smpx: query {q}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    // Any --add-query/--remove-query flag makes the run *dynamic*: the
    // --query workload seeds generation 0 of a lifecycle handle, and the
    // edits apply between input files in argument order.
    if args.ops.iter().any(|op| !matches!(op, LifeOp::Input(_))) {
        if args.paths.is_some() || query_sets.is_empty() {
            eprintln!(
                "smpx: --add-query/--remove-query need a --query seed workload \
                 (--paths has no query ids to edit)"
            );
            std::process::exit(2);
        }
        return run_lifecycle(&args, dtd, query_sets);
    }

    let multi = query_sets.len() > 1;

    let paths: PathSet = if multi {
        // Union for display and state accounting; the compiled automaton
        // additionally carries per-query attribution.
        query_sets.iter().fold(PathSet::new(vec![]), |u, q| u.union(q))
    } else if let Some(p) = query_sets.pop() {
        p
    } else {
        let texts: Vec<&str> = args.paths.as_deref().unwrap_or("").split(',').collect();
        match PathSet::parse(&texts) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("smpx: path error: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    // A `--paths` or single-`--query` run is a one-query workload for the
    // total-row accounting.
    let query_count = if multi { query_sets.len() } else { 1 };

    let compiled = if multi {
        Prefilter::compile_multi(&dtd, &query_sets)
    } else {
        Prefilter::compile(&dtd, &paths)
    };
    let mut pf = match compiled {
        Ok(p) => p,
        Err(e) => {
            eprintln!("smpx: compile error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.stats {
        let t = pf.tables();
        eprintln!(
            "smpx: projection paths: {paths}\nsmpx: {} states ({} CW + {} BM)",
            t.state_count(),
            t.cw_states(),
            t.bm_states()
        );
        if multi {
            eprintln!("smpx: {} registered queries on one shared automaton", query_sets.len());
        }
    }

    // One output writer; inputs concatenate into it in order.
    let mut out: Box<dyn Write> = match &args.output {
        Some(p) => match std::fs::File::create(p) {
            Ok(f) => Box::new(std::io::BufWriter::new(f)),
            Err(e) => {
                eprintln!("smpx: cannot create {p}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Box::new(std::io::BufWriter::new(std::io::stdout())),
    };

    // Validate every input up front (early, well-labeled failure before
    // any output is written), remembering the known file lengths so
    // reader-delivered stats — whose sources cannot know their length up
    // front — still report percentages. The `-` operand is stdin: no
    // metadata, no length.
    let mut sizes: Vec<Option<u64>> = Vec::new();
    for p in &args.inputs {
        if p == "-" {
            sizes.push(None);
            continue;
        }
        match std::fs::metadata(p) {
            Ok(m) => sizes.push(m.is_file().then_some(m.len())),
            Err(e) => {
                eprintln!("smpx: cannot read {p}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut results: Vec<(String, String, RunStats, Option<MultiVerdict>)> = Vec::new();
    if args.inputs.is_empty() {
        // Pure pipe mode: prefilter stdin through the streaming window
        // (prefetched by default; `SMPX_PREFETCH=0` falls back to the
        // sync reader — `open_source` owns that policy).
        let (src, tag) = match open_source("-", &args) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("smpx: <stdin>: {e}");
                return ExitCode::FAILURE;
            }
        };
        let run = if multi {
            pf.run_multi(src, &mut out).map(|(_, v, s)| (s, Some(v)))
        } else {
            pf.filter_source(src, &mut out).map(|s| (s, None))
        };
        match run {
            Ok((stats, verdict)) => results.push(("<stdin>".into(), tag, stats, verdict)),
            Err(e) => {
                eprintln!("smpx: <stdin>: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else if args.inputs.len() == 1
        && args.inputs[0] != "-"
        && (args.shard_mb.is_some()
            || (args.threads != 1 && sizes[0].is_some_and(|l| l >= DEFAULT_AUTO_SHARD_BYTES)))
    {
        // One file, many workers: shard *within* the document. Explicit
        // `--shard-mb` always routes here (0 = auto-sized shards); without
        // it the route engages only for a large file in pool mode. The
        // stitched projection, verdict, and token counters are
        // byte-identical to the sequential run; a document with no safe
        // split point falls back to one sequential pass (shards stays 0).
        let p = args.inputs[0].clone();
        let (src, tag) = match open_source(&p, &args) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("smpx: cannot open {p}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let shard_bytes = args.shard_mb.unwrap_or(0).saturating_mul(1 << 20);
        let run = if multi {
            pf.run_sharded_multi(src, &mut out, args.threads, shard_bytes)
                .map(|(_, v, s)| (s, Some(v)))
        } else {
            pf.run_sharded(src, &mut out, args.threads, shard_bytes).map(|(_, s)| (s, None))
        };
        match run {
            Ok((mut stats, verdict)) => {
                if stats.input_bytes == 0 {
                    stats.input_bytes = sizes[0].unwrap_or(0);
                }
                if args.stats {
                    // Honest effective width: the pool clamps to the
                    // machine, and an unsplittable document reports 0
                    // stitched segments rather than a fictional split.
                    let width = Pool::new(args.threads).threads();
                    if stats.shards > 0 {
                        eprintln!(
                            "smpx: {p}: stitched {} shard segments over {width} pool \
                             worker{}",
                            stats.shards,
                            if width == 1 { "" } else { "s" }
                        );
                    } else {
                        eprintln!("smpx: {p}: no safe split, ran as one sequential pass");
                    }
                }
                results.push((p, tag, stats, verdict));
            }
            Err(e) => {
                eprintln!("smpx: {p}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else if args.threads == 1 {
        // Sequential batch through the one compiled automaton, opening
        // each document's source right before its run — at most one fd or
        // mapping is ever open, so many-thousand-file batches stay under
        // any ulimit.
        for (p, size) in args.inputs.iter().zip(&sizes) {
            let src = match open_source(p, &args) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("smpx: cannot open {p}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let (src, tag) = src;
            let run = if multi {
                pf.run_multi(src, &mut out).map(|(_, v, s)| (s, Some(v)))
            } else {
                pf.filter_source(src, &mut out).map(|s| (s, None))
            };
            match run {
                Ok((mut stats, verdict)) => {
                    if stats.input_bytes == 0 {
                        stats.input_bytes = size.unwrap_or(0);
                    }
                    results.push((p.clone(), tag, stats, verdict));
                }
                Err(e) => {
                    // Name the failing input: with a long batch the output
                    // already contains every earlier projection.
                    eprintln!("smpx: {p}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    } else {
        // Parallel batch: the frozen automaton is shared read-only across
        // the pool's workers; each task opens its source inside the
        // worker (at most `threads` inputs open at once) and buffers its
        // projected bytes, which the main thread then writes out in
        // argument order. The first failing input cancels the batch —
        // in-flight documents drain, queued ones are abandoned, and the
        // failing input is named below. Nothing has been written to `out`
        // at that point: all writing happens after a fully successful run.
        let frozen = pf.freeze();
        let pool = Pool::new(args.threads);
        let tasks: Vec<(String, Option<u64>)> =
            args.inputs.iter().cloned().zip(sizes.iter().copied()).collect();
        let run = pool.run(
            tasks,
            |_| frozen.worker(),
            |wpf, (path, size)| -> Result<_, CoreError> {
                let (src, tag) = open_source(&path, &args)?;
                let mut buf = Vec::new();
                let (mut stats, verdict) = if multi {
                    let (_, v, s) = wpf.run_multi(src, &mut buf)?;
                    (s, Some(v))
                } else {
                    (wpf.filter_source(src, &mut buf)?, None)
                };
                if stats.input_bytes == 0 {
                    stats.input_bytes = size.unwrap_or(0);
                }
                Ok((path, tag, buf, stats, verdict))
            },
        );
        match run {
            Ok(ordered) => {
                for (path, tag, buf, stats, verdict) in ordered {
                    if let Err(e) = out.write_all(&buf) {
                        eprintln!("smpx: {e}");
                        return ExitCode::FAILURE;
                    }
                    results.push((path, tag, stats, verdict));
                }
            }
            Err((index, e)) => {
                eprintln!("smpx: {}: {e}", args.inputs[index]);
                return ExitCode::FAILURE;
            }
        }
        if args.stats {
            // Pool::run clamps its width to the task count; report the
            // workers that actually existed, not just the configuration.
            eprintln!(
                "smpx: batch of {} inputs over {} pool workers",
                args.inputs.len(),
                pool.threads().min(args.inputs.len())
            );
        }
    }
    if let Err(e) = out.flush() {
        eprintln!("smpx: {e}");
        return ExitCode::FAILURE;
    }

    // Per-file verdict column (multi-query mode): which registered
    // queries each document matched, in input order. Stderr like the
    // stats rows, so piped projection output stays clean.
    if multi {
        for (label, _, _, verdict) in &results {
            if let Some(v) = verdict {
                let ids: Vec<String> = v.matched_ids().iter().map(|q| q.to_string()).collect();
                eprintln!(
                    "smpx: {label}: matched {}/{} queries [{}]",
                    ids.len(),
                    v.n_queries,
                    ids.join(" ")
                );
            }
        }
    }

    if args.stats {
        // Totals accumulate on this thread from the input-ordered rows —
        // per-file attribution and the sums are identical whatever the
        // completion order was.
        let mut total = RunStats::default();
        for (label, tag, stats, _) in &results {
            print_stats(label, tag, stats);
            total.accumulate(stats);
        }
        if results.len() > 1 {
            // The total's tag comes from the rows themselves: a `-`
            // operand inside an `--mmap` batch makes delivery mixed, and
            // the total row must say so rather than claim one backend.
            let first = results[0].1.as_str();
            let tag = if results.iter().all(|(_, t, _, _)| t == first) {
                first.to_string()
            } else {
                "mixed".to_string()
            };
            print_stats("total", &tag, &total);
            // The workload size belongs on the total row: one shared pass
            // answered this many queries per document.
            eprintln!(
                "smpx: total: {} quer{} per document in one pass",
                query_count,
                if query_count == 1 { "y" } else { "ies" }
            );
        }
    }

    // Machine-readable twin of the `--stats` rows: one JSON object per
    // input plus a total row, same fields, same tag semantics.
    if let Some(path) = &args.stats_json {
        let mut sink = JsonSink::to_path(path.clone());
        let mut total = RunStats::default();
        for (label, tag, stats, _) in &results {
            stats_json_row(&mut sink, label, tag, stats);
            total.accumulate(stats);
        }
        if results.len() > 1 {
            let first = results[0].1.as_str();
            let tag = if results.iter().all(|(_, t, _, _)| t == first) {
                first.to_string()
            } else {
                "mixed".to_string()
            };
            stats_json_row(&mut sink, "total", &tag, &total);
        }
        if let Err(e) = sink.flush() {
            eprintln!("smpx: --stats-json: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
