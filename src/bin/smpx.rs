//! `smpx` — command-line XML prefilter.
//!
//! ```text
//! USAGE:
//!   smpx --dtd SCHEMA.dtd (--paths P1,P2,… | --query XPATH)
//!        [INPUT.xml ...] [-o OUT.xml] [--mmap] [--chunk-kb N] [--stats]
//!
//! EXAMPLES:
//!   smpx --dtd site.dtd --query '//australia//description' big.xml -o small.xml --stats
//!   smpx --dtd site.dtd --paths '/*,//name#' --mmap shard0.xml shard1.xml > all.xml
//!   cat big.xml | smpx --dtd site.dtd --paths '/*,/site/people/person/name#' > small.xml
//! ```
//!
//! Document delivery is pluggable (`smpx_core::runtime::source`): files
//! stream through the paper's chunked window by default (`--chunk-kb`
//! sizes it), `--mmap` maps them zero-copy instead, and stdin always
//! streams. Several input files are prefiltered as one batch through a
//! single compiled automaton; their projected outputs are concatenated in
//! argument order.

use smpx::core::runtime::source::{DocSource, MmapSource, ReaderSource, SourceKind};
use smpx::core::runtime::DEFAULT_CHUNK;
use smpx::core::{Prefilter, RunStats};
use smpx::dtd::Dtd;
use smpx::paths::{extract, PathSet};
use std::io::Write;
use std::process::ExitCode;

struct Args {
    dtd: String,
    paths: Option<String>,
    query: Option<String>,
    inputs: Vec<String>,
    output: Option<String>,
    stats: bool,
    mmap: bool,
    chunk: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: smpx --dtd SCHEMA.dtd (--paths 'P1,P2,…' | --query XPATH) \
         [INPUT.xml ...] [-o OUT.xml] [--mmap] [--chunk-kb N] [--stats]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        dtd: String::new(),
        paths: None,
        query: None,
        inputs: Vec::new(),
        output: None,
        stats: false,
        mmap: false,
        chunk: DEFAULT_CHUNK,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dtd" => args.dtd = it.next().unwrap_or_else(|| usage()),
            "--paths" => args.paths = Some(it.next().unwrap_or_else(|| usage())),
            "--query" => args.query = Some(it.next().unwrap_or_else(|| usage())),
            "-o" | "--output" => args.output = Some(it.next().unwrap_or_else(|| usage())),
            "--stats" => args.stats = true,
            "--mmap" => args.mmap = true,
            "--chunk-kb" => {
                let kb: usize = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&kb| kb > 0)
                    .unwrap_or_else(|| usage());
                args.chunk = kb * 1024;
            }
            "-h" | "--help" => usage(),
            other if !other.starts_with('-') => args.inputs.push(other.to_string()),
            _ => usage(),
        }
    }
    if args.dtd.is_empty() || (args.paths.is_none() && args.query.is_none()) {
        usage();
    }
    if args.mmap && args.inputs.is_empty() {
        eprintln!("smpx: --mmap requires file inputs (stdin cannot be mapped)");
        std::process::exit(2);
    }
    args
}

fn print_stats(label: &str, source: &str, stats: &RunStats) {
    let pct = if stats.input_bytes > 0 {
        format!(
            " ({:.1}% of {} input bytes)",
            100.0 * stats.output_bytes as f64 / stats.input_bytes as f64,
            stats.input_bytes
        )
    } else {
        String::new()
    };
    eprintln!(
        "smpx: {label} [{source}]: wrote {} bytes{pct}; inspected {} chars; \
         vector-scanned {} bytes; avg shift {:.2}; initial jumps {} chars; \
         {} tokens; {} false matches",
        stats.output_bytes,
        stats.chars_compared,
        stats.bytes_scanned,
        stats.avg_shift(),
        stats.initial_jump_chars,
        stats.tokens_matched,
        stats.false_matches,
    );
}

fn main() -> ExitCode {
    let args = parse_args();

    let dtd_text = match std::fs::read(&args.dtd) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("smpx: cannot read DTD {}: {e}", args.dtd);
            return ExitCode::FAILURE;
        }
    };
    let dtd = match Dtd::parse(&dtd_text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("smpx: DTD error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let paths: PathSet = if let Some(q) = &args.query {
        match extract::extract_from_text(q) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("smpx: query error: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let texts: Vec<&str> = args.paths.as_deref().unwrap_or("").split(',').collect();
        match PathSet::parse(&texts) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("smpx: path error: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let mut pf = match Prefilter::compile(&dtd, &paths) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("smpx: compile error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.stats {
        let t = pf.tables();
        eprintln!(
            "smpx: projection paths: {paths}\nsmpx: {} states ({} CW + {} BM)",
            t.state_count(),
            t.cw_states(),
            t.bm_states()
        );
    }

    // One output writer; inputs concatenate into it in order.
    let mut out: Box<dyn Write> = match &args.output {
        Some(p) => match std::fs::File::create(p) {
            Ok(f) => Box::new(std::io::BufWriter::new(f)),
            Err(e) => {
                eprintln!("smpx: cannot create {p}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Box::new(std::io::BufWriter::new(std::io::stdout())),
    };

    // Validate every input up front (early, well-labeled failure before
    // any output is written), remembering the known file lengths so
    // reader-delivered stats — whose sources cannot know their length up
    // front — still report percentages.
    let mut sizes: Vec<Option<u64>> = Vec::new();
    for p in &args.inputs {
        match std::fs::metadata(p) {
            Ok(m) => sizes.push(m.is_file().then_some(m.len())),
            Err(e) => {
                eprintln!("smpx: cannot read {p}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Drive the batch through the one compiled automaton, opening each
    // document's source right before its run — at most one fd or mapping
    // is ever open, so many-thousand-file batches stay under any ulimit.
    let reader_tag = format!("{}/{}KiB", SourceKind::Reader, args.chunk / 1024);
    let mut results: Vec<(String, String, RunStats)> = Vec::new();
    if args.inputs.is_empty() {
        let stdin = std::io::stdin();
        let src = ReaderSource::new(stdin.lock(), args.chunk);
        match pf.filter_source(src, &mut out) {
            Ok(stats) => results.push(("<stdin>".into(), reader_tag.clone(), stats)),
            Err(e) => {
                eprintln!("smpx: <stdin>: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        for (p, size) in args.inputs.iter().zip(&sizes) {
            let (src, tag): (Box<dyn DocSource>, String) = if args.mmap {
                match MmapSource::open(p) {
                    Ok(m) => {
                        // Honest tag: empty and non-regular files take the
                        // read-to-Vec fallback inside the mmap backend.
                        let tag = if m.is_mapped() {
                            SourceKind::Mmap.as_str().to_string()
                        } else {
                            format!("{}/read-fallback", SourceKind::Mmap)
                        };
                        (Box::new(m), tag)
                    }
                    Err(e) => {
                        eprintln!("smpx: cannot map {p}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            } else {
                match std::fs::File::open(p) {
                    Ok(f) => {
                        let src = ReaderSource::new(std::io::BufReader::new(f), args.chunk);
                        (Box::new(src), reader_tag.clone())
                    }
                    Err(e) => {
                        eprintln!("smpx: cannot open {p}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            };
            match pf.filter_source(src, &mut out) {
                Ok(mut stats) => {
                    if stats.input_bytes == 0 {
                        stats.input_bytes = size.unwrap_or(0);
                    }
                    results.push((p.clone(), tag, stats));
                }
                Err(e) => {
                    // Name the failing input: with a long batch the output
                    // already contains every earlier projection.
                    eprintln!("smpx: {p}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    if let Err(e) = out.flush() {
        eprintln!("smpx: {e}");
        return ExitCode::FAILURE;
    }

    if args.stats {
        let mut total = RunStats::default();
        for (label, tag, stats) in &results {
            print_stats(label, tag, stats);
            total.accumulate(stats);
        }
        if results.len() > 1 {
            let tag = if args.mmap { SourceKind::Mmap.as_str().to_string() } else { reader_tag };
            print_stats("total", &tag, &total);
        }
    }
    ExitCode::SUCCESS
}
