//! Query engines for the SMP evaluation (Sec. V-B).
//!
//! * [`InMemEngine`] — a DOM-building XPath engine with an explicit
//!   **memory budget**, standing in for the paper's QizX/Saxon: without
//!   prefiltering it fails on large inputs ("QizX … fails for all queries
//!   on the 1GB and 5GB documents"), with SMP prefiltering it scales
//!   (Fig. 7(a)).
//! * [`StreamEngine`] — a single-pass streaming XPath evaluator with
//!   candidate buffering, standing in for SPEX (Fig. 7(b)): per-token cost,
//!   output-proportional buffering, pipelines naturally behind the
//!   prefilter.
//!
//! Both engines evaluate the same XPath subset (`smpx_paths::xpath`) and
//! return results as serialized byte items, so their agreement — and
//! projection-safety (Def. 2: equal results on original and projected
//! documents) — can be asserted byte-for-byte in tests.
//!
//! # Quick start
//!
//! ```
//! use smpx_engine::InMemEngine;
//! use smpx_paths::xpath::XPath;
//!
//! let engine = InMemEngine::unlimited();
//! let query = XPath::parse("/site/item").unwrap();
//! let doc = b"<site><item>a</item><item>b</item><other/></site>";
//! let items = engine.load(doc).unwrap().eval(&query);
//! assert_eq!(items.len(), 2);
//! assert_eq!(items[0], b"<item>a</item>".to_vec());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod inmem;
mod spex;

pub use error::EngineError;
pub use inmem::{InMemEngine, LoadedDoc};
pub use spex::StreamEngine;
