//! In-memory XPath engine with a byte budget (QizX/Saxon stand-in).

use crate::error::EngineError;
use smpx_paths::xpath::{CmpOp, XExpr, XNodeTest, XPath, XRelPath, XStep};
use smpx_paths::Axis;
use smpx_xml::{serialize, Document, NodeId, NodeKind};

/// The engine: configuration only; documents are loaded per query run.
#[derive(Debug, Clone, Copy, Default)]
pub struct InMemEngine {
    /// Maximum DOM heap bytes; `None` = unlimited.
    pub memory_budget: Option<usize>,
}

impl InMemEngine {
    /// Engine with a budget (the paper capped QizX at 1 GB of heap).
    pub fn with_budget(bytes: usize) -> InMemEngine {
        InMemEngine { memory_budget: Some(bytes) }
    }

    /// Engine without a budget.
    pub fn unlimited() -> InMemEngine {
        InMemEngine { memory_budget: None }
    }

    /// Parse `doc` into a DOM, enforcing the budget.
    pub fn load(&self, doc: &[u8]) -> Result<LoadedDoc, EngineError> {
        let tree = Document::parse(doc)?;
        let needed = tree.heap_bytes();
        if let Some(budget) = self.memory_budget {
            if needed > budget {
                return Err(EngineError::MemoryBudget { needed, budget });
            }
        }
        Ok(LoadedDoc { tree })
    }
}

/// A loaded document ready for evaluation.
#[derive(Debug)]
pub struct LoadedDoc {
    tree: Document,
}

impl LoadedDoc {
    /// The underlying DOM.
    pub fn dom(&self) -> &Document {
        &self.tree
    }

    /// Evaluate `query`, returning each result item serialized: elements as
    /// markup, text results as raw bytes. Document order.
    pub fn eval(&self, query: &XPath) -> Vec<Vec<u8>> {
        let mut items = Vec::new();
        // Virtual root context: the document node.
        let ctx = Ctx::Document;
        self.eval_steps(&query.steps, ctx, &mut items);
        items
    }

    fn eval_steps(&self, steps: &[XStep], ctx: Ctx, out: &mut Vec<Vec<u8>>) {
        let mut current: Vec<Ctx> = vec![ctx];
        for (si, step) in steps.iter().enumerate() {
            let mut next = Vec::new();
            for c in &current {
                self.apply_step(step, c.clone(), &mut next);
            }
            // Keep document order and dedup (descendant steps can reach the
            // same node twice via different contexts).
            next.sort();
            next.dedup();
            current = next;
            if current.is_empty() {
                return;
            }
            let _ = si;
        }
        for c in current {
            match c {
                Ctx::Document => {}
                Ctx::Elem(n) => out.push(serialize(&self.tree, n)),
                Ctx::Text(n) => {
                    if let NodeKind::Text(t) = self.tree.kind(n) {
                        out.push(t.to_vec());
                    }
                }
                Ctx::Attr(_, ref v) => out.push(v.clone()),
            }
        }
    }

    fn apply_step(&self, step: &XStep, ctx: Ctx, out: &mut Vec<Ctx>) {
        // Attribute tests address the *context* node (child axis) or the
        // context's descendants-or-self (descendant axis), not children.
        if let XNodeTest::Attr(a) = &step.test {
            let holders: Vec<NodeId> = match (&ctx, step.axis) {
                (Ctx::Elem(n), Axis::Child) => vec![*n],
                (Ctx::Elem(n), Axis::Descendant) => {
                    let mut v = vec![*n];
                    v.extend(self.tree.descendants(*n));
                    v
                }
                (Ctx::Document, Axis::Child) => vec![self.tree.root()],
                (Ctx::Document, Axis::Descendant) => {
                    let mut v = vec![self.tree.root()];
                    v.extend(self.tree.descendants(self.tree.root()));
                    v
                }
                _ => vec![],
            };
            for h in holders {
                if let Some(v) = self.tree.attr(h, a.as_bytes()) {
                    out.push(Ctx::Attr(h, v.to_vec()));
                }
            }
            return;
        }
        let nodes: Vec<NodeId> = match (ctx, step.axis) {
            (Ctx::Document, Axis::Child) => vec![self.tree.root()],
            (Ctx::Document, Axis::Descendant) => {
                let mut v = vec![self.tree.root()];
                v.extend(self.tree.descendants(self.tree.root()));
                v
            }
            (Ctx::Elem(n), Axis::Child) => self.tree.children(n).collect(),
            (Ctx::Elem(n), Axis::Descendant) => self.tree.descendants(n).collect(),
            (Ctx::Text(_), _) | (Ctx::Attr(..), _) => return,
        };
        // Name-test pass first; predicates are applied afterwards in
        // sequence with proper positional semantics ([1], [last()]).
        let mut matched: Vec<NodeId> = Vec::new();
        for n in nodes {
            match (&step.test, self.tree.kind(n)) {
                (XNodeTest::Name(want), NodeKind::Element { name, .. })
                    if want.as_bytes() == &name[..] =>
                {
                    matched.push(n);
                }
                (XNodeTest::Wildcard, NodeKind::Element { .. }) => matched.push(n),
                (XNodeTest::Text, NodeKind::Text(_)) => out.push(Ctx::Text(n)),
                _ => {}
            }
        }
        for pred in &step.predicates {
            matched = self.filter_predicate(pred, matched);
            if matched.is_empty() {
                break;
            }
        }
        out.extend(matched.into_iter().map(Ctx::Elem));
    }

    /// Apply one predicate to an ordered candidate list (XPath semantics:
    /// positions are relative to the list produced by the preceding
    /// predicate).
    fn filter_predicate(&self, pred: &XExpr, matched: Vec<NodeId>) -> Vec<NodeId> {
        match pred {
            XExpr::Number(n) => {
                // Positional: [k] keeps the k-th match (1-based).
                let k = *n as usize;
                if *n >= 1.0 && (*n - k as f64).abs() < f64::EPSILON && k <= matched.len() {
                    vec![matched[k - 1]]
                } else {
                    Vec::new()
                }
            }
            XExpr::Last => matched.last().copied().into_iter().collect(),
            other => matched.into_iter().filter(|&n| self.truthy(other, n)).collect(),
        }
    }

    /// XPath-1.0-style effective boolean value with existential
    /// comparisons.
    fn truthy(&self, e: &XExpr, ctx: NodeId) -> bool {
        match e {
            XExpr::Path(p) => !self.rel_values(p, ctx).is_empty(),
            XExpr::Literal(s) => !s.is_empty(),
            XExpr::Number(n) => *n != 0.0,
            XExpr::Not(inner) => !self.truthy(inner, ctx),
            XExpr::And(a, b) => self.truthy(a, ctx) && self.truthy(b, ctx),
            XExpr::Or(a, b) => self.truthy(a, ctx) || self.truthy(b, ctx),
            XExpr::Empty(p) => self.rel_values(p, ctx).is_empty(),
            XExpr::Count(_) => true, // bare count() is truthy if > 0 — see Cmp
            XExpr::Last => true,     // positional use is handled in filter_predicate
            XExpr::Contains(a, b) => {
                let hay = self.string_values(a, ctx);
                let needles = self.string_values(b, ctx);
                hay.iter().any(|h| {
                    needles
                        .iter()
                        .any(|n| h.windows(n.len().max(1)).any(|w| w == &n[..]) || n.is_empty())
                })
            }
            XExpr::Cmp(a, op, b) => self.compare(a, *op, b, ctx),
        }
    }

    fn compare(&self, a: &XExpr, op: CmpOp, b: &XExpr, ctx: NodeId) -> bool {
        // Numeric comparison when either side is a number literal or a
        // count(); else existential string comparison.
        let numeric = matches!(a, XExpr::Number(_) | XExpr::Count(_))
            || matches!(b, XExpr::Number(_) | XExpr::Count(_));
        if numeric {
            let left = self.numeric_values(a, ctx);
            let right = self.numeric_values(b, ctx);
            left.iter().any(|&l| right.iter().any(|&r| cmp_f64(l, op, r)))
        } else {
            let left = self.string_values(a, ctx);
            let right = self.string_values(b, ctx);
            left.iter().any(|l| right.iter().any(|r| cmp_bytes(l, op, r)))
        }
    }

    fn numeric_values(&self, e: &XExpr, ctx: NodeId) -> Vec<f64> {
        match e {
            XExpr::Number(n) => vec![*n],
            XExpr::Count(p) => vec![self.rel_values(p, ctx).len() as f64],
            _ => self
                .string_values(e, ctx)
                .iter()
                .filter_map(|v| std::str::from_utf8(v).ok()?.trim().parse().ok())
                .collect(),
        }
    }

    fn string_values(&self, e: &XExpr, ctx: NodeId) -> Vec<Vec<u8>> {
        match e {
            XExpr::Literal(s) => vec![s.as_bytes().to_vec()],
            XExpr::Number(n) => vec![format_number(*n).into_bytes()],
            XExpr::Path(p) => self.rel_values(p, ctx),
            _ => vec![],
        }
    }

    /// String values of the nodes a relative path selects from `ctx`.
    fn rel_values(&self, p: &XRelPath, ctx: NodeId) -> Vec<Vec<u8>> {
        let mut current: Vec<Ctx> = vec![Ctx::Elem(ctx)];
        for step in &p.steps {
            let mut next = Vec::new();
            for c in &current {
                self.apply_step(step, c.clone(), &mut next);
            }
            next.sort();
            next.dedup();
            current = next;
            if current.is_empty() {
                return vec![];
            }
        }
        current
            .into_iter()
            .map(|c| match c {
                Ctx::Elem(n) => self.tree.text_content(n),
                Ctx::Text(n) => match self.tree.kind(n) {
                    NodeKind::Text(t) => t.to_vec(),
                    _ => Vec::new(),
                },
                Ctx::Attr(_, v) => v,
                Ctx::Document => Vec::new(),
            })
            .collect()
    }
}

/// Evaluation context item.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Ctx {
    Document,
    Elem(NodeId),
    Text(NodeId),
    Attr(NodeId, Vec<u8>),
}

fn cmp_f64(l: f64, op: CmpOp, r: f64) -> bool {
    match op {
        CmpOp::Eq => l == r,
        CmpOp::Ne => l != r,
        CmpOp::Lt => l < r,
        CmpOp::Le => l <= r,
        CmpOp::Gt => l > r,
        CmpOp::Ge => l >= r,
    }
}

fn cmp_bytes(l: &[u8], op: CmpOp, r: &[u8]) -> bool {
    match op {
        CmpOp::Eq => l == r,
        CmpOp::Ne => l != r,
        CmpOp::Lt => l < r,
        CmpOp::Le => l <= r,
        CmpOp::Gt => l > r,
        CmpOp::Ge => l >= r,
    }
}

fn format_number(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smpx_paths::xpath::XPath;

    fn eval(doc: &[u8], query: &str) -> Vec<String> {
        let engine = InMemEngine::unlimited();
        let loaded = engine.load(doc).unwrap();
        loaded
            .eval(&XPath::parse(query).unwrap())
            .into_iter()
            .map(|v| String::from_utf8(v).unwrap())
            .collect()
    }

    const DOC: &[u8] = br#"<site><people>
        <person id="p0"><name>Alice</name><age>30</age></person>
        <person id="p1"><name>Bob</name><age>55</age></person>
    </people><regions><australia><item id="i0"><name>Palm</name>
        <description>gold watch</description></item></australia></regions></site>"#;

    #[test]
    fn child_and_descendant_steps() {
        assert_eq!(
            eval(DOC, "/site/people/person/name"),
            vec!["<name>Alice</name>", "<name>Bob</name>"]
        );
        assert_eq!(eval(DOC, "//name/text()"), vec!["Alice", "Bob", "Palm"]);
        assert_eq!(
            eval(DOC, "//australia//description"),
            vec!["<description>gold watch</description>"]
        );
    }

    #[test]
    fn attribute_predicate() {
        assert_eq!(eval(DOC, r#"/site/people/person[@id="p1"]/name"#), vec!["<name>Bob</name>"]);
        assert_eq!(eval(DOC, r#"/site/people/person[@id="zz"]/name"#), Vec::<String>::new());
    }

    #[test]
    fn text_comparison_predicate() {
        assert_eq!(
            eval(DOC, r#"/site/people/person[name/text()="Alice"]/age"#),
            vec!["<age>30</age>"]
        );
    }

    #[test]
    fn numeric_predicate() {
        assert_eq!(eval(DOC, "/site/people/person[age >= 40]/name"), vec!["<name>Bob</name>"]);
        assert_eq!(eval(DOC, "/site/people/person[age < 40]/name"), vec!["<name>Alice</name>"]);
    }

    #[test]
    fn contains_and_boolean_connectives() {
        assert_eq!(
            eval(DOC, r#"//item[contains(description,"gold")]/name"#),
            vec!["<name>Palm</name>"]
        );
        assert_eq!(
            eval(DOC, r#"/site/people/person[name="Alice" or name="Bob"]/age"#),
            vec!["<age>30</age>", "<age>55</age>"]
        );
        assert_eq!(
            eval(DOC, r#"/site/people/person[name="Alice" and age="30"]/age"#),
            vec!["<age>30</age>"]
        );
        assert_eq!(
            eval(DOC, r#"/site/people/person[not(name="Alice")]/name"#),
            vec!["<name>Bob</name>"]
        );
    }

    #[test]
    fn count_and_empty() {
        assert_eq!(
            eval(DOC, "/site[count(people/person) >= 2]/regions/australia/item/name"),
            vec!["<name>Palm</name>"]
        );
        assert_eq!(eval(DOC, "/site/people/person[empty(homepage)]/name").len(), 2);
    }

    #[test]
    fn wildcard_step() {
        assert_eq!(eval(DOC, "/site/*/person/name").len(), 2);
    }

    #[test]
    fn positional_predicates() {
        let doc: &[u8] = br#"<r><p><x>a</x><x>b</x><x>c</x></p><p><x>d</x></p></r>"#;
        assert_eq!(eval(doc, "/r/p/x[1]"), vec!["<x>a</x>", "<x>d</x>"]);
        assert_eq!(eval(doc, "/r/p/x[2]"), vec!["<x>b</x>"]);
        assert_eq!(eval(doc, "/r/p/x[last()]"), vec!["<x>c</x>", "<x>d</x>"]);
        assert_eq!(eval(doc, "/r/p/x[4]"), Vec::<String>::new());
        assert_eq!(eval(doc, "/r/p[last()]/x"), vec!["<x>d</x>"]);
    }

    #[test]
    fn chained_positional_and_value_predicates() {
        let doc: &[u8] = br#"<r><x k="1">a</x><x>b</x><x k="1">c</x></r>"#;
        // Filter by attribute first, then position within the filtered list.
        assert_eq!(eval(doc, r#"/r/x[@k="1"][2]"#), vec![r#"<x k="1">c</x>"#]);
        assert_eq!(eval(doc, r#"/r/x[@k="1"][last()]"#), vec![r#"<x k="1">c</x>"#]);
    }

    #[test]
    fn memory_budget_enforced() {
        let small = InMemEngine::with_budget(64);
        assert!(matches!(small.load(DOC), Err(EngineError::MemoryBudget { .. })));
        let big = InMemEngine::with_budget(1 << 20);
        assert!(big.load(DOC).is_ok());
    }

    #[test]
    fn malformed_rejected() {
        assert!(InMemEngine::unlimited().load(b"<a><b></a>").is_err());
    }
}
