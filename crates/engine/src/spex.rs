//! Single-pass streaming XPath evaluator (SPEX stand-in, Fig. 7(b)).
//!
//! Like SPEX, the engine processes a token stream, keeps per-depth
//! automaton state, and *buffers* potential results until the predicates
//! guarding them are decided — so its memory is proportional to matched
//! data, not to the document size, and its CPU cost is per token. That is
//! exactly the profile the paper exploits when pipelining SMP prefiltering
//! into the engine: most tokens never reach it.
//!
//! Supported queries are the `smpx_paths::xpath` subset with one
//! simplification: a buffered candidate is gated on *all* predicate
//! instances open on its ancestor chain at match time (for spine-shaped
//! queries such as the paper's M1–M5 and the XMark set this is exact).

use smpx_paths::xpath::{CmpOp, XExpr, XNodeTest, XPath, XRelPath};
use smpx_paths::Axis;
use smpx_xml::{Token, Tokenizer, XmlError};

/// A compiled streaming evaluator.
pub struct StreamEngine {
    query: XPath,
}

/// Result of a streaming run.
#[derive(Debug)]
pub struct StreamResult {
    /// Serialized result items (raw input bytes for elements, text bytes
    /// for `text()` results), in document order.
    pub items: Vec<Vec<u8>>,
    /// Number of tokens the engine processed (its work measure).
    pub tokens: u64,
    /// Peak number of simultaneously buffered candidate bytes.
    pub peak_buffered: usize,
}

impl StreamEngine {
    /// Compile `query`.
    pub fn new(query: XPath) -> StreamEngine {
        StreamEngine { query }
    }

    /// Parse and compile in one step.
    pub fn parse(query: &str) -> Result<StreamEngine, smpx_paths::xpath::XPathError> {
        Ok(StreamEngine { query: XPath::parse(query)? })
    }

    /// Evaluate over a batch of documents — e.g. the per-document outputs
    /// of `smpx_core::Prefilter::run_batch` — concatenating result items
    /// in batch order. Token counts add up; the buffering peak is the
    /// maximum over the batch (documents are processed one at a time).
    pub fn eval_many<'a, I>(&self, docs: I) -> Result<StreamResult, XmlError>
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        let mut items = Vec::new();
        let mut tokens = 0u64;
        let mut peak_buffered = 0usize;
        for doc in docs {
            let r = self.eval(doc)?;
            items.extend(r.items);
            tokens += r.tokens;
            peak_buffered = peak_buffered.max(r.peak_buffered);
        }
        Ok(StreamResult { items, tokens, peak_buffered })
    }

    /// Evaluate over `doc` in a single pass.
    pub fn eval(&self, doc: &[u8]) -> Result<StreamResult, XmlError> {
        let mut rt = Run::new(&self.query);
        let mut tokens = 0u64;
        for tok in Tokenizer::new(doc) {
            let tok = tok?;
            tokens += 1;
            rt.token(doc, &tok);
        }
        Ok(StreamResult { items: rt.finish(), tokens, peak_buffered: rt.peak_buffered })
    }
}

/// NFA states: position `i` = "the first `i` query steps are matched".
type StateSet = Vec<usize>;

struct PredInstance {
    /// Paths collected within the anchor's subtree, in `collect_paths`
    /// order.
    collectors: Vec<Collector>,
    /// Index into the step's predicate list (to find the expr again).
    step_idx: usize,
    pred_idx: usize,
    /// Resolution, filled at anchor close.
    outcome: Option<bool>,
}

struct Collector {
    steps: Vec<(Axis, CollTest)>,
    /// Per-depth state sets relative to the anchor (index 0 = anchor).
    stack: Vec<StateSet>,
    /// Finished string values.
    values: Vec<Vec<u8>>,
    /// Open element matches: (depth, buffer index).
    open_matches: Vec<(usize, usize)>,
    /// Buffers of string values still being accumulated.
    buffers: Vec<Vec<u8>>,
}

#[derive(Clone, PartialEq)]
enum CollTest {
    Name(String),
    Wildcard,
    Text,
    Attr(String),
}

struct Frame {
    /// Query-NFA states after consuming this element.
    states: StateSet,
    /// Predicate instances anchored at this element (indices into `preds`).
    anchored: Vec<usize>,
    /// Candidate indices that finish at this element's close.
    candidates: Vec<usize>,
    /// Positional bookkeeping: matches of query step `i` among this
    /// element's children so far.
    step_counts: std::collections::HashMap<usize, usize>,
    /// `last()` predicates of child matches, resolved when this frame
    /// closes: (predicate instance, step index, the child's 1-based
    /// position).
    pending_last: Vec<(usize, usize, usize)>,
}

struct Candidate {
    bytes: Vec<u8>,
    /// Unresolved predicate instances this result depends on.
    deps: Vec<usize>,
    /// Depth while the candidate subtree is still being recorded.
    recording: bool,
    /// `text()` results collect only character data.
    text_only: bool,
}

struct Run<'q> {
    query: &'q XPath,
    stack: Vec<Frame>,
    preds: Vec<PredInstance>,
    candidates: Vec<Candidate>,
    /// Indices of candidates currently recording.
    recording: Vec<usize>,
    peak_buffered: usize,
    /// Query ends in a text() step?
    wants_text: bool,
    /// Number of element-test steps (excluding a trailing text()).
    elem_steps: usize,
}

impl<'q> Run<'q> {
    fn new(query: &'q XPath) -> Run<'q> {
        let wants_text = matches!(query.steps.last().map(|s| &s.test), Some(XNodeTest::Text));
        let elem_steps = query.steps.len() - usize::from(wants_text);
        Run {
            query,
            stack: vec![Frame {
                states: vec![0],
                anchored: Vec::new(),
                candidates: Vec::new(),
                step_counts: std::collections::HashMap::new(),
                pending_last: Vec::new(),
            }],
            preds: Vec::new(),
            candidates: Vec::new(),
            recording: Vec::new(),
            peak_buffered: 0,
            wants_text,
            elem_steps,
        }
    }

    fn token(&mut self, doc: &[u8], tok: &Token<'_>) {
        match *tok {
            Token::StartTag { name, attrs, self_closing, start, end } => {
                self.feed_recorders(&doc[start..end], false);
                self.open(name, attrs, start, end, doc);
                if self_closing {
                    self.close(name, end);
                }
            }
            Token::EndTag { name, start, end } => {
                self.feed_recorders(&doc[start..end], false);
                self.close(name, end);
            }
            Token::Text { text, start, end } => {
                self.feed_recorders(&doc[start..end], true);
                self.text(text);
                let _ = (start, end);
            }
            Token::Cdata { text, start, end } => {
                self.feed_recorders(&doc[start..end], true);
                self.text(text);
            }
            Token::Comment { start, end } | Token::Pi { start, end } => {
                self.feed_recorders(&doc[start..end], false);
            }
            Token::Doctype { .. } => {}
        }
    }

    /// Append raw bytes to all recording candidates (text-only candidates
    /// get only character data).
    fn feed_recorders(&mut self, bytes: &[u8], is_text: bool) {
        let mut total = 0usize;
        for &ci in &self.recording {
            let c = &mut self.candidates[ci];
            if !c.text_only || is_text {
                c.bytes.extend_from_slice(bytes);
            }
            total += c.bytes.len();
        }
        self.peak_buffered = self.peak_buffered.max(total);
    }

    fn open(&mut self, name: &[u8], attrs: &[u8], start: usize, end: usize, doc: &[u8]) {
        // 1. Advance predicate collectors.
        for &pi in self.stack.iter().flat_map(|f| f.anchored.iter()) {
            let inst = &mut self.preds[pi];
            for coll in &mut inst.collectors {
                coll.open(name, attrs);
            }
        }
        // 2. Advance the query NFA.
        let parent_states = self.stack.last().expect("root frame").states.clone();
        let mut states: StateSet = Vec::new();
        for &i in &parent_states {
            if i < self.elem_steps {
                let step = &self.query.steps[i];
                if elem_test_matches(&step.test, name) {
                    push_unique(&mut states, i + 1);
                }
                if step.axis == Axis::Descendant {
                    push_unique(&mut states, i);
                }
            }
            if i >= self.elem_steps {
                // Fully matched ancestors keep no further element states.
            }
        }
        // Descendant self-skip at position i requires re-checking: states
        // that were at i in the parent stay reachable if steps[i] is a
        // descendant step — handled above. Child-axis positions do not
        // propagate.
        let mut frame = Frame {
            states: states.clone(),
            anchored: Vec::new(),
            candidates: Vec::new(),
            step_counts: std::collections::HashMap::new(),
            pending_last: Vec::new(),
        };

        // 3. Instantiate predicates for newly matched steps; maintain the
        //    positional counters on the parent frame.
        for &i in &states {
            if i == 0 {
                continue;
            }
            let my_pos = {
                let parent = self.stack.last_mut().expect("parent frame");
                let c = parent.step_counts.entry(i - 1).or_insert(0);
                *c += 1;
                *c
            };
            let step = &self.query.steps[i - 1];
            for (pidx, pred) in step.predicates.iter().enumerate() {
                // Positional predicates resolve against the parent's
                // sibling counters instead of collected values.
                match pred {
                    XExpr::Number(n) => {
                        let want = *n as usize;
                        let ok =
                            *n >= 1.0 && (*n - want as f64).abs() < f64::EPSILON && my_pos == want;
                        self.preds.push(PredInstance {
                            collectors: Vec::new(),
                            step_idx: i - 1,
                            pred_idx: pidx,
                            outcome: Some(ok),
                        });
                        frame.anchored.push(self.preds.len() - 1);
                        continue;
                    }
                    XExpr::Last => {
                        self.preds.push(PredInstance {
                            collectors: Vec::new(),
                            step_idx: i - 1,
                            pred_idx: pidx,
                            outcome: None,
                        });
                        let id = self.preds.len() - 1;
                        frame.anchored.push(id);
                        self.stack.last_mut().expect("parent frame").pending_last.push((
                            id,
                            i - 1,
                            my_pos,
                        ));
                        continue;
                    }
                    _ => {}
                }
                let mut paths = Vec::new();
                collect_paths(pred, &mut paths);
                let mut collectors: Vec<Collector> =
                    paths.into_iter().map(Collector::new).collect();
                // Attribute tests at depth 0 resolve immediately.
                for coll in &mut collectors {
                    coll.seed_attrs(attrs);
                }
                let inst =
                    PredInstance { collectors, step_idx: i - 1, pred_idx: pidx, outcome: None };
                self.preds.push(inst);
                frame.anchored.push(self.preds.len() - 1);
            }
        }

        // 4. Candidates: element results when all element steps consumed.
        if !self.wants_text && states.contains(&self.elem_steps) {
            let deps = self.open_deps(&frame);
            let ci = self.candidates.len();
            self.candidates.push(Candidate {
                bytes: doc[start..end].to_vec(),
                deps,
                recording: true,
                text_only: false,
            });
            self.recording.push(ci);
            frame.candidates.push(ci);
        }
        self.stack.push(frame);
    }

    /// All unresolved predicate instances on the (new) ancestor chain.
    fn open_deps(&self, new_frame: &Frame) -> Vec<usize> {
        let mut deps: Vec<usize> =
            self.stack.iter().flat_map(|f| f.anchored.iter().copied()).collect();
        deps.extend(new_frame.anchored.iter().copied());
        deps
    }

    fn text(&mut self, text: &[u8]) {
        // Collectors with a live text() position consume character data.
        for &pi in self.stack.iter().flat_map(|f| f.anchored.iter()) {
            for coll in &mut self.preds[pi].collectors {
                coll.text(text);
            }
        }
        // text() results of the main query.
        if self.wants_text {
            let states = &self.stack.last().expect("frame").states;
            if states.contains(&self.elem_steps) {
                let tstep = &self.query.steps[self.elem_steps];
                let direct_ok = tstep.axis == Axis::Child;
                let matched = if direct_ok {
                    true
                } else {
                    // descendant text: any open ancestor at elem_steps.
                    true
                };
                if matched {
                    let deps = self.stack.iter().flat_map(|f| f.anchored.iter().copied()).collect();
                    self.candidates.push(Candidate {
                        bytes: text.to_vec(),
                        deps,
                        recording: false,
                        text_only: true,
                    });
                }
            } else if self.query.steps[self.elem_steps].axis == Axis::Descendant
                && self.stack.iter().any(|f| f.states.contains(&self.elem_steps))
            {
                let deps = self.stack.iter().flat_map(|f| f.anchored.iter().copied()).collect();
                self.candidates.push(Candidate {
                    bytes: text.to_vec(),
                    deps,
                    recording: false,
                    text_only: true,
                });
            }
        }
    }

    fn close(&mut self, _name: &[u8], _end: usize) {
        let frame = match self.stack.pop() {
            Some(f) => f,
            None => return,
        };
        // Stop recording candidates that finish here.
        for &ci in &frame.candidates {
            self.candidates[ci].recording = false;
            self.recording.retain(|&r| r != ci);
        }
        // Resolve predicates anchored here (positional ones may already be
        // resolved, and last() resolves on the *parent* close below).
        for &pi in &frame.anchored {
            let inst = &mut self.preds[pi];
            if inst.outcome.is_some() {
                continue;
            }
            let step = &self.query.steps[inst.step_idx];
            let expr = &step.predicates[inst.pred_idx];
            if matches!(expr, XExpr::Last) {
                continue;
            }
            for coll in &mut inst.collectors {
                coll.close_anchor();
            }
            let mut cursor = 0usize;
            let outcome = eval_pred(expr, &inst.collectors, &mut cursor);
            inst.outcome = Some(outcome);
        }
        // Resolve the last() predicates of this frame's children.
        for (pid, step_idx, pos) in frame.pending_last.iter().copied() {
            let total = frame.step_counts.get(&step_idx).copied().unwrap_or(0);
            self.preds[pid].outcome = Some(pos == total);
        }
        // Advance collectors of still-open predicates.
        for &pi in self.stack.iter().flat_map(|f| f.anchored.iter()) {
            for coll in &mut self.preds[pi].collectors {
                coll.close();
            }
        }
    }

    fn finish(&mut self) -> Vec<Vec<u8>> {
        let preds = &self.preds;
        self.candidates
            .drain(..)
            .filter(|c| c.deps.iter().all(|&pi| preds[pi].outcome.unwrap_or(false)))
            .map(|c| c.bytes)
            .collect()
    }
}

fn elem_test_matches(test: &XNodeTest, name: &[u8]) -> bool {
    match test {
        XNodeTest::Name(n) => n.as_bytes() == name,
        XNodeTest::Wildcard => true,
        XNodeTest::Text | XNodeTest::Attr(_) => false,
    }
}

fn push_unique(v: &mut Vec<usize>, x: usize) {
    if !v.contains(&x) {
        v.push(x);
    }
}

/// Paths inside a predicate expression, in deterministic traversal order
/// (mirrored by `eval_pred`).
fn collect_paths(e: &XExpr, out: &mut Vec<XRelPath>) {
    match e {
        XExpr::Path(p) => out.push(p.clone()),
        XExpr::Literal(_) | XExpr::Number(_) | XExpr::Last => {}
        XExpr::Cmp(a, _, b) => {
            collect_paths(a, out);
            collect_paths(b, out);
        }
        XExpr::And(a, b) | XExpr::Or(a, b) => {
            collect_paths(a, out);
            collect_paths(b, out);
        }
        XExpr::Contains(a, b) => {
            collect_paths(a, out);
            collect_paths(b, out);
        }
        XExpr::Not(inner) => collect_paths(inner, out),
        XExpr::Count(p) | XExpr::Empty(p) => out.push(p.clone()),
    }
}

/// Evaluate a predicate over collected values; `cursor` walks the
/// collectors in `collect_paths` order.
fn eval_pred(e: &XExpr, colls: &[Collector], cursor: &mut usize) -> bool {
    match e {
        XExpr::Path(_) => {
            let c = &colls[*cursor];
            *cursor += 1;
            !c.values.is_empty()
        }
        XExpr::Literal(s) => !s.is_empty(),
        XExpr::Number(n) => *n != 0.0,
        XExpr::Not(inner) => !eval_pred(inner, colls, cursor),
        XExpr::And(a, b) => {
            let left = eval_pred(a, colls, cursor);
            let right = eval_pred(b, colls, cursor);
            left && right
        }
        XExpr::Or(a, b) => {
            let left = eval_pred(a, colls, cursor);
            let right = eval_pred(b, colls, cursor);
            left || right
        }
        XExpr::Empty(_) => {
            let c = &colls[*cursor];
            *cursor += 1;
            c.values.is_empty()
        }
        XExpr::Count(_) => {
            let c = &colls[*cursor];
            *cursor += 1;
            !c.values.is_empty()
        }
        XExpr::Contains(a, b) => {
            let hay = pred_values(a, colls, cursor);
            let needles = pred_values(b, colls, cursor);
            hay.iter().any(|h| {
                needles.iter().any(|n| n.is_empty() || h.windows(n.len()).any(|w| w == &n[..]))
            })
        }
        XExpr::Last => true, // bare last() is positional, handled at open
        XExpr::Cmp(a, op, b) => {
            let numeric = matches!(**a, XExpr::Number(_) | XExpr::Count(_))
                || matches!(**b, XExpr::Number(_) | XExpr::Count(_));
            if numeric {
                let l = pred_numbers(a, colls, cursor);
                let r = pred_numbers(b, colls, cursor);
                l.iter().any(|&x| r.iter().any(|&y| cmp_f64(x, *op, y)))
            } else {
                let l = pred_values(a, colls, cursor);
                let r = pred_values(b, colls, cursor);
                l.iter().any(|x| r.iter().any(|y| cmp_bytes(x, *op, y)))
            }
        }
    }
}

fn pred_values(e: &XExpr, colls: &[Collector], cursor: &mut usize) -> Vec<Vec<u8>> {
    match e {
        XExpr::Literal(s) => vec![s.as_bytes().to_vec()],
        XExpr::Number(n) => vec![n.to_string().into_bytes()],
        XExpr::Path(_) => {
            let c = &colls[*cursor];
            *cursor += 1;
            c.values.clone()
        }
        _ => vec![],
    }
}

fn pred_numbers(e: &XExpr, colls: &[Collector], cursor: &mut usize) -> Vec<f64> {
    match e {
        XExpr::Number(n) => vec![*n],
        XExpr::Count(_) => {
            let c = &colls[*cursor];
            *cursor += 1;
            vec![c.values.len() as f64]
        }
        XExpr::Path(_) => {
            let c = &colls[*cursor];
            *cursor += 1;
            c.values
                .iter()
                .filter_map(|v| std::str::from_utf8(v).ok()?.trim().parse().ok())
                .collect()
        }
        XExpr::Literal(s) => s.trim().parse().ok().into_iter().collect(),
        _ => vec![],
    }
}

fn cmp_f64(l: f64, op: CmpOp, r: f64) -> bool {
    match op {
        CmpOp::Eq => l == r,
        CmpOp::Ne => l != r,
        CmpOp::Lt => l < r,
        CmpOp::Le => l <= r,
        CmpOp::Gt => l > r,
        CmpOp::Ge => l >= r,
    }
}

fn cmp_bytes(l: &[u8], op: CmpOp, r: &[u8]) -> bool {
    match op {
        CmpOp::Eq => l == r,
        CmpOp::Ne => l != r,
        CmpOp::Lt => l < r,
        CmpOp::Le => l <= r,
        CmpOp::Gt => l > r,
        CmpOp::Ge => l >= r,
    }
}

impl Collector {
    fn new(path: XRelPath) -> Collector {
        let steps = path
            .steps
            .iter()
            .map(|s| {
                let t = match &s.test {
                    XNodeTest::Name(n) => CollTest::Name(n.clone()),
                    XNodeTest::Wildcard => CollTest::Wildcard,
                    XNodeTest::Text => CollTest::Text,
                    XNodeTest::Attr(a) => CollTest::Attr(a.clone()),
                };
                (s.axis, t)
            })
            .collect();
        Collector {
            steps,
            stack: vec![vec![0]],
            values: Vec::new(),
            open_matches: Vec::new(),
            buffers: Vec::new(),
        }
    }

    /// Attribute collection at the anchor itself (`[@id="x"]`).
    fn seed_attrs(&mut self, attrs: &[u8]) {
        if let Some((Axis::Child, CollTest::Attr(want))) =
            self.steps.first().map(|s| (s.0, s.1.clone()))
        {
            if self.steps.len() == 1 {
                for (n, v) in smpx_xml::Attributes::new(attrs) {
                    if n == want.as_bytes() {
                        self.values.push(smpx_xml::unescape(v));
                    }
                }
            }
        }
    }

    fn open(&mut self, name: &[u8], attrs: &[u8]) {
        let top = self.stack.last().expect("collector stack").clone();
        let mut next: StateSet = Vec::new();
        let n = self.steps.len();
        for &i in &top {
            if i >= n {
                continue;
            }
            let (axis, ref test) = self.steps[i];
            let name_match = match test {
                CollTest::Name(t) => t.as_bytes() == name,
                CollTest::Wildcard => true,
                _ => false,
            };
            if name_match {
                push_unique(&mut next, i + 1);
                // Element fully matched: start collecting its text.
                if i + 1 == n {
                    let bi = self.buffers.len();
                    self.buffers.push(Vec::new());
                    self.open_matches.push((self.stack.len(), bi));
                }
                // Attribute step after this element?
                if i + 2 == n {
                    if let (_, CollTest::Attr(want)) = &self.steps[i + 1] {
                        for (an, av) in smpx_xml::Attributes::new(attrs) {
                            if an == want.as_bytes() {
                                self.values.push(smpx_xml::unescape(av));
                            }
                        }
                    }
                }
            }
            if axis == Axis::Descendant {
                push_unique(&mut next, i);
            }
        }
        self.stack.push(next);
    }

    fn text(&mut self, text: &[u8]) {
        // text() completion.
        let n = self.steps.len();
        if n > 0 {
            if let (axis, CollTest::Text) = &self.steps[n - 1] {
                let top = self.stack.last().expect("stack");
                let live = match axis {
                    Axis::Child => top.contains(&(n - 1)),
                    Axis::Descendant => self.stack.iter().any(|s| s.contains(&(n - 1))),
                };
                if live {
                    self.values.push(smpx_xml::unescape(text));
                }
            }
        }
        // Accumulate into open element matches.
        let unescaped = smpx_xml::unescape(text);
        for &(_, bi) in &self.open_matches {
            self.buffers[bi].extend_from_slice(&unescaped);
        }
    }

    fn close(&mut self) {
        let depth = self.stack.len() - 1;
        self.stack.pop();
        // Finish element matches opened at this depth.
        let mut finished: Vec<usize> = Vec::new();
        self.open_matches.retain(|&(d, bi)| {
            if d == depth {
                finished.push(bi);
                false
            } else {
                true
            }
        });
        for bi in finished {
            self.values.push(std::mem::take(&mut self.buffers[bi]));
        }
    }

    /// Anchor closes: finish any remaining matches.
    fn close_anchor(&mut self) {
        while self.stack.len() > 1 {
            self.close();
        }
        let remaining: Vec<usize> = self.open_matches.drain(..).map(|(_, bi)| bi).collect();
        for bi in remaining {
            self.values.push(std::mem::take(&mut self.buffers[bi]));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(query: &str, doc: &[u8]) -> Vec<String> {
        StreamEngine::parse(query)
            .unwrap()
            .eval(doc)
            .unwrap()
            .items
            .into_iter()
            .map(|v| String::from_utf8(v).unwrap())
            .collect()
    }

    const DOC: &[u8] = br#"<site><people><person id="p0"><name>Alice</name><age>30</age></person><person id="p1"><name>Bob</name><age>55</age></person></people><regions><australia><item id="i0"><name>Palm</name><description>gold watch</description></item></australia></regions></site>"#;

    #[test]
    fn plain_paths() {
        assert_eq!(
            eval("/site/people/person/name", DOC),
            vec!["<name>Alice</name>", "<name>Bob</name>"]
        );
        assert_eq!(eval("//name/text()", DOC), vec!["Alice", "Bob", "Palm"]);
        assert_eq!(
            eval("//australia//description", DOC),
            vec!["<description>gold watch</description>"]
        );
    }

    #[test]
    fn attribute_predicate() {
        assert_eq!(eval(r#"/site/people/person[@id="p1"]/name"#, DOC), vec!["<name>Bob</name>"]);
        assert!(eval(r#"/site/people/person[@id="zz"]/name"#, DOC).is_empty());
    }

    #[test]
    fn text_predicates() {
        assert_eq!(
            eval(r#"/site/people/person[name/text()="Alice"]/age"#, DOC),
            vec!["<age>30</age>"]
        );
        assert_eq!(eval(r#"/site/people/person[age >= 40]/name"#, DOC), vec!["<name>Bob</name>"]);
    }

    #[test]
    fn contains_predicate() {
        assert_eq!(
            eval(r#"//item[contains(description,"gold")]/name"#, DOC),
            vec!["<name>Palm</name>"]
        );
        assert!(eval(r#"//item[contains(description,"zinc")]/name"#, DOC).is_empty());
    }

    #[test]
    fn or_and_not() {
        assert_eq!(eval(r#"/site/people/person[name="Alice" or name="Bob"]/age"#, DOC).len(), 2);
        assert_eq!(
            eval(r#"/site/people/person[not(name="Alice")]/name"#, DOC),
            vec!["<name>Bob</name>"]
        );
    }

    #[test]
    fn positional_predicates() {
        let doc: &[u8] = br#"<r><p><x>a</x><x>b</x><x>c</x></p><p><x>d</x></p></r>"#;
        assert_eq!(eval("/r/p/x[1]", doc), vec!["<x>a</x>", "<x>d</x>"]);
        assert_eq!(eval("/r/p/x[2]", doc), vec!["<x>b</x>"]);
        assert_eq!(eval("/r/p/x[last()]", doc), vec!["<x>c</x>", "<x>d</x>"]);
        assert!(eval("/r/p/x[4]", doc).is_empty());
        assert_eq!(eval("/r/p[last()]/x", doc), vec!["<x>d</x>"]);
    }

    #[test]
    fn xm2_and_xm3_shapes() {
        // The real XM2/XM3 queries: first and last bidder increase.
        let doc: &[u8] = br#"<site><open_auctions><open_auction><bidder><increase>1.00</increase></bidder><bidder><increase>4.50</increase></bidder></open_auction></open_auctions></site>"#;
        assert_eq!(
            eval("/site/open_auctions/open_auction/bidder[1]/increase/text()", doc),
            vec!["1.00"]
        );
        assert_eq!(
            eval("/site/open_auctions/open_auction/bidder[last()]/increase/text()", doc),
            vec!["4.50"]
        );
    }

    #[test]
    fn predicate_data_after_candidate() {
        // The candidate <x> appears before the predicate-deciding <flag>
        // inside the same parent: buffering must hold it until </p>.
        let doc = b"<r><p><x>one</x><flag>yes</flag></p><p><x>two</x><flag>no</flag></p></r>";
        assert_eq!(eval(r#"/r/p[flag="yes"]/x"#, doc), vec!["<x>one</x>"]);
    }

    #[test]
    fn agrees_with_inmem_engine() {
        use crate::inmem::InMemEngine;
        let queries = [
            "/site/people/person/name",
            "//name/text()",
            r#"/site/people/person[@id="p0"]/age"#,
            r#"//item[contains(description,"gold")]/name"#,
            r#"/site/people/person[age >= 40]/name"#,
        ];
        let loaded = InMemEngine::unlimited().load(DOC).unwrap();
        for q in queries {
            let xq = smpx_paths::xpath::XPath::parse(q).unwrap();
            let want: Vec<Vec<u8>> = loaded.eval(&xq);
            let got = StreamEngine::new(xq).eval(DOC).unwrap().items;
            assert_eq!(got, want, "query {q}");
        }
    }

    #[test]
    fn token_count_reported() {
        let r = StreamEngine::parse("/site/people").unwrap().eval(DOC).unwrap();
        assert!(r.tokens > 10);
    }

    #[test]
    fn eval_many_concatenates_in_batch_order() {
        let eng = StreamEngine::parse("/r/x").unwrap();
        let docs: [&[u8]; 3] = [b"<r><x>a</x></r>", b"<r><y/></r>", b"<r><x>b</x><x>c</x></r>"];
        let batch = eng.eval_many(docs).unwrap();
        let mut want = Vec::new();
        let mut tokens = 0;
        for d in docs {
            let r = eng.eval(d).unwrap();
            want.extend(r.items);
            tokens += r.tokens;
        }
        assert_eq!(batch.items, want);
        assert_eq!(batch.items.len(), 3);
        assert_eq!(batch.tokens, tokens);
    }
}
