//! Engine error type.

use std::fmt;

/// Failures while loading or evaluating.
#[derive(Debug)]
pub enum EngineError {
    /// Input is not well-formed XML.
    Xml(smpx_xml::XmlError),
    /// The DOM would exceed the configured memory budget — the engine
    /// "runs out of memory", reproducing the paper's Fig. 7(a) failures
    /// mechanically instead of by actually exhausting the machine.
    MemoryBudget {
        /// Bytes the document tree needs.
        needed: usize,
        /// Configured budget.
        budget: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Xml(e) => write!(f, "XML error: {e}"),
            EngineError::MemoryBudget { needed, budget } => {
                write!(f, "out of memory: document needs {needed} bytes, budget is {budget}")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Xml(e) => Some(e),
            _ => None,
        }
    }
}

impl From<smpx_xml::XmlError> for EngineError {
    fn from(e: smpx_xml::XmlError) -> Self {
        EngineError::Xml(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = EngineError::MemoryBudget { needed: 100, budget: 10 };
        assert!(e.to_string().contains("out of memory"));
    }
}
