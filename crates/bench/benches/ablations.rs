//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * **skipping vs every-character scanning** — Commentz–Walter frontier
//!   search vs an Aho–Corasick all-tags scan over the same vocabulary,
//! * **lazy vs eager matcher-table construction** (paper Sec. V builds
//!   tables lazily on first state entry),
//! * **full Boyer–Moore vs Horspool** for the single-keyword states,
//! * **initial jump offsets on/off** — measured via a path set where jumps
//!   matter (XM13-like, jumping over mandatory item prefixes).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use smpx_baselines::ac_scan::AcTagScanner;
use smpx_bench::queries::{xmark_paths, XMARK_QUERIES};
use smpx_core::Prefilter;
use smpx_datagen::{xmark, GenOptions};
use smpx_dtd::Dtd;
use smpx_stringmatch::{BoyerMoore, CommentzWalter, Horspool};

fn doc_bytes() -> usize {
    smpx_bench::measure::bench_doc_bytes(2 << 20)
}

fn bench_skip_vs_scan(c: &mut Criterion) {
    let doc = xmark::generate(GenOptions::sized(doc_bytes()));
    let vocab = ["description", "annotation", "emailaddress"];
    let mut g = c.benchmark_group("ablation/skip_vs_scan");
    g.throughput(Throughput::Bytes(doc.len() as u64));
    g.bench_function("commentz_walter", |b| {
        let pats: Vec<Vec<u8>> = vocab.iter().map(|v| format!("<{v}").into_bytes()).collect();
        let refs: Vec<&[u8]> = pats.iter().map(|p| p.as_slice()).collect();
        let cw = CommentzWalter::new(&refs);
        b.iter(|| cw.find_iter(&doc).count())
    });
    g.bench_function("aho_corasick", |b| {
        let sc = AcTagScanner::new(&vocab);
        b.iter(|| sc.count_tags(&doc))
    });
    g.finish();
}

fn bench_lazy_vs_eager_tables(c: &mut Criterion) {
    let doc = xmark::generate(GenOptions::sized(doc_bytes()));
    let dtd = Dtd::parse(xmark::XMARK_DTD.as_bytes()).unwrap();
    let q = XMARK_QUERIES.iter().find(|q| q.id == "XM10").unwrap(); // most states
    let paths = xmark_paths(q);
    let mut g = c.benchmark_group("ablation/table_construction");
    g.bench_function("lazy_compile_and_run", |b| {
        b.iter(|| {
            let mut pf = Prefilter::compile(&dtd, &paths).unwrap();
            pf.filter_to_vec(&doc).unwrap().0.len()
        })
    });
    g.bench_function("eager_compile_and_run", |b| {
        b.iter(|| {
            let mut pf = Prefilter::compile(&dtd, &paths).unwrap();
            pf.precompile_matchers();
            pf.filter_to_vec(&doc).unwrap().0.len()
        })
    });
    g.finish();
}

fn bench_bm_vs_horspool(c: &mut Criterion) {
    let doc = xmark::generate(GenOptions::sized(doc_bytes()));
    let pat: &[u8] = b"</closed_auctions";
    let mut g = c.benchmark_group("ablation/bm_vs_horspool");
    g.throughput(Throughput::Bytes(doc.len() as u64));
    g.bench_function("full_bm", |b| {
        let m = BoyerMoore::new(pat);
        b.iter(|| m.find(&doc).expect("present"))
    });
    g.bench_function("horspool", |b| {
        let m = Horspool::new(pat);
        b.iter(|| m.find(&doc).expect("present"))
    });
    g.finish();
}

fn bench_initial_jumps(c: &mut Criterion) {
    // XM13 profits from jumping over the mandatory item prefix
    // (location, quantity, name, payment) when scanning for <description>.
    // "Off" is simulated by zeroing the jump table.
    let doc = xmark::generate(GenOptions::sized(doc_bytes()));
    let dtd = Dtd::parse(xmark::XMARK_DTD.as_bytes()).unwrap();
    let q = XMARK_QUERIES.iter().find(|q| q.id == "XM13").unwrap();
    let paths = xmark_paths(q);
    let mut g = c.benchmark_group("ablation/initial_jumps");
    g.throughput(Throughput::Bytes(doc.len() as u64));
    g.bench_function("jumps_on", |b| {
        let mut pf = Prefilter::compile(&dtd, &paths).unwrap();
        b.iter(|| pf.filter_to_vec(&doc).unwrap().0.len())
    });
    g.bench_function("jumps_off", |b| {
        let mut tables = smpx_core::compile::compile(&dtd, &paths).unwrap();
        for s in &mut tables.states {
            s.jump = 0;
        }
        let mut pf = Prefilter::from_tables(tables);
        b.iter(|| pf.filter_to_vec(&doc).unwrap().0.len())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_skip_vs_scan, bench_lazy_vs_eager_tables, bench_bm_vs_horspool, bench_initial_jumps
}
criterion_main!(benches);
