//! Parallel batch-executor scaling: the same 4-shard on-disk XMark
//! corpus, mapped zero-copy and prefiltered through one shared automaton,
//! sequentially (`run_batch`) and across the work-stealing pool
//! (`run_batch_parallel`) at 1/2/4/8 workers.
//!
//! Every iteration opens the shards through the real `MmapSource` backend
//! (same protocol as the `sources` bench), so the measured difference is
//! executor scheduling + parallel speedup and nothing else. The setup
//! asserts once that the pooled output is byte-identical to the
//! sequential one — the full equivalence matrix lives in
//! `tests/parallel_equiv.rs`.
//!
//! Default corpus size is 64 MiB total (`SMPX_BENCH_KB` overrides; the CI
//! bench-smoke job runs tiny sizes). The committed `BENCH_parallel.json`
//! carries the quiet-machine medians; scaling beyond 1× naturally needs
//! as many hardware threads as pool workers — the JSON notes the host's
//! available parallelism via the `threads_avail` bench id.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use smpx_bench::measure::TempDocFile;
use smpx_bench::queries::{xmark_paths, XMARK_QUERIES};
use smpx_core::runtime::source::MmapSource;
use smpx_core::Prefilter;
use smpx_datagen::{xmark, GenOptions};
use smpx_dtd::Dtd;

const SHARDS: usize = 4;
const THREADS: &[usize] = &[1, 2, 4, 8];

fn doc_bytes() -> usize {
    smpx_bench::measure::bench_doc_bytes(64 << 20)
}

fn bench_parallel(c: &mut Criterion) {
    let shard_bytes = (doc_bytes() / SHARDS).max(4 * 1024);
    let mut files = Vec::new();
    let mut total = 0u64;
    for i in 0..SHARDS {
        let doc = xmark::generate(GenOptions::sized(shard_bytes).with_seed(i as u64));
        total += doc.len() as u64;
        files.push(TempDocFile::new(&format!("parallel-shard{i}"), &doc));
    }
    let dtd = Dtd::parse(xmark::XMARK_DTD.as_bytes()).unwrap();
    // XM13: the typical projection query of the Fig. 7(a) pipeline.
    let q = XMARK_QUERIES.iter().find(|q| q.id == "XM13").unwrap();
    let paths = xmark_paths(q);
    let mut pf = Prefilter::compile(&dtd, &paths).unwrap();
    let open = |files: &[TempDocFile]| -> Vec<(MmapSource, Vec<u8>)> {
        files.iter().map(|f| (MmapSource::open(f.path()).unwrap(), Vec::new())).collect()
    };

    // One-time pin: pooled output (any width) ≡ sequential output.
    let seq_ref: Vec<Vec<u8>> =
        pf.run_batch(open(&files)).unwrap().into_iter().map(|(out, _)| out).collect();
    for &t in THREADS {
        let par: Vec<Vec<u8>> = pf
            .run_batch_parallel(open(&files), t)
            .unwrap()
            .into_iter()
            .map(|(out, _)| out)
            .collect();
        assert_eq!(par, seq_ref, "pooled batch (t={t}) must be byte-identical to sequential");
    }

    let mut g = c.benchmark_group("parallel/mmap_xmark_shards");
    g.throughput(Throughput::Bytes(total));
    g.bench_function(BenchmarkId::new("seq_run_batch", q.id), |b| {
        b.iter(|| pf.run_batch(open(&files)).unwrap().len())
    });
    for &t in THREADS {
        g.bench_function(BenchmarkId::new(&format!("threads_{t}"), q.id), |b| {
            let frozen = pf.freeze();
            b.iter(|| frozen.run_batch_parallel(open(&files), t).unwrap().len())
        });
    }
    g.finish();

    // Not a measurement: records the host's available parallelism in the
    // JSON artifact (its own group, no byte throughput), so a flat
    // scaling curve from a core-starved machine is self-describing.
    let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut host = c.benchmark_group("parallel/mmap_host");
    host.bench_function(BenchmarkId::new("threads_avail", avail), |b| b.iter(|| avail));
    host.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_parallel
}
criterion_main!(benches);
