//! End-to-end prefiltering benchmarks: SMP vs the tokenizing projector on
//! both datasets (the Criterion-tracked core of Tables I–III).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use smpx_baselines::TokenProjector;
use smpx_bench::queries::{medline_paths, xmark_paths, MEDLINE_QUERIES, XMARK_QUERIES};
use smpx_core::Prefilter;
use smpx_datagen::{medline, xmark, GenOptions};
use smpx_dtd::Dtd;

fn doc_bytes() -> usize {
    smpx_bench::measure::bench_doc_bytes(2 << 20)
}

fn bench_xmark(c: &mut Criterion) {
    let doc = xmark::generate(GenOptions::sized(doc_bytes()));
    let dtd = Dtd::parse(xmark::XMARK_DTD.as_bytes()).unwrap();
    let mut g = c.benchmark_group("prefilter/xmark");
    g.throughput(Throughput::Bytes(doc.len() as u64));
    // A cheap (XM5), a typical (XM13) and the heaviest (XM14) query.
    for id in ["XM5", "XM13", "XM14"] {
        let q = XMARK_QUERIES.iter().find(|q| q.id == id).unwrap();
        let paths = xmark_paths(q);
        g.bench_function(BenchmarkId::new("smp", id), |b| {
            let mut pf = Prefilter::compile(&dtd, &paths).unwrap();
            b.iter(|| pf.filter_to_vec(&doc).unwrap().0.len())
        });
        g.bench_function(BenchmarkId::new("tokenizing", id), |b| {
            let p = TokenProjector::new(&paths);
            b.iter(|| p.project(&doc).unwrap().len())
        });
    }
    g.finish();
}

fn bench_medline(c: &mut Criterion) {
    let doc = medline::generate(GenOptions::sized(doc_bytes()));
    let dtd = Dtd::parse(medline::MEDLINE_DTD.as_bytes()).unwrap();
    let mut g = c.benchmark_group("prefilter/medline");
    g.throughput(Throughput::Bytes(doc.len() as u64));
    for q in MEDLINE_QUERIES {
        let paths = medline_paths(q);
        g.bench_function(BenchmarkId::new("smp", q.id), |b| {
            let mut pf = Prefilter::compile(&dtd, &paths).unwrap();
            b.iter(|| pf.filter_to_vec(&doc).unwrap().0.len())
        });
    }
    g.finish();
}

fn bench_streaming(c: &mut Criterion) {
    // Slice vs chunked-stream runtime on the same input (the window
    // management overhead of the paper's single-pass mode).
    let doc = xmark::generate(GenOptions::sized(doc_bytes()));
    let dtd = Dtd::parse(xmark::XMARK_DTD.as_bytes()).unwrap();
    let q = XMARK_QUERIES.iter().find(|q| q.id == "XM13").unwrap();
    let paths = xmark_paths(q);
    let mut g = c.benchmark_group("prefilter/streaming");
    g.throughput(Throughput::Bytes(doc.len() as u64));
    g.bench_function("slice", |b| {
        let mut pf = Prefilter::compile(&dtd, &paths).unwrap();
        b.iter(|| pf.filter_to_vec(&doc).unwrap().0.len())
    });
    g.bench_function("stream_32k", |b| {
        let mut pf = Prefilter::compile(&dtd, &paths).unwrap();
        b.iter(|| {
            let mut out = Vec::new();
            pf.filter_stream(&doc[..], &mut out, smpx_core::runtime::DEFAULT_CHUNK).unwrap();
            out.len()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_xmark, bench_medline, bench_streaming
}
criterion_main!(benches);
