//! Flat-string matching microbenchmarks.
//!
//! The paper's premise: Boyer–Moore/Commentz–Walter style skipping beats
//! one-character-at-a-time algorithms on keyword search. These benches
//! compare all five searchers on the same haystacks, plus the naive
//! baseline, for short (tag-like) and long keywords.
//!
//! The `flat/absent` and `flat/xmark_scan` groups additionally pit the
//! vectorized skip-scan against the classic scalar loops (`*_scalar`
//! entries call `find_at_scalar` directly); the committed
//! `BENCH_baseline.json` (run under `SMPX_NO_SIMD=1`) vs `BENCH_simd.json`
//! pair tracks the same comparison across process modes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use smpx_bench::measure::bench_doc_bytes;
use smpx_datagen::{xmark, GenOptions};
use smpx_stringmatch::{naive, AhoCorasick, BoyerMoore, CommentzWalter, Horspool, Kmp, NoMetrics};

fn haystack() -> Vec<u8> {
    xmark::generate(GenOptions::sized(bench_doc_bytes(1 << 20)))
}

fn bench_single_keyword(c: &mut Criterion) {
    let hay = haystack();
    // A keyword that occurs late: forces a long scan.
    let pat: &[u8] = b"<closed_auctions";
    let mut g = c.benchmark_group("flat/single");
    g.throughput(Throughput::Bytes(hay.len() as u64));
    g.bench_function(BenchmarkId::new("boyer_moore", pat.len()), |b| {
        let m = BoyerMoore::new(pat);
        b.iter(|| m.find(&hay).expect("present"))
    });
    g.bench_function(BenchmarkId::new("horspool", pat.len()), |b| {
        let m = Horspool::new(pat);
        b.iter(|| m.find(&hay).expect("present"))
    });
    g.bench_function(BenchmarkId::new("kmp", pat.len()), |b| {
        let m = Kmp::new(pat);
        b.iter(|| m.find(&hay).expect("present"))
    });
    g.bench_function(BenchmarkId::new("naive", pat.len()), |b| {
        b.iter(|| naive::find(&hay, pat).expect("present"))
    });
    g.finish();
}

fn bench_multi_keyword(c: &mut Criterion) {
    let hay = haystack();
    let pats: Vec<&[u8]> = vec![b"<description", b"<annotation", b"<emailaddress"];
    let mut g = c.benchmark_group("flat/multi");
    g.throughput(Throughput::Bytes(hay.len() as u64));
    g.bench_function("commentz_walter_scan_all", |b| {
        let m = CommentzWalter::new(&pats);
        b.iter(|| m.find_iter(&hay).count())
    });
    g.bench_function("aho_corasick_scan_all", |b| {
        let m = AhoCorasick::new(&pats);
        b.iter(|| m.find_iter(&hay).count())
    });
    g.finish();
}

fn bench_absent_alphabet(c: &mut Criterion) {
    // The skip-scan's best case: no haystack byte occurs in the pattern,
    // so the vector scan consumes the whole input without a single
    // candidate. The `*_scalar` twins run the classic shift loops on the
    // same input for an in-process ablation.
    let hay = vec![b'x'; bench_doc_bytes(1 << 20)];
    let pat: &[u8] = b"keyword!";
    let mut g = c.benchmark_group("flat/absent");
    g.throughput(Throughput::Bytes(hay.len() as u64));
    g.bench_function("boyer_moore", |b| {
        let m = BoyerMoore::new(pat);
        b.iter(|| m.find(&hay).is_none())
    });
    g.bench_function("boyer_moore_scalar", |b| {
        let m = BoyerMoore::new(pat);
        b.iter(|| m.find_at_scalar(&hay, 0, &mut NoMetrics).is_none())
    });
    g.bench_function("horspool", |b| {
        let m = Horspool::new(pat);
        b.iter(|| m.find(&hay).is_none())
    });
    g.bench_function("horspool_scalar", |b| {
        let m = Horspool::new(pat);
        b.iter(|| m.find_at_scalar(&hay, 0, &mut NoMetrics).is_none())
    });
    g.finish();
}

/// Count every occurrence by repeated `find_at`, the way the SMP runtime
/// drives the searcher between tokens.
fn count_cw(m: &CommentzWalter, hay: &[u8], scalar: bool) -> usize {
    let mut n = 0;
    let mut from = 0;
    loop {
        let hit = if scalar {
            m.find_at_scalar(hay, from, &mut NoMetrics)
        } else {
            m.find_at(hay, from, &mut NoMetrics)
        };
        match hit {
            Some(mm) => {
                n += 1;
                from = mm.start + 1;
            }
            None => return n,
        }
    }
}

fn bench_xmark_scan(c: &mut Criterion) {
    // A realistic frontier vocabulary over generated XMark: candidate
    // density is set by the document's tag mix, not an adversarial input.
    let hay = haystack();
    let pats: Vec<&[u8]> = vec![b"<description", b"<annotation", b"<emailaddress"];
    let mut g = c.benchmark_group("flat/xmark_scan");
    g.throughput(Throughput::Bytes(hay.len() as u64));
    g.bench_function("commentz_walter", |b| {
        let m = CommentzWalter::new(&pats);
        b.iter(|| count_cw(&m, &hay, false))
    });
    g.bench_function("commentz_walter_scalar", |b| {
        let m = CommentzWalter::new(&pats);
        b.iter(|| count_cw(&m, &hay, true))
    });
    let single: &[u8] = b"<closed_auctions";
    g.bench_function("boyer_moore", |b| {
        let m = BoyerMoore::new(single);
        b.iter(|| m.find(&hay).expect("present"))
    });
    g.bench_function("boyer_moore_scalar", |b| {
        let m = BoyerMoore::new(single);
        b.iter(|| m.find_at_scalar(&hay, 0, &mut NoMetrics).expect("present"))
    });
    g.finish();
}

fn bench_keyword_length_sweep(c: &mut Criterion) {
    // Skipping pays off more with longer keywords: ∅ shift grows with the
    // pattern (the paper's MEDLINE-vs-XMark observation).
    let hay = vec![b'x'; bench_doc_bytes(1 << 20)];
    let mut g = c.benchmark_group("flat/length_sweep");
    g.throughput(Throughput::Bytes(hay.len() as u64));
    for len in [4usize, 8, 16, 32] {
        let pat: Vec<u8> = (0..len).map(|i| b'a' + (i % 26) as u8).collect();
        g.bench_function(BenchmarkId::new("boyer_moore_miss", len), |b| {
            let m = BoyerMoore::new(&pat);
            b.iter(|| m.find(&hay).is_none())
        });
        g.bench_function(BenchmarkId::new("kmp_miss", len), |b| {
            let m = Kmp::new(&pat);
            b.iter(|| m.find(&hay).is_none())
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_single_keyword, bench_multi_keyword, bench_absent_alphabet,
        bench_xmark_scan, bench_keyword_length_sweep
}
criterion_main!(benches);
