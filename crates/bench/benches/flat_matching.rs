//! Flat-string matching microbenchmarks.
//!
//! The paper's premise: Boyer–Moore/Commentz–Walter style skipping beats
//! one-character-at-a-time algorithms on keyword search. These benches
//! compare all five searchers on the same haystacks, plus the naive
//! baseline, for short (tag-like) and long keywords.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use smpx_datagen::{xmark, GenOptions};
use smpx_stringmatch::{naive, AhoCorasick, BoyerMoore, CommentzWalter, Horspool, Kmp};

fn haystack() -> Vec<u8> {
    xmark::generate(GenOptions::sized(1 << 20))
}

fn bench_single_keyword(c: &mut Criterion) {
    let hay = haystack();
    // A keyword that occurs late: forces a long scan.
    let pat: &[u8] = b"<closed_auctions";
    let mut g = c.benchmark_group("flat/single");
    g.throughput(Throughput::Bytes(hay.len() as u64));
    g.bench_function(BenchmarkId::new("boyer_moore", pat.len()), |b| {
        let m = BoyerMoore::new(pat);
        b.iter(|| m.find(&hay).expect("present"))
    });
    g.bench_function(BenchmarkId::new("horspool", pat.len()), |b| {
        let m = Horspool::new(pat);
        b.iter(|| m.find(&hay).expect("present"))
    });
    g.bench_function(BenchmarkId::new("kmp", pat.len()), |b| {
        let m = Kmp::new(pat);
        b.iter(|| m.find(&hay).expect("present"))
    });
    g.bench_function(BenchmarkId::new("naive", pat.len()), |b| {
        b.iter(|| naive::find(&hay, pat).expect("present"))
    });
    g.finish();
}

fn bench_multi_keyword(c: &mut Criterion) {
    let hay = haystack();
    let pats: Vec<&[u8]> = vec![b"<description", b"<annotation", b"<emailaddress"];
    let mut g = c.benchmark_group("flat/multi");
    g.throughput(Throughput::Bytes(hay.len() as u64));
    g.bench_function("commentz_walter_scan_all", |b| {
        let m = CommentzWalter::new(&pats);
        b.iter(|| m.find_iter(&hay).count())
    });
    g.bench_function("aho_corasick_scan_all", |b| {
        let m = AhoCorasick::new(&pats);
        b.iter(|| m.find_iter(&hay).count())
    });
    g.finish();
}

fn bench_keyword_length_sweep(c: &mut Criterion) {
    // Skipping pays off more with longer keywords: ∅ shift grows with the
    // pattern (the paper's MEDLINE-vs-XMark observation).
    let hay = vec![b'x'; 1 << 20];
    let mut g = c.benchmark_group("flat/length_sweep");
    g.throughput(Throughput::Bytes(hay.len() as u64));
    for len in [4usize, 8, 16, 32] {
        let pat: Vec<u8> = (0..len).map(|i| b'a' + (i % 26) as u8).collect();
        g.bench_function(BenchmarkId::new("boyer_moore_miss", len), |b| {
            let m = BoyerMoore::new(&pat);
            b.iter(|| m.find(&hay).is_none())
        });
        g.bench_function(BenchmarkId::new("kmp_miss", len), |b| {
            let m = Kmp::new(&pat);
            b.iter(|| m.find(&hay).is_none())
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_single_keyword, bench_multi_keyword, bench_keyword_length_sweep
}
criterion_main!(benches);
