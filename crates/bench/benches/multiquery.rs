//! Multi-query registry scaling: one shared attributed automaton
//! answering N standing queries per document in a single SMP pass,
//! against the baseline of N independently compiled single-query
//! prefilters run in a loop — the publish/subscribe scenario of the
//! paper's introduction, swept from N = 1 to N = 1000.
//!
//! The workload cycles the Table I XMark projection path sets; the
//! registry registers N of them (duplicates allowed, each with its own
//! `QueryId`), the baseline compiles one `Prefilter` per distinct path
//! set and replays it per query. Setup asserts once per N that both
//! sides agree on every per-query verdict. Throughput is reported in
//! document bytes per second for both sides — the whole point is that
//! the one-pass side holds its per-document throughput as N grows while
//! the N-pass loop's falls off linearly.
//!
//! Default document size is 2 MiB (`SMPX_BENCH_KB` overrides; the CI
//! bench-smoke job runs tiny sizes). Quiet-machine medians are committed
//! as `BENCH_multiquery.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use smpx_bench::queries::{xmark_paths, XMARK_QUERIES};
use smpx_core::{Prefilter, QueryId, QueryRegistry};
use smpx_datagen::{xmark, GenOptions};
use smpx_dtd::Dtd;

const WORKLOADS: &[usize] = &[1, 10, 100, 1000];

fn doc_bytes() -> usize {
    smpx_bench::measure::bench_doc_bytes(2 << 20)
}

fn bench_multiquery(c: &mut Criterion) {
    let doc = xmark::generate(GenOptions::sized(doc_bytes()));
    let dtd = Dtd::parse(xmark::XMARK_DTD.as_bytes()).unwrap();
    let pool: Vec<_> = XMARK_QUERIES.iter().map(xmark_paths).collect();

    let mut g = c.benchmark_group("multiquery/xmark");
    g.throughput(Throughput::Bytes(doc.len() as u64));
    for &n in WORKLOADS {
        let mut reg = QueryRegistry::new(dtd.clone());
        for i in 0..n {
            reg.add_paths(pool[i % pool.len()].clone());
        }
        let mut mpf = reg.compile().unwrap();

        // The N-pass baseline compiles each distinct path set once and
        // replays it per registered query — charitable to the baseline
        // (no repeated compiles in the measured loop), so the gap below
        // is pure scan work.
        let mut singles: Vec<Prefilter> = pool
            .iter()
            .take(n.min(pool.len()))
            .map(|p| Prefilter::compile(&dtd, p).unwrap())
            .collect();

        // Pin once: the registry's verdict equals the N single runs.
        let (_, verdict, _) = mpf.filter_to_vec(&doc).unwrap();
        assert_eq!(verdict.n_queries as usize, n);
        let cycle = singles.len();
        for i in 0..n {
            let (_, stats) = singles[i % cycle].filter_to_vec(&doc).unwrap();
            assert_eq!(
                verdict.is_matched(QueryId(i as u32)),
                stats.match_events > 0,
                "registry verdict for query {i} must equal its single-query run"
            );
        }

        g.bench_function(BenchmarkId::new("one_pass_registry", n), |b| {
            b.iter(|| {
                let (out, v, _) = mpf.filter_to_vec(&doc).unwrap();
                (out.len(), v.matched_ids().len())
            })
        });
        g.bench_function(BenchmarkId::new("n_pass_singles", n), |b| {
            b.iter(|| {
                let mut matched = 0usize;
                for i in 0..n {
                    let (_, stats) = singles[i % cycle].filter_to_vec(&doc).unwrap();
                    matched += (stats.match_events > 0) as usize;
                }
                matched
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_multiquery
}
criterion_main!(benches);
