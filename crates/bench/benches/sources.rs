//! End-to-end document-delivery benchmarks: the same compiled prefilter
//! over the same on-disk XMark document, delivered through each
//! `DocSource` backend.
//!
//! Every iteration starts from the file — `slice` reads it whole into a
//! `Vec` first (the pre-refactor behavior), `mmap` maps it zero-copy, and
//! `reader` streams it through the chunked window — so the measured
//! difference is exactly the delivery cost the Input-layer refactor
//! targets. Default document size is 64 MiB (`SMPX_BENCH_KB` overrides,
//! as everywhere; the CI bench-smoke job runs tiny sizes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use smpx_bench::measure::TempDocFile;
use smpx_bench::queries::{xmark_paths, XMARK_QUERIES};
use smpx_core::runtime::source::{MmapSource, ReaderSource, SliceSource};
use smpx_core::runtime::DEFAULT_CHUNK;
use smpx_core::Prefilter;
use smpx_datagen::{xmark, GenOptions};
use smpx_dtd::Dtd;
use std::io::BufReader;

fn doc_bytes() -> usize {
    smpx_bench::measure::bench_doc_bytes(64 << 20)
}

fn bench_sources(c: &mut Criterion) {
    let doc = xmark::generate(GenOptions::sized(doc_bytes()));
    let file = TempDocFile::new("sources", &doc);
    let path = file.path();
    let dtd = Dtd::parse(xmark::XMARK_DTD.as_bytes()).unwrap();

    let mut g = c.benchmark_group("sources/xmark_file");
    g.throughput(Throughput::Bytes(doc.len() as u64));
    // XM13: the typical projection query of the Fig. 7(a) pipeline.
    let q = XMARK_QUERIES.iter().find(|q| q.id == "XM13").unwrap();
    let paths = xmark_paths(q);

    g.bench_function(BenchmarkId::new("slice_preread", q.id), |b| {
        let mut pf = Prefilter::compile(&dtd, &paths).unwrap();
        let mut out = Vec::new();
        b.iter(|| {
            out.clear();
            let bytes = std::fs::read(path).unwrap();
            pf.filter_source(SliceSource::new(&bytes), &mut out).unwrap();
            out.len()
        })
    });
    g.bench_function(BenchmarkId::new("mmap", q.id), |b| {
        let mut pf = Prefilter::compile(&dtd, &paths).unwrap();
        let mut out = Vec::new();
        b.iter(|| {
            out.clear();
            let src = MmapSource::open(path).unwrap();
            pf.filter_source(src, &mut out).unwrap();
            out.len()
        })
    });
    g.bench_function(BenchmarkId::new("reader_32k", q.id), |b| {
        let mut pf = Prefilter::compile(&dtd, &paths).unwrap();
        let mut out = Vec::new();
        b.iter(|| {
            out.clear();
            let file = std::fs::File::open(path).unwrap();
            let src = ReaderSource::new(BufReader::new(file), DEFAULT_CHUNK);
            pf.filter_source(src, &mut out).unwrap();
            out.len()
        })
    });
    g.finish();

    // Batch amortization: N shard documents through one automaton
    // (run_batch, matchers warm after the first shard) vs a freshly
    // compiled prefilter per shard.
    let shards = 8usize;
    let small = xmark::generate(GenOptions::sized(doc_bytes() / shards));
    let mut g = c.benchmark_group("sources/batch");
    g.throughput(Throughput::Bytes((small.len() * shards) as u64));
    g.bench_function("run_batch_one_automaton", |b| {
        let mut pf = Prefilter::compile(&dtd, &paths).unwrap();
        b.iter(|| {
            let batch = (0..shards).map(|_| (SliceSource::new(&small), std::io::sink()));
            pf.run_batch(batch).unwrap().len()
        })
    });
    g.bench_function("compile_per_document", |b| {
        b.iter(|| {
            let mut n = 0;
            for _ in 0..shards {
                let mut pf = Prefilter::compile(&dtd, &paths).unwrap();
                n += pf
                    .filter_source(SliceSource::new(&small), std::io::sink())
                    .unwrap()
                    .tokens_matched;
            }
            n
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sources
}
criterion_main!(benches);
