//! Overlapped-delivery benchmarks: the same compiled prefilter over the
//! same XMark document, delivered synchronously (`ReaderSource`) vs
//! prefetched (`PrefetchSource`, the `smpx-io` thread filling the next
//! window while the automaton scans), with `mmap` as the zero-copy
//! reference.
//!
//! Two delivery shapes:
//!
//! * **file** — a regular on-disk document, chunk-size sweep; the
//!   prefetch path additionally exercises the vectored `readv` refill.
//! * **pipe** — a `UnixStream` fed by a writer thread, the delivery mmap
//!   cannot cover and the one where overlapping read latency with scan
//!   time is the whole point.
//!
//! A `host/threads_avail` row records the machine's available
//! parallelism: on a 1-hardware-thread container the producer and the
//! scanner timeshare one core, so the overlap cannot show a wall-clock
//! win there (same honesty rule as `BENCH_parallel.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use smpx_bench::measure::TempDocFile;
use smpx_bench::queries::{xmark_paths, XMARK_QUERIES};
use smpx_core::runtime::source::{MmapSource, PrefetchSource, ReaderSource};
use smpx_core::Prefilter;
use smpx_datagen::{xmark, GenOptions};
use smpx_dtd::Dtd;
use std::io::BufReader;

fn doc_bytes() -> usize {
    smpx_bench::measure::bench_doc_bytes(64 << 20)
}

/// The chunk-size sweep: small enough that syscall count matters, up to
/// the paper's default window.
const CHUNKS: &[(usize, &str)] = &[(8 << 10, "8k"), (32 << 10, "32k"), (256 << 10, "256k")];

fn bench_prefetch(c: &mut Criterion) {
    let doc = xmark::generate(GenOptions::sized(doc_bytes()));
    let file = TempDocFile::new("prefetch", &doc);
    let path = file.path();
    let dtd = Dtd::parse(xmark::XMARK_DTD.as_bytes()).unwrap();
    // XM13: the typical projection query of the Fig. 7(a) pipeline.
    let q = XMARK_QUERIES.iter().find(|q| q.id == "XM13").unwrap();
    let paths = xmark_paths(q);

    // File delivery: sync reader vs prefetch across the chunk sweep,
    // mmap as the reference ceiling.
    let mut g = c.benchmark_group("prefetch/file");
    g.throughput(Throughput::Bytes(doc.len() as u64));
    for &(chunk, tag) in CHUNKS {
        g.bench_function(BenchmarkId::new(&format!("reader_{tag}"), q.id), |b| {
            let mut pf = Prefilter::compile(&dtd, &paths).unwrap();
            let mut out = Vec::new();
            b.iter(|| {
                out.clear();
                let f = std::fs::File::open(path).unwrap();
                let src = ReaderSource::new(BufReader::new(f), chunk);
                pf.filter_source(src, &mut out).unwrap();
                out.len()
            })
        });
        g.bench_function(BenchmarkId::new(&format!("prefetch_{tag}"), q.id), |b| {
            let mut pf = Prefilter::compile(&dtd, &paths).unwrap();
            let mut out = Vec::new();
            b.iter(|| {
                out.clear();
                let src = PrefetchSource::open(path, chunk).unwrap();
                pf.filter_source(src, &mut out).unwrap();
                out.len()
            })
        });
    }
    g.bench_function(BenchmarkId::new("mmap", q.id), |b| {
        let mut pf = Prefilter::compile(&dtd, &paths).unwrap();
        let mut out = Vec::new();
        b.iter(|| {
            out.clear();
            let src = MmapSource::open(path).unwrap();
            pf.filter_source(src, &mut out).unwrap();
            out.len()
        })
    });
    g.finish();

    // Pipe delivery: the backend mmap cannot cover. A writer thread
    // pushes the document through a UnixStream per iteration, so the
    // measured time includes genuine pipe latency for the reader to hide.
    #[cfg(unix)]
    {
        let doc = std::sync::Arc::new(doc.clone());
        let mut g = c.benchmark_group("prefetch/pipe");
        g.throughput(Throughput::Bytes(doc.len() as u64));
        for &(chunk, tag) in CHUNKS {
            let feed = |doc: &std::sync::Arc<Vec<u8>>| {
                let (tx, rx) = std::os::unix::net::UnixStream::pair().unwrap();
                let doc = std::sync::Arc::clone(doc);
                let writer = std::thread::spawn(move || {
                    use std::io::Write as _;
                    let mut tx = tx;
                    let _ = tx.write_all(&doc);
                    // Dropping tx closes the stream: EOF for the scanner.
                });
                (rx, writer)
            };
            g.bench_function(BenchmarkId::new(&format!("reader_{tag}"), q.id), |b| {
                let mut pf = Prefilter::compile(&dtd, &paths).unwrap();
                let mut out = Vec::new();
                b.iter(|| {
                    out.clear();
                    let (rx, writer) = feed(&doc);
                    let src = ReaderSource::new(rx, chunk);
                    pf.filter_source(src, &mut out).unwrap();
                    writer.join().unwrap();
                    out.len()
                })
            });
            g.bench_function(BenchmarkId::new(&format!("prefetch_{tag}"), q.id), |b| {
                let mut pf = Prefilter::compile(&dtd, &paths).unwrap();
                let mut out = Vec::new();
                b.iter(|| {
                    out.clear();
                    let (rx, writer) = feed(&doc);
                    let src = PrefetchSource::new(rx, chunk);
                    pf.filter_source(src, &mut out).unwrap();
                    writer.join().unwrap();
                    out.len()
                })
            });
        }
        g.finish();
    }

    // Record the hardware parallelism next to the curves: overlap needs a
    // second core for the `smpx-io` thread to actually run beside the
    // scanner (same honesty row as the parallel bench).
    let mut host = c.benchmark_group("prefetch/host");
    let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
    host.bench_function(BenchmarkId::new("threads_avail", avail), |b| b.iter(|| avail));
    host.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_prefetch
}
criterion_main!(benches);
