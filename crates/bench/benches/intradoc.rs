//! Intra-document parallelism: one XMark document, mapped zero-copy,
//! prefiltered sequentially (`filter_source`) and through the
//! speculative shard path (`run_sharded`) at 1/2/4/8 workers.
//!
//! This is the single-huge-document complement of the `parallel` bench
//! (which scales across a multi-document corpus): the document is
//! sharded *within* at top-level record boundaries, the pool speculates
//! from each boundary, and the stitched projection is byte-identical to
//! the sequential run — the setup asserts that once per width; the full
//! equivalence matrix lives in `tests/shard_equiv.rs`.
//!
//! Default document size is 64 MiB (`SMPX_BENCH_KB` overrides; the CI
//! bench-smoke job runs tiny sizes). The committed `BENCH_intradoc.json`
//! carries the quiet-machine medians; speedup beyond 1× naturally needs
//! as many hardware threads as pool workers — the JSON notes the host's
//! available parallelism via the `threads_avail` bench id, so a flat
//! curve from a core-starved machine is self-describing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use smpx_bench::measure::TempDocFile;
use smpx_bench::queries::{xmark_paths, XMARK_QUERIES};
use smpx_core::runtime::source::MmapSource;
use smpx_core::Prefilter;
use smpx_datagen::{xmark, GenOptions};
use smpx_dtd::Dtd;

const THREADS: &[usize] = &[1, 2, 4, 8];

fn doc_bytes() -> usize {
    smpx_bench::measure::bench_doc_bytes(64 << 20)
}

fn bench_intradoc(c: &mut Criterion) {
    let doc = xmark::generate(GenOptions::sized(doc_bytes()));
    let total = doc.len() as u64;
    let file = TempDocFile::new("intradoc", &doc);
    let dtd = Dtd::parse(xmark::XMARK_DTD.as_bytes()).unwrap();
    // XM13: the typical projection query of the Fig. 7(a) pipeline.
    let q = XMARK_QUERIES.iter().find(|q| q.id == "XM13").unwrap();
    let paths = xmark_paths(q);
    let mut pf = Prefilter::compile(&dtd, &paths).unwrap();
    let open = || MmapSource::open(file.path()).unwrap();

    // One-time pin: stitched output (any width) ≡ sequential output, and
    // widths above 1 really split the document.
    let mut seq_ref = Vec::new();
    pf.filter_source(open(), &mut seq_ref).unwrap();
    for &t in THREADS {
        let (out, stats) = pf.run_sharded(open(), Vec::new(), t, 0).unwrap();
        assert_eq!(out, seq_ref, "sharded (t={t}) must be byte-identical to sequential");
        if t > 1 {
            assert!(stats.shards >= 2, "t={t}: document must actually split: {stats:?}");
        }
    }

    let mut g = c.benchmark_group("intradoc/mmap_xmark");
    g.throughput(Throughput::Bytes(total));
    g.bench_function(BenchmarkId::new("seq_filter", q.id), |b| {
        b.iter(|| {
            let mut out = Vec::new();
            pf.filter_source(open(), &mut out).unwrap();
            out.len()
        })
    });
    for &t in THREADS {
        g.bench_function(BenchmarkId::new(&format!("threads_{t}"), q.id), |b| {
            b.iter(|| pf.run_sharded(open(), Vec::new(), t, 0).unwrap().0.len())
        });
    }
    g.finish();

    // Not a measurement: records the host's available parallelism in the
    // JSON artifact (its own group, no byte throughput), so a flat
    // scaling curve from a core-starved machine is self-describing.
    let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut host = c.benchmark_group("intradoc/mmap_host");
    host.bench_function(BenchmarkId::new("threads_avail", avail), |b| b.iter(|| avail));
    host.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_intradoc
}
criterion_main!(benches);
