//! Tokenization throughput (the Fig. 7(c) comparison, Criterion-tracked):
//! strict and lenient SAX parsing vs SMP prefiltering on both datasets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use smpx_baselines::sax;
use smpx_bench::queries::{medline_paths, xmark_paths, MEDLINE_QUERIES, XMARK_QUERIES};
use smpx_core::Prefilter;
use smpx_datagen::{medline, xmark, GenOptions};
use smpx_dtd::Dtd;

fn doc_bytes() -> usize {
    smpx_bench::measure::bench_doc_bytes(2 << 20)
}

fn bench_dataset(
    c: &mut Criterion,
    name: &str,
    doc: Vec<u8>,
    dtd_text: &str,
    smp_query: (&str, smpx_paths::PathSet),
) {
    let dtd = Dtd::parse(dtd_text.as_bytes()).unwrap();
    let mut g = c.benchmark_group(format!("tokenize/{name}"));
    g.throughput(Throughput::Bytes(doc.len() as u64));
    g.bench_function("sax_strict", |b| b.iter(|| sax::parse_strict(&doc).unwrap()));
    g.bench_function("sax_lenient", |b| b.iter(|| sax::parse_lenient(&doc).unwrap().0));
    let (qid, paths) = smp_query;
    g.bench_function(BenchmarkId::new("smp_prefilter", qid), |b| {
        let mut pf = Prefilter::compile(&dtd, &paths).unwrap();
        b.iter(|| pf.filter_to_vec(&doc).unwrap().0.len())
    });
    g.finish();
}

fn bench_xmark(c: &mut Criterion) {
    let q = XMARK_QUERIES.iter().find(|q| q.id == "XM13").unwrap();
    bench_dataset(
        c,
        "xmark",
        xmark::generate(GenOptions::sized(doc_bytes())),
        xmark::XMARK_DTD,
        (q.id, xmark_paths(q)),
    );
}

fn bench_medline(c: &mut Criterion) {
    let q = &MEDLINE_QUERIES[0]; // M1: scans everything, outputs nothing
    bench_dataset(
        c,
        "medline",
        medline::generate(GenOptions::sized(doc_bytes())),
        medline::MEDLINE_DTD,
        (q.id, medline_paths(q)),
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_xmark, bench_medline
}
criterion_main!(benches);
