//! Tokenization throughput (the Fig. 7(c) comparison, Criterion-tracked):
//! strict and lenient SAX parsing vs SMP prefiltering on both datasets,
//! plus the tag-end scan microbench (`tokenize/tag_end`): the per-byte
//! quote-aware loop — the pre-vectorization runtime's hot spot — against
//! the windowed `memscan::scan_tag_end_window` hop that replaced it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use smpx_baselines::sax;
use smpx_bench::queries::{medline_paths, xmark_paths, MEDLINE_QUERIES, XMARK_QUERIES};
use smpx_core::Prefilter;
use smpx_datagen::{medline, xmark, GenOptions};
use smpx_dtd::Dtd;
use smpx_stringmatch::memscan;

fn doc_bytes() -> usize {
    smpx_bench::measure::bench_doc_bytes(2 << 20)
}

fn bench_dataset(
    c: &mut Criterion,
    name: &str,
    doc: Vec<u8>,
    dtd_text: &str,
    smp_query: (&str, smpx_paths::PathSet),
) {
    let dtd = Dtd::parse(dtd_text.as_bytes()).unwrap();
    let mut g = c.benchmark_group(format!("tokenize/{name}"));
    g.throughput(Throughput::Bytes(doc.len() as u64));
    g.bench_function("sax_strict", |b| b.iter(|| sax::parse_strict(&doc).unwrap()));
    g.bench_function("sax_lenient", |b| b.iter(|| sax::parse_lenient(&doc).unwrap().0));
    let (qid, paths) = smp_query;
    g.bench_function(BenchmarkId::new("smp_prefilter", qid), |b| {
        let mut pf = Prefilter::compile(&dtd, &paths).unwrap();
        b.iter(|| pf.filter_to_vec(&doc).unwrap().0.len())
    });
    g.finish();
}

fn bench_xmark(c: &mut Criterion) {
    let q = XMARK_QUERIES.iter().find(|q| q.id == "XM13").unwrap();
    bench_dataset(
        c,
        "xmark",
        xmark::generate(GenOptions::sized(doc_bytes())),
        xmark::XMARK_DTD,
        (q.id, xmark_paths(q)),
    );
}

fn bench_medline(c: &mut Criterion) {
    let q = &MEDLINE_QUERIES[0]; // M1: scans everything, outputs nothing
    bench_dataset(
        c,
        "medline",
        medline::generate(GenOptions::sized(doc_bytes())),
        medline::MEDLINE_DTD,
        (q.id, medline_paths(q)),
    );
}

/// The classic per-byte quote-aware tag-end loop (the shape the runtime
/// uses under `SMPX_NO_SIMD=1`), as the microbench baseline.
fn scalar_tag_end(tag: &[u8], pos: usize) -> Option<(usize, bool)> {
    let mut i = pos;
    let mut prev = 0u8;
    loop {
        match tag.get(i).copied() {
            None => return None,
            Some(b'>') => return Some((i + 1, prev == b'/')),
            Some(q @ (b'"' | b'\'')) => {
                i += 1;
                loop {
                    match tag.get(i).copied() {
                        None => return None,
                        Some(c) if c == q => break,
                        Some(_) => i += 1,
                    }
                }
                prev = q;
                i += 1;
            }
            Some(c) => {
                prev = c;
                i += 1;
            }
        }
    }
}

fn windowed_tag_end(tag: &[u8], pos: usize) -> Option<(usize, bool)> {
    let mut st = memscan::TagScan::new();
    memscan::scan_tag_end_window(tag, pos, &mut st)
}

fn bench_tag_end(c: &mut Criterion) {
    let n = doc_bytes().max(4096);
    // One tag whose quoted attribute value spans the whole buffer: the
    // long-scan case the balanced/tag-end hop was built for.
    let mut long_tag = Vec::with_capacity(n);
    long_tag.extend_from_slice(b" id=\"");
    while long_tag.len() < n - 2 {
        long_tag.extend_from_slice(b"v>alue/7 ");
    }
    long_tag.extend_from_slice(b"\">");
    // Dense markup: many short attribute-bearing tags, scanned back to
    // back from each tag-name end (offsets precomputed outside the timer).
    let unit: &[u8] = b" id=\"a>b\" class='c/d'>some text between the tags....";
    let reps = (n / unit.len()).max(1);
    let mut dense = Vec::with_capacity(reps * unit.len());
    let mut starts = Vec::with_capacity(reps);
    for _ in 0..reps {
        starts.push(dense.len());
        dense.extend_from_slice(unit);
    }
    let mut g = c.benchmark_group("tokenize/tag_end");
    g.throughput(Throughput::Bytes(long_tag.len() as u64));
    g.bench_function("scalar_loop/long_attr", |b| {
        b.iter(|| scalar_tag_end(&long_tag, 0).expect("closed"))
    });
    g.bench_function("windowed/long_attr", |b| {
        b.iter(|| windowed_tag_end(&long_tag, 0).expect("closed"))
    });
    g.throughput(Throughput::Bytes(dense.len() as u64));
    g.bench_function("scalar_loop/dense_tags", |b| {
        b.iter(|| {
            let mut ends = 0usize;
            for &s in &starts {
                ends += scalar_tag_end(&dense, s).expect("closed").0;
            }
            ends
        })
    });
    g.bench_function("windowed/dense_tags", |b| {
        b.iter(|| {
            let mut ends = 0usize;
            for &s in &starts {
                ends += windowed_tag_end(&dense, s).expect("closed").0;
            }
            ends
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_xmark, bench_medline, bench_tag_end
}
criterion_main!(benches);
