//! Wall-clock and CPU-time measurement.
//!
//! The paper reports `Usr` + `Sys` (process CPU seconds) separately from
//! real time, because its prototype was disk-bound. We read the same
//! numbers from `/proc/self/stat` on Linux (USER_HZ = 100) and fall back to
//! wall time elsewhere.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// A document written to a unique temp file, removed on drop — the disk
/// half of every file-backed delivery in the bench crate (table-runner
/// deliveries and the `sources` bench both map/stream real files).
pub struct TempDocFile {
    path: PathBuf,
}

impl TempDocFile {
    /// Write `doc` to a fresh pid- and tag-unique temp file.
    pub fn new(tag: &str, doc: &[u8]) -> TempDocFile {
        let path =
            std::env::temp_dir().join(format!("smpx-bench-{}-{tag}.xml", std::process::id()));
        std::fs::write(&path, doc).expect("write bench temp file");
        TempDocFile { path }
    }

    /// Where the document lives.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDocFile {
    fn drop(&mut self) {
        std::fs::remove_file(&self.path).ok();
    }
}

/// A wall + CPU duration pair.
#[derive(Debug, Clone, Copy, Default)]
pub struct Timed {
    /// Elapsed real time.
    pub wall: Duration,
    /// Process CPU time (user + system), best effort.
    pub cpu: Duration,
}

impl Timed {
    /// Throughput in MB/s given `bytes` processed (wall-clock based).
    pub fn throughput_mbs(&self, bytes: u64) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            bytes as f64 / (1024.0 * 1024.0) / secs
        }
    }
}

/// Process CPU time (utime + stime) on Linux; `None` elsewhere.
pub fn process_cpu_time() -> Option<Duration> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // Field 2 (comm) may contain spaces; it is parenthesized — skip past it.
    let after = stat.rsplit_once(')')?.1;
    let fields: Vec<&str> = after.split_whitespace().collect();
    // After the comm field: state is field 0, utime is field 11, stime 12.
    let utime: u64 = fields.get(11)?.parse().ok()?;
    let stime: u64 = fields.get(12)?.parse().ok()?;
    // USER_HZ is 100 on all mainstream Linux configurations.
    Some(Duration::from_millis((utime + stime) * 10))
}

/// Time a closure, returning its result and the measurement.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Timed) {
    let cpu0 = process_cpu_time();
    let t0 = Instant::now();
    let out = f();
    let wall = t0.elapsed();
    let cpu = match (cpu0, process_cpu_time()) {
        (Some(a), Some(b)) => b.saturating_sub(a),
        _ => wall,
    };
    (out, Timed { wall, cpu })
}

/// Format a byte count as `x.xx MB`.
pub fn fmt_mb(bytes: u64) -> String {
    format!("{:.2}MB", bytes as f64 / (1024.0 * 1024.0))
}

/// Environment-variable override in MiB with a default.
pub fn env_mb(var: &str, default_mb: usize) -> usize {
    std::env::var(var).ok().and_then(|v| v.parse::<usize>().ok()).unwrap_or(default_mb)
        * 1024
        * 1024
}

/// Which `DocSource` backend the table runners deliver documents through,
/// selected by the `SMPX_SOURCE` environment variable (`slice` default,
/// `mmap`, `reader`, `prefetch`) so the same experiment binaries can
/// measure every backend — the nightly paper-scale CI job runs them over
/// `mmap`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceMode {
    /// In-memory slice (the generated document, no file round-trip).
    Slice,
    /// Memory-mapped temp file.
    Mmap,
    /// Chunked streaming read of a temp file.
    Reader,
    /// Chunked streaming read prefetched by the `smpx-io` thread.
    Prefetch,
}

impl SourceMode {
    /// Parse one `SMPX_SOURCE` value; `Err(())` = unrecognized (the
    /// caller decides how loudly to fall back).
    pub(crate) fn parse(raw: &str) -> Result<SourceMode, ()> {
        match raw.trim() {
            "" | "slice" => Ok(SourceMode::Slice),
            "mmap" => Ok(SourceMode::Mmap),
            "reader" => Ok(SourceMode::Reader),
            "prefetch" => Ok(SourceMode::Prefetch),
            _ => Err(()),
        }
    }

    /// Read `SMPX_SOURCE`. An unrecognized value falls back to `Slice`
    /// **after one stderr warning** — a typo like `SMPX_SOURCE=mmpa`
    /// must not silently benchmark the wrong backend (same policy as
    /// `SMPX_SHARD_AUTO_MB` and `SMPX_METRICS`).
    pub fn from_env() -> SourceMode {
        match std::env::var("SMPX_SOURCE") {
            Ok(v) => SourceMode::parse(&v).unwrap_or_else(|()| {
                static WARN: std::sync::Once = std::sync::Once::new();
                WARN.call_once(|| {
                    eprintln!(
                        "smpx: warning: SMPX_SOURCE={v:?} is not one of \
                         slice|mmap|reader|prefetch; using slice"
                    );
                });
                SourceMode::Slice
            }),
            Err(_) => SourceMode::Slice,
        }
    }
}

/// Worker count for the parallel batch driver, from `SMPX_THREADS`:
/// unset or `1` means the classic sequential path, `0` means the
/// machine's available parallelism, anything else is the pool width.
/// `runners::Delivery` routes its runs through the work-stealing executor
/// when this exceeds 1 (and the tables grow a `Thr` column), so the CI
/// leg that exports `SMPX_THREADS=4` drives the whole experiment suite —
/// and the tier-1 tests that go through `Delivery` — over the pool.
pub fn env_threads() -> usize {
    match std::env::var("SMPX_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
        // Pool::new owns the 0-means-available-parallelism resolution.
        Some(n) => smpx_core::Pool::new(n).threads(),
        None => 1,
    }
}

/// Multi-query workload width from `SMPX_QUERIES`: unset or `1` means the
/// classic single-query automaton, `N > 1` makes `runners::Delivery`-based
/// table runs compile the row's path set into an N-query shared automaton
/// (`Prefilter::compile_multi`) — one pass answering N standing queries —
/// and the tables grow a `Qrys` column. `0` is clamped to 1.
pub fn env_queries() -> usize {
    std::env::var("SMPX_QUERIES").ok().and_then(|v| v.parse::<usize>().ok()).map_or(1, |n| n.max(1))
}

/// Streaming chunk for [`SourceMode::Reader`] deliveries: `SMPX_CHUNK_KB`
/// (KiB) or the paper's default window.
pub fn source_chunk() -> usize {
    std::env::var("SMPX_CHUNK_KB")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map_or(smpx_core::runtime::DEFAULT_CHUNK, |kb| kb.max(1) * 1024)
}

/// Document size for the criterion bench targets: `SMPX_BENCH_KB` (in KiB)
/// overrides `default_bytes`. The CI bench-smoke job sets a tiny size so
/// every per-PR run stays fast while still exercising the full bench
/// matrix and emitting the JSON perf artifact.
pub fn bench_doc_bytes(default_bytes: usize) -> usize {
    std::env::var("SMPX_BENCH_KB")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map_or(default_bytes, |kb| kb.max(1) * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_time_available_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(process_cpu_time().is_some());
        }
    }

    #[test]
    fn time_measures_work() {
        let (sum, t) = time(|| (0..2_000_000u64).sum::<u64>());
        assert_eq!(sum, 1_999_999_000_000);
        assert!(t.wall.as_nanos() > 0);
    }

    #[test]
    fn throughput_math() {
        let t = Timed { wall: Duration::from_secs(2), cpu: Duration::from_secs(1) };
        let mbs = t.throughput_mbs(4 * 1024 * 1024);
        assert!((mbs - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fmt_and_env() {
        assert_eq!(fmt_mb(1024 * 1024), "1.00MB");
        std::env::remove_var("SMPX_TEST_MB_XYZ");
        assert_eq!(env_mb("SMPX_TEST_MB_XYZ", 3), 3 * 1024 * 1024);
    }

    #[test]
    fn source_mode_parses_every_backend() {
        assert_eq!(SourceMode::parse("slice"), Ok(SourceMode::Slice));
        assert_eq!(SourceMode::parse(""), Ok(SourceMode::Slice));
        assert_eq!(SourceMode::parse("mmap"), Ok(SourceMode::Mmap));
        assert_eq!(SourceMode::parse("reader"), Ok(SourceMode::Reader));
        assert_eq!(SourceMode::parse(" prefetch "), Ok(SourceMode::Prefetch));
    }

    #[test]
    fn source_mode_rejects_typos_for_the_caller_to_warn() {
        assert_eq!(SourceMode::parse("mmpa"), Err(()));
        assert_eq!(SourceMode::parse("MMAP"), Err(()), "modes are case-sensitive");
        assert_eq!(SourceMode::parse("file"), Err(()));
    }
}
