//! Minimal JSON-lines emission for experiment rows.
//!
//! The workspace builds offline (no serde); this is the same hand-rolled
//! JSON-lines shape the vendored criterion shim writes, so the nightly
//! `all_experiments --json` artifact and the committed `BENCH_*.json`
//! baselines can be post-processed by the same tooling. Every record is
//! one object per line; strings are escaped, floats are emitted with
//! three decimals, and absent values are `null`.

use std::io::Write as _;

/// One JSON value in a record.
#[derive(Debug, Clone)]
pub enum Value {
    /// A string field.
    S(String),
    /// An unsigned integer field.
    U(u64),
    /// A float field (emitted with three decimals).
    F(f64),
    /// A boolean field.
    B(bool),
    /// An explicit `null`.
    Null,
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl Value {
    fn render(&self) -> String {
        match self {
            Value::S(s) => format!("\"{}\"", escape(s)),
            Value::U(n) => n.to_string(),
            Value::F(f) if f.is_finite() => format!("{f:.3}"),
            Value::F(_) => "null".to_string(),
            Value::B(b) => b.to_string(),
            Value::Null => "null".to_string(),
        }
    }
}

/// Collects records and appends them to the `--json <path>` target, if
/// one was given on the command line (same flag shape as the criterion
/// shim: `--json out.json` or `--json=out.json`).
pub struct JsonSink {
    path: Option<String>,
    lines: Vec<String>,
}

impl JsonSink {
    /// Parse `--json` from the process arguments.
    pub fn from_args() -> JsonSink {
        let mut path = None;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if a == "--json" {
                path = args.next();
            } else if let Some(p) = a.strip_prefix("--json=") {
                path = Some(p.to_string());
            }
        }
        JsonSink { path, lines: Vec::new() }
    }

    /// A sink writing to an explicit target: a file path, or `-` for
    /// stderr (stdout stays reserved for document payloads — the CLI's
    /// `--stats-json` twin of the human `--stats` table routes here).
    pub fn to_path(path: impl Into<String>) -> JsonSink {
        JsonSink { path: Some(path.into()), lines: Vec::new() }
    }

    /// Is a sink path configured?
    pub fn enabled(&self) -> bool {
        self.path.is_some()
    }

    /// Record one object (insertion order is preserved).
    pub fn push(&mut self, fields: &[(&str, Value)]) {
        if self.path.is_none() {
            return;
        }
        let body: Vec<String> =
            fields.iter().map(|(k, v)| format!("\"{}\":{}", escape(k), v.render())).collect();
        self.lines.push(format!("{{{}}}", body.join(",")));
    }

    /// Append everything recorded so far to the target (file append, or
    /// stderr for the `-` target).
    pub fn flush(&mut self) -> std::io::Result<()> {
        let Some(path) = &self.path else { return Ok(()) };
        if self.lines.is_empty() {
            return Ok(());
        }
        if path == "-" {
            let mut e = std::io::stderr().lock();
            for line in self.lines.drain(..) {
                writeln!(e, "{line}")?;
            }
            return Ok(());
        }
        let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        for line in self.lines.drain(..) {
            writeln!(f, "{line}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_records() {
        let mut sink = JsonSink { path: Some("unused".into()), lines: Vec::new() };
        sink.push(&[
            ("table", Value::S("table1".into())),
            ("id", Value::S("XM\"1\"".into())),
            ("secs", Value::F(1.23456)),
            ("bytes", Value::U(42)),
            ("agree", Value::B(true)),
            ("missing", Value::Null),
            ("nan", Value::F(f64::NAN)),
        ]);
        assert_eq!(
            sink.lines[0],
            "{\"table\":\"table1\",\"id\":\"XM\\\"1\\\"\",\"secs\":1.235,\
             \"bytes\":42,\"agree\":true,\"missing\":null,\"nan\":null}"
        );
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let mut sink = JsonSink { path: None, lines: Vec::new() };
        assert!(!sink.enabled());
        sink.push(&[("k", Value::U(1))]);
        assert!(sink.lines.is_empty());
        sink.flush().unwrap();
    }
}
