//! Benchmark harness: workloads, measurement utilities and table/figure
//! runners regenerating the paper's evaluation (Sec. V).
//!
//! Each binary in `src/bin/` regenerates one table or figure:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `table1` | Table I — SMP characteristics on XMark (XM1–14, 17–20) |
//! | `table2` | Table II — SMP characteristics on MEDLINE (M1–M5) |
//! | `table3` | Table III — tokenizing projector (TBP stand-in) vs SMP |
//! | `fig7a`  | Fig. 7(a) — in-memory engine with/without prefiltering over document sizes |
//! | `fig7b`  | Fig. 7(b) — streaming engine stand-alone vs pipelined behind SMP |
//! | `fig7c`  | Fig. 7(c) — SAX tokenizing throughput vs average SMP throughput |
//! | `all_experiments` | everything above in sequence |
//!
//! Document sizes default to laptop scale and are overridable with
//! `SMPX_XMARK_MB`, `SMPX_MEDLINE_MB`, `SMPX_SWEEP_MAX_MB`.
//!
//! # Quick start
//!
//! ```
//! use smpx_bench::queries::{xmark_paths, XMARK_QUERIES};
//!
//! // The paper's XMark workload, ready to compile into a prefilter.
//! let q = XMARK_QUERIES.iter().find(|q| q.id == "XM5").unwrap();
//! let paths = xmark_paths(q);
//! assert!(!paths.is_empty());
//! ```

#![forbid(unsafe_code)]

pub mod json;
pub mod measure;
pub mod queries;
pub mod runners;
