//! Regenerate the Protein-Sequence characteristics (the paper's companion
//! technical report \[27\]). Size override: SMPX_PROTEIN_MB (default 32).
fn main() {
    let metrics = smpx_core::obs::init_from_env();
    smpx_bench::runners::run_table_protein();
    if let Err(e) = smpx_core::obs::emit(&metrics) {
        eprintln!("table_protein: cannot write metrics snapshot: {e}");
        std::process::exit(1);
    }
}
