//! Regenerate the Protein-Sequence characteristics (the paper's companion
//! technical report \[27\]). Size override: SMPX_PROTEIN_MB (default 32).
fn main() {
    smpx_bench::runners::run_table_protein();
}
