//! Regenerate the paper's Table II (SMP characteristics on MEDLINE).
//! Size override: SMPX_MEDLINE_MB (default 32).
fn main() {
    smpx_bench::runners::run_table2();
}
