//! Regenerate the paper's Table II (SMP characteristics on MEDLINE).
//! Size override: SMPX_MEDLINE_MB (default 32).
fn main() {
    let metrics = smpx_core::obs::init_from_env();
    smpx_bench::runners::run_table2();
    if let Err(e) = smpx_core::obs::emit(&metrics) {
        eprintln!("table2: cannot write metrics snapshot: {e}");
        std::process::exit(1);
    }
}
