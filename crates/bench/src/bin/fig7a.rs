//! Regenerate the paper's Fig. 7(a) (in-memory engine scaling with and
//! without prefiltering). Overrides: SMPX_SWEEP_MAX_MB (default 64),
//! SMPX_ENGINE_BUDGET_MB (default 64).
fn main() {
    smpx_bench::runners::run_fig7a();
}
