//! Run every table and figure of the paper's evaluation in sequence.
//!
//! Pass `--json <path>` to additionally append one self-describing JSON
//! object per result row (each record carries the `DocSource` backend
//! that delivered the document). The nightly paper-scale CI job runs this
//! binary at `SMPX_XMARK_MB=512` with `SMPX_SOURCE=mmap` and uploads the
//! JSON artifact.

use smpx_bench::json::{JsonSink, Value};
use smpx_bench::runners;

fn main() {
    // SMPX_METRICS=<path|-> turns on the process-wide registry; the
    // Delivery tables then populate their Stall/Steal columns and the
    // snapshot is dumped on exit.
    let metrics = smpx_core::obs::init_from_env();
    let mut sink = JsonSink::from_args();

    let t1 = runners::run_table1();
    println!();
    let t2 = runners::run_table2();
    println!();
    let t3 = runners::run_table3();
    println!();
    let tp = runners::run_table_protein();
    println!();
    let a = runners::run_fig7a();
    println!();
    let b = runners::run_fig7b();
    println!();
    let c = runners::run_fig7c();

    for (table, rows) in [("table1", &t1), ("table2", &t2), ("table_protein", &tp)] {
        for r in rows {
            sink.push(&[
                ("table", Value::S(table.into())),
                ("id", Value::S(r.id.clone())),
                ("source", Value::S(r.source.clone())),
                ("prefetch", Value::B(r.prefetch)),
                ("threads", Value::U(r.threads as u64)),
                ("shards", Value::U(r.stats.shards)),
                ("queries", Value::U(r.queries as u64)),
                ("input_bytes", Value::U(r.stats.input_bytes)),
                ("proj_bytes", Value::U(r.proj_size)),
                ("mem_bytes", Value::U(r.mem_bytes as u64)),
                ("wall_secs", Value::F(r.timed.wall.as_secs_f64())),
                ("cpu_secs", Value::F(r.timed.cpu.as_secs_f64())),
                ("avg_shift", Value::F(r.stats.avg_shift())),
                ("jump_pct", Value::F(r.stats.initial_jumps_pct())),
                ("char_pct", Value::F(r.stats.char_comp_pct())),
                ("scan_pct", Value::F(r.stats.scanned_pct())),
                ("stall_secs", r.stall_s.map_or(Value::Null, Value::F)),
                ("steals", r.steals.map_or(Value::Null, Value::U)),
            ]);
        }
    }
    for r in &t3 {
        sink.push(&[
            ("table", Value::S("table3".into())),
            ("id", Value::S(r.id.clone())),
            ("source", Value::S(r.source.clone())),
            ("tbp_cpu_secs", Value::F(r.tbp_cpu)),
            ("tbp_bytes", Value::U(r.tbp_size)),
            ("smp_cpu_secs", Value::F(r.smp_cpu)),
            ("smp_bytes", Value::U(r.smp_size)),
            ("speedup", Value::F(r.speedup)),
        ]);
    }
    for p in &a {
        sink.push(&[
            ("table", Value::S("fig7a".into())),
            ("id", Value::S(p.query.clone())),
            ("source", Value::S("slice".into())),
            ("input_bytes", Value::U(p.size as u64)),
            ("engine_alone_secs", p.engine_alone.map_or(Value::Null, Value::F)),
            ("smp_then_engine_secs", p.smp_then_engine.map_or(Value::Null, Value::F)),
            ("prefilter_secs", Value::F(p.prefilter_secs)),
        ]);
    }
    for r in &b {
        sink.push(&[
            ("table", Value::S("fig7b".into())),
            ("id", Value::S(r.id.clone())),
            ("source", Value::S("slice".into())),
            ("alone_secs", Value::F(r.alone_secs)),
            ("alone_mbs", Value::F(r.alone_mbs)),
            ("pipelined_secs", Value::F(r.pipelined_secs)),
            ("pipelined_mbs", Value::F(r.pipelined_mbs)),
            ("agree", Value::B(r.results_agree)),
        ]);
    }
    for bar in &c {
        sink.push(&[
            ("table", Value::S("fig7c".into())),
            ("id", Value::S(bar.label.clone())),
            ("source", Value::S("slice".into())),
            ("mbs", Value::F(bar.mbs)),
        ]);
    }

    if sink.enabled() {
        if let Err(e) = sink.flush() {
            eprintln!("all_experiments: cannot write JSON: {e}");
            std::process::exit(1);
        }
    }
    if let Err(e) = smpx_core::obs::emit(&metrics) {
        eprintln!("all_experiments: cannot write metrics snapshot: {e}");
        std::process::exit(1);
    }
}
