//! Run every table and figure of the paper's evaluation in sequence.
fn main() {
    smpx_bench::runners::run_table1();
    println!();
    smpx_bench::runners::run_table2();
    println!();
    smpx_bench::runners::run_table3();
    println!();
    smpx_bench::runners::run_table_protein();
    println!();
    smpx_bench::runners::run_fig7a();
    println!();
    smpx_bench::runners::run_fig7b();
    println!();
    smpx_bench::runners::run_fig7c();
}
