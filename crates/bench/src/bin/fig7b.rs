//! Regenerate the paper's Fig. 7(b) (streaming engine stand-alone vs
//! pipelined behind SMP). Size override: SMPX_MEDLINE_MB (default 32).
fn main() {
    smpx_bench::runners::run_fig7b();
}
