//! Regenerate the paper's Table I (SMP characteristics on XMark).
//! Size override: SMPX_XMARK_MB (default 32).
fn main() {
    let metrics = smpx_core::obs::init_from_env();
    smpx_bench::runners::run_table1();
    if let Err(e) = smpx_core::obs::emit(&metrics) {
        eprintln!("table1: cannot write metrics snapshot: {e}");
        std::process::exit(1);
    }
}
