//! Regenerate the paper's Table I (SMP characteristics on XMark).
//! Size override: SMPX_XMARK_MB (default 32).
fn main() {
    smpx_bench::runners::run_table1();
}
