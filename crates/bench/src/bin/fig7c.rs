//! Regenerate the paper's Fig. 7(c) (SAX tokenization throughput vs SMP).
//! Size override: SMPX_FIG7C_MB (default 16).
fn main() {
    smpx_bench::runners::run_fig7c();
}
