//! Regenerate the paper's Table III (tokenizing projector vs SMP).
//! Size override: SMPX_XMARK_MB (default 32).
fn main() {
    smpx_bench::runners::run_table3();
}
