//! Table/figure runners.
//!
//! Each `run_*` function regenerates one artifact of the paper's Sec. V
//! and prints rows in the same shape the paper reports. Absolute numbers
//! differ from a 2006 disk-bound laptop; the *relationships* (who wins, by
//! what rough factor, where the crossovers fall) are the reproduction
//! target — see EXPERIMENTS.md.

use crate::measure::{
    env_mb, env_queries, env_threads, fmt_mb, source_chunk, time, SourceMode, TempDocFile, Timed,
};
use crate::queries::{
    medline_paths, xmark_paths, MEDLINE_QUERIES, PAPER_TABLE1, PAPER_TABLE2, TABLE3_QUERIES,
    XMARK_QUERIES,
};
use smpx_baselines::{sax, TokenProjector};
use smpx_core::runtime::source::{
    MmapSource, PrefetchSource, ReaderSource, SliceSource, SourceKind,
};
use smpx_core::{MultiPrefilter, MultiVerdict, Prefilter, RunStats};
use smpx_datagen::{medline, xmark, GenOptions};
use smpx_dtd::Dtd;
use smpx_engine::{InMemEngine, StreamEngine};
use smpx_paths::xpath::XPath;
use smpx_paths::PathSet;

/// One dataset delivered through the `SMPX_SOURCE`-selected `DocSource`
/// backend. For `mmap` and `reader` the generated document is written to
/// a temp file once (removed on drop) and every measured run opens it
/// through the real backend, so the timing includes genuine delivery.
///
/// `SMPX_THREADS` additionally selects the *executor*: at the default of
/// 1 the run takes the classic sequential `filter_source` path; above 1
/// it goes through the work-stealing pool (`smpx_core::runtime::parallel`)
/// as a one-document batch against the frozen automaton. A single
/// document at or above the auto-shard threshold
/// (`smpx_core::DEFAULT_AUTO_SHARD_BYTES`, `SMPX_SHARD_AUTO_MB`
/// overrides) is split *within* the document across the pool
/// (`Prefilter::run_sharded`) — the one-doc batch no longer clamps the
/// pool to width 1, and the `Thr` column plus `threads` JSON field are
/// honest about the width the run could actually use. Below the
/// threshold a one-document batch still occupies one worker, and the
/// `shards` JSON field records `0` so rows stay distinguishable. The
/// observables are pinned byte-identical across executors either way.
pub struct Delivery<'a> {
    doc: &'a [u8],
    mode: SourceMode,
    chunk: usize,
    threads: usize,
    queries: usize,
    file: Option<TempDocFile>,
    /// Peak worker `memory_bytes()` of the last pooled run (`None` after
    /// sequential runs): the pool's workers own the matcher caches, so
    /// the caller's `Prefilter` cannot report them — the `Mem` column
    /// reads this instead to stay executor-honest.
    pooled_mem: std::cell::Cell<Option<usize>>,
}

impl<'a> Delivery<'a> {
    /// Wrap `doc` with the backend `SMPX_SOURCE` selects; `tag` keeps
    /// concurrent temp files apart.
    pub fn from_env(doc: &'a [u8], tag: &str) -> Delivery<'a> {
        let mode = SourceMode::from_env();
        let file = match mode {
            SourceMode::Slice => None,
            SourceMode::Mmap | SourceMode::Reader | SourceMode::Prefetch => {
                Some(TempDocFile::new(tag, doc))
            }
        };
        Delivery {
            doc,
            mode,
            chunk: source_chunk(),
            threads: env_threads(),
            queries: env_queries(),
            file,
            pooled_mem: std::cell::Cell::new(None),
        }
    }

    /// The raw document bytes (for baselines that only take slices).
    pub fn doc(&self) -> &'a [u8] {
        self.doc
    }

    /// Self-describing backend tag for rows and JSON records
    /// (`slice` / `mmap` / `reader/32KiB`).
    pub fn label(&self) -> String {
        match self.mode {
            SourceMode::Slice => SourceKind::Slice.as_str().to_string(),
            SourceMode::Mmap => SourceKind::Mmap.as_str().to_string(),
            SourceMode::Reader => format!("{}/{}KiB", SourceKind::Reader, self.chunk / 1024),
            SourceMode::Prefetch => {
                format!("{}/{}KiB", SourceKind::Prefetch, self.chunk / 1024)
            }
        }
    }

    /// Is this the double-buffered prefetching delivery? Rows carry it as
    /// the `Pf` column / `prefetch` JSON field so sync-vs-overlapped runs
    /// stay distinguishable even when labels get truncated.
    pub fn prefetch(&self) -> bool {
        self.mode == SourceMode::Prefetch
    }

    /// The `SMPX_THREADS`-selected pool width (1 = sequential executor).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Override the executor width (tests and benches that must not
    /// depend on the process environment). `0` resolves like everywhere
    /// else: `Pool::new`'s available-parallelism rule.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = smpx_core::Pool::new(threads).threads();
        self
    }

    /// The `SMPX_QUERIES`-selected multi-query workload width
    /// (1 = classic single-query automaton).
    pub fn queries(&self) -> usize {
        self.queries
    }

    /// Override the workload width (env-free replay of multi-query
    /// table runs, mirroring [`with_threads`](Self::with_threads)).
    /// `0` is clamped to 1 like `SMPX_QUERIES=0`.
    pub fn with_queries(mut self, queries: usize) -> Self {
        self.queries = queries.max(1);
        self
    }

    /// One prefilter run through the selected backend and executor.
    pub fn filter(&self, pf: &mut Prefilter) -> (Vec<u8>, RunStats) {
        let (out, mut stats) = if self.threads > 1 {
            self.filter_pooled(pf)
        } else {
            self.pooled_mem.set(None);
            self.filter_sequential(pf)
        };
        // Streams do not know their length up front; fill it in so the
        // percentage columns stay meaningful.
        if stats.input_bytes == 0 {
            stats.input_bytes = self.doc.len() as u64;
        }
        (out, stats)
    }

    fn filter_sequential(&self, pf: &mut Prefilter) -> (Vec<u8>, RunStats) {
        match self.mode {
            SourceMode::Slice => pf.filter_to_vec(self.doc).expect("filter"),
            SourceMode::Mmap => {
                let path = self.file.as_ref().expect("mmap delivery has a file").path();
                let src = MmapSource::open(path).expect("map bench doc");
                let mut out = Vec::new();
                let stats = pf.filter_source(src, &mut out).expect("filter");
                (out, stats)
            }
            SourceMode::Reader => {
                let path = self.file.as_ref().expect("reader delivery has a file").path();
                let file = std::fs::File::open(path).expect("open bench doc");
                let src = ReaderSource::new(std::io::BufReader::new(file), self.chunk);
                let mut out = Vec::new();
                let stats = pf.filter_source(src, &mut out).expect("filter");
                (out, stats)
            }
            SourceMode::Prefetch => {
                let path = self.file.as_ref().expect("prefetch delivery has a file").path();
                let src = PrefetchSource::open(path, self.chunk).expect("open bench doc");
                let mut out = Vec::new();
                let stats = pf.filter_source(src, &mut out).expect("filter");
                (out, stats)
            }
        }
    }

    /// Peak worker memory of the last [`filter`](Self::filter) call when
    /// it ran pooled (`None` after sequential runs). For a one-document
    /// batch exactly one worker builds matchers, so this equals the
    /// sequential `Prefilter::memory_bytes` for the same document.
    pub fn pooled_memory_bytes(&self) -> Option<usize> {
        self.pooled_mem.get()
    }

    /// The same delivery as a one-document batch on the work-stealing
    /// pool. Per-document output and stats are byte-identical to the
    /// sequential path (the parallel equivalence suite pins this); the
    /// peak worker memory is recorded for the `Mem` column, since the
    /// workers — not the caller's `Prefilter` — own the matcher caches.
    ///
    /// A document at or above the auto-shard threshold routes through the
    /// intra-document shard path instead, mirroring
    /// `run_batch_parallel`'s one-doc heuristic — that run's calibration
    /// and repair segments execute on `pf` itself, so its matcher caches
    /// warm like a sequential run and the `Mem` fallback stays
    /// meaningful.
    fn filter_pooled(&self, pf: &mut Prefilter) -> (Vec<u8>, RunStats) {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let auto_shard = smpx_core::runtime::parallel::auto_shard_threshold()
            .is_some_and(|thr| self.doc.len() as u64 >= thr);
        if auto_shard {
            let src: Box<dyn smpx_core::DocSource + Send> = match self.mode {
                SourceMode::Slice => Box::new(SliceSource::new(self.doc)),
                SourceMode::Mmap => {
                    let path = self.file.as_ref().expect("mmap delivery has a file").path();
                    Box::new(MmapSource::open(path).expect("map bench doc"))
                }
                SourceMode::Reader => {
                    let path = self.file.as_ref().expect("reader delivery has a file").path();
                    let file = std::fs::File::open(path).expect("open bench doc");
                    Box::new(ReaderSource::new(std::io::BufReader::new(file), self.chunk))
                }
                SourceMode::Prefetch => {
                    let path = self.file.as_ref().expect("prefetch delivery has a file").path();
                    Box::new(PrefetchSource::open(path, self.chunk).expect("open bench doc"))
                }
            };
            self.pooled_mem.set(None);
            let (out, stats) =
                pf.run_sharded(src, Vec::new(), self.threads, 0).expect("sharded filter");
            return (out, stats);
        }
        let frozen = pf.freeze();
        let peak_mem = AtomicUsize::new(0);
        let run = |src: Box<dyn smpx_core::DocSource + Send>| {
            smpx_core::Pool::new(self.threads)
                .run(
                    vec![src],
                    |_| frozen.worker(),
                    |wpf, src| -> Result<_, smpx_core::CoreError> {
                        let mut out = Vec::new();
                        let stats = wpf.filter_source(src, &mut out)?;
                        peak_mem.fetch_max(wpf.memory_bytes(), Ordering::Relaxed);
                        Ok((out, stats))
                    },
                )
                .map_err(|(_, e)| e)
        };
        let mut results = match self.mode {
            SourceMode::Slice => run(Box::new(SliceSource::new(self.doc))),
            SourceMode::Mmap => {
                let path = self.file.as_ref().expect("mmap delivery has a file").path();
                run(Box::new(MmapSource::open(path).expect("map bench doc")))
            }
            SourceMode::Reader => {
                let path = self.file.as_ref().expect("reader delivery has a file").path();
                let file = std::fs::File::open(path).expect("open bench doc");
                run(Box::new(ReaderSource::new(std::io::BufReader::new(file), self.chunk)))
            }
            SourceMode::Prefetch => {
                let path = self.file.as_ref().expect("prefetch delivery has a file").path();
                run(Box::new(PrefetchSource::open(path, self.chunk).expect("open bench doc")))
            }
        }
        .expect("pooled filter");
        self.pooled_mem.set(Some(peak_mem.load(Ordering::Relaxed)));
        results.pop().expect("one document in, one result out")
    }

    /// One multi-query registry pass through the selected backend and
    /// executor: union projection, per-query verdict, run statistics.
    /// The benches' one-pass side of the one-pass-vs-N-passes comparison.
    pub fn filter_multi(&self, mpf: &mut MultiPrefilter) -> (Vec<u8>, MultiVerdict, RunStats) {
        self.pooled_mem.set(None);
        let open = || -> Box<dyn smpx_core::DocSource + Send + '_> {
            match self.mode {
                SourceMode::Slice => Box::new(SliceSource::new(self.doc)),
                SourceMode::Mmap => {
                    let path = self.file.as_ref().expect("mmap delivery has a file").path();
                    Box::new(MmapSource::open(path).expect("map bench doc"))
                }
                SourceMode::Reader => {
                    let path = self.file.as_ref().expect("reader delivery has a file").path();
                    let file = std::fs::File::open(path).expect("open bench doc");
                    Box::new(ReaderSource::new(std::io::BufReader::new(file), self.chunk))
                }
                SourceMode::Prefetch => {
                    let path = self.file.as_ref().expect("prefetch delivery has a file").path();
                    Box::new(PrefetchSource::open(path, self.chunk).expect("open bench doc"))
                }
            }
        };
        let (out, verdict, mut stats) = if self.threads > 1 {
            mpf.run_batch_parallel(vec![(open(), Vec::new())], self.threads)
                .expect("pooled multi filter")
                .pop()
                .expect("one document in, one result out")
        } else {
            mpf.run_multi(open(), Vec::new()).expect("multi filter")
        };
        if stats.input_bytes == 0 {
            stats.input_bytes = self.doc.len() as u64;
        }
        (out, verdict, stats)
    }

    /// [`filter_multi`](Self::filter_multi) against a dynamic-lifecycle
    /// handle: one pass on the handle's *current* generation through the
    /// selected backend and executor, verdict in stable external ids.
    /// Callers that just edited the handle should `settle()` first if
    /// they mean to measure the post-edit generation.
    pub fn filter_shared(
        &self,
        shared: &smpx_core::SharedPrefilter,
    ) -> (Vec<u8>, MultiVerdict, RunStats) {
        self.pooled_mem.set(None);
        let open = || -> Box<dyn smpx_core::DocSource + Send + '_> {
            match self.mode {
                SourceMode::Slice => Box::new(SliceSource::new(self.doc)),
                SourceMode::Mmap => {
                    let path = self.file.as_ref().expect("mmap delivery has a file").path();
                    Box::new(MmapSource::open(path).expect("map bench doc"))
                }
                SourceMode::Reader => {
                    let path = self.file.as_ref().expect("reader delivery has a file").path();
                    let file = std::fs::File::open(path).expect("open bench doc");
                    Box::new(ReaderSource::new(std::io::BufReader::new(file), self.chunk))
                }
                SourceMode::Prefetch => {
                    let path = self.file.as_ref().expect("prefetch delivery has a file").path();
                    Box::new(PrefetchSource::open(path, self.chunk).expect("open bench doc"))
                }
            }
        };
        let (out, verdict, mut stats) = if self.threads > 1 {
            shared
                .run_multi_batch_parallel(vec![(open(), Vec::new())], self.threads)
                .expect("pooled shared filter")
                .pop()
                .expect("one document in, one result out")
        } else {
            shared.generation().run_multi(open(), Vec::new()).expect("shared filter")
        };
        if stats.input_bytes == 0 {
            stats.input_bytes = self.doc.len() as u64;
        }
        (out, verdict, stats)
    }
}

/// One Table I/II row.
#[derive(Debug)]
pub struct SmpRow {
    pub id: String,
    pub proj_size: u64,
    pub mem_bytes: usize,
    pub timed: Timed,
    pub states: usize,
    pub cw: usize,
    pub bm: usize,
    pub stats: RunStats,
    /// Which `DocSource` backend produced the row (`Delivery::label`).
    pub source: String,
    /// Which executor produced the row: the `SMPX_THREADS` pool width
    /// (1 = the classic sequential path).
    pub threads: usize,
    /// Multi-query workload width (`SMPX_QUERIES` / `with_queries`): how
    /// many standing queries the row's one pass answered (1 = classic
    /// single-query automaton).
    pub queries: usize,
    /// Whether the delivery was the double-buffered prefetching reader
    /// (`Delivery::prefetch`).
    pub prefetch: bool,
    /// Prefetch stall seconds (producer stall + consumer wait) this row's
    /// run added to the process counters; `None` when observability is
    /// off (`SMPX_METRICS` unset) — the table prints `-`.
    pub stall_s: Option<f64>,
    /// Pool steals this row's run added to the process counters; `None`
    /// when observability is off.
    pub steals: Option<u64>,
}

/// Counter deltas around one timed run, read from the process-wide
/// registry — only when observability is on, so the default bench path
/// stays untouched.
fn obs_marks() -> Option<(u64, u64)> {
    use smpx_core::obs::{self, CounterId};
    obs::enabled().then(|| {
        let g = obs::global();
        (
            g.counter(CounterId::PoolSteals),
            g.counter(CounterId::PrefetchProducerStallNanos)
                + g.counter(CounterId::PrefetchConsumerWaitNanos),
        )
    })
}

/// Run SMP once over a delivered document for `paths`, collecting a
/// table row. A `Delivery` with `queries() > 1` replays the row's path
/// set as an N-query workload on one shared attributed automaton
/// (`Prefilter::compile_multi`) — same pass, same projection, now also
/// answering "which queries match" — so the whole experiment suite can
/// exercise the registry runtime via `SMPX_QUERIES` without new binaries.
pub fn smp_row(id: &str, dtd: &Dtd, paths: &PathSet, doc: &Delivery<'_>) -> SmpRow {
    let queries = doc.queries();
    let mut pf = if queries > 1 {
        let workload = vec![paths.clone(); queries];
        Prefilter::compile_multi(dtd, &workload).expect("compile multi")
    } else {
        Prefilter::compile(dtd, paths).expect("compile")
    };
    let marks = obs_marks();
    let ((out, stats), timed) = time(|| doc.filter(&mut pf));
    let (stall_s, steals) = match (marks, obs_marks()) {
        (Some((s0, n0)), Some((s1, n1))) => {
            (Some(n1.saturating_sub(n0) as f64 / 1e9), Some(s1.saturating_sub(s0)))
        }
        _ => (None, None),
    };
    SmpRow {
        id: id.to_string(),
        proj_size: out.len() as u64,
        // Tables + matchers + the I/O window this delivery actually
        // allocated (zero for zero-copy slice/mmap backends). A pooled
        // run's matcher caches live in its workers, not in `pf` — the
        // delivery reports their peak instead, so `Mem` stays honest
        // under `SMPX_THREADS` too.
        mem_bytes: doc.pooled_memory_bytes().unwrap_or_else(|| pf.memory_bytes())
            + stats.io_window_bytes as usize,
        timed,
        states: pf.tables().state_count(),
        cw: pf.tables().cw_states(),
        bm: pf.tables().bm_states(),
        stats,
        source: doc.label(),
        threads: doc.threads(),
        queries,
        prefetch: doc.prefetch(),
        stall_s,
        steals,
    }
}

fn print_smp_header() {
    println!(
        "{:<6} {:>10} {:>9} {:>9} {:>9} {:>14} {:>8}({:>6}) {:>8}({:>6}) {:>8}({:>6}) {:>7} {:>13} {:>4} {:>4} {:>3} {:>8} {:>5}",
        "query",
        "Proj.Size",
        "Mem",
        "Time[s]",
        "U+S[s]",
        "States(CW+BM)",
        "∅Shift",
        "paper",
        "Jump%",
        "paper",
        "Char%",
        "paper",
        "Scan%",
        "Source",
        "Thr",
        "Qrys",
        "Pf",
        "Stall[s]",
        "Steal",
    );
}

fn print_smp_row(r: &SmpRow, paper: Option<&(&str, f64, f64, f64)>) {
    let (p_shift, p_jump, p_char) =
        paper.map_or((f64::NAN, f64::NAN, f64::NAN), |p| (p.1, p.2, p.3));
    println!(
        "{:<6} {:>10} {:>9} {:>9.3} {:>9.3} {:>7} ({:>2}+{:>3}) {:>8.2}({:>6.2}) {:>8.2}({:>6.2}) {:>8.2}({:>6.2}) {:>7.2} {:>13} {:>4} {:>4} {:>3} {:>8} {:>5}",
        r.id,
        fmt_mb(r.proj_size),
        fmt_mb(r.mem_bytes as u64),
        r.timed.wall.as_secs_f64(),
        r.timed.cpu.as_secs_f64(),
        r.states,
        r.cw,
        r.bm,
        r.stats.avg_shift(),
        p_shift,
        r.stats.initial_jumps_pct(),
        p_jump,
        r.stats.char_comp_pct(),
        p_char,
        r.stats.scanned_pct(),
        r.source,
        r.threads,
        r.queries,
        if r.prefetch { "yes" } else { "no" },
        r.stall_s.map_or_else(|| "-".to_string(), |s| format!("{s:.3}")),
        r.steals.map_or_else(|| "-".to_string(), |n| n.to_string()),
    );
}

/// Table I: SMP characteristics on the XMark-like dataset.
pub fn run_table1() -> Vec<SmpRow> {
    let bytes = env_mb("SMPX_XMARK_MB", 32);
    println!("== Table I: SMP prefiltering, XMark-like document ({}) ==", fmt_mb(bytes as u64));
    println!("   (paper columns in parentheses: 5GB XMark on 2006 hardware)");
    let doc = xmark::generate(GenOptions::sized(bytes));
    let dtd = Dtd::parse(xmark::XMARK_DTD.as_bytes()).expect("XMark DTD");
    let delivery = Delivery::from_env(&doc, "table1");
    println!("   generated {} bytes, delivered via {}", doc.len(), delivery.label());
    print_smp_header();
    let mut rows = Vec::new();
    for q in XMARK_QUERIES {
        let row = smp_row(q.id, &dtd, &xmark_paths(q), &delivery);
        print_smp_row(&row, PAPER_TABLE1.iter().find(|(id, ..)| *id == q.id));
        rows.push(row);
    }
    rows
}

/// Table II: SMP characteristics on the MEDLINE-like dataset.
pub fn run_table2() -> Vec<SmpRow> {
    let bytes = env_mb("SMPX_MEDLINE_MB", 32);
    println!("== Table II: SMP prefiltering, MEDLINE-like document ({}) ==", fmt_mb(bytes as u64));
    println!("   (paper columns in parentheses: 656MB MEDLINE on 2006 hardware)");
    let doc = medline::generate(GenOptions::sized(bytes));
    let dtd = Dtd::parse(medline::MEDLINE_DTD.as_bytes()).expect("MEDLINE DTD");
    let delivery = Delivery::from_env(&doc, "table2");
    println!("   generated {} bytes, delivered via {}", doc.len(), delivery.label());
    print_smp_header();
    let mut rows = Vec::new();
    for q in MEDLINE_QUERIES {
        let row = smp_row(q.id, &dtd, &medline_paths(q), &delivery);
        print_smp_row(&row, PAPER_TABLE2.iter().find(|(id, ..)| *id == q.id));
        rows.push(row);
    }
    rows
}

/// Protein-Sequence characteristics (the paper refers to its technical
/// report \[27\] for these; we regenerate them in Table I format).
pub fn run_table_protein() -> Vec<SmpRow> {
    use smpx_datagen::protein;
    let bytes = env_mb("SMPX_PROTEIN_MB", 32);
    println!(
        "== Protein Sequence dataset (paper's [27]), SMP characteristics ({}) ==",
        fmt_mb(bytes as u64)
    );
    let doc = protein::generate(GenOptions::sized(bytes));
    let dtd = Dtd::parse(protein::PROTEIN_DTD.as_bytes()).expect("Protein DTD");
    let delivery = Delivery::from_env(&doc, "protein");
    println!("   generated {} bytes, delivered via {}", doc.len(), delivery.label());
    print_smp_header();
    let workloads: &[(&str, &[&str])] = &[
        ("P1", &["/*", "/ProteinDatabase/ProteinEntry/protein/name#"]),
        ("P2", &["/*", "//refinfo/authors#"]),
        ("P3", &["/*", "/ProteinDatabase/ProteinEntry/sequence#"]),
        ("P4", &["/*", "//keyword"]),
        (
            "P5",
            &[
                "/*",
                "/ProteinDatabase/ProteinEntry/header/accession#",
                "/ProteinDatabase/ProteinEntry/summary#",
            ],
        ),
    ];
    let mut rows = Vec::new();
    for (id, texts) in workloads {
        let paths = PathSet::parse(texts).expect("curated paths");
        let row = smp_row(id, &dtd, &paths, &delivery);
        print_smp_row(&row, None);
        rows.push(row);
    }
    rows
}

/// One Table III row: tokenizing projector vs SMP.
#[derive(Debug)]
pub struct Table3Row {
    pub id: String,
    pub tbp_cpu: f64,
    pub tbp_size: u64,
    pub smp_cpu: f64,
    pub smp_size: u64,
    pub speedup: f64,
    /// Backend that delivered the SMP run (the tokenizing projector
    /// always reads the in-memory slice).
    pub source: String,
}

/// Table III: the tokenizing schema-aware projector (TBP stand-in) against
/// SMP on the Table III query subset.
pub fn run_table3() -> Vec<Table3Row> {
    let bytes = env_mb("SMPX_XMARK_MB", 32);
    println!(
        "== Table III: tokenizing projector (TBP stand-in) vs SMP, XMark-like ({}) ==",
        fmt_mb(bytes as u64)
    );
    println!("   (paper: OCaml TBP ≥90x slower than C++ SMP; both ours are Rust,");
    println!("    so expect the language-independent share of the gap)");
    let doc = xmark::generate(GenOptions::sized(bytes));
    let dtd = Dtd::parse(xmark::XMARK_DTD.as_bytes()).expect("XMark DTD");
    let delivery = Delivery::from_env(&doc, "table3");
    println!("   SMP delivered via {}", delivery.label());
    println!(
        "{:<6} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "query", "TBP U+S[s]", "TBP size", "SMP U+S[s]", "SMP size", "speedup"
    );
    let mut rows = Vec::new();
    for id in TABLE3_QUERIES {
        let q = XMARK_QUERIES.iter().find(|q| q.id == *id).expect("query");
        let paths = xmark_paths(q);

        let projector = TokenProjector::new(&paths);
        let (tbp_out, tbp_t) = time(|| projector.project(delivery.doc()).expect("project"));

        let mut pf = Prefilter::compile(&dtd, &paths).expect("compile");
        let ((smp_out, _), smp_t) = time(|| delivery.filter(&mut pf));

        let speedup = tbp_t.cpu.as_secs_f64() / smp_t.cpu.as_secs_f64().max(1e-9);
        println!(
            "{:<6} {:>12.3} {:>12} {:>12.3} {:>12} {:>8.1}x",
            id,
            tbp_t.cpu.as_secs_f64(),
            fmt_mb(tbp_out.len() as u64),
            smp_t.cpu.as_secs_f64(),
            fmt_mb(smp_out.len() as u64),
            speedup,
        );
        rows.push(Table3Row {
            id: id.to_string(),
            tbp_cpu: tbp_t.cpu.as_secs_f64(),
            tbp_size: tbp_out.len() as u64,
            smp_cpu: smp_t.cpu.as_secs_f64(),
            smp_size: smp_out.len() as u64,
            speedup,
            source: delivery.label(),
        });
    }
    rows
}

/// One Fig. 7(a) data point.
#[derive(Debug)]
pub struct Fig7aPoint {
    pub query: String,
    pub size: usize,
    /// Engine alone: seconds, or None when the memory budget failed (the
    /// paper's "fails on 1GB/5GB").
    pub engine_alone: Option<f64>,
    /// SMP + engine in sequence: prefilter + load + eval seconds; None if
    /// even the projected document exceeds the budget.
    pub smp_then_engine: Option<f64>,
    pub prefilter_secs: f64,
}

/// Fig. 7(a): in-memory engine with and without prefiltering across
/// document sizes, with a DOM memory budget producing the OOM cliff.
pub fn run_fig7a() -> Vec<Fig7aPoint> {
    let max = env_mb("SMPX_SWEEP_MAX_MB", 64);
    let budget = env_mb("SMPX_ENGINE_BUDGET_MB", 64);
    println!(
        "== Fig. 7(a): in-memory engine (QizX stand-in, {} DOM budget) ==",
        fmt_mb(budget as u64)
    );
    let dtd = Dtd::parse(xmark::XMARK_DTD.as_bytes()).expect("XMark DTD");
    let engine = InMemEngine::with_budget(budget);
    // Representative queries, as in the paper's plot (all queries shown
    // there; we pick a cheap, a mid and the heavy XM14).
    let queries = ["XM13", "XM5", "XM14"];
    println!(
        "{:<6} {:>9} {:>16} {:>18} {:>14}",
        "query", "size", "engine alone[s]", "SMP+engine[s]", "prefilter[s]"
    );
    let mut points = Vec::new();
    let mut size = 1024 * 1024;
    while size <= max {
        let doc = xmark::generate(GenOptions::sized(size));
        for id in queries {
            let q = XMARK_QUERIES.iter().find(|q| q.id == id).expect("query");
            let xq = fig7a_xpath(id);
            // Engine alone: load (budget-checked) + evaluate.
            let (alone_res, alone_t) = time(|| engine.load(&doc).map(|l| l.eval(&xq)));
            let engine_alone = alone_res.ok().map(|_| alone_t.wall.as_secs_f64());

            // SMP then engine.
            let mut pf = Prefilter::compile(&dtd, &xmark_paths(q)).expect("compile");
            let ((projected, _), pf_t) = time(|| pf.filter_to_vec(&doc).expect("filter"));
            let (res, total) = time(|| engine.load(&projected).map(|l| l.eval(&xq)));
            let smp_then_engine =
                res.ok().map(|_| pf_t.wall.as_secs_f64() + total.wall.as_secs_f64());

            println!(
                "{:<6} {:>9} {:>16} {:>18} {:>14.3}",
                id,
                fmt_mb(doc.len() as u64),
                engine_alone.map_or("OOM".into(), |s| format!("{s:.3}")),
                smp_then_engine.map_or("OOM".into(), |s| format!("{s:.3}")),
                pf_t.wall.as_secs_f64(),
            );
            points.push(Fig7aPoint {
                query: id.to_string(),
                size: doc.len(),
                engine_alone,
                smp_then_engine,
                prefilter_secs: pf_t.wall.as_secs_f64(),
            });
        }
        size *= 2;
    }
    points
}

/// The XPath used to *evaluate* a Fig. 7(a) query (the projection paths
/// cover its needs).
fn fig7a_xpath(id: &str) -> XPath {
    let text = match id {
        "XM13" => "/site/regions/australia/item/description",
        "XM5" => "/site/closed_auctions/closed_auction[price >= 40]/price",
        "XM14" => r#"/site//item[contains(description,"gold")]/name"#,
        other => panic!("no XPath for {other}"),
    };
    XPath::parse(text).expect("static query")
}

/// One Fig. 7(b) row.
#[derive(Debug)]
pub struct Fig7bRow {
    pub id: String,
    pub alone_secs: f64,
    pub alone_mbs: f64,
    pub pipelined_secs: f64,
    pub pipelined_mbs: f64,
    pub results_agree: bool,
}

/// Fig. 7(b): streaming engine stand-alone vs pipelined behind SMP.
pub fn run_fig7b() -> Vec<Fig7bRow> {
    let bytes = env_mb("SMPX_MEDLINE_MB", 32);
    println!(
        "== Fig. 7(b): streaming engine (SPEX stand-in), MEDLINE-like ({}) ==",
        fmt_mb(bytes as u64)
    );
    let doc = medline::generate(GenOptions::sized(bytes));
    let dtd = Dtd::parse(medline::MEDLINE_DTD.as_bytes()).expect("MEDLINE DTD");
    println!(
        "{:<4} {:>12} {:>12} {:>14} {:>14} {:>8}",
        "q", "alone[s]", "alone MB/s", "pipelined[s]", "ppl. MB/s", "agree"
    );
    let mut rows = Vec::new();
    for q in MEDLINE_QUERIES {
        let xq = XPath::parse(q.xpath).expect("Table II query");
        let eng = StreamEngine::new(xq);

        let (alone, alone_t) = time(|| eng.eval(&doc).expect("eval"));

        let mut pf = Prefilter::compile(&dtd, &medline_paths(q)).expect("compile");
        let ((projected, _), pf_t) = time(|| pf.filter_to_vec(&doc).expect("filter"));
        let (piped, eval_t) = time(|| eng.eval(&projected).expect("eval"));
        let pipelined_secs = pf_t.wall.as_secs_f64() + eval_t.wall.as_secs_f64();

        let agree = alone.items == piped.items;
        let alone_mbs = alone_t.throughput_mbs(doc.len() as u64);
        let pipelined_mbs = if pipelined_secs > 0.0 {
            doc.len() as f64 / (1024.0 * 1024.0) / pipelined_secs
        } else {
            0.0
        };
        println!(
            "{:<4} {:>12.3} {:>12.1} {:>14.3} {:>14.1} {:>8}",
            q.id,
            alone_t.wall.as_secs_f64(),
            alone_mbs,
            pipelined_secs,
            pipelined_mbs,
            agree,
        );
        rows.push(Fig7bRow {
            id: q.id.to_string(),
            alone_secs: alone_t.wall.as_secs_f64(),
            alone_mbs,
            pipelined_secs,
            pipelined_mbs,
            results_agree: agree,
        });
    }
    rows
}

/// One Fig. 7(c) bar.
#[derive(Debug)]
pub struct Fig7cBar {
    pub label: String,
    pub mbs: f64,
}

/// Fig. 7(c): SAX tokenizing throughput vs average SMP prefiltering
/// throughput, on both datasets.
pub fn run_fig7c() -> Vec<Fig7cBar> {
    let bytes = env_mb("SMPX_FIG7C_MB", 16);
    println!("== Fig. 7(c): SAX tokenization vs SMP throughput ({} each) ==", fmt_mb(bytes as u64));
    let mut bars = Vec::new();
    for (name, doc, dtd_text, queries) in [
        ("XMARK", xmark::generate(GenOptions::sized(bytes)), xmark::XMARK_DTD, None),
        ("MEDLINE", medline::generate(GenOptions::sized(bytes)), medline::MEDLINE_DTD, Some(())),
    ] {
        let dtd = Dtd::parse(dtd_text.as_bytes()).expect("DTD");

        let (n1, strict_t) = time(|| sax::parse_strict(&doc).expect("wf"));
        let (n2, lenient_t) = time(|| sax::parse_lenient(&doc).expect("tokenize"));
        assert!(n1 > 0 && n2.0 > 0);

        // Average SMP throughput over the dataset's full query workload.
        let mut total_secs = 0.0;
        let mut runs = 0u32;
        if queries.is_none() {
            for q in XMARK_QUERIES {
                let mut pf = Prefilter::compile(&dtd, &xmark_paths(q)).expect("compile");
                let (_, t) = time(|| pf.filter_to_vec(&doc).expect("filter"));
                total_secs += t.wall.as_secs_f64();
                runs += 1;
            }
        } else {
            for q in MEDLINE_QUERIES {
                let mut pf = Prefilter::compile(&dtd, &medline_paths(q)).expect("compile");
                let (_, t) = time(|| pf.filter_to_vec(&doc).expect("filter"));
                total_secs += t.wall.as_secs_f64();
                runs += 1;
            }
        }
        let avg_secs = total_secs / runs as f64;
        let mb = doc.len() as f64 / (1024.0 * 1024.0);
        let strict_mbs = strict_t.throughput_mbs(doc.len() as u64);
        let lenient_mbs = lenient_t.throughput_mbs(doc.len() as u64);
        let smp_mbs = mb / avg_secs;
        println!(
            "{name:<8}  SAX strict {strict_mbs:>8.1} MB/s   SAX lenient {lenient_mbs:>8.1} MB/s   avg SMP {smp_mbs:>8.1} MB/s   (SMP/SAX = {:.1}x)",
            smp_mbs / strict_mbs.max(1e-9)
        );
        bars.push(Fig7cBar { label: format!("{name}/sax-strict"), mbs: strict_mbs });
        bars.push(Fig7cBar { label: format!("{name}/sax-lenient"), mbs: lenient_mbs });
        bars.push(Fig7cBar { label: format!("{name}/avg-smp"), mbs: smp_mbs });
    }
    bars
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smoke-test every runner on tiny inputs so the bench binaries cannot
    /// rot. Sizes come from the env overrides.
    #[test]
    fn runners_smoke() {
        std::env::set_var("SMPX_XMARK_MB", "1");
        std::env::set_var("SMPX_MEDLINE_MB", "1");
        std::env::set_var("SMPX_SWEEP_MAX_MB", "1");
        std::env::set_var("SMPX_ENGINE_BUDGET_MB", "16");
        std::env::set_var("SMPX_FIG7C_MB", "1");
        let t1 = run_table1();
        assert_eq!(t1.len(), XMARK_QUERIES.len());
        for row in &t1 {
            assert!(row.stats.char_comp_pct() < 100.0, "{} must skip input", row.id);
        }
        let t2 = run_table2();
        assert_eq!(t2.len(), MEDLINE_QUERIES.len());
        let m1 = &t2[0];
        assert!(
            m1.proj_size < 100,
            "M1 output must be near-empty (absent element), got {}",
            m1.proj_size
        );
        std::env::set_var("SMPX_PROTEIN_MB", "1");
        let tp = run_table_protein();
        assert_eq!(tp.len(), 5);
        let t3 = run_table3();
        assert!(t3.iter().all(|r| r.speedup > 1.0), "SMP must beat the tokenizing projector");
        let a = run_fig7a();
        assert!(!a.is_empty());
        let b = run_fig7b();
        assert!(b.iter().all(|r| r.results_agree), "pipelined results must agree");
        let c = run_fig7c();
        assert_eq!(c.len(), 6);
    }

    /// The pooled executor path behind `SMPX_THREADS` must be observably
    /// identical to the sequential one, per backend. (Set directly via
    /// `with_threads`, not the env var, so this test cannot race the
    /// smoke test's environment.)
    #[test]
    fn pooled_delivery_matches_sequential() {
        use smpx_datagen::{xmark, GenOptions};
        let doc = xmark::generate(GenOptions::sized(256 * 1024));
        let dtd = Dtd::parse(xmark::XMARK_DTD.as_bytes()).expect("DTD");
        let q = XMARK_QUERIES.iter().find(|q| q.id == "XM13").expect("query");
        let paths = xmark_paths(q);
        let seq = Delivery::from_env(&doc, "pooled-eq-seq").with_threads(1);
        let par = Delivery::from_env(&doc, "pooled-eq-par").with_threads(4);
        assert_eq!(par.threads(), 4);
        let mut pf_a = Prefilter::compile(&dtd, &paths).expect("compile");
        let mut pf_b = Prefilter::compile(&dtd, &paths).expect("compile");
        let (out_a, stats_a) = seq.filter(&mut pf_a);
        let (out_b, stats_b) = par.filter(&mut pf_b);
        assert_eq!(out_a, out_b, "pooled output must be byte-identical");
        assert_eq!(stats_a, stats_b, "pooled stats must equal sequential");
        // Mem honesty: the pooled worker built exactly the matchers the
        // sequential run built, and the column must say so.
        assert_eq!(seq.pooled_memory_bytes(), None);
        assert_eq!(
            par.pooled_memory_bytes().expect("pooled run records worker memory"),
            pf_a.memory_bytes(),
            "peak worker memory must equal the sequential prefilter's"
        );
    }

    /// `with_queries(N)` (the env-free `SMPX_QUERIES` override) swaps the
    /// row's automaton for an N-query registry: the union projection must
    /// stay byte-identical, the row must record the workload width, and
    /// `filter_multi` must attribute every duplicate alike — sequential
    /// and pooled.
    #[test]
    fn multi_query_delivery_matches_single() {
        use smpx_datagen::{xmark, GenOptions};
        let doc = xmark::generate(GenOptions::sized(256 * 1024));
        let dtd = Dtd::parse(xmark::XMARK_DTD.as_bytes()).expect("DTD");
        let q = XMARK_QUERIES.iter().find(|q| q.id == "XM13").expect("query");
        let paths = xmark_paths(q);

        let single = Delivery::from_env(&doc, "mq-single").with_threads(1).with_queries(1);
        let multi = Delivery::from_env(&doc, "mq-multi").with_threads(1).with_queries(8);
        let row_s = smp_row("XM13", &dtd, &paths, &single);
        let row_m = smp_row("XM13", &dtd, &paths, &multi);
        assert_eq!((row_s.queries, row_m.queries), (1, 8));
        assert_eq!(row_m.proj_size, row_s.proj_size, "union projection unchanged by registry");

        let mut reg = smpx_core::QueryRegistry::new(dtd.clone());
        for _ in 0..8 {
            reg.add_paths(paths.clone());
        }
        let mut mpf = reg.compile().expect("registry compile");
        let (out, verdict, stats) = multi.filter_multi(&mut mpf);
        assert_eq!(out.len() as u64, row_s.proj_size);
        assert_eq!(verdict.n_queries, 8);
        let expect_all = row_s.stats.match_events > 0;
        assert_eq!(
            verdict.matched_ids().len(),
            if expect_all { 8 } else { 0 },
            "identical queries must share one verdict"
        );
        assert_eq!(stats.input_bytes, doc.len() as u64);

        let pooled = Delivery::from_env(&doc, "mq-pooled").with_threads(4).with_queries(8);
        let (out_p, verdict_p, stats_p) = pooled.filter_multi(&mut mpf);
        assert_eq!(out_p, out, "pooled multi pass must be byte-identical");
        assert_eq!(verdict_p, verdict);
        assert_eq!(stats_p, stats);
    }

    /// `filter_shared` (the dynamic-lifecycle delivery) must match
    /// `filter_multi` against a fresh registry of the same live set —
    /// both before and after add/remove edits, sequential and pooled.
    #[test]
    fn shared_delivery_matches_fresh_registry() {
        use smpx_datagen::{xmark, GenOptions};
        let doc = xmark::generate(GenOptions::sized(256 * 1024));
        let dtd = Dtd::parse(xmark::XMARK_DTD.as_bytes()).expect("DTD");
        let q13 = xmark_paths(XMARK_QUERIES.iter().find(|q| q.id == "XM13").expect("query"));
        let q1 = xmark_paths(XMARK_QUERIES.iter().find(|q| q.id == "XM1").expect("query"));

        let mut reg = smpx_core::QueryRegistry::new(dtd.clone());
        reg.add_paths(q13.clone());
        reg.add_paths(q1.clone());
        let shared = reg.compile_shared().expect("lifecycle compile");
        let mut mpf = reg.compile().expect("registry compile");

        for threads in [1usize, 4] {
            let d = Delivery::from_env(&doc, &format!("shared-eq-{threads}"))
                .with_threads(threads)
                .with_queries(2);
            let (out_s, v_s, stats_s) = d.filter_shared(&shared);
            let (out_m, v_m, stats_m) = d.filter_multi(&mut mpf);
            assert_eq!(out_s, out_m, "threads={threads}: generation 0 output diverged");
            assert_eq!((v_s, stats_s), (v_m, stats_m), "threads={threads}");
        }

        // Edit: drop XM1, add XM13 again. The settled generation must
        // equal a fresh registry of the live set {XM13, XM13'}, with the
        // fresh ids mapped positionally to the surviving external ids.
        shared.remove_query(smpx_core::QueryId(1)).expect("remove q1");
        let added = shared.add_paths(q13.clone()).expect("re-add XM13");
        let generation = shared.settle().expect("settle");
        assert_eq!(added, smpx_core::QueryId(2), "ids are never reused");
        assert_eq!(generation.live_queries(), 2);

        let mut fresh = smpx_core::QueryRegistry::new(dtd);
        fresh.add_paths(q13.clone());
        fresh.add_paths(q13);
        let mut fresh_mpf = fresh.compile().expect("fresh compile");
        let d = Delivery::from_env(&doc, "shared-eq-post").with_threads(1).with_queries(2);
        let (out_s, v_s, stats_s) = d.filter_shared(&shared);
        let (out_f, v_f, stats_f) = d.filter_multi(&mut fresh_mpf);
        assert_eq!(out_s, out_f, "post-edit output must equal a fresh compile");
        assert_eq!(stats_s, stats_f);
        assert_eq!(v_s.n_queries, 3, "verdict spans all allocated ids");
        assert!(!v_s.is_matched(smpx_core::QueryId(1)), "removed id reports unmatched");
        assert_eq!(
            v_s.is_matched(smpx_core::QueryId(0)),
            v_f.is_matched(smpx_core::QueryId(0)),
            "surviving id attribution matches the fresh registry"
        );
        assert_eq!(v_s.is_matched(added), v_f.is_matched(smpx_core::QueryId(1)));
    }
}
