//! The evaluation workloads.
//!
//! * XMark queries XM1–XM14, XM17–XM20: projection path sets extracted in
//!   the style of Marian & Siméon \[5\] from the published XMark queries (the
//!   paper's Table I workload; the full XQuery texts are not expressible in
//!   our XPath subset, so the path sets are curated — see DESIGN.md §5 —
//!   and every set includes the well-formedness default `/*`).
//! * MEDLINE queries M1–M5: the Table II XPath expressions verbatim; their
//!   path sets come from the `smpx_paths::extract` implementation of the
//!   same extraction algorithm.

use smpx_paths::extract::extract_from_text;
use smpx_paths::PathSet;

/// One XMark workload entry: query id and its projection paths.
#[derive(Debug, Clone, Copy)]
pub struct XmarkQuery {
    /// Query id, e.g. "XM1".
    pub id: &'static str,
    /// Projection paths (including `/*`).
    pub paths: &'static [&'static str],
}

/// The Table I workload: XM1–XM14 and XM17–XM20 (XM15/XM16 touch the
/// recursive description lists the paper excludes).
pub const XMARK_QUERIES: &[XmarkQuery] = &[
    XmarkQuery { id: "XM1", paths: &["/*", "/site/people/person", "/site/people/person/name#"] },
    XmarkQuery { id: "XM2", paths: &["/*", "/site/open_auctions/open_auction/bidder/increase#"] },
    XmarkQuery { id: "XM3", paths: &["/*", "/site/open_auctions/open_auction/bidder/increase#"] },
    XmarkQuery {
        id: "XM4",
        paths: &[
            "/*",
            "/site/open_auctions/open_auction/bidder/personref",
            "/site/open_auctions/open_auction/initial#",
        ],
    },
    XmarkQuery { id: "XM5", paths: &["/*", "/site/closed_auctions/closed_auction/price#"] },
    XmarkQuery { id: "XM6", paths: &["/*", "/site/regions//item"] },
    XmarkQuery { id: "XM7", paths: &["/*", "//description", "//annotation", "//emailaddress"] },
    XmarkQuery {
        id: "XM8",
        paths: &[
            "/*",
            "/site/people/person",
            "/site/people/person/name#",
            "/site/closed_auctions/closed_auction/buyer",
        ],
    },
    XmarkQuery {
        id: "XM9",
        paths: &[
            "/*",
            "/site/people/person",
            "/site/people/person/name#",
            "/site/closed_auctions/closed_auction/buyer",
            "/site/closed_auctions/closed_auction/itemref",
            "/site/regions/europe/item",
            "/site/regions/europe/item/name#",
        ],
    },
    XmarkQuery {
        id: "XM10",
        paths: &[
            "/*",
            "/site/people/person/profile/interest",
            "/site/people/person/profile",
            "/site/people/person/name#",
            "/site/people/person/emailaddress#",
            "/site/people/person/homepage#",
            "/site/people/person/creditcard#",
            "/site/people/person/profile/gender#",
            "/site/people/person/profile/age#",
            "/site/people/person/profile/education#",
            "/site/people/person/profile/business#",
            "/site/people/person/address#",
        ],
    },
    XmarkQuery {
        id: "XM11",
        paths: &[
            "/*",
            "/site/people/person/name#",
            "/site/people/person/profile",
            "/site/open_auctions/open_auction/initial#",
        ],
    },
    XmarkQuery {
        id: "XM12",
        paths: &[
            "/*",
            "/site/people/person/name#",
            "/site/people/person/profile",
            "/site/open_auctions/open_auction/initial#",
        ],
    },
    XmarkQuery {
        id: "XM13",
        paths: &[
            "/*",
            "/site/regions/australia/item/name#",
            "/site/regions/australia/item/description#",
        ],
    },
    XmarkQuery { id: "XM14", paths: &["/*", "/site//item/name#", "/site//item/description#"] },
    XmarkQuery {
        id: "XM17",
        paths: &["/*", "/site/people/person/name#", "/site/people/person/homepage#"],
    },
    XmarkQuery { id: "XM18", paths: &["/*", "/site/open_auctions/open_auction/reserve#"] },
    XmarkQuery {
        id: "XM19",
        paths: &["/*", "/site/regions//item/name#", "/site/regions//item/location#"],
    },
    XmarkQuery { id: "XM20", paths: &["/*", "/site/people/person/profile", "/site/people/person"] },
];

/// The Table III subset (queries benchmarked by both SMP and TBP).
pub const TABLE3_QUERIES: &[&str] = &["XM3", "XM6", "XM7", "XM19"];

/// One MEDLINE workload entry.
#[derive(Debug, Clone, Copy)]
pub struct MedlineQuery {
    /// Query id, e.g. "M1".
    pub id: &'static str,
    /// The XPath text (paper Table II, verbatim).
    pub xpath: &'static str,
}

/// The Table II workload.
pub const MEDLINE_QUERIES: &[MedlineQuery] = &[
    MedlineQuery { id: "M1", xpath: "/MedlineCitationSet//CollectionTitle" },
    MedlineQuery {
        id: "M2",
        xpath: r#"/MedlineCitationSet//DataBank[DataBankName/text()="PDB"]/AccessionNumberList"#,
    },
    MedlineQuery {
        id: "M3",
        xpath: r#"/MedlineCitationSet//PersonalNameSubjectList/PersonalNameSubject[LastName/text()="Hippocrates" or DatesAssociatedWithName="Oct2006"]/TitleAssociatedWithName"#,
    },
    MedlineQuery {
        id: "M4",
        xpath: r#"/MedlineCitationSet//CopyrightInformation[contains(text(),"NASA")]"#,
    },
    MedlineQuery {
        id: "M5",
        xpath: r#"/MedlineCitationSet/MedlineCitation[contains(MedlineJournalInfo//text(),"Sterilization")]/DateCompleted"#,
    },
];

/// Path set of an XMark query.
pub fn xmark_paths(q: &XmarkQuery) -> PathSet {
    PathSet::parse(q.paths).expect("curated paths parse")
}

/// Path set of a MEDLINE query (via the extraction algorithm).
pub fn medline_paths(q: &MedlineQuery) -> PathSet {
    extract_from_text(q.xpath).expect("Table II queries parse")
}

/// Paper reference values for Table I (5 GB XMark): (id, ∅ shift size,
/// initial-jump %, char-comparison %). Used to print side-by-side
/// comparisons; absolute times are machine-bound and not compared.
pub const PAPER_TABLE1: &[(&str, f64, f64, f64)] = &[
    ("XM1", 5.72, 0.32, 18.86),
    ("XM2", 7.62, 1.42, 15.8),
    ("XM3", 7.62, 1.42, 15.8),
    ("XM4", 7.65, 1.37, 16.37),
    ("XM5", 10.83, 0.43, 9.87),
    ("XM6", 5.17, 1.98, 19.91),
    ("XM7", 6.55, 2.61, 18.40),
    ("XM8", 7.42, 0.75, 15.10),
    ("XM9", 7.50, 1.18, 15.29),
    ("XM10", 5.68, 0.16, 22.38),
    ("XM11", 6.58, 1.85, 17.15),
    ("XM12", 6.60, 2.00, 16.81),
    ("XM13", 6.06, 0.13, 17.17),
    ("XM14", 5.16, 1.35, 21.24),
    ("XM17", 5.72, 0.32, 18.99),
    ("XM18", 8.29, 0.80, 12.95),
    ("XM19", 5.17, 1.64, 20.57),
    ("XM20", 5.75, 0.59, 18.67),
];

/// Paper reference values for Table II (656 MB MEDLINE): (id, ∅ shift,
/// initial-jump %, char-comparison %).
pub const PAPER_TABLE2: &[(&str, f64, f64, f64)] = &[
    ("M1", 12.24, 0.00, 8.37),
    ("M2", 6.86, 0.00, 14.63),
    ("M3", 12.49, 0.00, 8.4),
    ("M4", 12.69, 0.01, 8.52),
    ("M5", 13.43, 7.61, 9.81),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_xmark_path_sets_parse() {
        for q in XMARK_QUERIES {
            let ps = xmark_paths(q);
            assert!(!ps.is_empty(), "{}", q.id);
            assert!(q.paths.contains(&"/*"), "{} must keep the root", q.id);
        }
    }

    #[test]
    fn xm2_and_xm3_identical_as_in_the_paper() {
        let a = xmark_paths(&XMARK_QUERIES[1]);
        let b = xmark_paths(&XMARK_QUERIES[2]);
        assert_eq!(a, b);
    }

    #[test]
    fn all_medline_queries_parse_and_extract() {
        for q in MEDLINE_QUERIES {
            let ps = medline_paths(q);
            assert!(ps.paths().len() >= 2, "{} needs /* plus a query path", q.id);
        }
    }

    #[test]
    fn paper_reference_tables_cover_all_queries() {
        for q in XMARK_QUERIES {
            assert!(PAPER_TABLE1.iter().any(|(id, ..)| *id == q.id), "{}", q.id);
        }
        for q in MEDLINE_QUERIES {
            assert!(PAPER_TABLE2.iter().any(|(id, ..)| *id == q.id), "{}", q.id);
        }
    }

    #[test]
    fn table3_queries_exist() {
        for id in TABLE3_QUERIES {
            assert!(XMARK_QUERIES.iter().any(|q| q.id == *id));
        }
    }
}
