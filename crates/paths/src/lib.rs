//! Projection paths and relevance semantics for XML prefiltering.
//!
//! Implements Sec. III of the paper:
//!
//! * [`ProjectionPath`] — a *simple path* of downward steps (`/` child,
//!   `//` descendant) with an optional `#` flag meaning "descendants of the
//!   selected nodes are needed too" (\[5\]'s projection paths),
//! * [`PathSet`] — a set of projection paths with its prefix closure `P+`
//!   (Def. 3),
//! * [`Relevance`] — the token/branch relevance conditions **C1**, **C2**,
//!   **C3** of Def. 3, evaluated over *document branches* (label chains from
//!   the root),
//! * [`xpath`] — an XPath-subset AST and parser covering the paper's
//!   Table II queries (predicates, `contains`, `text()`, `and`/`or`),
//! * [`extract`] — projection-path extraction from XPath expressions in the
//!   style of Marian & Siméon \[5\] (paper Ex. 4).
//!
//! # Example
//!
//! ```
//! use smpx_paths::{PathSet, Relevance};
//!
//! // The paper's Example 6: <x>{/a/b,//b}</x>.
//! let p = PathSet::parse(&["/*", "/a/b#", "//b#"]).unwrap();
//! let rel = Relevance::new(&p);
//! // c-tags in <a><c><b>T</b></c></a> are kept by condition C3.
//! assert!(rel.relevant_tag(&["a", "c"]));
//! assert!(rel.relevant_tag(&["a", "c", "b"]));   // C1 via //b#
//! assert!(rel.relevant_text(&["a", "c", "b"]));  // C2: inside //b#
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod extract;
mod model;
mod relevance;
pub mod xpath;

pub use model::{Axis, NameTest, ParsePathError, PathSet, ProjectionPath, Step};
pub use relevance::Relevance;
