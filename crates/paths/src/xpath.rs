//! A small XPath AST and parser.
//!
//! Covers exactly what the paper's evaluation needs: the Table II MEDLINE
//! queries (M1–M5) and XMark-style downward queries — absolute paths with
//! `/` and `//` steps, name tests, `*`, `text()`, attribute tests `@name`,
//! and predicates built from relative paths, string/number literals,
//! comparisons, `and`/`or`, `contains(…)`, `not(…)`, `count(…)`,
//! `empty(…)`.
//!
//! The same AST is consumed by two very different clients:
//! * [`crate::extract`] — static projection-path extraction (\[5\]-style),
//! * the query engines in `smpx-engine` — actual evaluation, used to verify
//!   projection-safety (Def. 2) in the integration tests.

use crate::model::Axis;
use std::fmt;

/// Node test of an XPath step.
#[derive(Debug, Clone, PartialEq)]
pub enum XNodeTest {
    /// Element name test.
    Name(String),
    /// `*`.
    Wildcard,
    /// `text()`.
    Text,
    /// `@name` — attribute test.
    Attr(String),
}

/// One step: axis, node test, predicates.
#[derive(Debug, Clone, PartialEq)]
pub struct XStep {
    /// `/` (child) or `//` (descendant-or-self shorthand).
    pub axis: Axis,
    /// The node test.
    pub test: XNodeTest,
    /// Zero or more `[…]` predicates.
    pub predicates: Vec<XExpr>,
}

/// An absolute location path.
#[derive(Debug, Clone, PartialEq)]
pub struct XPath {
    /// The steps, outermost first.
    pub steps: Vec<XStep>,
}

/// A relative location path (inside predicates / function arguments).
#[derive(Debug, Clone, PartialEq)]
pub struct XRelPath {
    /// The steps relative to the context node.
    pub steps: Vec<XStep>,
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Predicate expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum XExpr {
    /// A relative path (existence test / string value source).
    Path(XRelPath),
    /// String literal.
    Literal(String),
    /// Numeric literal.
    Number(f64),
    /// Binary comparison.
    Cmp(Box<XExpr>, CmpOp, Box<XExpr>),
    /// Conjunction.
    And(Box<XExpr>, Box<XExpr>),
    /// Disjunction.
    Or(Box<XExpr>, Box<XExpr>),
    /// `contains(haystack, needle)`.
    Contains(Box<XExpr>, Box<XExpr>),
    /// `not(expr)`.
    Not(Box<XExpr>),
    /// `count(path)`.
    Count(XRelPath),
    /// `empty(path)`.
    Empty(XRelPath),
    /// `last()` — positional: the context node is its parent's last match.
    Last,
}

/// Parse error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XPathError {
    /// Description.
    pub msg: String,
    /// Byte offset into the query text.
    pub pos: usize,
}

impl fmt::Display for XPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XPath error at {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for XPathError {}

impl XPath {
    /// Parse an absolute XPath expression.
    pub fn parse(text: &str) -> Result<XPath, XPathError> {
        let mut p = P { s: text.as_bytes(), i: 0 };
        p.ws();
        if !p.peek_is(b'/') {
            return Err(p.err("absolute path must start with '/'"));
        }
        let steps = p.steps()?;
        p.ws();
        if !p.done() {
            return Err(p.err("trailing input"));
        }
        Ok(XPath { steps })
    }
}

struct P<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> P<'a> {
    fn err(&self, msg: &str) -> XPathError {
        XPathError { msg: msg.to_string(), pos: self.i }
    }

    fn done(&self) -> bool {
        self.i >= self.s.len()
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn peek_is(&self, b: u8) -> bool {
        self.peek() == Some(b)
    }

    fn ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, lit: &str) -> bool {
        if self.s[self.i.min(self.s.len())..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            true
        } else {
            false
        }
    }

    /// Keyword: like eat, but must not be followed by a name character.
    fn eat_kw(&mut self, kw: &str) -> bool {
        let save = self.i;
        if self.eat(kw) {
            match self.peek() {
                Some(c) if is_ident(c) => {
                    self.i = save;
                    false
                }
                _ => true,
            }
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, XPathError> {
        let start = self.i;
        while let Some(c) = self.peek() {
            if is_ident(c) {
                self.i += 1;
            } else {
                break;
            }
        }
        if self.i == start {
            return Err(self.err("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.s[start..self.i]).into_owned())
    }

    /// Steps of a path; the cursor sits on the first '/' (absolute) or on
    /// the first name (relative).
    fn steps(&mut self) -> Result<Vec<XStep>, XPathError> {
        let mut steps = Vec::new();
        loop {
            let axis = if self.eat("//") {
                Axis::Descendant
            } else if self.eat("/") {
                Axis::Child
            } else if steps.is_empty() {
                // Relative path: first step has an implicit child axis.
                Axis::Child
            } else {
                break;
            };
            let test = self.node_test()?;
            let mut predicates = Vec::new();
            loop {
                self.ws();
                if self.eat("[") {
                    let e = self.or_expr()?;
                    self.ws();
                    if !self.eat("]") {
                        return Err(self.err("expected ']'"));
                    }
                    predicates.push(e);
                } else {
                    break;
                }
            }
            steps.push(XStep { axis, test, predicates });
            if !self.peek_is(b'/') {
                break;
            }
        }
        if steps.is_empty() {
            return Err(self.err("empty path"));
        }
        Ok(steps)
    }

    fn node_test(&mut self) -> Result<XNodeTest, XPathError> {
        self.ws();
        if self.eat("*") {
            return Ok(XNodeTest::Wildcard);
        }
        if self.eat("@") {
            return Ok(XNodeTest::Attr(self.ident()?));
        }
        if self.eat("text()") {
            return Ok(XNodeTest::Text);
        }
        Ok(XNodeTest::Name(self.ident()?))
    }

    fn or_expr(&mut self) -> Result<XExpr, XPathError> {
        let mut left = self.and_expr()?;
        loop {
            self.ws();
            if self.eat_kw("or") {
                let right = self.and_expr()?;
                left = XExpr::Or(Box::new(left), Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    fn and_expr(&mut self) -> Result<XExpr, XPathError> {
        let mut left = self.cmp_expr()?;
        loop {
            self.ws();
            if self.eat_kw("and") {
                let right = self.cmp_expr()?;
                left = XExpr::And(Box::new(left), Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    fn cmp_expr(&mut self) -> Result<XExpr, XPathError> {
        let left = self.value()?;
        self.ws();
        let op = if self.eat("!=") {
            Some(CmpOp::Ne)
        } else if self.eat("<=") {
            Some(CmpOp::Le)
        } else if self.eat(">=") {
            Some(CmpOp::Ge)
        } else if self.eat("=") {
            Some(CmpOp::Eq)
        } else if self.eat("<") {
            Some(CmpOp::Lt)
        } else if self.eat(">") {
            Some(CmpOp::Gt)
        } else {
            None
        };
        match op {
            None => Ok(left),
            Some(op) => {
                let right = self.value()?;
                Ok(XExpr::Cmp(Box::new(left), op, Box::new(right)))
            }
        }
    }

    fn value(&mut self) -> Result<XExpr, XPathError> {
        self.ws();
        match self.peek() {
            Some(b'"') | Some(b'\'') => {
                let q = self.peek().unwrap();
                self.i += 1;
                let start = self.i;
                while let Some(c) = self.peek() {
                    if c == q {
                        let lit = String::from_utf8_lossy(&self.s[start..self.i]).into_owned();
                        self.i += 1;
                        return Ok(XExpr::Literal(lit));
                    }
                    self.i += 1;
                }
                Err(self.err("unterminated string literal"))
            }
            Some(c) if c.is_ascii_digit() => {
                let start = self.i;
                while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == b'.') {
                    self.i += 1;
                }
                let text = std::str::from_utf8(&self.s[start..self.i]).unwrap();
                let n: f64 = text.parse().map_err(|_| self.err("bad number literal"))?;
                Ok(XExpr::Number(n))
            }
            Some(b'(') => {
                self.i += 1;
                let e = self.or_expr()?;
                self.ws();
                if !self.eat(")") {
                    return Err(self.err("expected ')'"));
                }
                Ok(e)
            }
            _ => {
                // Function call or relative path.
                let save = self.i;
                if self.eat("contains(") {
                    let a = self.or_expr()?;
                    self.ws();
                    if !self.eat(",") {
                        return Err(self.err("contains() needs two arguments"));
                    }
                    let b = self.or_expr()?;
                    self.ws();
                    if !self.eat(")") {
                        return Err(self.err("expected ')'"));
                    }
                    return Ok(XExpr::Contains(Box::new(a), Box::new(b)));
                }
                if self.eat("last()") {
                    return Ok(XExpr::Last);
                }
                if self.eat("not(") {
                    let e = self.or_expr()?;
                    self.ws();
                    if !self.eat(")") {
                        return Err(self.err("expected ')'"));
                    }
                    return Ok(XExpr::Not(Box::new(e)));
                }
                if self.eat("count(") {
                    let p = XRelPath { steps: self.steps()? };
                    self.ws();
                    if !self.eat(")") {
                        return Err(self.err("expected ')'"));
                    }
                    return Ok(XExpr::Count(p));
                }
                if self.eat("empty(") {
                    let p = XRelPath { steps: self.steps()? };
                    self.ws();
                    if !self.eat(")") {
                        return Err(self.err("expected ')'"));
                    }
                    return Ok(XExpr::Empty(p));
                }
                self.i = save;
                Ok(XExpr::Path(XRelPath { steps: self.steps()? }))
            }
        }
    }
}

fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_absolute_path() {
        let x = XPath::parse("/MedlineCitationSet//CollectionTitle").unwrap();
        assert_eq!(x.steps.len(), 2);
        assert_eq!(x.steps[0].axis, Axis::Child);
        assert_eq!(x.steps[0].test, XNodeTest::Name("MedlineCitationSet".into()));
        assert_eq!(x.steps[1].axis, Axis::Descendant);
    }

    #[test]
    fn m2_predicate_with_text_compare() {
        let x = XPath::parse(
            r#"/MedlineCitationSet//DataBank[DataBankName/text()="PDB"]/AccessionNumberList"#,
        )
        .unwrap();
        assert_eq!(x.steps.len(), 3);
        let pred = &x.steps[1].predicates[0];
        match pred {
            XExpr::Cmp(lhs, CmpOp::Eq, rhs) => {
                match &**lhs {
                    XExpr::Path(p) => {
                        assert_eq!(p.steps.len(), 2);
                        assert_eq!(p.steps[1].test, XNodeTest::Text);
                    }
                    other => panic!("{other:?}"),
                }
                assert_eq!(**rhs, XExpr::Literal("PDB".into()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn m3_or_predicate() {
        let x = XPath::parse(
            r#"/MedlineCitationSet//PersonalNameSubjectList/PersonalNameSubject[LastName/text()="Hippocrates" or DatesAssociatedWithName="Oct2006"]/TitleAssociatedWithName"#,
        )
        .unwrap();
        assert_eq!(x.steps.len(), 4);
        assert!(matches!(x.steps[2].predicates[0], XExpr::Or(_, _)));
    }

    #[test]
    fn m4_contains_on_text() {
        let x =
            XPath::parse(r#"/MedlineCitationSet//CopyrightInformation[contains(text(),"NASA")]"#)
                .unwrap();
        match &x.steps[1].predicates[0] {
            XExpr::Contains(a, b) => {
                match &**a {
                    XExpr::Path(p) => assert_eq!(p.steps[0].test, XNodeTest::Text),
                    other => panic!("{other:?}"),
                }
                assert_eq!(**b, XExpr::Literal("NASA".into()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn m5_descendant_text_in_contains() {
        let x = XPath::parse(
            r#"/MedlineCitationSet/MedlineCitation[contains(MedlineJournalInfo//text(),"Sterilization")]/DateCompleted"#,
        )
        .unwrap();
        match &x.steps[1].predicates[0] {
            XExpr::Contains(a, _) => match &**a {
                XExpr::Path(p) => {
                    assert_eq!(p.steps.len(), 2);
                    assert_eq!(p.steps[1].axis, Axis::Descendant);
                    assert_eq!(p.steps[1].test, XNodeTest::Text);
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn attribute_predicate() {
        let x = XPath::parse(r#"/site/people/person[@id="person0"]/name"#).unwrap();
        match &x.steps[2].predicates[0] {
            XExpr::Cmp(a, CmpOp::Eq, _) => match &**a {
                XExpr::Path(p) => assert_eq!(p.steps[0].test, XNodeTest::Attr("id".into())),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn numeric_comparison_and_functions() {
        let x = XPath::parse(r#"/a/b[price >= 40]"#).unwrap();
        assert!(matches!(x.steps[1].predicates[0], XExpr::Cmp(_, CmpOp::Ge, _)));
        let x = XPath::parse(r#"/a[count(b) > 2 and not(empty(c))]"#).unwrap();
        assert!(matches!(x.steps[0].predicates[0], XExpr::And(_, _)));
    }

    #[test]
    fn keywords_not_confused_with_names() {
        // Element named "order" must not trigger the "or" keyword.
        let x = XPath::parse("/a[order/text()=\"x\"]").unwrap();
        match &x.steps[0].predicates[0] {
            XExpr::Cmp(a, _, _) => match &**a {
                XExpr::Path(p) => {
                    assert_eq!(p.steps[0].test, XNodeTest::Name("order".into()))
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wildcard_and_multiple_predicates() {
        let x = XPath::parse(r#"/*/b[c][d]"#).unwrap();
        assert_eq!(x.steps[0].test, XNodeTest::Wildcard);
        assert_eq!(x.steps[1].predicates.len(), 2);
    }

    #[test]
    fn errors() {
        assert!(XPath::parse("a/b").is_err());
        assert!(XPath::parse("/a[").is_err());
        assert!(XPath::parse("/a[b=\"x]").is_err());
        assert!(XPath::parse("/a trailing").is_err());
        assert!(XPath::parse("/").is_err());
        assert!(XPath::parse("/a[contains(b)]").is_err());
    }
}
