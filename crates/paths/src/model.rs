//! Projection path model and text syntax.

use std::fmt;

/// Downward navigation axis of a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Axis {
    /// `/name` — direct child.
    Child,
    /// `//name` — descendant (any positive number of levels down).
    Descendant,
}

/// Name test of a step.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NameTest {
    /// A concrete element name.
    Name(String),
    /// `*` — any element.
    Wildcard,
}

impl NameTest {
    /// Does this test accept `label`?
    pub fn accepts(&self, label: &str) -> bool {
        match self {
            NameTest::Name(n) => n == label,
            NameTest::Wildcard => true,
        }
    }
}

/// One step of a projection path.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Step {
    /// Navigation axis.
    pub axis: Axis,
    /// Name test.
    pub test: NameTest,
}

/// A projection path: `/step/step…` optionally flagged with `#`
/// ("descendants of the selected nodes are required", Sec. III).
///
/// The empty path (no steps) is written `/` and matches the virtual
/// document root, i.e. the empty branch.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProjectionPath {
    /// Steps from the root.
    pub steps: Vec<Step>,
    /// The `#` flag.
    pub subtree: bool,
}

/// Error parsing projection path text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePathError {
    /// Description of the problem.
    pub msg: String,
}

impl fmt::Display for ParsePathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid projection path: {}", self.msg)
    }
}

impl std::error::Error for ParsePathError {}

impl ProjectionPath {
    /// Parse path text such as `/site/regions//item#`, `//b`, `/*`, `/`.
    pub fn parse(text: &str) -> Result<ProjectionPath, ParsePathError> {
        let text = text.trim();
        let (body, subtree) = match text.strip_suffix('#') {
            Some(b) => (b, true),
            None => (text, false),
        };
        if body == "/" || body.is_empty() {
            return Ok(ProjectionPath { steps: Vec::new(), subtree });
        }
        if !body.starts_with('/') {
            return Err(ParsePathError { msg: format!("path must start with '/': {text:?}") });
        }
        let mut steps = Vec::new();
        let mut rest = body;
        while !rest.is_empty() {
            let axis = if let Some(r) = rest.strip_prefix("//") {
                rest = r;
                Axis::Descendant
            } else if let Some(r) = rest.strip_prefix('/') {
                rest = r;
                Axis::Child
            } else {
                return Err(ParsePathError { msg: format!("expected '/' in {text:?}") });
            };
            let end = rest.find('/').unwrap_or(rest.len());
            let name = &rest[..end];
            if name.is_empty() {
                return Err(ParsePathError { msg: format!("empty step in {text:?}") });
            }
            let test = if name == "*" {
                NameTest::Wildcard
            } else {
                if !name.chars().all(|c| c.is_alphanumeric() || "_-.:".contains(c)) {
                    return Err(ParsePathError { msg: format!("bad name {name:?} in {text:?}") });
                }
                NameTest::Name(name.to_string())
            };
            steps.push(Step { axis, test });
            rest = &rest[end..];
        }
        Ok(ProjectionPath { steps, subtree })
    }

    /// Does this path select the node whose document branch (chain of
    /// element names from the root, the node's own label last) is `branch`?
    ///
    /// The empty path selects only the empty branch (the virtual root).
    pub fn matches<S: AsRef<str>>(&self, branch: &[S]) -> bool {
        // NFA over step indices: state i = "steps[..i] already matched".
        let n = self.steps.len();
        let mut states = vec![false; n + 1];
        states[0] = true;
        for (li, label) in branch.iter().enumerate() {
            let label = label.as_ref();
            let mut next = vec![false; n + 1];
            for i in 0..=n {
                if !states[i] {
                    continue;
                }
                if i < n {
                    let step = &self.steps[i];
                    if step.test.accepts(label) {
                        next[i + 1] = true;
                    }
                    if step.axis == Axis::Descendant {
                        // The descendant axis may skip this label.
                        next[i] = true;
                    }
                }
            }
            states = next;
            // Nothing alive: fail early.
            if states.iter().all(|&s| !s) {
                return false;
            }
            let _ = li;
        }
        states[n]
    }

    /// The last step, or `None` for the empty path.
    pub fn last_step(&self) -> Option<&Step> {
        self.steps.last()
    }

    /// All proper prefixes of this path (including the empty path), without
    /// the `#` flag — the ingredients of the `P+` closure.
    pub fn prefixes(&self) -> impl Iterator<Item = ProjectionPath> + '_ {
        (0..self.steps.len())
            .map(move |i| ProjectionPath { steps: self.steps[..i].to_vec(), subtree: false })
    }
}

impl fmt::Display for ProjectionPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.steps.is_empty() {
            write!(f, "/")?;
        }
        for s in &self.steps {
            match s.axis {
                Axis::Child => write!(f, "/")?,
                Axis::Descendant => write!(f, "//")?,
            }
            match &s.test {
                NameTest::Name(n) => write!(f, "{n}")?,
                NameTest::Wildcard => write!(f, "*")?,
            }
        }
        if self.subtree {
            write!(f, "#")?;
        }
        Ok(())
    }
}

/// A set of projection paths `P`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathSet {
    paths: Vec<ProjectionPath>,
}

impl PathSet {
    /// Build from parsed paths, deduplicating.
    pub fn new(paths: Vec<ProjectionPath>) -> PathSet {
        let mut ps = PathSet { paths: Vec::new() };
        for p in paths {
            ps.insert(p);
        }
        ps
    }

    /// Parse a set of path strings.
    pub fn parse<S: AsRef<str>>(texts: &[S]) -> Result<PathSet, ParsePathError> {
        let mut paths = Vec::with_capacity(texts.len());
        for t in texts {
            paths.push(ProjectionPath::parse(t.as_ref())?);
        }
        Ok(PathSet::new(paths))
    }

    /// Add one path if not already present.
    pub fn insert(&mut self, p: ProjectionPath) {
        if !self.paths.contains(&p) {
            self.paths.push(p);
        }
    }

    /// The paths in insertion order.
    pub fn paths(&self) -> &[ProjectionPath] {
        &self.paths
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Union with another path set — a single prefilter can then serve a
    /// *workload* of queries at once (the publish/subscribe scenario the
    /// paper's introduction motivates via XFilter/YFilter): projecting for
    /// `P ∪ Q` preserves everything either query needs.
    pub fn union(&self, other: &PathSet) -> PathSet {
        let mut out = self.clone();
        for p in other.paths() {
            out.insert(p.clone());
        }
        out
    }

    /// The prefix closure `P+` of Def. 3: `P` itself plus every proper
    /// prefix of every path (unflagged), deduplicated.
    pub fn plus_closure(&self) -> Vec<ProjectionPath> {
        let mut out: Vec<ProjectionPath> = Vec::new();
        for p in &self.paths {
            for pre in p.prefixes() {
                if !out.contains(&pre) {
                    out.push(pre);
                }
            }
            if !out.contains(p) {
                out.push(p.clone());
            }
        }
        out
    }
}

impl fmt::Display for PathSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for p in &self.paths {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(text: &str) -> ProjectionPath {
        ProjectionPath::parse(text).unwrap()
    }

    #[test]
    fn parse_and_display_round_trip() {
        for text in [
            "/",
            "/*",
            "/a",
            "//a",
            "/a/b",
            "/a//b",
            "//a//b#",
            "/site/regions/australia/item/name#",
            "/a/*/b",
        ] {
            assert_eq!(p(text).to_string(), text, "round-trip of {text}");
        }
    }

    #[test]
    fn parse_hash_flag() {
        assert!(p("/a#").subtree);
        assert!(!p("/a").subtree);
        assert!(p("/#").subtree);
        assert!(p("/#").steps.is_empty());
    }

    #[test]
    fn parse_errors() {
        assert!(ProjectionPath::parse("a/b").is_err());
        assert!(ProjectionPath::parse("/a/<x>").is_err());
    }

    #[test]
    fn empty_path_matches_only_empty_branch() {
        assert!(p("/").matches::<&str>(&[]));
        assert!(!p("/").matches(&["a"]));
    }

    #[test]
    fn child_steps() {
        assert!(p("/a/b").matches(&["a", "b"]));
        assert!(!p("/a/b").matches(&["a"]));
        assert!(!p("/a/b").matches(&["a", "c", "b"]));
        assert!(!p("/a/b").matches(&["b"]));
        assert!(!p("/a/b").matches(&["a", "b", "c"]));
    }

    #[test]
    fn descendant_steps() {
        assert!(p("//b").matches(&["b"]));
        assert!(p("//b").matches(&["a", "b"]));
        assert!(p("//b").matches(&["a", "c", "b"]));
        assert!(!p("//b").matches(&["a", "b", "c"]));
        assert!(p("/a//b").matches(&["a", "x", "y", "b"]));
        assert!(!p("/a//b").matches(&["x", "a", "b"]));
        assert!(p("//a//b").matches(&["x", "a", "y", "b"]));
    }

    #[test]
    fn wildcard_steps() {
        assert!(p("/*").matches(&["anything"]));
        assert!(!p("/*").matches(&["a", "b"]));
        assert!(p("/a/*/b").matches(&["a", "x", "b"]));
        assert!(!p("/a/*/b").matches(&["a", "b"]));
    }

    #[test]
    fn descendant_self_overlap() {
        // //b//b needs two distinct b's on the branch.
        assert!(!p("//b//b").matches(&["b"]));
        assert!(p("//b//b").matches(&["b", "b"]));
        assert!(p("//b//b").matches(&["b", "x", "b"]));
    }

    #[test]
    fn prefixes_of_example6() {
        // P = {/a/b}: prefixes are "/" and "/a".
        let pre: Vec<String> = p("/a/b#").prefixes().map(|q| q.to_string()).collect();
        assert_eq!(pre, vec!["/".to_string(), "/a".to_string()]);
    }

    #[test]
    fn plus_closure_matches_example6() {
        // P = {/*, /a/b#, //b#}  =>  P+ = {/, /*, /a, /a/b#, //b#}.
        let ps = PathSet::parse(&["/*", "/a/b#", "//b#"]).unwrap();
        let mut got: Vec<String> = ps.plus_closure().iter().map(|q| q.to_string()).collect();
        got.sort();
        assert_eq!(got, vec!["/", "/*", "//b#", "/a", "/a/b#"]);
    }

    #[test]
    fn pathset_dedups() {
        let ps = PathSet::parse(&["/a", "/a", "/b"]).unwrap();
        assert_eq!(ps.paths().len(), 2);
    }

    #[test]
    fn display_set() {
        let ps = PathSet::parse(&["/a", "/b#"]).unwrap();
        assert_eq!(ps.to_string(), "/a, /b#");
    }
}
