//! Projection-path extraction from XPath expressions (paper Ex. 4).
//!
//! Follows Marian & Siméon \[5\], as the paper prescribes: the expression's
//! main path yields a `#`-flagged projection path (the selected nodes are
//! returned, so their subtrees must survive projection); every relative
//! path inside a predicate yields a projection path anchored at the
//! predicate's context, flagged `#` when the predicate inspects character
//! data (`text()`, string comparison, `contains`) and unflagged when mere
//! existence or node counting suffices; `/*` is always added so the
//! projected document stays well-formed (the paper's default path).

use crate::model::{Axis, NameTest, PathSet, ProjectionPath, Step};
use crate::xpath::{XExpr, XNodeTest, XPath, XRelPath, XStep};

/// Extract the projection paths of `query`.
pub fn extract_paths(query: &XPath) -> PathSet {
    let mut out = PathSet::new(vec![ProjectionPath::parse("/*").expect("static path")]);
    let mut prefix: Vec<Step> = Vec::new();
    walk_steps(&query.steps, &mut prefix, &mut out, true);
    out
}

/// Walk the steps of a path; `prefix` holds the projection steps
/// accumulated so far. `is_main` marks the expression's spine (its result
/// path gets `#`).
fn walk_steps(steps: &[XStep], prefix: &mut Vec<Step>, out: &mut PathSet, is_main: bool) {
    let mut ends_in_text = false;
    let mut pushed = 0usize;
    for step in steps {
        match &step.test {
            XNodeTest::Name(n) => {
                prefix.push(Step { axis: step.axis, test: NameTest::Name(n.clone()) });
                pushed += 1;
            }
            XNodeTest::Wildcard => {
                prefix.push(Step { axis: step.axis, test: NameTest::Wildcard });
                pushed += 1;
            }
            XNodeTest::Text => {
                // text() selects character data of the context node: the
                // context path needs its subtree.
                ends_in_text = true;
            }
            XNodeTest::Attr(_) => {
                // Attributes ride along with their element's tag: make the
                // context path itself a complete (unflagged) path so the
                // action table copies the tag with attributes.
                out.insert(ProjectionPath { steps: prefix.clone(), subtree: false });
            }
        }
        for pred in &step.predicates {
            walk_expr(pred, prefix, out);
        }
        if ends_in_text {
            break;
        }
    }
    let path = ProjectionPath { steps: prefix.clone(), subtree: is_main || ends_in_text };
    if !path.steps.is_empty() {
        out.insert(path);
    }
    for _ in 0..pushed {
        prefix.pop();
    }
}

/// Walk a predicate expression in the context of `prefix`.
fn walk_expr(expr: &XExpr, prefix: &mut Vec<Step>, out: &mut PathSet) {
    match expr {
        XExpr::Path(p) => add_rel_path(p, prefix, out, false),
        XExpr::Literal(_) | XExpr::Number(_) => {}
        XExpr::Cmp(a, _, b) => {
            // A compared path is inspected for its string value: flag #.
            for side in [a, b] {
                match &**side {
                    XExpr::Path(p) => add_rel_path(p, prefix, out, true),
                    other => walk_expr(other, prefix, out),
                }
            }
        }
        XExpr::And(a, b) | XExpr::Or(a, b) => {
            walk_expr(a, prefix, out);
            walk_expr(b, prefix, out);
        }
        XExpr::Contains(a, b) => {
            for side in [a, b] {
                match &**side {
                    XExpr::Path(p) => add_rel_path(p, prefix, out, true),
                    other => walk_expr(other, prefix, out),
                }
            }
        }
        XExpr::Not(e) => walk_expr(e, prefix, out),
        XExpr::Count(p) | XExpr::Empty(p) => add_rel_path(p, prefix, out, false),
        XExpr::Last => {}
    }
}

/// Add the projection path for a relative path anchored at `prefix`.
/// `value_used` forces the `#` flag (the predicate reads character data).
fn add_rel_path(rel: &XRelPath, prefix: &mut Vec<Step>, out: &mut PathSet, value_used: bool) {
    let mut pushed = 0usize;
    let mut ends_in_text = false;
    let mut attr_only = false;
    for (i, step) in rel.steps.iter().enumerate() {
        match &step.test {
            XNodeTest::Name(n) => {
                prefix.push(Step { axis: step.axis, test: NameTest::Name(n.clone()) });
                pushed += 1;
            }
            XNodeTest::Wildcard => {
                prefix.push(Step { axis: step.axis, test: NameTest::Wildcard });
                pushed += 1;
            }
            XNodeTest::Text => {
                // `a//text()` needs the whole subtree of `a`; plain
                // `a/text()` likewise needs a's character data.
                ends_in_text = true;
            }
            XNodeTest::Attr(_) => {
                attr_only = i == 0 && rel.steps.len() == 1;
                // The element owning the attribute must keep its tag+atts.
                out.insert(ProjectionPath { steps: prefix.clone(), subtree: false });
            }
        }
        for pred in &step.predicates {
            walk_expr(pred, prefix, out);
        }
        if ends_in_text {
            break;
        }
    }
    if !attr_only && !prefix.is_empty() {
        out.insert(ProjectionPath { steps: prefix.clone(), subtree: value_used || ends_in_text });
    }
    for _ in 0..pushed {
        prefix.pop();
    }
}

/// Convenience: parse and extract in one call.
pub fn extract_from_text(query: &str) -> Result<PathSet, crate::xpath::XPathError> {
    Ok(extract_paths(&XPath::parse(query)?))
}

/// The paths that a `descendant-or-self` reading of `//` would need when
/// the `#`-flag semantics interprets it as `descendant-or-self::node()`
/// (Sec. III). Exposed for the engines.
pub fn projection_of_steps(steps: &[(Axis, &str)], subtree: bool) -> ProjectionPath {
    ProjectionPath {
        steps: steps
            .iter()
            .map(|&(axis, name)| Step {
                axis,
                test: if name == "*" {
                    NameTest::Wildcard
                } else {
                    NameTest::Name(name.to_string())
                },
            })
            .collect(),
        subtree,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paths_of(query: &str) -> Vec<String> {
        let mut v: Vec<String> =
            extract_from_text(query).unwrap().paths().iter().map(|p| p.to_string()).collect();
        v.sort();
        v
    }

    /// Paper Example 4: <q>{//australia//description}</q> extracts
    /// //australia//description# and /*.
    #[test]
    fn example4_descendant_query() {
        assert_eq!(paths_of("//australia//description"), vec!["/*", "//australia//description#"]);
    }

    #[test]
    fn m1_plain_path() {
        assert_eq!(
            paths_of("/MedlineCitationSet//CollectionTitle"),
            vec!["/*", "/MedlineCitationSet//CollectionTitle#"]
        );
    }

    #[test]
    fn m2_predicate_text_compare() {
        assert_eq!(
            paths_of(
                r#"/MedlineCitationSet//DataBank[DataBankName/text()="PDB"]/AccessionNumberList"#
            ),
            vec![
                "/*",
                "/MedlineCitationSet//DataBank/AccessionNumberList#",
                "/MedlineCitationSet//DataBank/DataBankName#",
            ]
        );
    }

    #[test]
    fn m3_or_predicate_two_paths() {
        let got = paths_of(
            r#"/MedlineCitationSet//PersonalNameSubjectList/PersonalNameSubject[LastName/text()="Hippocrates" or DatesAssociatedWithName="Oct2006"]/TitleAssociatedWithName"#,
        );
        assert_eq!(
            got,
            vec![
                "/*",
                "/MedlineCitationSet//PersonalNameSubjectList/PersonalNameSubject/DatesAssociatedWithName#",
                "/MedlineCitationSet//PersonalNameSubjectList/PersonalNameSubject/LastName#",
                "/MedlineCitationSet//PersonalNameSubjectList/PersonalNameSubject/TitleAssociatedWithName#",
            ]
        );
    }

    #[test]
    fn m4_contains_text_flags_context() {
        assert_eq!(
            paths_of(r#"/MedlineCitationSet//CopyrightInformation[contains(text(),"NASA")]"#),
            vec!["/*", "/MedlineCitationSet//CopyrightInformation#"]
        );
    }

    #[test]
    fn m5_two_branches() {
        assert_eq!(
            paths_of(
                r#"/MedlineCitationSet/MedlineCitation[contains(MedlineJournalInfo//text(),"Sterilization")]/DateCompleted"#
            ),
            vec![
                "/*",
                "/MedlineCitationSet/MedlineCitation/DateCompleted#",
                "/MedlineCitationSet/MedlineCitation/MedlineJournalInfo#",
            ]
        );
    }

    #[test]
    fn attribute_predicate_keeps_element_tag() {
        assert_eq!(
            paths_of(r#"/site/people/person[@id="person0"]/name"#),
            vec!["/*", "/site/people/person", "/site/people/person/name#"]
        );
    }

    #[test]
    fn existence_predicate_unflagged() {
        assert_eq!(paths_of("/a/b[c]/d"), vec!["/*", "/a/b/c", "/a/b/d#"]);
    }

    #[test]
    fn count_and_empty_unflagged() {
        assert_eq!(paths_of("/a[count(b) > 2]"), vec!["/*", "/a#", "/a/b"]);
        assert_eq!(paths_of("/a[not(empty(c))]"), vec!["/*", "/a#", "/a/c"]);
    }

    #[test]
    fn numeric_compare_flags_value_path() {
        assert_eq!(
            paths_of("/site/closed_auctions/closed_auction[price >= 40]/price"),
            vec!["/*", "/site/closed_auctions/closed_auction/price#",]
        );
    }

    #[test]
    fn star_always_present() {
        assert!(paths_of("/a").contains(&"/*".to_string()));
    }
}
