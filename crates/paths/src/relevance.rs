//! Token/branch relevance — Definition 3 of the paper (conditions C1, C2,
//! C3).
//!
//! Relevance is evaluated on *document branches*: the chain of element
//! labels from the root down to a token. For a tag token the branch ends
//! with the tag's own label; for a text token the branch is the chain of
//! its ancestors (the text itself carries no label).
//!
//! * **C1** — the leaf of the branch is selected by some path in `P+`.
//! * **C2** — some node on the branch is selected by a `#`-flagged path.
//! * **C3** — there is a tag `t` such that `P+` contains a path ending in a
//!   *child* step on `t` and a path ending in a *descendant* step on `t`,
//!   both selecting the hypothetical sibling branch `parent-branch + [t]`.
//!   This keeps "stopover" tags whose presence disambiguates child from
//!   descendant matches (paper Ex. 6: the `c` tags).
//!
//! Following the runtime's behaviour we apply C3 to tag tokens only: its
//! `⟨t/⟩` substitution speaks about hypothetical sibling *tags*, and the SMP
//! actions can only preserve text inside `copy on/off` regions (C2).

use crate::model::{Axis, NameTest, PathSet, ProjectionPath};
use std::collections::BTreeSet;

/// Compiled relevance test for a path set.
#[derive(Debug, Clone)]
pub struct Relevance {
    /// The original set `P`.
    original: Vec<ProjectionPath>,
    /// The closure `P+`.
    plus: Vec<ProjectionPath>,
    /// Concrete names appearing as the last step of any path in `P+`, the
    /// candidate `t`s of C3.
    c3_candidates: Vec<String>,
}

impl Relevance {
    /// Compile the relevance test for `P` (computing `P+`).
    pub fn new(pset: &PathSet) -> Relevance {
        let plus = pset.plus_closure();
        let mut cands: BTreeSet<String> = BTreeSet::new();
        for p in &plus {
            if let Some(step) = p.last_step() {
                if let NameTest::Name(n) = &step.test {
                    cands.insert(n.clone());
                }
            }
        }
        Relevance {
            original: pset.paths().to_vec(),
            plus,
            c3_candidates: cands.into_iter().collect(),
        }
    }

    /// The closure `P+` in deterministic order.
    pub fn plus(&self) -> &[ProjectionPath] {
        &self.plus
    }

    /// C1: the leaf of `branch` is selected by a path in `P+`.
    pub fn c1<S: AsRef<str>>(&self, branch: &[S]) -> bool {
        self.plus.iter().any(|p| p.matches(branch))
    }

    /// Like C1, but only counting *complete* paths of the original set `P`
    /// (not closure-added prefixes) whose last step names an element. A
    /// node matched this way is one the query itself selects, so the action
    /// table copies its attributes ("copy tag + atts"); nodes kept merely
    /// as ancestors — including via the default well-formedness path `/*` —
    /// get a bare tag (the paper's Fig. 3 assigns plain `copy tag` to the
    /// `/*`-preserved root).
    pub fn c1_exact<S: AsRef<str>>(&self, branch: &[S]) -> bool {
        self.original.iter().any(|p| {
            p.last_step().is_some_and(|s| matches!(s.test, NameTest::Name(_))) && p.matches(branch)
        })
    }

    /// C2: some node on `branch` (any prefix, leaf included) is selected by
    /// a `#`-flagged path.
    pub fn c2<S: AsRef<str>>(&self, branch: &[S]) -> bool {
        self.plus
            .iter()
            .filter(|p| p.subtree)
            .any(|p| (0..=branch.len()).any(|i| p.matches(&branch[..i])))
    }

    /// C2 restricted to the leaf itself: the node is selected by a
    /// `#`-flagged path (drives the `copy on` action).
    pub fn c2_leaf<S: AsRef<str>>(&self, branch: &[S]) -> bool {
        self.plus.iter().filter(|p| p.subtree).any(|p| p.matches(branch))
    }

    /// C3 for a tag whose *parent* branch is `parent`: is there a `t` such
    /// that `P+` contains a path of the form `/p1/…/pi/t` (child-axis last
    /// step on the literal name `t`) and one of the form `/p′1/…/p′j//t`
    /// (descendant-axis last step on `t`), both selecting `parent + [t]`?
    ///
    /// Per the paper the two forms name a literal tag `t`; wildcard-final
    /// paths are not C3 forms (their effect is already covered by prefix
    /// matches under C1).
    pub fn c3_parent<S: AsRef<str>>(&self, parent: &[S]) -> bool {
        let mut probe: Vec<&str> = parent.iter().map(|s| s.as_ref()).collect();
        for t in &self.c3_candidates {
            probe.push(t);
            let child_form = self.plus.iter().any(|p| {
                p.last_step()
                    .is_some_and(|s| s.axis == Axis::Child && s.test == NameTest::Name(t.clone()))
                    && p.matches(&probe)
            });
            let desc_form = child_form
                && self.plus.iter().any(|p| {
                    p.last_step().is_some_and(|s| {
                        s.axis == Axis::Descendant && s.test == NameTest::Name(t.clone())
                    }) && p.matches(&probe)
                });
            probe.pop();
            if child_form && desc_form {
                return true;
            }
        }
        false
    }

    /// Full relevance of a *tag* token with document branch `branch`
    /// (Def. 3 with C1 ∨ C2 ∨ C3).
    pub fn relevant_tag<S: AsRef<str>>(&self, branch: &[S]) -> bool {
        if branch.is_empty() {
            return false;
        }
        self.c1(branch) || self.c2(branch) || self.c3_parent(&branch[..branch.len() - 1])
    }

    /// Relevance of a *text* token whose ancestor chain is `branch`: text
    /// carries no label, so only C2 over the ancestors applies.
    pub fn relevant_text<S: AsRef<str>>(&self, branch: &[S]) -> bool {
        self.c2(branch)
    }

    /// Could any path of `P+` select a node *strictly below* `branch` in
    /// some document? Used by the recursion extension: when true for an
    /// opaque (recursive) element's branch, the prefilter cannot navigate
    /// inside the subtree and must conservatively copy it whole.
    ///
    /// The test is per-path NFA liveness after consuming `branch`: a step
    /// remains unconsumed in some alive configuration (a descendant-axis
    /// step that is alive can always fire deeper, a child-axis step can
    /// fire one level down).
    pub fn may_match_below<S: AsRef<str>>(&self, branch: &[S]) -> bool {
        self.plus.iter().any(|p| path_live_below(p, branch))
    }
}

/// NFA liveness of `p` strictly below `branch`.
fn path_live_below<S: AsRef<str>>(p: &ProjectionPath, branch: &[S]) -> bool {
    let n = p.steps.len();
    let mut states = vec![false; n + 1];
    states[0] = true;
    for label in branch {
        let label = label.as_ref();
        let mut next = vec![false; n + 1];
        for i in 0..n {
            if !states[i] {
                continue;
            }
            let step = &p.steps[i];
            if step.test.accepts(label) {
                next[i + 1] = true;
            }
            if step.axis == Axis::Descendant {
                next[i] = true;
            }
        }
        states = next;
        if states.iter().all(|&s| !s) {
            return false;
        }
    }
    // Alive with at least one step left: the remaining step(s) can match
    // one or more levels further down.
    states[..n].iter().any(|&s| s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(paths: &[&str]) -> Relevance {
        Relevance::new(&PathSet::parse(paths).unwrap())
    }

    /// Paper Example 6 in full: query <x>{/a/b,//b}</x> over
    /// D = <a><c><b>T</b></c></a>; every token is relevant.
    #[test]
    fn example6_all_tokens_relevant() {
        let r = rel(&["/*", "/a/b#", "//b#"]);
        // a-tags: C1 via prefix /a.
        assert!(r.c1(&["a"]));
        assert!(r.relevant_tag(&["a"]));
        // b-tags: C1 via //b#.
        assert!(r.c1(&["a", "c", "b"]));
        assert!(r.relevant_tag(&["a", "c", "b"]));
        // Text "T": C2 (inside //b# subtree).
        assert!(r.relevant_text(&["a", "c", "b"]));
        // c-tags: neither C1 nor C2 …
        assert!(!r.c1(&["a", "c"]));
        assert!(!r.c2(&["a", "c"]));
        // … but C3 with t = b.
        assert!(r.c3_parent(&["a"]));
        assert!(r.relevant_tag(&["a", "c"]));
    }

    #[test]
    fn without_the_child_form_c3_does_not_fire() {
        // Only //b#: keeping c is unnecessary.
        let r = rel(&["/*", "//b#"]);
        assert!(!r.c3_parent(&["a"]));
        assert!(!r.relevant_tag(&["a", "c"]));
    }

    #[test]
    fn without_the_descendant_form_c3_does_not_fire() {
        let r = rel(&["/*", "/a/b#"]);
        assert!(!r.c3_parent(&["a"]));
        assert!(!r.relevant_tag(&["a", "c"]));
    }

    #[test]
    fn c3_only_at_the_right_depth() {
        let r = rel(&["/*", "/a/b#", "//b#"]);
        // Parent branch [a, c]: /a/b does not match [a, c, b] (wrong depth).
        assert!(!r.c3_parent(&["a", "c"]));
        // Parent branch []: /a/b does not match [b].
        assert!(!r.c3_parent(&[] as &[&str]));
    }

    #[test]
    fn c2_covers_whole_subtree() {
        let r = rel(&["/a#"]);
        assert!(r.c2(&["a"]));
        assert!(r.c2(&["a", "x"]));
        assert!(r.c2(&["a", "x", "y"]));
        assert!(!r.c2(&["b"]));
        assert!(r.c2_leaf(&["a"]));
        assert!(!r.c2_leaf(&["b", "a", "c"]));
    }

    #[test]
    fn prefix_paths_keep_ancestors() {
        let r = rel(&["/site/regions/australia/item/name#"]);
        assert!(r.c1(&["site"]));
        assert!(r.c1(&["site", "regions"]));
        assert!(r.c1(&["site", "regions", "australia"]));
        assert!(r.c1(&["site", "regions", "australia", "item"]));
        assert!(!r.c1(&["site", "people"]));
        assert!(!r.relevant_tag(&["site", "people"]));
    }

    #[test]
    fn star_path_keeps_top_level_node_only() {
        let r = rel(&["/*"]);
        assert!(r.relevant_tag(&["site"]));
        assert!(!r.relevant_tag(&["site", "regions"]));
        assert!(!r.relevant_text(&["site"]));
    }

    #[test]
    fn star_hash_keeps_everything() {
        let r = rel(&["/*#"]);
        assert!(r.relevant_tag(&["a"]));
        assert!(r.relevant_tag(&["a", "b", "c"]));
        assert!(r.relevant_text(&["a", "b"]));
    }

    #[test]
    fn wildcard_last_steps_are_not_c3_forms() {
        // Wildcard-final paths do not create C3 obligations: a wildcard
        // child path already makes every child C1-relevant via prefixes.
        let r = rel(&["/a/*", "//*"]);
        assert!(!r.c3_parent(&["a"]));
        assert!(r.c1(&["a", "anything"])); // covered by C1 instead
    }

    #[test]
    fn text_never_c1() {
        let r = rel(&["/a/b"]);
        assert!(!r.relevant_text(&["a", "b"]));
        assert!(r.relevant_tag(&["a", "b"]));
    }

    #[test]
    fn empty_branch_tag_is_irrelevant() {
        let r = rel(&["/a"]);
        assert!(!r.relevant_tag(&[] as &[&str]));
    }
}
