//! Property tests for the vectorized skip-scan layer: every `memscan`
//! implementation and every accelerated searcher must agree with the naive
//! oracle on haystacks engineered to straddle the SWAR-word (8-byte) and
//! SSE/AVX-lane (16/32-byte) boundaries.
//!
//! The per-implementation functions are exercised directly (no process
//! globals), so one test run covers scalar, SWAR and — where the CPU has
//! them — SSE2/AVX2 simultaneously; the `SMPX_NO_SIMD=1` CI leg covers
//! the searchers' scalar dispatch path on top.

use proptest::prelude::*;
use smpx_stringmatch::{memscan, naive, BoyerMoore, CommentzWalter, Horspool, MultiMatch};

/// Haystack lengths clustered around 0..64 and the 8/16/32-byte alignment
/// edges, so every vector implementation hits its head, full-lane and tail
/// code paths.
fn edge_len() -> impl Strategy<Value = usize> {
    prop_oneof![
        0usize..=9,
        7usize..=9,
        15usize..=17,
        23usize..=25,
        31usize..=33,
        39usize..=41,
        47usize..=49,
        63usize..=65,
    ]
}

/// Two-symbol alphabet: dense needle collisions plus long needle-free runs.
fn tiny_alpha_hay(len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'<')], len..len + 1)
}

/// Patterns of length 1..=3 over the same alphabet.
fn tiny_pattern() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'<')], 1..4)
}

fn memscan_impls(hay: &[u8], from: usize, needle: u8) -> Vec<(&'static str, Option<usize>)> {
    let mut v = vec![("swar", memscan::find_byte_swar(hay, from, needle))];
    #[cfg(target_arch = "x86_64")]
    {
        v.push(("sse2", memscan::find_byte_sse2(hay, from, needle)));
        if std::arch::is_x86_feature_detected!("avx2") {
            v.push(("avx2", memscan::find_byte_avx2(hay, from, needle)));
        }
    }
    v
}

fn memscan_impls2(hay: &[u8], from: usize, n1: u8, n2: u8) -> Vec<(&'static str, Option<usize>)> {
    let mut v = vec![("swar", memscan::find_byte2_swar(hay, from, n1, n2))];
    #[cfg(target_arch = "x86_64")]
    {
        v.push(("sse2", memscan::find_byte2_sse2(hay, from, n1, n2)));
        if std::arch::is_x86_feature_detected!("avx2") {
            v.push(("avx2", memscan::find_byte2_avx2(hay, from, n1, n2)));
        }
    }
    v
}

fn memscan_impls3(
    hay: &[u8],
    from: usize,
    n1: u8,
    n2: u8,
    n3: u8,
) -> Vec<(&'static str, Option<usize>)> {
    let mut v = vec![("swar", memscan::find_byte3_swar(hay, from, n1, n2, n3))];
    #[cfg(target_arch = "x86_64")]
    {
        v.push(("sse2", memscan::find_byte3_sse2(hay, from, n1, n2, n3)));
        if std::arch::is_x86_feature_detected!("avx2") {
            v.push(("avx2", memscan::find_byte3_avx2(hay, from, n1, n2, n3)));
        }
    }
    v
}

/// Exhaustive needle-pair placement: for every haystack length around the
/// lane edges (0..=65) and every ordered pair of needle positions, all
/// multi-needle implementations must agree with the naive scan. This is
/// deterministic, not property-sampled: the pair geometry (same word,
/// adjacent words, straddling a lane head/tail) is the whole point.
#[test]
fn multi_needle_agrees_at_all_pair_positions() {
    let lens: Vec<usize> = (0..=9)
        .chain(15..=17)
        .chain(23..=25)
        .chain(31..=33)
        .chain(47..=49)
        .chain(63..=65)
        .collect();
    for &len in &lens {
        for i in 0..len {
            for j in 0..len {
                let mut hay = vec![b'x'; len];
                hay[i] = b'<';
                hay[j] = b'>'; // j == i overwrites: single-needle degenerate
                for from in [0usize, i.saturating_sub(1), i, i + 1, j, j + 1] {
                    let want2 = memscan::find_byte2_scalar(&hay, from, b'<', b'>');
                    for (name, got) in memscan_impls2(&hay, from, b'<', b'>') {
                        assert_eq!(got, want2, "{name} len={len} i={i} j={j} from={from}");
                    }
                    let want3 = memscan::find_byte3_scalar(&hay, from, b'<', b'>', b'"');
                    for (name, got) in memscan_impls3(&hay, from, b'<', b'>', b'"') {
                        assert_eq!(got, want3, "{name} len={len} i={i} j={j} from={from}");
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn find_byte_impls_agree_at_lane_edges(
        len in edge_len(),
        seed in 0u64..u64::MAX,
    ) {
        // Derive a deterministic haystack from the seed so every length
        // sees many needle placements, including none.
        let hay: Vec<u8> = (0..len)
            .map(|i| {
                let mix = seed.rotate_left((i % 64) as u32) ^ i as u64;
                if mix.is_multiple_of(7) {
                    b'<'
                } else {
                    b'x'
                }
            })
            .collect();
        for from in 0..=len {
            let want = memscan::find_byte_scalar(&hay, from, b'<');
            for (name, got) in memscan_impls(&hay, from, b'<') {
                prop_assert_eq!(got, want, "{} from={} hay={:?}", name, from, &hay);
            }
        }
    }

    #[test]
    fn find_byte2_impls_agree_at_lane_edges(
        len in edge_len(),
        seed in 0u64..u64::MAX,
    ) {
        // Random dense/sparse mixtures of both needles around lane edges.
        let hay: Vec<u8> = (0..len)
            .map(|i| {
                let mix = seed.rotate_left((i % 64) as u32) ^ i as u64;
                match mix % 11 {
                    0 => b'<',
                    1 => b'>',
                    _ => b'x',
                }
            })
            .collect();
        for from in 0..=len {
            let want = memscan::find_byte2_scalar(&hay, from, b'<', b'>');
            for (name, got) in memscan_impls2(&hay, from, b'<', b'>') {
                prop_assert_eq!(got, want, "{} from={} hay={:?}", name, from, &hay);
            }
        }
    }

    #[test]
    fn find_byte3_impls_agree_at_lane_edges(
        len in edge_len(),
        seed in 0u64..u64::MAX,
    ) {
        let hay: Vec<u8> = (0..len)
            .map(|i| {
                let mix = seed.rotate_left((i % 64) as u32) ^ i as u64;
                match mix % 13 {
                    0 => b'>',
                    1 => b'"',
                    2 => b'\'',
                    _ => b'q',
                }
            })
            .collect();
        for from in 0..=len {
            let want = memscan::find_byte3_scalar(&hay, from, b'>', b'"', b'\'');
            for (name, got) in memscan_impls3(&hay, from, b'>', b'"', b'\'') {
                prop_assert_eq!(got, want, "{} from={} hay={:?}", name, from, &hay);
            }
        }
    }

    #[test]
    fn tag_scan_window_splits_are_seamless(
        seed in 0u64..u64::MAX,
        len in 1usize..64,
        cut in 0usize..64,
    ) {
        // Random in-tag byte soup (quotes, '>', '/', text); any split into
        // two windows must agree with the whole-slice scan, and the scalar
        // reference oracle is the byte loop below.
        let tag: Vec<u8> = (0..len)
            .map(|i| {
                let mix = seed.rotate_left((i % 64) as u32) ^ (i as u64).wrapping_mul(7);
                b"x> \"'/="[(mix % 7) as usize]
            })
            .collect();
        // Naive oracle.
        let mut oracle = None;
        let mut quote: Option<u8> = None;
        let mut prev = 0u8;
        for (i, &c) in tag.iter().enumerate() {
            match quote {
                Some(q) => {
                    if c == q {
                        quote = None;
                        prev = q;
                    }
                }
                None => match c {
                    b'>' => {
                        oracle = Some((i + 1, prev == b'/'));
                        break;
                    }
                    b'"' | b'\'' => quote = Some(c),
                    _ => prev = c,
                },
            }
        }
        // Whole-slice scan.
        let mut st = memscan::TagScan::new();
        prop_assert_eq!(memscan::scan_tag_end_window(&tag, 0, &mut st), oracle);
        // Split scan.
        let cut = cut.min(tag.len());
        let mut st = memscan::TagScan::new();
        let got = match memscan::scan_tag_end_window(&tag[..cut], 0, &mut st) {
            Some(hit) => Some(hit),
            None => memscan::scan_tag_end_window(&tag[cut..], 0, &mut st)
                .map(|(end, b)| (end + cut, b)),
        };
        prop_assert_eq!(got, oracle, "cut={} tag={:?}", cut, &tag);
    }

    #[test]
    fn accelerated_bm_agrees_with_oracle_at_edges(
        hay in edge_len().prop_flat_map(tiny_alpha_hay),
        pat in tiny_pattern(),
        from in 0usize..70,
    ) {
        let bm = BoyerMoore::new(&pat);
        let mut sink = smpx_stringmatch::NoMetrics;
        let want = naive::find_at(&hay, &pat, from, &mut sink);
        prop_assert_eq!(bm.find_at(&hay, from, &mut sink), want, "accel hay={:?} pat={:?}", &hay, &pat);
        prop_assert_eq!(bm.find_at_scalar(&hay, from, &mut sink), want, "scalar hay={:?} pat={:?}", &hay, &pat);
    }

    #[test]
    fn accelerated_horspool_agrees_with_oracle_at_edges(
        hay in edge_len().prop_flat_map(tiny_alpha_hay),
        pat in tiny_pattern(),
        from in 0usize..70,
    ) {
        let h = Horspool::new(&pat);
        let mut sink = smpx_stringmatch::NoMetrics;
        let want = naive::find_at(&hay, &pat, from, &mut sink);
        prop_assert_eq!(h.find_at(&hay, from, &mut sink), want);
        prop_assert_eq!(h.find_at_scalar(&hay, from, &mut sink), want);
    }

    #[test]
    fn accelerated_cw_agrees_with_scalar_and_oracle_at_edges(
        hay in edge_len().prop_flat_map(tiny_alpha_hay),
        pats in proptest::collection::vec(tiny_pattern(), 1..4),
        from in 0usize..70,
    ) {
        let refs: Vec<&[u8]> = pats.iter().map(|p| p.as_slice()).collect();
        let cw = CommentzWalter::new(&refs);
        let mut sink = smpx_stringmatch::NoMetrics;
        // find_at (vector fast path when the patterns share a first byte)
        // must be byte-identical to the pure windowed loop.
        prop_assert_eq!(
            cw.find_at(&hay, from, &mut sink),
            cw.find_at_scalar(&hay, from, &mut sink),
            "hay={:?} pats={:?}", &hay, &pats
        );
        // And the full occurrence set must match the naive oracle.
        let got: Vec<MultiMatch> = cw.find_iter(&hay).collect();
        let mut want = naive::find_all_multi(&hay, &refs);
        want.sort_by_key(|m| (m.end, m.pattern));
        prop_assert_eq!(got, want);
    }

    #[test]
    fn xml_keywords_straddling_lane_edges(
        pad in 0usize..40,
        sel in proptest::collection::vec(0usize..4, 1..4),
    ) {
        // Place an SMP-style keyword so it straddles 8/16/32-byte
        // boundaries of the haystack, padded by tag-free filler.
        let vocab: [&[u8]; 4] = [b"<item", b"</item", b"<a", b"</a"];
        let mut hay = vec![b'.'; pad];
        hay.extend_from_slice(b"<item x='1'>");
        hay.extend(std::iter::repeat_n(b'.', 33 - pad.min(33)));
        hay.extend_from_slice(b"</item>");
        let pats: Vec<&[u8]> = sel.iter().map(|&i| vocab[i]).collect();
        let cw = CommentzWalter::new(&pats);
        let got: Vec<MultiMatch> = cw.find_iter(&hay).collect();
        let mut want = naive::find_all_multi(&hay, &pats);
        want.sort_by_key(|m| (m.end, m.pattern));
        prop_assert_eq!(got, want);
    }
}
