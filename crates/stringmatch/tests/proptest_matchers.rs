//! Property-based differential tests: every searcher in the crate must agree
//! with the naive oracle on arbitrary inputs, including adversarial small
//! alphabets that maximize pattern self-overlap.

use proptest::prelude::*;
use smpx_stringmatch::{naive, AhoCorasick, BoyerMoore, CommentzWalter, Horspool, Kmp, MultiMatch};

/// Small alphabets provoke overlapping occurrences and shift-table edge
/// cases far more often than random bytes do.
fn small_alpha_string(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 0..max_len)
}

fn small_alpha_pattern(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn boyer_moore_agrees_with_naive(
        hay in small_alpha_string(200),
        pat in small_alpha_pattern(8),
        from in 0usize..64,
    ) {
        let bm = BoyerMoore::new(&pat);
        let mut sink = smpx_stringmatch::NoMetrics;
        prop_assert_eq!(
            bm.find_at(&hay, from, &mut sink),
            naive::find_at(&hay, &pat, from, &mut sink)
        );
    }

    #[test]
    fn horspool_agrees_with_naive(
        hay in small_alpha_string(200),
        pat in small_alpha_pattern(8),
    ) {
        let h = Horspool::new(&pat);
        prop_assert_eq!(h.find(&hay), naive::find(&hay, &pat));
    }

    #[test]
    fn kmp_agrees_with_naive(
        hay in small_alpha_string(200),
        pat in small_alpha_pattern(8),
    ) {
        let k = Kmp::new(&pat);
        prop_assert_eq!(k.find(&hay), naive::find(&hay, &pat));
    }

    #[test]
    fn boyer_moore_find_iter_is_all_occurrences(
        hay in small_alpha_string(120),
        pat in small_alpha_pattern(6),
    ) {
        let bm = BoyerMoore::new(&pat);
        let got: Vec<usize> = bm.find_iter(&hay).collect();
        prop_assert_eq!(got, naive::find_all(&hay, &pat));
    }

    #[test]
    fn commentz_walter_finds_every_occurrence(
        hay in small_alpha_string(160),
        pats in proptest::collection::vec(small_alpha_pattern(6), 1..5),
    ) {
        let refs: Vec<&[u8]> = pats.iter().map(|p| p.as_slice()).collect();
        let cw = CommentzWalter::new(&refs);
        let got: Vec<MultiMatch> = cw.find_iter(&hay).collect();
        let mut want = naive::find_all_multi(&hay, &refs);
        // Duplicate patterns in the random set produce duplicate oracle
        // entries with distinct indices; both sides keep them, so plain
        // equality is the right check.
        want.sort_by_key(|m| (m.end, m.pattern));
        prop_assert_eq!(got, want);
    }

    #[test]
    fn aho_corasick_finds_every_occurrence(
        hay in small_alpha_string(160),
        pats in proptest::collection::vec(small_alpha_pattern(6), 1..5),
    ) {
        let refs: Vec<&[u8]> = pats.iter().map(|p| p.as_slice()).collect();
        let ac = AhoCorasick::new(&refs);
        let got: Vec<MultiMatch> = ac.find_iter(&hay).collect();
        prop_assert_eq!(got, naive::find_all_multi(&hay, &refs));
    }

    #[test]
    fn commentz_walter_agrees_with_aho_corasick_on_first_match(
        hay in small_alpha_string(160),
        pats in proptest::collection::vec(small_alpha_pattern(6), 1..5),
    ) {
        let refs: Vec<&[u8]> = pats.iter().map(|p| p.as_slice()).collect();
        let cw = CommentzWalter::new(&refs);
        let ac = AhoCorasick::new(&refs);
        prop_assert_eq!(cw.find(&hay), ac.find(&hay));
    }

    #[test]
    fn xmlish_keywords_over_xmlish_haystacks(
        reps in 1usize..12,
        pats_sel in proptest::collection::vec(0usize..6, 1..4),
    ) {
        // Build an XML-looking haystack and search for tag-prefix keywords,
        // mirroring how the SMP runtime drives the searchers.
        let vocab: [&[u8]; 6] = [b"<item", b"</item", b"<name", b"</name", b"<desc", b"</desc"];
        let mut hay = Vec::new();
        for i in 0..reps {
            hay.extend_from_slice(b"<item id=\"x\"><name>n</name><desc>d</desc></item>");
            if i % 3 == 0 {
                hay.extend_from_slice(b"  text between items <");
            }
        }
        let pats: Vec<&[u8]> = pats_sel.iter().map(|&i| vocab[i]).collect();
        let cw = CommentzWalter::new(&pats);
        let got: Vec<MultiMatch> = cw.find_iter(&hay).collect();
        prop_assert_eq!(got, naive::find_all_multi(&hay, &pats));
    }
}
