//! Exhaustive small-space verification: every searcher against the naive
//! oracle over *all* binary strings up to a length bound and *all* small
//! pattern (sets). Shift-table bugs cannot hide in a space this dense —
//! any unsafe Boyer–Moore/Commentz–Walter shift shows up as a missed
//! occurrence here.

use smpx_stringmatch::{naive, AhoCorasick, BoyerMoore, CommentzWalter, Horspool, Kmp, MultiMatch};

/// All strings over {a, b} of length 0..=max.
fn all_strings(max: usize) -> Vec<Vec<u8>> {
    let mut out = vec![Vec::new()];
    let mut frontier = vec![Vec::new()];
    for _ in 0..max {
        let mut next = Vec::new();
        for s in &frontier {
            for &c in b"ab" {
                let mut t = s.clone();
                t.push(c);
                next.push(t);
            }
        }
        out.extend(next.iter().cloned());
        frontier = next;
    }
    out
}

#[test]
fn single_pattern_exhaustive() {
    let patterns: Vec<Vec<u8>> = all_strings(3).into_iter().filter(|p| !p.is_empty()).collect();
    let haystacks = all_strings(8);
    for pat in &patterns {
        let bm = BoyerMoore::new(pat);
        let hp = Horspool::new(pat);
        let km = Kmp::new(pat);
        for hay in &haystacks {
            let want = naive::find(hay, pat);
            assert_eq!(bm.find(hay), want, "BM pat={pat:?} hay={hay:?}");
            assert_eq!(hp.find(hay), want, "Horspool pat={pat:?} hay={hay:?}");
            assert_eq!(km.find(hay), want, "KMP pat={pat:?} hay={hay:?}");
        }
    }
}

#[test]
fn single_pattern_all_occurrences_exhaustive() {
    let patterns: Vec<Vec<u8>> = all_strings(3).into_iter().filter(|p| !p.is_empty()).collect();
    let haystacks = all_strings(7);
    for pat in &patterns {
        let bm = BoyerMoore::new(pat);
        for hay in &haystacks {
            let got: Vec<usize> = bm.find_iter(hay).collect();
            assert_eq!(got, naive::find_all(hay, pat), "pat={pat:?} hay={hay:?}");
        }
    }
}

#[test]
fn pattern_pairs_exhaustive() {
    // Every ordered pair of distinct patterns from {a,b}^{1..=3}: 14·13
    // pattern sets, against all haystacks up to length 7.
    let patterns: Vec<Vec<u8>> = all_strings(3).into_iter().filter(|p| !p.is_empty()).collect();
    let haystacks = all_strings(7);
    for p1 in &patterns {
        for p2 in &patterns {
            if p1 == p2 {
                continue;
            }
            let set: Vec<&[u8]> = vec![p1, p2];
            let cw = CommentzWalter::new(&set);
            let ac = AhoCorasick::new(&set);
            for hay in &haystacks {
                let want = naive::find_all_multi(hay, &set);
                let got_cw: Vec<MultiMatch> = cw.find_iter(hay).collect();
                assert_eq!(got_cw, want, "CW p1={p1:?} p2={p2:?} hay={hay:?}");
                let got_ac: Vec<MultiMatch> = ac.find_iter(hay).collect();
                assert_eq!(got_ac, want, "AC p1={p1:?} p2={p2:?} hay={hay:?}");
            }
        }
    }
}

#[test]
fn pattern_triples_spot_exhaustive() {
    // All unordered triples of patterns of length ≤ 2 (6 patterns → 20
    // triples) against all haystacks up to length 8.
    let patterns: Vec<Vec<u8>> = all_strings(2).into_iter().filter(|p| !p.is_empty()).collect();
    let haystacks = all_strings(8);
    for i in 0..patterns.len() {
        for j in (i + 1)..patterns.len() {
            for k in (j + 1)..patterns.len() {
                let set: Vec<&[u8]> = vec![&patterns[i], &patterns[j], &patterns[k]];
                let cw = CommentzWalter::new(&set);
                for hay in &haystacks {
                    let want = naive::find_all_multi(hay, &set);
                    let got: Vec<MultiMatch> = cw.find_iter(hay).collect();
                    assert_eq!(got, want, "set={set:?} hay={hay:?}");
                }
            }
        }
    }
}
