//! Vectorized byte scanning — the skip-scan substrate of the searchers.
//!
//! The paper's searchers win by *skipping* characters, but a scalar shift
//! loop still pays one branch and one bounds check per alignment. This
//! module turns the skip into a hardware scan: [`find_byte`] locates the
//! next occurrence of a single byte (`memchr`-style), [`find_byte2`] /
//! [`find_byte3`] the next occurrence of any of two / three needles
//! (`memchr2/3`-style), and [`find_byte_offset_pair`] locates the next
//! alignment at which two pattern bytes match at their respective offsets
//! (rare byte search with offset confirmation, as in `memchr::memmem`).
//!
//! On top of the raw scans, [`scan_tag_end_window`] drives the runtime's
//! quote-aware search for a tag's closing `>`: it hops `>`-to-`>` and
//! quote-to-quote instead of stepping per byte, and its [`TagScan`] state
//! is resumable across streaming-window refills.
//!
//! Three implementations are provided and selected once per process:
//!
//! * **SWAR** — portable `u64` word-at-a-time zero-byte detection
//!   (Mycroft's trick), 8 bytes per iteration, no `unsafe`, works on every
//!   target. This is the default off `x86_64`.
//! * **SSE2** — 16 bytes per iteration via `_mm_cmpeq_epi8` /
//!   `_mm_movemask_epi8`. Part of the `x86_64` baseline ISA, so it needs no
//!   runtime detection there.
//! * **AVX2** — 32 bytes per iteration, used when
//!   `is_x86_feature_detected!("avx2")` reports support at runtime.
//!
//! Setting `SMPX_NO_SIMD=1` in the environment forces the SWAR path (the
//! searchers additionally fall back to their classic scalar shift loops;
//! see [`accel_enabled`]). The choice is cached in an atomic after the
//! first query; [`force_kind`] overrides it for benchmarks.
//!
//! # Safety
//!
//! This is the only module in the crate that uses `unsafe`: the SSE2/AVX2
//! loads. Every unsafe block reads 16/32 bytes from within a slice whose
//! bounds have been checked immediately before the load; the pointers are
//! unaligned-load (`loadu`) so no alignment invariant is required.

#![allow(unsafe_code)]
#![warn(unsafe_op_in_unsafe_fn)]

use std::sync::atomic::{AtomicU8, Ordering};

/// Which scanning implementation the process is using.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanKind {
    /// Portable `u64` word-at-a-time (no `std::arch`).
    Swar,
    /// 16-byte SSE2 vectors (`x86_64` baseline ISA).
    Sse2,
    /// 32-byte AVX2 vectors (runtime-detected).
    Avx2,
}

/// 0 = undecided, 1 = Swar, 2 = Sse2, 3 = Avx2.
static KIND: AtomicU8 = AtomicU8::new(0);
/// 0 = undecided, 1 = accelerated, 2 = scalar-forced (`SMPX_NO_SIMD=1`).
static ACCEL: AtomicU8 = AtomicU8::new(0);

fn detect_kind() -> ScanKind {
    if std::env::var_os("SMPX_NO_SIMD").is_some_and(|v| v == "1") {
        return ScanKind::Swar;
    }
    native_kind()
}

#[cfg(target_arch = "x86_64")]
fn native_kind() -> ScanKind {
    if std::arch::is_x86_feature_detected!("avx2") {
        ScanKind::Avx2
    } else {
        ScanKind::Sse2
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn native_kind() -> ScanKind {
    ScanKind::Swar
}

/// The active scanning implementation (detected once, then cached).
pub fn kind() -> ScanKind {
    match KIND.load(Ordering::Relaxed) {
        1 => ScanKind::Swar,
        2 => ScanKind::Sse2,
        3 => ScanKind::Avx2,
        _ => {
            let k = detect_kind();
            KIND.store(encode(k), Ordering::Relaxed);
            k
        }
    }
}

/// Override the scanning implementation for this process (benchmark and
/// test escape hatch; normal code never calls this). Forcing
/// [`ScanKind::Avx2`] on a CPU without AVX2 is rejected (falls back to
/// detection).
pub fn force_kind(k: ScanKind) {
    #[cfg(target_arch = "x86_64")]
    let ok = k != ScanKind::Avx2 || std::arch::is_x86_feature_detected!("avx2");
    #[cfg(not(target_arch = "x86_64"))]
    let ok = k == ScanKind::Swar;
    if ok {
        KIND.store(encode(k), Ordering::Relaxed);
    }
}

fn encode(k: ScanKind) -> u8 {
    match k {
        ScanKind::Swar => 1,
        ScanKind::Sse2 => 2,
        ScanKind::Avx2 => 3,
    }
}

/// Is the vectorized skip-scan enabled for the searchers?
///
/// `SMPX_NO_SIMD=1` disables it, restoring the classic scalar shift loops
/// byte for byte (the CI fallback leg runs the whole suite this way).
/// Cached after the first call.
pub fn accel_enabled() -> bool {
    match ACCEL.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = std::env::var_os("SMPX_NO_SIMD").is_none_or(|v| v != "1");
            ACCEL.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// Force the searcher acceleration on or off for this process (test/bench
/// escape hatch, same effect as `SMPX_NO_SIMD`).
pub fn force_accel(on: bool) {
    ACCEL.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Position of the first occurrence of `needle` in `hay[from..]`, as an
/// absolute offset. Dispatches to the active [`ScanKind`].
#[inline]
pub fn find_byte(hay: &[u8], from: usize, needle: u8) -> Option<usize> {
    if from >= hay.len() {
        return None;
    }
    match kind() {
        ScanKind::Swar => find_byte_swar(hay, from, needle),
        #[cfg(target_arch = "x86_64")]
        ScanKind::Sse2 => find_byte_sse2(hay, from, needle),
        #[cfg(target_arch = "x86_64")]
        ScanKind::Avx2 => find_byte_avx2(hay, from, needle),
        #[cfg(not(target_arch = "x86_64"))]
        _ => find_byte_swar(hay, from, needle),
    }
}

/// Position of the first occurrence of either needle in `hay[from..]`, as
/// an absolute offset (`memchr2`-style). The needles need not be distinct.
/// Dispatches to the active [`ScanKind`].
#[inline]
pub fn find_byte2(hay: &[u8], from: usize, n1: u8, n2: u8) -> Option<usize> {
    if from >= hay.len() {
        return None;
    }
    match kind() {
        ScanKind::Swar => find_byte2_swar(hay, from, n1, n2),
        #[cfg(target_arch = "x86_64")]
        ScanKind::Sse2 => find_byte2_sse2(hay, from, n1, n2),
        #[cfg(target_arch = "x86_64")]
        ScanKind::Avx2 => find_byte2_avx2(hay, from, n1, n2),
        #[cfg(not(target_arch = "x86_64"))]
        _ => find_byte2_swar(hay, from, n1, n2),
    }
}

/// Position of the first occurrence of any of three needles in
/// `hay[from..]`, as an absolute offset (`memchr3`-style). The needles
/// need not be distinct. Dispatches to the active [`ScanKind`].
#[inline]
pub fn find_byte3(hay: &[u8], from: usize, n1: u8, n2: u8, n3: u8) -> Option<usize> {
    if from >= hay.len() {
        return None;
    }
    match kind() {
        ScanKind::Swar => find_byte3_swar(hay, from, n1, n2, n3),
        #[cfg(target_arch = "x86_64")]
        ScanKind::Sse2 => find_byte3_sse2(hay, from, n1, n2, n3),
        #[cfg(target_arch = "x86_64")]
        ScanKind::Avx2 => find_byte3_avx2(hay, from, n1, n2, n3),
        #[cfg(not(target_arch = "x86_64"))]
        _ => find_byte3_swar(hay, from, n1, n2, n3),
    }
}

/// First alignment `a >= from` with `hay[a + off1] == b1` and
/// `hay[a + off2] == b2` (offsets distinct, in either order). This is the
/// rare-byte candidate filter of `memchr::memmem`: the searchers pick `b1`
/// as the rarest pattern byte (vector-scanned) and `b2` as the second
/// rarest (scalar-confirmed), and verify the full pattern only at the
/// alignments this returns. Alignments whose confirm position falls past
/// the end of `hay` are never reported.
#[inline]
pub fn find_byte_offset_pair(
    hay: &[u8],
    from: usize,
    b1: u8,
    off1: usize,
    b2: u8,
    off2: usize,
) -> Option<usize> {
    debug_assert_ne!(off1, off2);
    // Scan for b1 at absolute position from+off1 onward; confirm b2.
    let mut at = from + off1;
    loop {
        let i = find_byte(hay, at, b1)?;
        let a = i - off1;
        let j = a + off2;
        if j >= hay.len() {
            // Only reachable when off2 > off1; later alignments only move
            // the confirm position further out.
            return None;
        }
        if hay[j] == b2 {
            return Some(a);
        }
        at = i + 1;
    }
}

/// Shared accelerated single-pattern search loop (Boyer–Moore and Horspool
/// differ only in their mismatch shift): vector-scan for the rarest
/// pattern byte, confirm the second rarest, verify right to left at the
/// candidate, and shift by `shift_fn(hay, pos, mismatch_idx)` on a
/// verification mismatch. [`find_byte_offset_pair`] is the public
/// uninstrumented form of the candidate scan; this instrumented twin
/// additionally attributes scanned bytes, comparisons and shifts to `m`.
///
/// `rare` is the [`rare_byte_pair`] of `pat` (`None` only for single-byte
/// patterns, which reduce to a plain scan).
pub(crate) fn rare_pair_find<M: crate::Metrics>(
    hay: &[u8],
    from: usize,
    pat: &[u8],
    rare: Option<((u8, usize), (u8, usize))>,
    m: &mut M,
    shift_fn: impl Fn(&[u8], usize, usize) -> usize,
) -> Option<usize> {
    let plen = pat.len();
    if from >= hay.len() || hay.len() - from < plen {
        return None;
    }
    let mut pos = from;
    let last = hay.len() - plen;
    let ((b1, o1), (b2, o2)) = match rare {
        Some(pair) => pair,
        None => {
            // Single-byte pattern: the scan is the whole search.
            return match find_byte(hay, pos, pat[0]) {
                Some(i) => {
                    m.scanned((i + 1 - pos) as u64);
                    if i > pos {
                        m.shift((i - pos) as u64);
                    }
                    Some(i)
                }
                None => {
                    m.scanned((hay.len() - pos) as u64);
                    m.shift((last + 1 - pos) as u64);
                    None
                }
            };
        }
    };
    // Next haystack position to vector-scan for the rare byte b1.
    let mut scan_at = pos + o1;
    loop {
        let Some(i) = find_byte(hay, scan_at, b1) else {
            m.scanned((hay.len() - scan_at.min(hay.len())) as u64);
            m.shift((last + 1 - pos) as u64);
            return None;
        };
        m.scanned((i + 1 - scan_at) as u64);
        let cand = i - o1; // i >= scan_at >= pos + o1, so cand >= pos
        if cand > last {
            m.shift((last + 1 - pos) as u64);
            return None;
        }
        // Confirm the second rare byte before full verification.
        m.cmp(1);
        if hay[cand + o2] != b2 {
            scan_at = i + 1;
            continue;
        }
        if cand > pos {
            m.shift((cand - pos) as u64);
            pos = cand;
        }
        // Verify right to left at the candidate alignment.
        let mut j = plen;
        while j > 0 {
            m.cmp(1);
            if hay[pos + j - 1] != pat[j - 1] {
                break;
            }
            j -= 1;
        }
        if j == 0 {
            return Some(pos);
        }
        let shift = shift_fn(hay, pos, j - 1);
        m.shift(shift as u64);
        pos += shift;
        if pos > last {
            return None;
        }
        // pos advanced past the old candidate, so this makes progress.
        scan_at = pos + o1;
    }
}

// ---------------------------------------------------------------------------
// SWAR (portable)
// ---------------------------------------------------------------------------

const LO: u64 = 0x0101_0101_0101_0101;
const HI: u64 = 0x8080_8080_8080_8080;

/// Mycroft's zero-byte detector: a set high bit per zero byte of `x`.
#[inline(always)]
fn zero_bytes(x: u64) -> u64 {
    x.wrapping_sub(LO) & !x & HI
}

/// Word-at-a-time scan: 8 bytes per iteration, no `unsafe`.
pub fn find_byte_swar(hay: &[u8], from: usize, needle: u8) -> Option<usize> {
    if from >= hay.len() {
        return None;
    }
    let splat = LO.wrapping_mul(needle as u64);
    let mut i = from;
    // Head: align to an 8-byte chunk boundary of the remaining slice.
    let (head, rest) = hay[from..].split_at(hay[from..].len().min((8 - (from % 8)) % 8));
    if let Some(p) = head.iter().position(|&b| b == needle) {
        return Some(from + p);
    }
    i += head.len();
    let mut chunks = rest.chunks_exact(8);
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        let found = zero_bytes(word ^ splat);
        if found != 0 {
            return Some(i + (found.trailing_zeros() / 8) as usize);
        }
        i += 8;
    }
    chunks.remainder().iter().position(|&b| b == needle).map(|p| i + p)
}

/// Two-needle word-at-a-time scan: 8 bytes per iteration, no `unsafe`.
pub fn find_byte2_swar(hay: &[u8], from: usize, n1: u8, n2: u8) -> Option<usize> {
    if from >= hay.len() {
        return None;
    }
    let s1 = LO.wrapping_mul(n1 as u64);
    let s2 = LO.wrapping_mul(n2 as u64);
    let mut i = from;
    let (head, rest) = hay[from..].split_at(hay[from..].len().min((8 - (from % 8)) % 8));
    if let Some(p) = head.iter().position(|&b| b == n1 || b == n2) {
        return Some(from + p);
    }
    i += head.len();
    let mut chunks = rest.chunks_exact(8);
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        let found = zero_bytes(word ^ s1) | zero_bytes(word ^ s2);
        if found != 0 {
            return Some(i + (found.trailing_zeros() / 8) as usize);
        }
        i += 8;
    }
    chunks.remainder().iter().position(|&b| b == n1 || b == n2).map(|p| i + p)
}

/// Three-needle word-at-a-time scan: 8 bytes per iteration, no `unsafe`.
pub fn find_byte3_swar(hay: &[u8], from: usize, n1: u8, n2: u8, n3: u8) -> Option<usize> {
    if from >= hay.len() {
        return None;
    }
    let s1 = LO.wrapping_mul(n1 as u64);
    let s2 = LO.wrapping_mul(n2 as u64);
    let s3 = LO.wrapping_mul(n3 as u64);
    let mut i = from;
    let (head, rest) = hay[from..].split_at(hay[from..].len().min((8 - (from % 8)) % 8));
    if let Some(p) = head.iter().position(|&b| b == n1 || b == n2 || b == n3) {
        return Some(from + p);
    }
    i += head.len();
    let mut chunks = rest.chunks_exact(8);
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        let found = zero_bytes(word ^ s1) | zero_bytes(word ^ s2) | zero_bytes(word ^ s3);
        if found != 0 {
            return Some(i + (found.trailing_zeros() / 8) as usize);
        }
        i += 8;
    }
    chunks.remainder().iter().position(|&b| b == n1 || b == n2 || b == n3).map(|p| i + p)
}

// ---------------------------------------------------------------------------
// SSE2 / AVX2 (x86_64)
// ---------------------------------------------------------------------------

/// 16 bytes per iteration. SSE2 is part of the `x86_64` baseline ISA.
#[cfg(target_arch = "x86_64")]
pub fn find_byte_sse2(hay: &[u8], from: usize, needle: u8) -> Option<usize> {
    use std::arch::x86_64::*;
    if from >= hay.len() {
        return None;
    }
    let len = hay.len();
    let mut i = from;
    // SAFETY: every `_mm_loadu_si128` below reads 16 bytes starting at
    // `hay[i]` with `i + 16 <= len` checked by the loop condition; `loadu`
    // has no alignment requirement.
    unsafe {
        let splat = _mm_set1_epi8(needle as i8);
        while i + 16 <= len {
            let v = _mm_loadu_si128(hay.as_ptr().add(i) as *const __m128i);
            let mask = _mm_movemask_epi8(_mm_cmpeq_epi8(v, splat)) as u32;
            if mask != 0 {
                return Some(i + mask.trailing_zeros() as usize);
            }
            i += 16;
        }
    }
    hay[i..].iter().position(|&b| b == needle).map(|p| i + p)
}

/// 32 bytes per iteration; callers must only dispatch here when AVX2 was
/// detected at runtime (enforced by [`kind`]/[`force_kind`]).
#[cfg(target_arch = "x86_64")]
pub fn find_byte_avx2(hay: &[u8], from: usize, needle: u8) -> Option<usize> {
    #[target_feature(enable = "avx2")]
    unsafe fn imp(hay: &[u8], from: usize, needle: u8) -> Option<usize> {
        use std::arch::x86_64::*;
        if from >= hay.len() {
            return None;
        }
        let len = hay.len();
        let mut i = from;
        // SAFETY: every `_mm256_loadu_si256` reads 32 bytes starting at
        // `hay[i]` with `i + 32 <= len` checked by the loop condition;
        // `loadu` has no alignment requirement.
        unsafe {
            let splat = _mm256_set1_epi8(needle as i8);
            while i + 32 <= len {
                let v = _mm256_loadu_si256(hay.as_ptr().add(i) as *const __m256i);
                let mask = _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, splat)) as u32;
                if mask != 0 {
                    return Some(i + mask.trailing_zeros() as usize);
                }
                i += 32;
            }
        }
        hay[i..].iter().position(|&b| b == needle).map(|p| i + p)
    }
    // SAFETY: dispatch reaches this function only after
    // `is_x86_feature_detected!("avx2")` succeeded (see `detect_kind` /
    // `force_kind`), so the target-feature precondition holds.
    unsafe { imp(hay, from, needle) }
}

/// Two-needle scan, 16 bytes per iteration (`x86_64` baseline ISA).
#[cfg(target_arch = "x86_64")]
pub fn find_byte2_sse2(hay: &[u8], from: usize, n1: u8, n2: u8) -> Option<usize> {
    use std::arch::x86_64::*;
    if from >= hay.len() {
        return None;
    }
    let len = hay.len();
    let mut i = from;
    // SAFETY: every `_mm_loadu_si128` below reads 16 bytes starting at
    // `hay[i]` with `i + 16 <= len` checked by the loop condition; `loadu`
    // has no alignment requirement.
    unsafe {
        let s1 = _mm_set1_epi8(n1 as i8);
        let s2 = _mm_set1_epi8(n2 as i8);
        while i + 16 <= len {
            let v = _mm_loadu_si128(hay.as_ptr().add(i) as *const __m128i);
            let eq = _mm_or_si128(_mm_cmpeq_epi8(v, s1), _mm_cmpeq_epi8(v, s2));
            let mask = _mm_movemask_epi8(eq) as u32;
            if mask != 0 {
                return Some(i + mask.trailing_zeros() as usize);
            }
            i += 16;
        }
    }
    hay[i..].iter().position(|&b| b == n1 || b == n2).map(|p| i + p)
}

/// Three-needle scan, 16 bytes per iteration (`x86_64` baseline ISA).
#[cfg(target_arch = "x86_64")]
pub fn find_byte3_sse2(hay: &[u8], from: usize, n1: u8, n2: u8, n3: u8) -> Option<usize> {
    use std::arch::x86_64::*;
    if from >= hay.len() {
        return None;
    }
    let len = hay.len();
    let mut i = from;
    // SAFETY: as in `find_byte2_sse2` — 16-byte unaligned loads with
    // `i + 16 <= len` checked by the loop condition.
    unsafe {
        let s1 = _mm_set1_epi8(n1 as i8);
        let s2 = _mm_set1_epi8(n2 as i8);
        let s3 = _mm_set1_epi8(n3 as i8);
        while i + 16 <= len {
            let v = _mm_loadu_si128(hay.as_ptr().add(i) as *const __m128i);
            let eq = _mm_or_si128(
                _mm_or_si128(_mm_cmpeq_epi8(v, s1), _mm_cmpeq_epi8(v, s2)),
                _mm_cmpeq_epi8(v, s3),
            );
            let mask = _mm_movemask_epi8(eq) as u32;
            if mask != 0 {
                return Some(i + mask.trailing_zeros() as usize);
            }
            i += 16;
        }
    }
    hay[i..].iter().position(|&b| b == n1 || b == n2 || b == n3).map(|p| i + p)
}

/// Two-needle scan, 32 bytes per iteration; callers must only dispatch
/// here when AVX2 was detected at runtime (enforced by [`kind`]).
#[cfg(target_arch = "x86_64")]
pub fn find_byte2_avx2(hay: &[u8], from: usize, n1: u8, n2: u8) -> Option<usize> {
    #[target_feature(enable = "avx2")]
    unsafe fn imp(hay: &[u8], from: usize, n1: u8, n2: u8) -> Option<usize> {
        use std::arch::x86_64::*;
        if from >= hay.len() {
            return None;
        }
        let len = hay.len();
        let mut i = from;
        // SAFETY: 32-byte unaligned loads with `i + 32 <= len` checked by
        // the loop condition.
        unsafe {
            let s1 = _mm256_set1_epi8(n1 as i8);
            let s2 = _mm256_set1_epi8(n2 as i8);
            while i + 32 <= len {
                let v = _mm256_loadu_si256(hay.as_ptr().add(i) as *const __m256i);
                let eq = _mm256_or_si256(_mm256_cmpeq_epi8(v, s1), _mm256_cmpeq_epi8(v, s2));
                let mask = _mm256_movemask_epi8(eq) as u32;
                if mask != 0 {
                    return Some(i + mask.trailing_zeros() as usize);
                }
                i += 32;
            }
        }
        hay[i..].iter().position(|&b| b == n1 || b == n2).map(|p| i + p)
    }
    // SAFETY: dispatch reaches this function only after
    // `is_x86_feature_detected!("avx2")` succeeded (see `detect_kind` /
    // `force_kind`), so the target-feature precondition holds.
    unsafe { imp(hay, from, n1, n2) }
}

/// Three-needle scan, 32 bytes per iteration; callers must only dispatch
/// here when AVX2 was detected at runtime (enforced by [`kind`]).
#[cfg(target_arch = "x86_64")]
pub fn find_byte3_avx2(hay: &[u8], from: usize, n1: u8, n2: u8, n3: u8) -> Option<usize> {
    #[target_feature(enable = "avx2")]
    unsafe fn imp(hay: &[u8], from: usize, n1: u8, n2: u8, n3: u8) -> Option<usize> {
        use std::arch::x86_64::*;
        if from >= hay.len() {
            return None;
        }
        let len = hay.len();
        let mut i = from;
        // SAFETY: 32-byte unaligned loads with `i + 32 <= len` checked by
        // the loop condition.
        unsafe {
            let s1 = _mm256_set1_epi8(n1 as i8);
            let s2 = _mm256_set1_epi8(n2 as i8);
            let s3 = _mm256_set1_epi8(n3 as i8);
            while i + 32 <= len {
                let v = _mm256_loadu_si256(hay.as_ptr().add(i) as *const __m256i);
                let eq = _mm256_or_si256(
                    _mm256_or_si256(_mm256_cmpeq_epi8(v, s1), _mm256_cmpeq_epi8(v, s2)),
                    _mm256_cmpeq_epi8(v, s3),
                );
                let mask = _mm256_movemask_epi8(eq) as u32;
                if mask != 0 {
                    return Some(i + mask.trailing_zeros() as usize);
                }
                i += 32;
            }
        }
        hay[i..].iter().position(|&b| b == n1 || b == n2 || b == n3).map(|p| i + p)
    }
    // SAFETY: dispatch precondition as in `find_byte2_avx2`.
    unsafe { imp(hay, from, n1, n2, n3) }
}

/// Plain byte loop, used as the oracle in tests.
pub fn find_byte_scalar(hay: &[u8], from: usize, needle: u8) -> Option<usize> {
    hay.get(from..)?.iter().position(|&b| b == needle).map(|p| from + p)
}

/// Plain two-needle byte loop, used as the oracle in tests.
pub fn find_byte2_scalar(hay: &[u8], from: usize, n1: u8, n2: u8) -> Option<usize> {
    hay.get(from..)?.iter().position(|&b| b == n1 || b == n2).map(|p| from + p)
}

/// Plain three-needle byte loop, used as the oracle in tests.
pub fn find_byte3_scalar(hay: &[u8], from: usize, n1: u8, n2: u8, n3: u8) -> Option<usize> {
    hay.get(from..)?.iter().position(|&b| b == n1 || b == n2 || b == n3).map(|p| from + p)
}

// ---------------------------------------------------------------------------
// Quote-aware tag-end scan
// ---------------------------------------------------------------------------

/// Resumable state of the quote-aware tag-end scan
/// ([`scan_tag_end_window`]). A fresh scan starts from
/// [`TagScan::new`]; when a window is exhausted without finding the
/// closing `>`, the state carries the open-quote and last-consumed-byte
/// context into the next window, so streaming inputs can refill between
/// calls without losing track.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagScan {
    /// `Some(q)` while inside an attribute value opened by quote byte `q`.
    quote: Option<u8>,
    /// Last byte consumed before the current scan position (`0` before
    /// anything was consumed) — needed to classify a closing `>` as a
    /// bachelor tag (`/>`).
    prev: u8,
}

impl TagScan {
    /// Start state: outside any quote, nothing consumed yet.
    pub fn new() -> TagScan {
        TagScan { quote: None, prev: 0 }
    }

    /// Is the scan currently inside a quoted attribute value? (Exposed so
    /// error paths can name the right context.)
    pub fn in_quote(&self) -> bool {
        self.quote.is_some()
    }
}

impl Default for TagScan {
    fn default() -> Self {
        TagScan::new()
    }
}

/// Length of the scalar peek the `peek_find*` family runs before paying
/// for a vector call: in dense markup the next stop is usually a handful
/// of bytes away, where vector setup costs more than it saves.
const PEEK: usize = 16;

/// Peek-then-hop single-needle scan: a [`PEEK`]-byte scalar peek before
/// the [`find_byte`] vector scan.
#[inline]
pub fn peek_find(hay: &[u8], from: usize, n1: u8) -> Option<usize> {
    if from >= hay.len() {
        return None;
    }
    let end = hay.len().min(from + PEEK);
    if let Some(p) = hay[from..end].iter().position(|&x| x == n1) {
        return Some(from + p);
    }
    if end == hay.len() {
        return None;
    }
    find_byte(hay, end, n1)
}

/// Peek-then-hop two-needle scan: a [`PEEK`]-byte scalar peek before the
/// [`find_byte2`] vector scan. The runtime's balanced depth scan calls it
/// directly for its `<e`/`</e` candidate hop.
#[inline]
pub fn peek_find2(hay: &[u8], from: usize, n1: u8, n2: u8) -> Option<usize> {
    if from >= hay.len() {
        return None;
    }
    let end = hay.len().min(from + PEEK);
    if let Some(p) = hay[from..end].iter().position(|&x| x == n1 || x == n2) {
        return Some(from + p);
    }
    if end == hay.len() {
        return None;
    }
    find_byte2(hay, end, n1, n2)
}

/// Peek-then-hop three-needle scan: a [`PEEK`]-byte scalar peek before
/// the [`find_byte3`] vector scan.
#[inline]
pub fn peek_find3(hay: &[u8], from: usize, n1: u8, n2: u8, n3: u8) -> Option<usize> {
    if from >= hay.len() {
        return None;
    }
    let end = hay.len().min(from + PEEK);
    if let Some(p) = hay[from..end].iter().position(|&x| x == n1 || x == n2 || x == n3) {
        return Some(from + p);
    }
    if end == hay.len() {
        return None;
    }
    find_byte3(hay, end, n1, n2, n3)
}

/// Scan `win[from..]` for the closing `>` of a tag, hopping `>`-to-`>` /
/// quote-to-quote with [`find_byte3`] and [`find_byte`] instead of
/// stepping per byte. `>` inside single- or double-quoted attribute
/// values does not terminate the tag.
///
/// Returns `Some((end, bachelor))` — `end` is the window-relative offset
/// one past the `>`, `bachelor` is true when the byte before the `>` was
/// `/` — or `None` when the window is exhausted first; in that case `st`
/// holds the resumption context and the caller continues with the next
/// window (`from = 0`). Semantics are byte-identical to the scalar
/// reference loop (`smpx_core`'s `scan_tag_end_scalar`), pinned by the
/// tokenizer edge-case tests.
pub fn scan_tag_end_window(win: &[u8], from: usize, st: &mut TagScan) -> Option<(usize, bool)> {
    // Adaptive prefix: most tags close within a few dozen bytes, where a
    // tight per-byte loop beats the setup cost of vector calls. Only tags
    // that outlive the prefix — long attribute values — switch to hops.
    const PREFIX: usize = 32;
    let mut i = from;
    // Resumed mid-quote: close the quote first (peek + vector hop).
    if let Some(q) = st.quote {
        let j = peek_find(win, i, q)?;
        st.quote = None;
        st.prev = q;
        i = j + 1;
    }
    // Per-byte prefix, shaped like the scalar reference loop (dedicated
    // inner quote loop, `prev` in a register).
    let prefix_end = win.len().min(from + PREFIX);
    let mut prev = st.prev;
    'prefix: while i < prefix_end {
        match win[i] {
            b'>' => return Some((i + 1, prev == b'/')),
            q @ (b'"' | b'\'') => {
                i += 1;
                while i < prefix_end {
                    if win[i] == q {
                        prev = q;
                        i += 1;
                        continue 'prefix;
                    }
                    i += 1;
                }
                // Quote still open at the prefix edge: hand to the hops.
                st.quote = Some(q);
                break 'prefix;
            }
            c => {
                prev = c;
                i += 1;
            }
        }
    }
    st.prev = prev;
    loop {
        if let Some(q) = st.quote {
            // Inside an attribute value: only its closing quote matters.
            let j = peek_find(win, i, q)?;
            st.quote = None;
            st.prev = q;
            i = j + 1;
        }
        match peek_find3(win, i, b'>', b'"', b'\'') {
            Some(j) => {
                if win[j] == b'>' {
                    let prev = if j > i { win[j - 1] } else { st.prev };
                    return Some((j + 1, prev == b'/'));
                }
                st.quote = Some(win[j]);
                i = j + 1;
            }
            None => {
                if i < win.len() {
                    st.prev = win[win.len() - 1];
                }
                return None;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// XML byte-frequency ranking
// ---------------------------------------------------------------------------

/// Relative frequency rank of each byte in XML documents; **lower is
/// rarer**. Hand-built from the byte histograms of XMark and MEDLINE
/// documents: markup punctuation and common English letters rank high,
/// capitals, digits and exotic punctuation rank low. The searchers scan
/// for a pattern's lowest-ranked byte so candidate alignments are as
/// sparse as possible.
#[rustfmt::skip]
const XML_BYTE_RANK: [u8; 256] = {
    let mut rank = [0u8; 256];
    // Default for unlisted bytes (control chars, high bit set): very rare.
    let mut i = 0;
    while i < 256 {
        rank[i] = 10;
        i += 1;
    }
    // Whitespace and markup punctuation: ubiquitous in XML.
    rank[b' ' as usize] = 255; rank[b'\n' as usize] = 240; rank[b'\t' as usize] = 200;
    rank[b'<' as usize] = 210; rank[b'>' as usize] = 210; rank[b'/' as usize] = 190;
    rank[b'=' as usize] = 150; rank[b'"' as usize] = 150; rank[b'\'' as usize] = 100;
    rank[b'&' as usize] = 60;  rank[b';' as usize] = 70;  rank[b'.' as usize] = 120;
    rank[b',' as usize] = 110; rank[b'-' as usize] = 90;  rank[b'_' as usize] = 40;
    rank[b'#' as usize] = 30;  rank[b'?' as usize] = 30;  rank[b'!' as usize] = 30;
    // Lowercase letters by rough English/markup frequency.
    rank[b'e' as usize] = 230; rank[b't' as usize] = 220; rank[b'a' as usize] = 220;
    rank[b'o' as usize] = 215; rank[b'i' as usize] = 215; rank[b'n' as usize] = 215;
    rank[b's' as usize] = 210; rank[b'r' as usize] = 205; rank[b'h' as usize] = 195;
    rank[b'l' as usize] = 185; rank[b'd' as usize] = 180; rank[b'c' as usize] = 175;
    rank[b'u' as usize] = 170; rank[b'm' as usize] = 160; rank[b'f' as usize] = 150;
    rank[b'p' as usize] = 145; rank[b'g' as usize] = 140; rank[b'w' as usize] = 135;
    rank[b'y' as usize] = 130; rank[b'b' as usize] = 125; rank[b'v' as usize] = 100;
    rank[b'k' as usize] = 80;  rank[b'x' as usize] = 50;  rank[b'j' as usize] = 45;
    rank[b'q' as usize] = 40;  rank[b'z' as usize] = 40;
    // Digits: attribute values and ids.
    let mut d = b'0';
    while d <= b'9' {
        rank[d as usize] = 110;
        d += 1;
    }
    // Capitals: rare in running text, common only as tag-name initials.
    let mut c = b'A';
    while c <= b'Z' {
        rank[c as usize] = 25;
        c += 1;
    }
    rank
};

/// The two rarest byte positions of `pat` under the XML frequency table,
/// rarest first: `((rarest, offset), (second, offset))`, or `None` when
/// the pattern is a single byte (scan for that byte alone). The rarest
/// byte is the one worth vector-scanning for; the second confirms a
/// candidate with one scalar load before full verification.
///
/// Ties prefer later offsets: a candidate confirmed further right rules
/// out more alignments per verification failure.
pub fn rare_byte_pair(pat: &[u8]) -> Option<((u8, usize), (u8, usize))> {
    if pat.len() < 2 {
        return None;
    }
    let rank = |b: u8| XML_BYTE_RANK[b as usize];
    // Rarest byte.
    let mut best = 0usize;
    for i in 1..pat.len() {
        if rank(pat[i]) <= rank(pat[best]) {
            best = i;
        }
    }
    // Second-rarest at a different offset.
    let mut second = if best == 0 { 1 } else { 0 };
    for i in 0..pat.len() {
        if i != best && rank(pat[i]) <= rank(pat[second]) {
            second = i;
        }
    }
    Some(((pat[best], best), (pat[second], second)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_impls(hay: &[u8], from: usize, needle: u8) -> Vec<(&'static str, Option<usize>)> {
        let mut v = vec![
            ("scalar", find_byte_scalar(hay, from, needle)),
            ("swar", find_byte_swar(hay, from, needle)),
        ];
        #[cfg(target_arch = "x86_64")]
        {
            v.push(("sse2", find_byte_sse2(hay, from, needle)));
            if std::arch::is_x86_feature_detected!("avx2") {
                v.push(("avx2", find_byte_avx2(hay, from, needle)));
            }
        }
        v
    }

    #[test]
    fn impls_agree_on_lane_boundaries() {
        // Needle placed at every position of haystacks sized around the
        // SWAR-word (8) and SSE/AVX lane (16/32) boundaries.
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65] {
            for at in 0..len {
                let mut hay = vec![b'x'; len];
                hay[at] = b'<';
                for from in 0..=len {
                    let want = find_byte_scalar(&hay, from, b'<');
                    for (name, got) in all_impls(&hay, from, b'<') {
                        assert_eq!(got, want, "{name} len={len} at={at} from={from}");
                    }
                }
            }
        }
    }

    #[test]
    fn finds_first_of_many() {
        let hay = b"aaa<bb<cc<";
        for (name, got) in all_impls(hay, 0, b'<') {
            assert_eq!(got, Some(3), "{name}");
        }
        for (name, got) in all_impls(hay, 4, b'<') {
            assert_eq!(got, Some(6), "{name}");
        }
    }

    #[test]
    fn missing_needle() {
        let hay = vec![b'q'; 100];
        for (name, got) in all_impls(&hay, 0, b'<') {
            assert_eq!(got, None, "{name}");
        }
    }

    #[test]
    fn from_past_end() {
        assert_eq!(find_byte(b"abc", 3, b'a'), None);
        assert_eq!(find_byte(b"abc", 100, b'a'), None);
        assert_eq!(find_byte(b"", 0, b'a'), None);
        // The per-impl entry points must be as tolerant as the dispatcher.
        for (name, got) in all_impls(b"abc", 100, b'a') {
            assert_eq!(got, None, "{name}");
        }
    }

    #[test]
    fn offset_pair_confirms_second_byte() {
        //        0123456789
        let hay = b"xIxxICxIC!";
        // b1='I' at offset 0, b2='C' at offset 1 → alignment 4 then 7.
        assert_eq!(find_byte_offset_pair(hay, 0, b'I', 0, b'C', 1), Some(4));
        assert_eq!(find_byte_offset_pair(hay, 5, b'I', 0, b'C', 1), Some(7));
        // Pair straddling the end is never reported.
        assert_eq!(find_byte_offset_pair(b"xxI", 0, b'I', 0, b'C', 1), None);
    }

    #[test]
    fn rare_pair_prefers_rare_bytes() {
        // '_' (rank 40) and 'q' (rank 40) are much rarer than the vowels.
        let ((b1, o1), (b2, o2)) = rare_byte_pair(b"sea_quest").unwrap();
        assert_ne!(o1, o2);
        let picked = [b1, b2];
        assert!(picked.contains(&b'_') && picked.contains(&b'q'), "picked {picked:?}");
        assert_eq!(rare_byte_pair(b"a"), None);
        // Offsets always point at the byte they pair with.
        let pat = b"<item";
        let ((r1, p1), (r2, p2)) = rare_byte_pair(pat).unwrap();
        assert_eq!(pat[p1], r1);
        assert_eq!(pat[p2], r2);
    }

    fn all_impls2(hay: &[u8], from: usize, n1: u8, n2: u8) -> Vec<(&'static str, Option<usize>)> {
        let mut v = vec![
            ("scalar", find_byte2_scalar(hay, from, n1, n2)),
            ("swar", find_byte2_swar(hay, from, n1, n2)),
        ];
        #[cfg(target_arch = "x86_64")]
        {
            v.push(("sse2", find_byte2_sse2(hay, from, n1, n2)));
            if std::arch::is_x86_feature_detected!("avx2") {
                v.push(("avx2", find_byte2_avx2(hay, from, n1, n2)));
            }
        }
        v
    }

    fn all_impls3(
        hay: &[u8],
        from: usize,
        n1: u8,
        n2: u8,
        n3: u8,
    ) -> Vec<(&'static str, Option<usize>)> {
        let mut v = vec![
            ("scalar", find_byte3_scalar(hay, from, n1, n2, n3)),
            ("swar", find_byte3_swar(hay, from, n1, n2, n3)),
        ];
        #[cfg(target_arch = "x86_64")]
        {
            v.push(("sse2", find_byte3_sse2(hay, from, n1, n2, n3)));
            if std::arch::is_x86_feature_detected!("avx2") {
                v.push(("avx2", find_byte3_avx2(hay, from, n1, n2, n3)));
            }
        }
        v
    }

    #[test]
    fn multi_needle_impls_agree_on_lane_boundaries() {
        // Each needle placed at every position of haystacks sized around
        // the SWAR-word (8) and SSE/AVX lane (16/32) boundaries.
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65] {
            for at in 0..len {
                for needle in [b'<', b'>'] {
                    let mut hay = vec![b'x'; len];
                    hay[at] = needle;
                    for from in 0..=len {
                        let want2 = find_byte2_scalar(&hay, from, b'<', b'>');
                        for (name, got) in all_impls2(&hay, from, b'<', b'>') {
                            assert_eq!(got, want2, "{name} len={len} at={at} from={from}");
                        }
                        let want3 = find_byte3_scalar(&hay, from, b'<', b'>', b'"');
                        for (name, got) in all_impls3(&hay, from, b'<', b'>', b'"') {
                            assert_eq!(got, want3, "{name} len={len} at={at} from={from}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn multi_needle_finds_earliest_of_either() {
        let hay = b"aaa>bb<cc>";
        for (name, got) in all_impls2(hay, 0, b'<', b'>') {
            assert_eq!(got, Some(3), "{name}");
        }
        for (name, got) in all_impls2(hay, 4, b'<', b'>') {
            assert_eq!(got, Some(6), "{name}");
        }
        // Duplicate needles degrade to a single-byte scan.
        for (name, got) in all_impls2(hay, 0, b'<', b'<') {
            assert_eq!(got, Some(6), "{name}");
        }
        for (name, got) in all_impls3(b"..'..\">.", 0, b'>', b'"', b'\'') {
            assert_eq!(got, Some(2), "{name}");
        }
    }

    #[test]
    fn multi_needle_missing_and_past_end() {
        let hay = vec![b'q'; 100];
        for (name, got) in all_impls2(&hay, 0, b'<', b'>') {
            assert_eq!(got, None, "{name}");
        }
        for (name, got) in all_impls3(&hay, 0, b'<', b'>', b'"') {
            assert_eq!(got, None, "{name}");
        }
        assert_eq!(find_byte2(b"abc", 100, b'a', b'b'), None);
        assert_eq!(find_byte3(b"abc", 100, b'a', b'b', b'c'), None);
        for (name, got) in all_impls2(b"abc", 100, b'a', b'b') {
            assert_eq!(got, None, "{name}");
        }
        for (name, got) in all_impls3(b"abc", 100, b'a', b'b', b'c') {
            assert_eq!(got, None, "{name}");
        }
    }

    #[test]
    fn tag_scan_plain_and_bachelor() {
        let mut st = TagScan::new();
        assert_eq!(scan_tag_end_window(b" a='1'>rest", 0, &mut st), Some((7, false)));
        let mut st = TagScan::new();
        assert_eq!(scan_tag_end_window(b" a='1'/>rest", 0, &mut st), Some((8, true)));
        // '>' as the very first byte: prev is the initial 0, not bachelor.
        let mut st = TagScan::new();
        assert_eq!(scan_tag_end_window(b">x", 0, &mut st), Some((1, false)));
    }

    #[test]
    fn tag_scan_quoted_gt_is_skipped() {
        for tag in [&b" a=\"x>y\" >"[..], &b" a='x>y' >"[..], &b" a='>>>>' b=\">\">"[..]] {
            let mut st = TagScan::new();
            let (end, bachelor) = scan_tag_end_window(tag, 0, &mut st).unwrap();
            assert_eq!(end, tag.len(), "tag={}", String::from_utf8_lossy(tag));
            assert!(!bachelor);
        }
        // A quote closing right before the '>' is not a bachelor marker
        // even when the quoted value ends in '/'.
        let mut st = TagScan::new();
        assert_eq!(scan_tag_end_window(b" a='/'>", 0, &mut st), Some((7, false)));
    }

    #[test]
    fn tag_scan_resumes_across_windows() {
        // Split " a='x>y' />rest" at every boundary; the reassembled scan
        // must agree with the whole-slice scan.
        let tag = b" a='x>y' q=\"//\" />rest";
        let mut whole = TagScan::new();
        let want = scan_tag_end_window(tag, 0, &mut whole).unwrap();
        for cut in 0..tag.len() {
            let mut st = TagScan::new();
            match scan_tag_end_window(&tag[..cut], 0, &mut st) {
                Some(got) => assert_eq!(got, want, "cut={cut} (found early)"),
                None => {
                    let (end, bachelor) =
                        scan_tag_end_window(&tag[cut..], 0, &mut st).expect("found in second half");
                    assert_eq!((end + cut, bachelor), want, "cut={cut}");
                }
            }
        }
    }

    #[test]
    fn tag_scan_exhausted_window_keeps_state() {
        let mut st = TagScan::new();
        assert_eq!(scan_tag_end_window(b" a='open", 0, &mut st), None);
        assert!(st.in_quote());
        // Still quoted: a '>' in the next window is consumed as value text.
        assert_eq!(scan_tag_end_window(b">>still'", 0, &mut st), None);
        assert!(!st.in_quote());
        assert_eq!(scan_tag_end_window(b">", 0, &mut st), Some((1, false)));
    }

    #[test]
    fn kind_is_cached_and_forcible() {
        let original = kind();
        force_kind(ScanKind::Swar);
        assert_eq!(kind(), ScanKind::Swar);
        assert_eq!(find_byte(b"hello<world", 0, b'<'), Some(5));
        force_kind(original);
        assert_eq!(kind(), original);
    }
}
