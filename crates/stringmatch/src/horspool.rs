//! Boyer–Moore–Horspool single-keyword search (Horspool 1980).
//!
//! A simplification of Boyer–Moore that only keeps the bad-character rule,
//! always keyed on the haystack byte aligned with the *last* pattern
//! position. Included as an ablation point: the paper's shifts come mostly
//! from the bad-character rule on XML inputs, so Horspool is expected to be
//! close to full BM there (the `ablations` bench quantifies this).

use crate::{memscan, Metrics, NoMetrics};

/// A compiled Horspool searcher for one pattern.
#[derive(Debug, Clone)]
pub struct Horspool {
    pattern: Vec<u8>,
    /// Shift keyed by the haystack byte under the last pattern position.
    shift: [usize; 256],
    /// Rare-byte pair for the vectorized candidate scan (rarest first).
    rare: Option<((u8, usize), (u8, usize))>,
}

impl Horspool {
    /// Compile `pattern`. Panics on an empty pattern.
    pub fn new(pattern: &[u8]) -> Self {
        assert!(!pattern.is_empty(), "Horspool pattern must be non-empty");
        let m = pattern.len();
        let mut shift = [m; 256];
        for (i, &b) in pattern.iter().enumerate().take(m - 1) {
            shift[b as usize] = m - 1 - i;
        }
        Horspool { pattern: pattern.to_vec(), shift, rare: memscan::rare_byte_pair(pattern) }
    }

    /// The compiled pattern.
    pub fn pattern(&self) -> &[u8] {
        &self.pattern
    }

    /// Leftmost occurrence, uninstrumented.
    pub fn find(&self, hay: &[u8]) -> Option<usize> {
        self.find_at(hay, 0, &mut NoMetrics)
    }

    /// Leftmost occurrence whose start is `>= from`.
    ///
    /// Uses the vectorized rare-byte candidate scan unless `SMPX_NO_SIMD=1`
    /// forces the classic loop ([`find_at_scalar`](Self::find_at_scalar)).
    pub fn find_at<M: Metrics>(&self, hay: &[u8], from: usize, m: &mut M) -> Option<usize> {
        if memscan::accel_enabled() {
            self.find_at_accel(hay, from, m)
        } else {
            self.find_at_scalar(hay, from, m)
        }
    }

    /// The classic Horspool loop (`SMPX_NO_SIMD=1` fallback and ablation
    /// baseline); result-identical to [`find_at`](Self::find_at).
    pub fn find_at_scalar<M: Metrics>(&self, hay: &[u8], from: usize, m: &mut M) -> Option<usize> {
        let pat = &self.pattern[..];
        let plen = pat.len();
        if from >= hay.len() || hay.len() - from < plen {
            return None;
        }
        let mut pos = from;
        let last = hay.len() - plen;
        while pos <= last {
            let mut j = plen;
            while j > 0 {
                m.cmp(1);
                if hay[pos + j - 1] != pat[j - 1] {
                    break;
                }
                j -= 1;
            }
            if j == 0 {
                return Some(pos);
            }
            let s = self.shift[hay[pos + plen - 1] as usize];
            m.shift(s as u64);
            pos += s;
        }
        None
    }

    /// Vectorized path ([`memscan::rare_pair_find`]): rare-byte candidate
    /// scan, right-to-left verify, bad-character shift on mismatch — the
    /// same shared loop as the Boyer–Moore twin, differing only in the
    /// shift rule.
    fn find_at_accel<M: Metrics>(&self, hay: &[u8], from: usize, m: &mut M) -> Option<usize> {
        let plen = self.pattern.len();
        memscan::rare_pair_find(hay, from, &self.pattern, self.rare, m, |hay, pos, _| {
            self.shift[hay[pos + plen - 1] as usize]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;

    fn check(hay: &[u8], pat: &[u8]) {
        let h = Horspool::new(pat);
        assert_eq!(h.find(hay), naive::find(hay, pat), "hay={hay:?} pat={pat:?}");
    }

    #[test]
    fn agrees_with_naive() {
        check(b"hello world", b"world");
        check(b"hello world", b"zzz");
        check(b"aabaabaaab", b"aaab");
        check(b"abababababab", b"bab");
        check(b"x", b"x");
        check(b"", b"x");
    }

    #[test]
    fn from_offset() {
        let h = Horspool::new(b"ab");
        assert_eq!(h.find_at(b"abab", 1, &mut NoMetrics), Some(2));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_pattern_panics() {
        let _ = Horspool::new(b"");
    }
}
