//! Commentz–Walter multi-keyword skipping search (Commentz-Walter, ICALP
//! 1979).
//!
//! The SMP runtime uses this engine whenever the frontier vocabulary of the
//! current automaton state holds several keywords (the paper's `(CW)` branch
//! in Fig. 4). Like Boyer–Moore it matches **right to left** and *skips*
//! haystack characters; unlike Aho–Corasick it does not touch every input
//! position.
//!
//! # Algorithm
//!
//! A window of length `lmin` (the shortest pattern) slides over the
//! haystack. At each alignment the haystack is read backwards from the
//! window end through a trie of the *reversed* patterns; every trie node
//! that completes a reversed pattern reports an occurrence ending at the
//! window end. On a mismatch the window shifts forward by the maximum of
//! two independently safe shift functions:
//!
//! * **bad character** — `max(d1[c] − t, 1)` where `c` is the mismatching
//!   byte read at backward depth `t` and `d1[c]` is the minimal distance
//!   (≥ 1, capped at `lmin`) of `c` from the right end of any pattern.
//!   Capping at `lmin` is what makes this rule safe on its own: a pattern
//!   occurrence that does not cover the mismatch position must end at least
//!   `lmin − t` beyond the current window end.
//! * **good suffix** — a per-node shift `gs[v]`: the minimal `s ≥ 1` such
//!   that shifting the window by `s` re-aligns the already-matched backward
//!   string `u` with (a) a factor of some pattern at distance `s` from its
//!   end, or (b) a whole pattern lying inside `u`'s right portion. Defaults
//!   to `lmin`.
//!
//! Both rules follow the classical Commentz–Walter construction; the
//! property tests in `tests/proptest_matchers.rs` verify the full occurrence
//! set against Aho–Corasick and naive oracles.

//! # Vectorized fast path
//!
//! Occurrences can only start at positions holding some pattern's *first*
//! byte. Whenever the vocabulary has at most three distinct first bytes —
//! always true for SMP frontier vocabularies, where every keyword starts
//! with `<` — the searcher vector-scans ([`crate::memscan`]) for those
//! bytes (`find_byte`/[`find_byte2`](memscan::find_byte2)/
//! [`find_byte3`](memscan::find_byte3)) before entering any trie:
//! positions that cannot start a pattern are skipped without a single
//! scalar comparison, with no shared-prefix assumption. Vocabularies with
//! four or more distinct first bytes fall back to the classic windowed
//! loop. `SMPX_NO_SIMD=1` (or
//! [`memscan::force_accel`](crate::memscan::force_accel)) disables the
//! fast path; [`CommentzWalter::find_at_scalar`] exposes the pure windowed
//! loop directly.

use crate::{memscan, Metrics, MultiMatch, NoMetrics};

#[derive(Debug, Clone, Default)]
struct Node {
    /// Sorted outgoing edges (byte, target).
    edges: Vec<(u8, u32)>,
    /// Patterns whose reversal ends at this node.
    out: Vec<u32>,
    /// Good-suffix shift for a mismatch below this node.
    gs: u32,
    /// Minimal `s` for rule (b): some reversed pattern's tail starting at
    /// offset `s` ends exactly at this node (propagated to descendants).
    tail: u32,
}

impl Node {
    fn child(&self, b: u8) -> Option<u32> {
        self.edges.binary_search_by_key(&b, |&(c, _)| c).ok().map(|i| self.edges[i].1)
    }
}

/// Node of the *forward* pattern trie forest used by the accelerated fast
/// path (built only when the patterns have at most three distinct first
/// bytes). Each first byte owns a root representing the state after
/// consuming it.
#[derive(Debug, Clone)]
struct FwdNode {
    /// Sorted outgoing edges (byte, target).
    edges: Vec<(u8, u32)>,
    /// Smallest index of a pattern ending at this node (`u32::MAX` none).
    out: u32,
}

impl FwdNode {
    fn new() -> FwdNode {
        FwdNode { edges: Vec::new(), out: u32::MAX }
    }

    fn child(&self, b: u8) -> Option<u32> {
        self.edges.binary_search_by_key(&b, |&(c, _)| c).ok().map(|i| self.edges[i].1)
    }
}

/// A compiled Commentz–Walter searcher over a pattern set.
#[derive(Debug, Clone)]
pub struct CommentzWalter {
    nodes: Vec<Node>,
    patterns: Vec<Vec<u8>>,
    /// Length of the shortest pattern (window size).
    lmin: usize,
    /// Length of the longest pattern (bounds how far an occurrence start
    /// can trail its detection window).
    lmax: usize,
    /// `d1[c]`: minimal distance ≥ 1 of byte `c` from the right end of any
    /// pattern, capped at `lmin`.
    d1: [u32; 256],
    /// The distinct first bytes of the patterns, each paired with the root
    /// of its forward trie in `fwd_nodes` — sorted by byte, at most three
    /// entries (empty when the vocabulary has more distinct first bytes,
    /// which disables the vectorized fast path). SMP frontier vocabularies
    /// always collapse to the single entry `(b'<', _)`.
    fwd_roots: Vec<(u8, u32)>,
    /// `fwd_roots`' bytes unpacked by arity, so the hot candidate hop
    /// dispatches once per call instead of walking a slice per peeked
    /// byte. `None` disables the fast path (> 3 distinct first bytes).
    first_needles: Option<FirstNeedles>,
    /// Forward trie forest over the patterns minus their first byte (empty
    /// unless `fwd_roots` is populated): the fast path verifies all
    /// patterns starting with a given byte at a candidate with one walk,
    /// comparing each haystack byte at most once.
    fwd_nodes: Vec<FwdNode>,
}

/// The distinct pattern first bytes, unpacked for the candidate hop: the
/// single-needle case (every SMP frontier vocabulary) must compile to the
/// same one-compare peek loop a hard-coded byte would.
#[derive(Debug, Clone, Copy)]
enum FirstNeedles {
    One(u8),
    Two(u8, u8),
    Three(u8, u8, u8),
}

/// Locate the next candidate-start byte for the fast path, via the
/// `memscan::peek_find*` family: a short scalar peek covers the
/// dense-markup common case (the next tag is a handful of bytes away)
/// without paying the vector-call overhead, and the vector scan — one,
/// two or three needles wide, matching the distinct first bytes of the
/// vocabulary — takes over for long candidate-free text runs, where it
/// shines.
#[inline]
fn next_first_byte(hay: &[u8], from: usize, needles: FirstNeedles) -> Option<usize> {
    match needles {
        FirstNeedles::One(a) => memscan::peek_find(hay, from, a),
        FirstNeedles::Two(a, b) => memscan::peek_find2(hay, from, a, b),
        FirstNeedles::Three(a, b, c) => memscan::peek_find3(hay, from, a, b, c),
    }
}

impl CommentzWalter {
    /// Compile the pattern set. Panics if the set or any pattern is empty.
    pub fn new<P: AsRef<[u8]>>(patterns: &[P]) -> Self {
        assert!(!patterns.is_empty(), "CommentzWalter needs at least one pattern");
        let patterns: Vec<Vec<u8>> = patterns.iter().map(|p| p.as_ref().to_vec()).collect();
        for p in &patterns {
            assert!(!p.is_empty(), "CommentzWalter patterns must be non-empty");
        }
        let lmin = patterns.iter().map(|p| p.len()).min().unwrap();
        let lmax = patterns.iter().map(|p| p.len()).max().unwrap();
        let mut firsts: Vec<u8> = patterns.iter().map(|p| p[0]).collect();
        firsts.sort_unstable();
        firsts.dedup();

        // Trie over reversed patterns.
        let mut nodes = vec![Node { gs: lmin as u32, tail: lmin as u32, ..Node::default() }];
        for (idx, pat) in patterns.iter().enumerate() {
            let mut cur = 0u32;
            for &b in pat.iter().rev() {
                cur = match nodes[cur as usize].child(b) {
                    Some(n) => n,
                    None => {
                        let n = nodes.len() as u32;
                        nodes.push(Node { gs: lmin as u32, tail: lmin as u32, ..Node::default() });
                        let edges = &mut nodes[cur as usize].edges;
                        let at = edges.partition_point(|&(c, _)| c < b);
                        edges.insert(at, (b, n));
                        n
                    }
                };
            }
            nodes[cur as usize].out.push(idx as u32);
        }

        // Bad-character distances.
        let mut d1 = [lmin as u32; 256];
        for p in &patterns {
            for j in 1..p.len() {
                let c = p[p.len() - 1 - j];
                let dist = j.min(lmin) as u32;
                if dist < d1[c as usize] {
                    d1[c as usize] = dist;
                }
            }
        }

        // Good-suffix candidates: walk every reversed-pattern tail rp[s..]
        // through the trie. Each visited node (root included: the empty
        // string is a factor at every offset) gets candidate `s`; a fully
        // consumed tail records a rule-(b) candidate for the subtree.
        for pat in &patterns {
            let rp: Vec<u8> = pat.iter().rev().copied().collect();
            for s in 1..=rp.len().min(lmin.saturating_sub(1)) {
                let mut cur = 0u32;
                nodes[0].gs = nodes[0].gs.min(s as u32);
                let mut d = 0usize;
                while s + d < rp.len() {
                    match nodes[cur as usize].child(rp[s + d]) {
                        Some(n) => {
                            cur = n;
                            d += 1;
                            nodes[cur as usize].gs = nodes[cur as usize].gs.min(s as u32);
                        }
                        None => break,
                    }
                }
                if s + d == rp.len() {
                    nodes[cur as usize].tail = nodes[cur as usize].tail.min(s as u32);
                }
            }
        }

        // Propagate rule-(b) candidates to descendants (DFS, ancestors-or-self).
        let mut stack = vec![(0u32, lmin as u32)];
        while let Some((v, inherited)) = stack.pop() {
            let running = inherited.min(nodes[v as usize].tail);
            nodes[v as usize].gs = nodes[v as usize].gs.min(running);
            let children: Vec<u32> = nodes[v as usize].edges.iter().map(|&(_, t)| t).collect();
            for c in children {
                stack.push((c, running));
            }
        }

        // Forward trie forest for the first-byte fast path: one root per
        // distinct first byte, the vector scan covering up to three.
        let mut fwd_nodes = Vec::new();
        let mut fwd_roots: Vec<(u8, u32)> = Vec::new();
        if firsts.len() <= 3 {
            for &b in &firsts {
                fwd_roots.push((b, fwd_nodes.len() as u32));
                fwd_nodes.push(FwdNode::new());
            }
            for (idx, pat) in patterns.iter().enumerate() {
                let mut cur = fwd_roots[fwd_roots.partition_point(|&(b, _)| b < pat[0])].1;
                for &b in &pat[1..] {
                    cur = match fwd_nodes[cur as usize].child(b) {
                        Some(n) => n,
                        None => {
                            let n = fwd_nodes.len() as u32;
                            fwd_nodes.push(FwdNode::new());
                            let edges = &mut fwd_nodes[cur as usize].edges;
                            let at = edges.partition_point(|&(c, _)| c < b);
                            edges.insert(at, (b, n));
                            n
                        }
                    };
                }
                let out = &mut fwd_nodes[cur as usize].out;
                *out = (*out).min(idx as u32);
            }
        }

        let first_needles = match fwd_roots.as_slice() {
            [(a, _)] => Some(FirstNeedles::One(*a)),
            [(a, _), (b, _)] => Some(FirstNeedles::Two(*a, *b)),
            [(a, _), (b, _), (c, _)] => Some(FirstNeedles::Three(*a, *b, *c)),
            _ => None,
        };

        CommentzWalter { nodes, patterns, lmin, lmax, d1, fwd_roots, first_needles, fwd_nodes }
    }

    /// The pattern set, in construction order.
    pub fn patterns(&self) -> &[Vec<u8>] {
        &self.patterns
    }

    /// Length of the shortest pattern (the sliding-window size).
    pub fn min_len(&self) -> usize {
        self.lmin
    }

    /// First match by end position (ties: smallest pattern index),
    /// uninstrumented.
    pub fn find(&self, hay: &[u8]) -> Option<MultiMatch> {
        self.find_at(hay, 0, &mut NoMetrics)
    }

    /// First match by end position whose start is `>= from`, instrumented.
    ///
    /// Note that because matching is right-to-left over a window, "first" is
    /// defined by the *end* offset of the occurrence. For the token
    /// keywords SMP uses (each containing exactly one `<`) occurrences can
    /// never overlap, so first-by-end coincides with first-by-start.
    ///
    /// Uses the vectorized prefix fast path when all patterns share their
    /// first byte, unless `SMPX_NO_SIMD=1` forces the pure windowed loop
    /// ([`find_at_scalar`](Self::find_at_scalar)).
    pub fn find_at<M: Metrics>(&self, hay: &[u8], from: usize, m: &mut M) -> Option<MultiMatch> {
        if memscan::accel_enabled() {
            self.find_at_accel(hay, from, m)
        } else {
            self.find_at_scalar(hay, from, m)
        }
    }

    /// Accelerated search. Occurrences can only start at positions holding
    /// one of the patterns' first bytes (just `<` for SMP vocabularies) —
    /// so instead of sliding windows through the trie, hop from first byte
    /// to first byte with the (up to three-needle) vector scan and verify
    /// the patterns forward at each stop. The result is the global minimum
    /// by `(end, pattern index)` among occurrences starting `>= from`,
    /// which is exactly what the windowed loop computes: the window loop
    /// returns the first *window* (= smallest end) with a detection and
    /// breaks ties by pattern index.
    fn find_at_accel<M: Metrics>(&self, hay: &[u8], from: usize, m: &mut M) -> Option<MultiMatch> {
        let lmin = self.lmin;
        if from >= hay.len() || hay.len() - from < lmin {
            return None;
        }
        let Some(needles) = self.first_needles else {
            // Four or more distinct first bytes: beyond the vector scan's
            // needle budget, keep the windowed loop.
            return self.find_at_scalar(hay, from, m);
        };
        // Last position where even the shortest pattern still fits.
        let last_start = hay.len() - lmin;
        let mut cursor = from;
        let mut best: Option<MultiMatch> = None;
        loop {
            if cursor > last_start {
                break;
            }
            if let Some(bst) = best {
                // Any later occurrence ends at `start + plen >= start +
                // lmin`; once that exceeds the best end (ties included),
                // the best can no longer be beaten.
                if cursor + lmin > bst.end {
                    break;
                }
            }
            let Some(s) = next_first_byte(hay, cursor, needles) else {
                m.scanned((hay.len() - cursor) as u64);
                if best.is_none() {
                    m.shift((last_start + 1 - cursor) as u64);
                }
                break;
            };
            m.scanned((s + 1 - cursor) as u64);
            if s > last_start {
                if best.is_none() {
                    m.shift((last_start + 1 - cursor) as u64);
                }
                break;
            }
            if let Some(bst) = best {
                if s + lmin > bst.end {
                    break;
                }
            }
            if s > cursor {
                m.shift((s - cursor) as u64);
            }
            // One forward-trie walk verifies every pattern starting with
            // `hay[s]` at `s`; each haystack byte is compared at most once
            // (byte 0 selected this trie root, and the scan already
            // confirmed and accounted for it). The shallowest accepting
            // node is the smallest end at `s`; deeper matches only end
            // later, so the walk can stop there.
            let mut v = self.fwd_root(hay[s]);
            let mut depth = 1usize;
            loop {
                let node = &self.fwd_nodes[v as usize];
                if node.out != u32::MAX {
                    let end = s + depth;
                    let idx = node.out as usize;
                    if best.is_none_or(|bst| (end, idx) < (bst.end, bst.pattern)) {
                        best = Some(MultiMatch { pattern: idx, start: s, end });
                    }
                    break;
                }
                if s + depth >= hay.len() {
                    break;
                }
                m.cmp(1);
                match node.child(hay[s + depth]) {
                    Some(n) => {
                        v = n;
                        depth += 1;
                    }
                    None => break,
                }
            }
            cursor = s + 1;
        }
        best
    }

    /// Root of the forward trie for first byte `b` (a scan stop is always
    /// one of the ≤ 3 distinct first bytes, so the linear probe — one
    /// compare for SMP vocabularies — always hits).
    #[inline]
    fn fwd_root(&self, b: u8) -> u32 {
        for &(fb, r) in &self.fwd_roots {
            if fb == b {
                return r;
            }
        }
        unreachable!("scan stops only on pattern first bytes")
    }

    /// The pure Commentz–Walter windowed loop without the vectorized
    /// prefix fast path (`SMPX_NO_SIMD=1` fallback and ablation baseline);
    /// result-identical to [`find_at`](Self::find_at).
    pub fn find_at_scalar<M: Metrics>(
        &self,
        hay: &[u8],
        from: usize,
        m: &mut M,
    ) -> Option<MultiMatch> {
        let lmin = self.lmin;
        if from >= hay.len() || hay.len() - from < lmin {
            return None;
        }
        let mut pos = from;
        let last_pos = hay.len() - lmin;
        while pos <= last_pos {
            let e = pos + lmin - 1;
            let (best, shift) = self.scan_window(hay, from, e, m);
            if let Some(mm) = best {
                return Some(mm);
            }
            m.shift(shift as u64);
            pos += shift;
        }
        None
    }

    /// All matches, sorted by (end, pattern index).
    pub fn find_iter<'h>(&'h self, hay: &'h [u8]) -> impl Iterator<Item = MultiMatch> + 'h {
        let lmin = self.lmin;
        let span = self.lmax - lmin;
        let accel = if memscan::accel_enabled() { self.first_needles } else { None };
        let mut pos = 0usize;
        let mut known_first: Option<usize> = None;
        let mut pending: Vec<MultiMatch> = Vec::new();
        std::iter::from_fn(move || loop {
            if let Some(mm) = pending.pop() {
                return Some(mm);
            }
            if hay.len() < lmin || pos > hay.len() - lmin {
                return None;
            }
            if let Some(needles) = accel {
                // Same fast-forward as `find_at`, minus the `from` floor.
                let lo = pos.saturating_sub(span);
                let lt = match known_first {
                    Some(p) if p >= lo => p,
                    _ => next_first_byte(hay, lo, needles)?,
                };
                known_first = Some(lt);
                if lt > pos {
                    if lt > hay.len() - lmin {
                        return None;
                    }
                    pos = lt;
                }
            }
            let e = pos + lmin - 1;
            let (all, shift) = self.scan_window_all(hay, e);
            pending = all;
            pending.sort_by_key(|mm| std::cmp::Reverse(mm.pattern));
            pos += shift;
        })
    }

    /// Exact heap bytes owned by the compiled searcher: the trie node
    /// vector plus every node's edge/out vectors and the pattern copies.
    /// The fixed-size `d1` table lives inline in the struct and is not
    /// counted here (callers owning a `Box<CommentzWalter>` add
    /// `size_of::<CommentzWalter>()`).
    pub fn heap_bytes(&self) -> usize {
        let nodes = self.nodes.capacity() * std::mem::size_of::<Node>()
            + self
                .nodes
                .iter()
                .map(|n| {
                    n.edges.capacity() * std::mem::size_of::<(u8, u32)>()
                        + n.out.capacity() * std::mem::size_of::<u32>()
                })
                .sum::<usize>();
        let patterns = self.patterns.capacity() * std::mem::size_of::<Vec<u8>>()
            + self.patterns.iter().map(|p| p.capacity()).sum::<usize>();
        let fwd = self.fwd_nodes.capacity() * std::mem::size_of::<FwdNode>()
            + self.fwd_roots.capacity() * std::mem::size_of::<(u8, u32)>()
            + self
                .fwd_nodes
                .iter()
                .map(|n| n.edges.capacity() * std::mem::size_of::<(u8, u32)>())
                .sum::<usize>();
        nodes + patterns + fwd
    }

    /// Backward trie walk at window end `e`; returns the best reportable
    /// match (start ≥ `from`, smallest pattern index) and the safe shift.
    fn scan_window<M: Metrics>(
        &self,
        hay: &[u8],
        from: usize,
        e: usize,
        m: &mut M,
    ) -> (Option<MultiMatch>, usize) {
        let mut v = 0u32;
        let mut t = 0usize;
        let mut best: Option<MultiMatch> = None;
        let shift;
        loop {
            if t > e {
                // Ran off the start of the haystack.
                shift = (self.nodes[v as usize].gs as usize).max(1);
                break;
            }
            let c = hay[e - t];
            m.cmp(1);
            match self.nodes[v as usize].child(c) {
                Some(n) => {
                    v = n;
                    t += 1;
                    let node = &self.nodes[v as usize];
                    for &p in &node.out {
                        let plen = self.patterns[p as usize].len();
                        debug_assert_eq!(plen, t);
                        let start = e + 1 - plen;
                        if start >= from && best.is_none_or(|b| (p as usize) < b.pattern) {
                            best = Some(MultiMatch { pattern: p as usize, start, end: e + 1 });
                        }
                    }
                    if node.edges.is_empty() {
                        shift = (node.gs as usize).max(1);
                        break;
                    }
                }
                None => {
                    let bad = (self.d1[c as usize] as usize).saturating_sub(t).max(1);
                    shift = bad.max(self.nodes[v as usize].gs as usize).max(1);
                    break;
                }
            }
        }
        (best, shift)
    }

    /// Like [`scan_window`](Self::scan_window) but collects every output.
    fn scan_window_all(&self, hay: &[u8], e: usize) -> (Vec<MultiMatch>, usize) {
        let mut v = 0u32;
        let mut t = 0usize;
        let mut all = Vec::new();
        let shift;
        loop {
            if t > e {
                shift = (self.nodes[v as usize].gs as usize).max(1);
                break;
            }
            let c = hay[e - t];
            match self.nodes[v as usize].child(c) {
                Some(n) => {
                    v = n;
                    t += 1;
                    let node = &self.nodes[v as usize];
                    for &p in &node.out {
                        let plen = self.patterns[p as usize].len();
                        all.push(MultiMatch {
                            pattern: p as usize,
                            start: e + 1 - plen,
                            end: e + 1,
                        });
                    }
                    if node.edges.is_empty() {
                        shift = (node.gs as usize).max(1);
                        break;
                    }
                }
                None => {
                    let bad = (self.d1[c as usize] as usize).saturating_sub(t).max(1);
                    shift = bad.max(self.nodes[v as usize].gs as usize).max(1);
                    break;
                }
            }
        }
        (all, shift)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{naive, Counters};

    fn check_all(hay: &[u8], pats: &[&[u8]]) {
        let cw = CommentzWalter::new(pats);
        let got: Vec<MultiMatch> = cw.find_iter(hay).collect();
        let want = naive::find_all_multi(hay, pats);
        assert_eq!(got, want, "hay={:?} pats={:?}", String::from_utf8_lossy(hay), pats);
    }

    #[test]
    fn paper_frontier_vocabulary() {
        // Example 2 of the paper: state q1 scans for {"<b", "<c", "</a"}.
        let pats: Vec<&[u8]> = vec![b"<b", b"<c", b"</a"];
        let cw = CommentzWalter::new(&pats);
        let m = cw.find(b"<a><c><b/></c></a>").unwrap();
        assert_eq!((m.pattern, m.start), (1, 3));
        check_all(b"<a><c><b/></c></a>", &pats);
    }

    #[test]
    fn single_pattern_degenerates() {
        check_all(b"abcabcabc", &[b"abc"]);
        check_all(b"aaaa", &[b"aa"]);
    }

    #[test]
    fn different_lengths() {
        check_all(b"ushers say hershey", &[b"he", b"she", b"hers"]);
        check_all(b"xayxayaa", &[b"aa", b"xay"]);
        check_all(b"abababab", &[b"ab", b"ba", b"aba"]);
    }

    #[test]
    fn nested_suffix_patterns() {
        // One pattern is a suffix of another: both end at the same spot.
        check_all(b"zzabcdezz", &[b"cde", b"abcde", b"e"]);
    }

    #[test]
    fn no_match() {
        let pats: Vec<&[u8]> = vec![b"xx", b"yy"];
        let cw = CommentzWalter::new(&pats);
        assert_eq!(cw.find(b"abcdefgh"), None);
        assert_eq!(cw.find(b"x"), None);
        assert_eq!(cw.find(b""), None);
    }

    #[test]
    fn from_offset_skips_earlier_matches() {
        let pats: Vec<&[u8]> = vec![b"ab"];
        let cw = CommentzWalter::new(&pats);
        let m = cw.find_at(b"abab", 1, &mut NoMetrics).unwrap();
        assert_eq!(m.start, 2);
    }

    #[test]
    fn skips_characters_on_absent_alphabet() {
        let hay = vec![b'z'; 4096];
        let pats: Vec<&[u8]> = vec![b"<description", b"<name", b"</item"];
        let cw = CommentzWalter::new(&pats);
        let mut c = Counters::default();
        assert_eq!(cw.find_at(&hay, 0, &mut c), None);
        // lmin = 5 ("<name"), so roughly n/5 comparisons.
        assert!(c.comparisons <= (hay.len() / 4) as u64, "got {}", c.comparisons);
        assert!(c.avg_shift() > 4.0);
    }

    #[test]
    fn mixed_first_bytes_use_multi_needle_fast_path() {
        // Two and three distinct first bytes: the accelerated path must
        // agree with the windowed loop and the naive oracle (this is the
        // non-SMP shape the shared-prefix assumption used to exclude).
        let cases: Vec<(&[u8], Vec<&[u8]>)> = vec![
            (b"ushers say hershey", vec![b"he", b"she", b"hers"]),
            (b"abracadabra", vec![b"abra", b"cad"]),
            (b"<a>text</a><b/>", vec![b"<a", b"text", b"/b"]),
            (b"mississippi", vec![b"ssi", b"ppi", b"iss"]),
        ];
        for (hay, pats) in cases {
            let cw = CommentzWalter::new(&pats);
            for from in 0..=hay.len() {
                assert_eq!(
                    cw.find_at(hay, from, &mut NoMetrics),
                    cw.find_at_scalar(hay, from, &mut NoMetrics),
                    "hay={:?} pats={pats:?} from={from}",
                    String::from_utf8_lossy(hay)
                );
            }
            check_all(hay, &pats);
        }
    }

    #[test]
    fn four_distinct_first_bytes_fall_back_to_windowed_loop() {
        // Beyond the three-needle scan budget: still correct via fallback.
        let pats: Vec<&[u8]> = vec![b"ab", b"cd", b"ef", b"gh"];
        let hay = b"xxefxxabxxghxxcd";
        let cw = CommentzWalter::new(&pats);
        for from in 0..=hay.len() {
            assert_eq!(
                cw.find_at(hay, from, &mut NoMetrics),
                cw.find_at_scalar(hay, from, &mut NoMetrics),
                "from={from}"
            );
        }
        check_all(hay, &pats);
    }

    #[test]
    fn single_byte_patterns_in_mixed_vocabulary() {
        // A length-1 pattern puts an accepting node at a forest root.
        check_all(b"a<b<<c", &[b"<", b"ab"]);
        check_all(b"zzz", &[b"z", b"y"]);
    }

    #[test]
    fn min_len_reported() {
        let pats: Vec<&[u8]> = vec![b"abc", b"de"];
        assert_eq!(CommentzWalter::new(&pats).min_len(), 2);
    }

    #[test]
    fn lmin_one_scans_everything_correctly() {
        check_all(b"abcabc", &[b"a", b"bc"]);
        check_all(b"aaa", &[b"a"]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_pattern_panics() {
        let _ = CommentzWalter::new(&[b"".as_slice()]);
    }
}
