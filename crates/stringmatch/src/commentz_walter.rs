//! Commentz–Walter multi-keyword skipping search (Commentz-Walter, ICALP
//! 1979).
//!
//! The SMP runtime uses this engine whenever the frontier vocabulary of the
//! current automaton state holds several keywords (the paper's `(CW)` branch
//! in Fig. 4). Like Boyer–Moore it matches **right to left** and *skips*
//! haystack characters; unlike Aho–Corasick it does not touch every input
//! position.
//!
//! # Algorithm
//!
//! A window of length `lmin` (the shortest pattern) slides over the
//! haystack. At each alignment the haystack is read backwards from the
//! window end through a trie of the *reversed* patterns; every trie node
//! that completes a reversed pattern reports an occurrence ending at the
//! window end. On a mismatch the window shifts forward by the maximum of
//! two independently safe shift functions:
//!
//! * **bad character** — `max(d1[c] − t, 1)` where `c` is the mismatching
//!   byte read at backward depth `t` and `d1[c]` is the minimal distance
//!   (≥ 1, capped at `lmin`) of `c` from the right end of any pattern.
//!   Capping at `lmin` is what makes this rule safe on its own: a pattern
//!   occurrence that does not cover the mismatch position must end at least
//!   `lmin − t` beyond the current window end.
//! * **good suffix** — a per-node shift `gs[v]`: the minimal `s ≥ 1` such
//!   that shifting the window by `s` re-aligns the already-matched backward
//!   string `u` with (a) a factor of some pattern at distance `s` from its
//!   end, or (b) a whole pattern lying inside `u`'s right portion. Defaults
//!   to `lmin`.
//!
//! Both rules follow the classical Commentz–Walter construction; the
//! property tests in `tests/proptest_matchers.rs` verify the full occurrence
//! set against Aho–Corasick and naive oracles.

use crate::{Metrics, MultiMatch, NoMetrics};

#[derive(Debug, Clone, Default)]
struct Node {
    /// Sorted outgoing edges (byte, target).
    edges: Vec<(u8, u32)>,
    /// Patterns whose reversal ends at this node.
    out: Vec<u32>,
    /// Good-suffix shift for a mismatch below this node.
    gs: u32,
    /// Minimal `s` for rule (b): some reversed pattern's tail starting at
    /// offset `s` ends exactly at this node (propagated to descendants).
    tail: u32,
}

impl Node {
    fn child(&self, b: u8) -> Option<u32> {
        self.edges.binary_search_by_key(&b, |&(c, _)| c).ok().map(|i| self.edges[i].1)
    }
}

/// A compiled Commentz–Walter searcher over a pattern set.
#[derive(Debug, Clone)]
pub struct CommentzWalter {
    nodes: Vec<Node>,
    patterns: Vec<Vec<u8>>,
    /// Length of the shortest pattern (window size).
    lmin: usize,
    /// `d1[c]`: minimal distance ≥ 1 of byte `c` from the right end of any
    /// pattern, capped at `lmin`.
    d1: [u32; 256],
}

impl CommentzWalter {
    /// Compile the pattern set. Panics if the set or any pattern is empty.
    pub fn new<P: AsRef<[u8]>>(patterns: &[P]) -> Self {
        assert!(!patterns.is_empty(), "CommentzWalter needs at least one pattern");
        let patterns: Vec<Vec<u8>> = patterns.iter().map(|p| p.as_ref().to_vec()).collect();
        for p in &patterns {
            assert!(!p.is_empty(), "CommentzWalter patterns must be non-empty");
        }
        let lmin = patterns.iter().map(|p| p.len()).min().unwrap();

        // Trie over reversed patterns.
        let mut nodes = vec![Node { gs: lmin as u32, tail: lmin as u32, ..Node::default() }];
        for (idx, pat) in patterns.iter().enumerate() {
            let mut cur = 0u32;
            for &b in pat.iter().rev() {
                cur = match nodes[cur as usize].child(b) {
                    Some(n) => n,
                    None => {
                        let n = nodes.len() as u32;
                        nodes.push(Node { gs: lmin as u32, tail: lmin as u32, ..Node::default() });
                        let edges = &mut nodes[cur as usize].edges;
                        let at = edges.partition_point(|&(c, _)| c < b);
                        edges.insert(at, (b, n));
                        n
                    }
                };
            }
            nodes[cur as usize].out.push(idx as u32);
        }

        // Bad-character distances.
        let mut d1 = [lmin as u32; 256];
        for p in &patterns {
            for j in 1..p.len() {
                let c = p[p.len() - 1 - j];
                let dist = j.min(lmin) as u32;
                if dist < d1[c as usize] {
                    d1[c as usize] = dist;
                }
            }
        }

        // Good-suffix candidates: walk every reversed-pattern tail rp[s..]
        // through the trie. Each visited node (root included: the empty
        // string is a factor at every offset) gets candidate `s`; a fully
        // consumed tail records a rule-(b) candidate for the subtree.
        for pat in &patterns {
            let rp: Vec<u8> = pat.iter().rev().copied().collect();
            for s in 1..=rp.len().min(lmin.saturating_sub(1)) {
                let mut cur = 0u32;
                nodes[0].gs = nodes[0].gs.min(s as u32);
                let mut d = 0usize;
                while s + d < rp.len() {
                    match nodes[cur as usize].child(rp[s + d]) {
                        Some(n) => {
                            cur = n;
                            d += 1;
                            nodes[cur as usize].gs = nodes[cur as usize].gs.min(s as u32);
                        }
                        None => break,
                    }
                }
                if s + d == rp.len() {
                    nodes[cur as usize].tail = nodes[cur as usize].tail.min(s as u32);
                }
            }
        }

        // Propagate rule-(b) candidates to descendants (DFS, ancestors-or-self).
        let mut stack = vec![(0u32, lmin as u32)];
        while let Some((v, inherited)) = stack.pop() {
            let running = inherited.min(nodes[v as usize].tail);
            nodes[v as usize].gs = nodes[v as usize].gs.min(running);
            let children: Vec<u32> = nodes[v as usize].edges.iter().map(|&(_, t)| t).collect();
            for c in children {
                stack.push((c, running));
            }
        }

        CommentzWalter { nodes, patterns, lmin, d1 }
    }

    /// The pattern set, in construction order.
    pub fn patterns(&self) -> &[Vec<u8>] {
        &self.patterns
    }

    /// Length of the shortest pattern (the sliding-window size).
    pub fn min_len(&self) -> usize {
        self.lmin
    }

    /// First match by end position (ties: smallest pattern index),
    /// uninstrumented.
    pub fn find(&self, hay: &[u8]) -> Option<MultiMatch> {
        self.find_at(hay, 0, &mut NoMetrics)
    }

    /// First match by end position whose start is `>= from`, instrumented.
    ///
    /// Note that because matching is right-to-left over a window, "first" is
    /// defined by the *end* offset of the occurrence. For the token
    /// keywords SMP uses (each containing exactly one `<`) occurrences can
    /// never overlap, so first-by-end coincides with first-by-start.
    pub fn find_at<M: Metrics>(&self, hay: &[u8], from: usize, m: &mut M) -> Option<MultiMatch> {
        let lmin = self.lmin;
        if from >= hay.len() || hay.len() - from < lmin {
            return None;
        }
        let mut pos = from;
        let last_pos = hay.len() - lmin;
        while pos <= last_pos {
            let e = pos + lmin - 1;
            let (best, shift) = self.scan_window(hay, from, e, m);
            if let Some(mm) = best {
                return Some(mm);
            }
            m.shift(shift as u64);
            pos += shift;
        }
        None
    }

    /// All matches, sorted by (end, pattern index).
    pub fn find_iter<'h>(&'h self, hay: &'h [u8]) -> impl Iterator<Item = MultiMatch> + 'h {
        let lmin = self.lmin;
        let mut pos = 0usize;
        let mut pending: Vec<MultiMatch> = Vec::new();
        std::iter::from_fn(move || loop {
            if let Some(mm) = pending.pop() {
                return Some(mm);
            }
            if hay.len() < lmin || pos > hay.len() - lmin {
                return None;
            }
            let e = pos + lmin - 1;
            let (all, shift) = self.scan_window_all(hay, e);
            pending = all;
            pending.sort_by_key(|mm| std::cmp::Reverse(mm.pattern));
            pos += shift;
        })
    }

    /// Backward trie walk at window end `e`; returns the best reportable
    /// match (start ≥ `from`, smallest pattern index) and the safe shift.
    fn scan_window<M: Metrics>(
        &self,
        hay: &[u8],
        from: usize,
        e: usize,
        m: &mut M,
    ) -> (Option<MultiMatch>, usize) {
        let mut v = 0u32;
        let mut t = 0usize;
        let mut best: Option<MultiMatch> = None;
        let shift;
        loop {
            if t > e {
                // Ran off the start of the haystack.
                shift = (self.nodes[v as usize].gs as usize).max(1);
                break;
            }
            let c = hay[e - t];
            m.cmp(1);
            match self.nodes[v as usize].child(c) {
                Some(n) => {
                    v = n;
                    t += 1;
                    let node = &self.nodes[v as usize];
                    for &p in &node.out {
                        let plen = self.patterns[p as usize].len();
                        debug_assert_eq!(plen, t);
                        let start = e + 1 - plen;
                        if start >= from && best.is_none_or(|b| (p as usize) < b.pattern) {
                            best = Some(MultiMatch { pattern: p as usize, start, end: e + 1 });
                        }
                    }
                    if node.edges.is_empty() {
                        shift = (node.gs as usize).max(1);
                        break;
                    }
                }
                None => {
                    let bad = (self.d1[c as usize] as usize).saturating_sub(t).max(1);
                    shift = bad.max(self.nodes[v as usize].gs as usize).max(1);
                    break;
                }
            }
        }
        (best, shift)
    }

    /// Like [`scan_window`](Self::scan_window) but collects every output.
    fn scan_window_all(&self, hay: &[u8], e: usize) -> (Vec<MultiMatch>, usize) {
        let mut v = 0u32;
        let mut t = 0usize;
        let mut all = Vec::new();
        let shift;
        loop {
            if t > e {
                shift = (self.nodes[v as usize].gs as usize).max(1);
                break;
            }
            let c = hay[e - t];
            match self.nodes[v as usize].child(c) {
                Some(n) => {
                    v = n;
                    t += 1;
                    let node = &self.nodes[v as usize];
                    for &p in &node.out {
                        let plen = self.patterns[p as usize].len();
                        all.push(MultiMatch {
                            pattern: p as usize,
                            start: e + 1 - plen,
                            end: e + 1,
                        });
                    }
                    if node.edges.is_empty() {
                        shift = (node.gs as usize).max(1);
                        break;
                    }
                }
                None => {
                    let bad = (self.d1[c as usize] as usize).saturating_sub(t).max(1);
                    shift = bad.max(self.nodes[v as usize].gs as usize).max(1);
                    break;
                }
            }
        }
        (all, shift)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{naive, Counters};

    fn check_all(hay: &[u8], pats: &[&[u8]]) {
        let cw = CommentzWalter::new(pats);
        let got: Vec<MultiMatch> = cw.find_iter(hay).collect();
        let want = naive::find_all_multi(hay, pats);
        assert_eq!(got, want, "hay={:?} pats={:?}", String::from_utf8_lossy(hay), pats);
    }

    #[test]
    fn paper_frontier_vocabulary() {
        // Example 2 of the paper: state q1 scans for {"<b", "<c", "</a"}.
        let pats: Vec<&[u8]> = vec![b"<b", b"<c", b"</a"];
        let cw = CommentzWalter::new(&pats);
        let m = cw.find(b"<a><c><b/></c></a>").unwrap();
        assert_eq!((m.pattern, m.start), (1, 3));
        check_all(b"<a><c><b/></c></a>", &pats);
    }

    #[test]
    fn single_pattern_degenerates() {
        check_all(b"abcabcabc", &[b"abc"]);
        check_all(b"aaaa", &[b"aa"]);
    }

    #[test]
    fn different_lengths() {
        check_all(b"ushers say hershey", &[b"he", b"she", b"hers"]);
        check_all(b"xayxayaa", &[b"aa", b"xay"]);
        check_all(b"abababab", &[b"ab", b"ba", b"aba"]);
    }

    #[test]
    fn nested_suffix_patterns() {
        // One pattern is a suffix of another: both end at the same spot.
        check_all(b"zzabcdezz", &[b"cde", b"abcde", b"e"]);
    }

    #[test]
    fn no_match() {
        let pats: Vec<&[u8]> = vec![b"xx", b"yy"];
        let cw = CommentzWalter::new(&pats);
        assert_eq!(cw.find(b"abcdefgh"), None);
        assert_eq!(cw.find(b"x"), None);
        assert_eq!(cw.find(b""), None);
    }

    #[test]
    fn from_offset_skips_earlier_matches() {
        let pats: Vec<&[u8]> = vec![b"ab"];
        let cw = CommentzWalter::new(&pats);
        let m = cw.find_at(b"abab", 1, &mut NoMetrics).unwrap();
        assert_eq!(m.start, 2);
    }

    #[test]
    fn skips_characters_on_absent_alphabet() {
        let hay = vec![b'z'; 4096];
        let pats: Vec<&[u8]> = vec![b"<description", b"<name", b"</item"];
        let cw = CommentzWalter::new(&pats);
        let mut c = Counters::default();
        assert_eq!(cw.find_at(&hay, 0, &mut c), None);
        // lmin = 5 ("<name"), so roughly n/5 comparisons.
        assert!(c.comparisons <= (hay.len() / 4) as u64, "got {}", c.comparisons);
        assert!(c.avg_shift() > 4.0);
    }

    #[test]
    fn min_len_reported() {
        let pats: Vec<&[u8]> = vec![b"abc", b"de"];
        assert_eq!(CommentzWalter::new(&pats).min_len(), 2);
    }

    #[test]
    fn lmin_one_scans_everything_correctly() {
        check_all(b"abcabc", &[b"a", b"bc"]);
        check_all(b"aaa", &[b"a"]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_pattern_panics() {
        let _ = CommentzWalter::new(&[b"".as_slice()]);
    }
}
