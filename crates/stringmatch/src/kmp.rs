//! Knuth–Morris–Pratt single-keyword search (Knuth, Morris, Pratt 1977).
//!
//! Left-to-right, inspects every haystack character exactly once in the
//! worst case but — unlike Boyer–Moore — can never *skip* characters. It is
//! the canonical "one character at-a-time" algorithm the paper positions the
//! skipping family against, so it serves as a baseline in the flat-string
//! benchmarks.

use crate::{Metrics, NoMetrics};

/// A compiled KMP searcher for one pattern.
#[derive(Debug, Clone)]
pub struct Kmp {
    pattern: Vec<u8>,
    /// Failure function: `fail[i]` = length of the longest proper border of
    /// `pattern[..=i]`.
    fail: Vec<usize>,
}

impl Kmp {
    /// Compile `pattern`. Panics on an empty pattern.
    pub fn new(pattern: &[u8]) -> Self {
        assert!(!pattern.is_empty(), "Kmp pattern must be non-empty");
        let mut fail = vec![0usize; pattern.len()];
        let mut k = 0;
        for i in 1..pattern.len() {
            while k > 0 && pattern[i] != pattern[k] {
                k = fail[k - 1];
            }
            if pattern[i] == pattern[k] {
                k += 1;
            }
            fail[i] = k;
        }
        Kmp { pattern: pattern.to_vec(), fail }
    }

    /// The compiled pattern.
    pub fn pattern(&self) -> &[u8] {
        &self.pattern
    }

    /// Leftmost occurrence, uninstrumented.
    pub fn find(&self, hay: &[u8]) -> Option<usize> {
        self.find_at(hay, 0, &mut NoMetrics)
    }

    /// Leftmost occurrence whose start is `>= from`.
    pub fn find_at<M: Metrics>(&self, hay: &[u8], from: usize, m: &mut M) -> Option<usize> {
        let pat = &self.pattern[..];
        if from >= hay.len() {
            return None;
        }
        let mut k = 0usize;
        for (i, &b) in hay.iter().enumerate().skip(from) {
            m.cmp(1);
            while k > 0 && b != pat[k] {
                k = self.fail[k - 1];
                m.cmp(1);
            }
            if b == pat[k] {
                k += 1;
            }
            if k == pat.len() {
                return Some(i + 1 - pat.len());
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;

    fn check(hay: &[u8], pat: &[u8]) {
        let k = Kmp::new(pat);
        assert_eq!(k.find(hay), naive::find(hay, pat), "hay={hay:?} pat={pat:?}");
    }

    #[test]
    fn agrees_with_naive() {
        check(b"hello world", b"world");
        check(b"hello world", b"zzz");
        check(b"aabaabaaab", b"aaab");
        check(b"abababababab", b"bab");
        check(b"aaaaaa", b"aaa");
        check(b"", b"x");
    }

    #[test]
    fn from_offset() {
        let k = Kmp::new(b"ab");
        assert_eq!(k.find_at(b"abab", 1, &mut NoMetrics), Some(2));
        assert_eq!(k.find_at(b"abab", 3, &mut NoMetrics), None);
    }

    #[test]
    fn failure_function_is_borders() {
        let k = Kmp::new(b"abacabab");
        assert_eq!(k.fail, vec![0, 0, 1, 0, 1, 2, 3, 2]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_pattern_panics() {
        let _ = Kmp::new(b"");
    }
}
