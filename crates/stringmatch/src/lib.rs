//! Skipping string-matching algorithms, instrumented.
//!
//! This crate provides the string-matching substrate of the SMP prefilter
//! (Koch, Scherzinger, Schmidt: *XML Prefiltering as a String Matching
//! Problem*, ICDE 2008):
//!
//! * [`BoyerMoore`] — single-keyword search with bad-character and strong
//!   good-suffix shifts (the paper's **BM** engine for unary frontier
//!   vocabularies),
//! * [`CommentzWalter`] — multi-keyword search matching right-to-left over a
//!   trie of reversed patterns with bad-character and good-suffix style
//!   shifts (the paper's **CW** engine),
//! * [`Horspool`] — the simplified Boyer–Moore–Horspool variant (ablation),
//! * [`AhoCorasick`] — the classic every-character multi-keyword automaton
//!   (the baseline family the paper contrasts against, cf. its related work
//!   \[21\]),
//! * [`Kmp`] and [`naive`] — further one-character-at-a-time baselines.
//!
//! All searchers are generic over a [`Metrics`] sink so that the number of
//! character comparisons and the sizes of forward shifts can be measured
//! (Table I/II of the paper report `Char Comp.` and `∅ Shift Size`) without
//! imposing any cost on uninstrumented runs ([`NoMetrics`] is fully inlined
//! away).
//!
//! The skipping searchers additionally jump between candidate alignments
//! with a vectorized byte scan ([`memscan`]: portable SWAR plus
//! SSE2/AVX2 on `x86_64`, selected at runtime). Bytes the vector unit
//! consumes are reported through the separate [`Metrics::scanned`] counter
//! so the paper's characters-inspected accounting stays honest. Set
//! `SMPX_NO_SIMD=1` to force the classic scalar shift loops.
//!
//! # Example
//!
//! ```
//! use smpx_stringmatch::{BoyerMoore, CommentzWalter, Counters, Metrics, NoMetrics};
//!
//! let bm = BoyerMoore::new(b"ICDE");
//! assert_eq!(bm.find(b"welcome to ICDE 2008"), Some(11));
//!
//! let cw = CommentzWalter::new(&[b"<b".as_slice(), b"<c", b"</a"]);
//! let m = cw.find(b"<a><c><b/></c></a>").unwrap();
//! assert_eq!((m.pattern, m.start), (1, 3)); // first token is "<c"
//!
//! // Instrumented search: count character comparisons.
//! let mut stats = Counters::default();
//! bm.find_at(b"xxxxxxxxxxxxICDExx", 0, &mut stats);
//! assert!(stats.comparisons < 18); // inspected only a fraction of the input
//! ```

// `unsafe` is denied crate-wide and allowed back in exactly one place: the
// SSE2/AVX2 loads in `memscan`, each with its bounds argument spelled out.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod aho_corasick;
mod boyer_moore;
mod commentz_walter;
mod horspool;
mod kmp;
pub mod memscan;
mod metrics;
pub mod naive;

pub use aho_corasick::AhoCorasick;
pub use boyer_moore::BoyerMoore;
pub use commentz_walter::CommentzWalter;
pub use horspool::Horspool;
pub use kmp::Kmp;
pub use metrics::{Counters, Metrics, NoMetrics};

/// An occurrence of one pattern of a multi-pattern searcher.
///
/// `start..end` is the byte range of the occurrence in the haystack and
/// `pattern` the index of the matched pattern in the order the patterns were
/// supplied at construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiMatch {
    /// Index of the matched pattern (construction order).
    pub pattern: usize,
    /// Byte offset of the first character of the occurrence.
    pub start: usize,
    /// Byte offset one past the last character of the occurrence.
    pub end: usize,
}

impl MultiMatch {
    /// Length of the matched pattern occurrence.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the matched occurrence is empty (never produced by the
    /// searchers in this crate, which reject empty patterns).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_match_len() {
        let m = MultiMatch { pattern: 0, start: 3, end: 7 };
        assert_eq!(m.len(), 4);
        assert!(!m.is_empty());
    }

    /// The doc-comment scenario of the paper's introduction: matching
    /// "ICDE" skips ahead when the fourth character cannot participate.
    #[test]
    fn icde_intro_example() {
        let bm = BoyerMoore::new(b"ICDE");
        let mut c = Counters::default();
        // "A" at position 3 rules the first window out entirely.
        let hay = b"ABCAICDE";
        assert_eq!(bm.find_at(hay, 0, &mut c), Some(4));
        assert!(c.comparisons <= hay.len() as u64);
    }
}
