//! Boyer–Moore single-keyword search (Boyer & Moore, CACM 1977).
//!
//! The SMP runtime uses Boyer–Moore whenever the frontier vocabulary of the
//! current automaton state is unary (the paper's `(BM)` branch in Fig. 4).
//! The implementation combines the *bad character* rule with the *strong
//! good suffix* rule; both shift tables are precomputed at construction,
//! which is what allows the runtime to build them lazily per automaton state
//! and reuse them for the rest of the run.
//!
//! On top of the classic shift loop sits a vectorized candidate filter
//! ([`crate::memscan`]): the two rarest pattern bytes (under a static XML
//! byte-frequency table) are located by a hardware byte scan, and the
//! right-to-left verification plus shift tables run only at the alignments
//! the scan proposes. `SMPX_NO_SIMD=1` (or
//! [`memscan::force_accel`](crate::memscan::force_accel)) restores the
//! classic loop, which [`BoyerMoore::find_at_scalar`] also exposes
//! directly.

use crate::{memscan, Metrics, NoMetrics};

/// A compiled Boyer–Moore searcher for one pattern.
#[derive(Debug, Clone)]
pub struct BoyerMoore {
    pattern: Vec<u8>,
    /// `bad_char[c]` = rightmost index of `c` in the pattern, or `usize::MAX`
    /// when `c` does not occur.
    bad_char: [usize; 256],
    /// Strong good-suffix shift: `good_suffix[j]` is the shift when a
    /// mismatch occurs at pattern index `j` (all of `pattern[j+1..]`
    /// matched).
    good_suffix: Vec<usize>,
    /// The two rarest pattern bytes (rarest first) with their offsets, for
    /// the vectorized candidate scan; `None` for single-byte patterns.
    rare: Option<((u8, usize), (u8, usize))>,
}

impl BoyerMoore {
    /// Compile `pattern`. Panics on an empty pattern: an empty keyword never
    /// arises from the SMP static analysis and has no sensible occurrence
    /// semantics.
    pub fn new(pattern: &[u8]) -> Self {
        assert!(!pattern.is_empty(), "BoyerMoore pattern must be non-empty");
        let mut bad_char = [usize::MAX; 256];
        for (i, &b) in pattern.iter().enumerate() {
            bad_char[b as usize] = i;
        }
        let good_suffix = build_good_suffix(pattern);
        let rare = memscan::rare_byte_pair(pattern);
        BoyerMoore { pattern: pattern.to_vec(), bad_char, good_suffix, rare }
    }

    /// The compiled pattern.
    pub fn pattern(&self) -> &[u8] {
        &self.pattern
    }

    /// Leftmost occurrence in `hay`, uninstrumented.
    pub fn find(&self, hay: &[u8]) -> Option<usize> {
        self.find_at(hay, 0, &mut NoMetrics)
    }

    /// Leftmost occurrence whose start is `>= from`, reporting character
    /// comparisons, shifts and vector-scanned bytes to `m`. Returns the
    /// absolute start offset.
    ///
    /// Uses the vectorized rare-byte candidate scan unless `SMPX_NO_SIMD=1`
    /// forces the classic loop ([`find_at_scalar`](Self::find_at_scalar)).
    pub fn find_at<M: Metrics>(&self, hay: &[u8], from: usize, m: &mut M) -> Option<usize> {
        if memscan::accel_enabled() {
            self.find_at_accel(hay, from, m)
        } else {
            self.find_at_scalar(hay, from, m)
        }
    }

    /// The classic Boyer–Moore shift loop, one byte compared per iteration.
    /// This is the `SMPX_NO_SIMD=1` fallback and the ablation baseline the
    /// benches compare the vectorized path against; both return identical
    /// results on every input (property-tested).
    pub fn find_at_scalar<M: Metrics>(&self, hay: &[u8], from: usize, m: &mut M) -> Option<usize> {
        let pat = &self.pattern[..];
        let plen = pat.len();
        if from >= hay.len() || hay.len() - from < plen {
            return None;
        }
        let mut pos = from; // current alignment of pattern start
        let last = hay.len() - plen;
        while pos <= last {
            // Match right to left.
            let mut j = plen;
            while j > 0 {
                m.cmp(1);
                if hay[pos + j - 1] != pat[j - 1] {
                    break;
                }
                j -= 1;
            }
            if j == 0 {
                return Some(pos);
            }
            let mismatch_idx = j - 1;
            let c = hay[pos + mismatch_idx];
            let bc = self.bad_char_shift(mismatch_idx, c);
            let gs = self.good_suffix[mismatch_idx];
            let shift = bc.max(gs);
            m.shift(shift as u64);
            pos += shift;
        }
        None
    }

    /// Vectorized path ([`memscan::rare_pair_find`]): jump between
    /// candidate alignments proposed by the rare-byte scan, verify right to
    /// left, shift by the classic tables on a verification mismatch. Only
    /// alignments where the two rarest pattern bytes match are ever
    /// verified, so agreement with the scalar loop is structural: both
    /// visit candidate alignments left to right and the scan never skips
    /// an alignment the full pattern could match.
    fn find_at_accel<M: Metrics>(&self, hay: &[u8], from: usize, m: &mut M) -> Option<usize> {
        memscan::rare_pair_find(hay, from, &self.pattern, self.rare, m, |hay, pos, j| {
            self.bad_char_shift(j, hay[pos + j]).max(self.good_suffix[j])
        })
    }

    /// All (possibly overlapping) occurrences.
    pub fn find_iter<'h>(&'h self, hay: &'h [u8]) -> impl Iterator<Item = usize> + 'h {
        let mut from = 0;
        std::iter::from_fn(move || {
            let hit = self.find_at(hay, from, &mut NoMetrics)?;
            from = hit + 1;
            Some(hit)
        })
    }

    /// Exact heap bytes owned by the compiled searcher: the pattern copy
    /// and the good-suffix table. The bad-character table lives inline in
    /// the struct (callers owning a `Box<BoyerMoore>` add
    /// `size_of::<BoyerMoore>()`).
    pub fn heap_bytes(&self) -> usize {
        self.pattern.capacity() + self.good_suffix.capacity() * std::mem::size_of::<usize>()
    }

    /// Bad-character shift when `pattern[idx]` mismatched haystack byte `c`.
    #[inline]
    fn bad_char_shift(&self, idx: usize, c: u8) -> usize {
        match self.bad_char[c as usize] {
            usize::MAX => idx + 1,
            r if r < idx => idx - r,
            _ => 1,
        }
    }
}

/// Strong good-suffix table following the classic two-phase construction
/// (Knuth–Morris–Pratt style border scan on the reversed pattern).
fn build_good_suffix(pat: &[u8]) -> Vec<usize> {
    let m = pat.len();
    let mut shift = vec![0usize; m + 1];
    let mut border = vec![0usize; m + 1];

    // Phase 1: borders of suffixes.
    let mut i = m;
    let mut j = m + 1;
    border[i] = j;
    while i > 0 {
        while j <= m && pat[i - 1] != pat[j - 1] {
            if shift[j] == 0 {
                shift[j] = j - i;
            }
            j = border[j];
        }
        i -= 1;
        j -= 1;
        border[i] = j;
    }

    // Phase 2: widest borders.
    j = border[0];
    for s in shift.iter_mut().take(m + 1) {
        if *s == 0 {
            *s = j;
        }
    }
    let mut i = 0;
    while i <= m {
        if i == j {
            j = border[j];
        }
        i += 1;
    }

    // Convert: mismatch at pattern index `idx` (suffix pat[idx+1..] matched)
    // uses shift[idx + 1].
    (0..m).map(|idx| shift[idx + 1].max(1)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{naive, Counters};

    fn check(hay: &[u8], pat: &[u8]) {
        let bm = BoyerMoore::new(pat);
        assert_eq!(bm.find(hay), naive::find(hay, pat), "hay={hay:?} pat={pat:?}");
    }

    #[test]
    fn simple_hits_and_misses() {
        check(b"hello world", b"world");
        check(b"hello world", b"hello");
        check(b"hello world", b"o w");
        check(b"hello world", b"xyz");
        check(b"", b"a");
        check(b"a", b"a");
        check(b"aa", b"aaa");
    }

    #[test]
    fn repeated_structure() {
        check(b"aabaabaaab", b"aaab");
        check(b"abababababab", b"abab");
        check(b"aaaaaaaaaa", b"aab");
        check(b"GCATCGCAGAGAGTATACAGTACG", b"GCAGAGAG");
    }

    #[test]
    fn find_at_respects_from() {
        let bm = BoyerMoore::new(b"ab");
        assert_eq!(bm.find_at(b"abab", 1, &mut NoMetrics), Some(2));
        assert_eq!(bm.find_at(b"abab", 3, &mut NoMetrics), None);
        assert_eq!(bm.find_at(b"abab", 100, &mut NoMetrics), None);
    }

    #[test]
    fn find_iter_yields_all_overlapping() {
        let bm = BoyerMoore::new(b"aa");
        assert_eq!(bm.find_iter(b"aaaa").collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn sublinear_on_absent_alphabet() {
        // None of the haystack characters occur in the pattern, so BM should
        // inspect roughly hay.len()/pat.len() characters.
        let hay = vec![b'x'; 10_000];
        let bm = BoyerMoore::new(b"keyword!");
        let mut c = Counters::default();
        assert_eq!(bm.find_at(&hay, 0, &mut c), None);
        assert!(
            c.comparisons <= (hay.len() / 8 + 8) as u64,
            "expected ~n/m comparisons, got {}",
            c.comparisons
        );
        assert!(c.avg_shift() >= 7.9);
    }

    #[test]
    fn good_suffix_kicks_in() {
        // Classic case where the bad-character rule alone is weak.
        check(b"ababababcabab", b"ababc");
        check(b"aaaaabaaaaab", b"aaab");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_pattern_panics() {
        let _ = BoyerMoore::new(b"");
    }
}
