//! Naive one-character-at-a-time search, used as the correctness oracle for
//! every other searcher in this crate and as the slowest baseline in the
//! flat-string benchmarks.

use crate::{Metrics, MultiMatch, NoMetrics};

/// Find the leftmost occurrence of `pattern` in `hay[from..]` by checking
/// every alignment. Returns the absolute start offset.
pub fn find_at<M: Metrics>(hay: &[u8], pattern: &[u8], from: usize, m: &mut M) -> Option<usize> {
    if pattern.is_empty() || from + pattern.len() > hay.len() {
        return None;
    }
    let last = hay.len() - pattern.len();
    let mut pos = from;
    while pos <= last {
        let mut i = 0;
        while i < pattern.len() {
            m.cmp(1);
            if hay[pos + i] != pattern[i] {
                break;
            }
            i += 1;
        }
        if i == pattern.len() {
            return Some(pos);
        }
        m.shift(1);
        pos += 1;
    }
    None
}

/// Uninstrumented convenience wrapper around [`find_at`].
pub fn find(hay: &[u8], pattern: &[u8]) -> Option<usize> {
    find_at(hay, pattern, 0, &mut NoMetrics)
}

/// All (possibly overlapping) occurrences of `pattern` in `hay`.
pub fn find_all(hay: &[u8], pattern: &[u8]) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = find_at(hay, pattern, from, &mut NoMetrics) {
        out.push(p);
        from = p + 1;
    }
    out
}

/// All occurrences of every pattern of a set, sorted by (end, pattern index).
///
/// This is the oracle for [`crate::CommentzWalter`] and
/// [`crate::AhoCorasick`] in the property tests.
pub fn find_all_multi(hay: &[u8], patterns: &[&[u8]]) -> Vec<MultiMatch> {
    let mut out = Vec::new();
    for (idx, pat) in patterns.iter().enumerate() {
        for start in find_all(hay, pat) {
            out.push(MultiMatch { pattern: idx, start, end: start + pat.len() });
        }
    }
    out.sort_by_key(|m| (m.end, m.pattern));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_leftmost() {
        assert_eq!(find(b"abcabc", b"abc"), Some(0));
        assert_eq!(find_at(b"abcabc", b"abc", 1, &mut NoMetrics), Some(3));
    }

    #[test]
    fn missing_pattern() {
        assert_eq!(find(b"abcabc", b"abd"), None);
        assert_eq!(find(b"ab", b"abc"), None);
        assert_eq!(find(b"", b"a"), None);
    }

    #[test]
    fn empty_pattern_is_rejected() {
        assert_eq!(find(b"abc", b""), None);
    }

    #[test]
    fn overlapping_occurrences() {
        assert_eq!(find_all(b"aaaa", b"aa"), vec![0, 1, 2]);
    }

    #[test]
    fn multi_sorted_by_end() {
        let pats: Vec<&[u8]> = vec![b"ab", b"b"];
        let ms = find_all_multi(b"abab", &pats);
        assert_eq!(
            ms,
            vec![
                MultiMatch { pattern: 0, start: 0, end: 2 },
                MultiMatch { pattern: 1, start: 1, end: 2 },
                MultiMatch { pattern: 0, start: 2, end: 4 },
                MultiMatch { pattern: 1, start: 3, end: 4 },
            ]
        );
    }
}
