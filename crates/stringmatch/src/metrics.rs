//! Instrumentation sinks for the searchers.
//!
//! The paper's evaluation reports `Char Comp.` (character comparisons as a
//! percentage of the document size) and `∅ Shift Size` (the average forward
//! shift). Searchers report those events through the [`Metrics`] trait; the
//! [`NoMetrics`] sink compiles to nothing so production runs pay no cost.

/// Receiver for search instrumentation events.
///
/// Implementations must be cheap; the searchers call these methods in their
/// innermost loops.
pub trait Metrics {
    /// `n` characters of the haystack were compared against pattern
    /// characters (or trie edges).
    fn cmp(&mut self, n: u64);

    /// The search window was shifted forward by `n` positions.
    fn shift(&mut self, n: u64);

    /// `n` haystack bytes were consumed by the vectorized skip-scan
    /// ([`crate::memscan`]) without scalar comparisons. Reported separately
    /// from [`cmp`](Metrics::cmp) so the paper's "% characters inspected"
    /// tables stay honest: these bytes *were* inspected, but by the vector
    /// unit at a fraction of the per-byte cost.
    #[inline(always)]
    fn scanned(&mut self, _n: u64) {}
}

/// A sink that ignores all events. Fully inlined away by the optimizer.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoMetrics;

impl Metrics for NoMetrics {
    #[inline(always)]
    fn cmp(&mut self, _n: u64) {}

    #[inline(always)]
    fn shift(&mut self, _n: u64) {}

    #[inline(always)]
    fn scanned(&mut self, _n: u64) {}
}

/// A sink that counts events, used to regenerate the paper's per-query
/// statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Counters {
    /// Total number of character comparisons.
    pub comparisons: u64,
    /// Number of forward shifts performed.
    pub shifts: u64,
    /// Sum of the sizes of all forward shifts.
    pub shift_total: u64,
    /// Bytes consumed by the vectorized skip-scan (no scalar comparison).
    pub scanned: u64,
}

impl Counters {
    /// Average forward shift size (the paper's `∅ Shift Size`), or 0 when no
    /// shift happened.
    pub fn avg_shift(&self) -> f64 {
        if self.shifts == 0 {
            0.0
        } else {
            self.shift_total as f64 / self.shifts as f64
        }
    }

    /// Fold another counter into this one.
    pub fn merge(&mut self, other: &Counters) {
        self.comparisons += other.comparisons;
        self.shifts += other.shifts;
        self.shift_total += other.shift_total;
        self.scanned += other.scanned;
    }
}

impl Metrics for Counters {
    #[inline(always)]
    fn cmp(&mut self, n: u64) {
        self.comparisons += n;
    }

    #[inline(always)]
    fn shift(&mut self, n: u64) {
        self.shifts += 1;
        self.shift_total += n;
    }

    #[inline(always)]
    fn scanned(&mut self, n: u64) {
        self.scanned += n;
    }
}

impl Metrics for &mut Counters {
    #[inline(always)]
    fn cmp(&mut self, n: u64) {
        (**self).cmp(n);
    }

    #[inline(always)]
    fn shift(&mut self, n: u64) {
        (**self).shift(n);
    }

    #[inline(always)]
    fn scanned(&mut self, n: u64) {
        (**self).scanned(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut c = Counters::default();
        c.cmp(3);
        c.shift(4);
        c.shift(6);
        c.scanned(32);
        assert_eq!(c.comparisons, 3);
        assert_eq!(c.shifts, 2);
        assert_eq!(c.shift_total, 10);
        assert_eq!(c.scanned, 32);
        assert!((c.avg_shift() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn merge_folds_all_fields() {
        let mut a = Counters { comparisons: 1, shifts: 2, shift_total: 3, scanned: 4 };
        let b = Counters { comparisons: 10, shifts: 20, shift_total: 30, scanned: 40 };
        a.merge(&b);
        assert_eq!(a, Counters { comparisons: 11, shifts: 22, shift_total: 33, scanned: 44 });
    }

    #[test]
    fn avg_shift_of_empty_is_zero() {
        assert_eq!(Counters::default().avg_shift(), 0.0);
    }
}
