//! Aho–Corasick multi-keyword automaton (Aho & Corasick, CACM 1975).
//!
//! Processes every haystack character exactly once. This is the algorithm
//! family used by the tokenizing XML scanners the paper relates to (its
//! reference \[21\] extends Aho–Corasick to multi-byte tokens); SMP's point is
//! that Commentz–Walter style *skipping* beats it on XML inputs. We use it
//! as (a) a baseline scanner and (b) a second oracle for the
//! Commentz–Walter property tests.

use crate::{Metrics, MultiMatch, NoMetrics};

#[derive(Debug, Clone, Default)]
struct Node {
    /// Sorted outgoing edges (byte, target state).
    edges: Vec<(u8, u32)>,
    /// Failure link.
    fail: u32,
    /// Patterns ending at this node.
    out: Vec<u32>,
}

impl Node {
    fn child(&self, b: u8) -> Option<u32> {
        self.edges.binary_search_by_key(&b, |&(c, _)| c).ok().map(|i| self.edges[i].1)
    }
}

/// A compiled Aho–Corasick automaton over a pattern set.
#[derive(Debug, Clone)]
pub struct AhoCorasick {
    nodes: Vec<Node>,
    pattern_lens: Vec<usize>,
}

impl AhoCorasick {
    /// Compile the pattern set. Panics if any pattern is empty or the set is
    /// empty.
    pub fn new<P: AsRef<[u8]>>(patterns: &[P]) -> Self {
        assert!(!patterns.is_empty(), "AhoCorasick needs at least one pattern");
        let mut nodes = vec![Node::default()];
        let mut pattern_lens = Vec::with_capacity(patterns.len());
        for (idx, pat) in patterns.iter().enumerate() {
            let pat = pat.as_ref();
            assert!(!pat.is_empty(), "AhoCorasick patterns must be non-empty");
            pattern_lens.push(pat.len());
            let mut cur = 0u32;
            for &b in pat {
                cur = match nodes[cur as usize].child(b) {
                    Some(n) => n,
                    None => {
                        let n = nodes.len() as u32;
                        nodes.push(Node::default());
                        let edges = &mut nodes[cur as usize].edges;
                        let at = edges.partition_point(|&(c, _)| c < b);
                        edges.insert(at, (b, n));
                        n
                    }
                };
            }
            nodes[cur as usize].out.push(idx as u32);
        }

        // BFS to set failure links and merge outputs.
        let mut queue = std::collections::VecDeque::new();
        let root_children: Vec<u32> = nodes[0].edges.iter().map(|&(_, t)| t).collect();
        for t in root_children {
            nodes[t as usize].fail = 0;
            queue.push_back(t);
        }
        while let Some(s) = queue.pop_front() {
            let edges = nodes[s as usize].edges.clone();
            for (b, t) in edges {
                // Follow failure links of the parent to find t's failure.
                let mut f = nodes[s as usize].fail;
                let fail_target = loop {
                    if let Some(n) = nodes[f as usize].child(b) {
                        break n;
                    }
                    if f == 0 {
                        break 0;
                    }
                    f = nodes[f as usize].fail;
                };
                nodes[t as usize].fail = if fail_target == t { 0 } else { fail_target };
                let inherited = nodes[nodes[t as usize].fail as usize].out.clone();
                nodes[t as usize].out.extend(inherited);
                queue.push_back(t);
            }
        }

        AhoCorasick { nodes, pattern_lens }
    }

    /// Number of automaton states.
    pub fn state_count(&self) -> usize {
        self.nodes.len()
    }

    /// First match (minimal end position; ties broken by pattern order),
    /// uninstrumented.
    pub fn find(&self, hay: &[u8]) -> Option<MultiMatch> {
        self.find_at(hay, 0, &mut NoMetrics)
    }

    /// First match at or after `from`, instrumented.
    pub fn find_at<M: Metrics>(&self, hay: &[u8], from: usize, m: &mut M) -> Option<MultiMatch> {
        let mut state = 0u32;
        for (i, &b) in hay.iter().enumerate().skip(from) {
            m.cmp(1);
            state = self.step(state, b);
            let node = &self.nodes[state as usize];
            let end = i + 1;
            // Report the smallest pattern index among those ending here whose
            // occurrence lies fully within hay[from..], for determinism.
            if let Some(&pat) =
                node.out.iter().filter(|&&p| end - self.pattern_lens[p as usize] >= from).min()
            {
                let plen = self.pattern_lens[pat as usize];
                return Some(MultiMatch { pattern: pat as usize, start: end - plen, end });
            }
        }
        None
    }

    /// All matches, sorted by (end, pattern index).
    pub fn find_iter<'h>(&'h self, hay: &'h [u8]) -> impl Iterator<Item = MultiMatch> + 'h {
        let mut state = 0u32;
        let mut i = 0usize;
        let mut pending: Vec<MultiMatch> = Vec::new();
        std::iter::from_fn(move || loop {
            if let Some(m) = pending.pop() {
                return Some(m);
            }
            if i >= hay.len() {
                return None;
            }
            state = self.step(state, hay[i]);
            i += 1;
            let node = &self.nodes[state as usize];
            if !node.out.is_empty() {
                let mut here: Vec<MultiMatch> = node
                    .out
                    .iter()
                    .map(|&p| {
                        let plen = self.pattern_lens[p as usize];
                        MultiMatch { pattern: p as usize, start: i - plen, end: i }
                    })
                    .collect();
                here.sort_by_key(|m| std::cmp::Reverse(m.pattern));
                pending = here;
            }
        })
    }

    #[inline]
    fn step(&self, mut state: u32, b: u8) -> u32 {
        loop {
            if let Some(n) = self.nodes[state as usize].child(b) {
                return n;
            }
            if state == 0 {
                return 0;
            }
            state = self.nodes[state as usize].fail;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;

    #[test]
    fn finds_all_matches_sorted_by_end() {
        let pats: Vec<&[u8]> = vec![b"he", b"she", b"his", b"hers"];
        let ac = AhoCorasick::new(&pats);
        let hay = b"ushers";
        let got: Vec<MultiMatch> = ac.find_iter(hay).collect();
        assert_eq!(got, naive::find_all_multi(hay, &pats));
    }

    #[test]
    fn first_match_is_minimal_end() {
        let pats: Vec<&[u8]> = vec![b"<b", b"<c", b"</a"];
        let ac = AhoCorasick::new(&pats);
        let m = ac.find(b"<a><c><b/></c></a>").unwrap();
        assert_eq!((m.pattern, m.start, m.end), (1, 3, 5));
    }

    #[test]
    fn respects_from_offset() {
        let pats: Vec<&[u8]> = vec![b"ab"];
        let ac = AhoCorasick::new(&pats);
        let m = ac.find_at(b"abab", 1, &mut NoMetrics).unwrap();
        assert_eq!(m.start, 2);
    }

    #[test]
    fn overlapping_patterns() {
        let pats: Vec<&[u8]> = vec![b"aa", b"aaa"];
        let ac = AhoCorasick::new(&pats);
        let hay = b"aaaa";
        let got: Vec<MultiMatch> = ac.find_iter(hay).collect();
        assert_eq!(got, naive::find_all_multi(hay, &pats));
    }

    #[test]
    fn single_pattern_degenerates_to_substring_search() {
        let pats: Vec<&[u8]> = vec![b"abc"];
        let ac = AhoCorasick::new(&pats);
        assert_eq!(ac.find(b"zzabczz").map(|m| m.start), Some(2));
        assert_eq!(ac.find(b"zz"), None);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_pattern_panics() {
        let _ = AhoCorasick::new(&[b"".as_slice()]);
    }
}
