//! DTD substrate for the SMP static analysis.
//!
//! SMP (Koch, Scherzinger, Schmidt, ICDE 2008) assumes a *non-recursive*
//! DTD. From it, the static analysis needs three things, all provided here:
//!
//! 1. a parsed schema — element declarations with content models and
//!    attribute lists ([`Dtd`], [`ContentModel`], [`Regex`]),
//! 2. the **DTD-automaton** (paper Fig. 5): a homogeneous finite automaton
//!    over opening/closing tag tokens accepting exactly the documents valid
//!    w.r.t. the DTD, with dual states `q`/`q̂` per element instance and a
//!    parent-state relation ([`DtdAutomaton`]), built via Glushkov position
//!    automata of the content models ([`glushkov::Glushkov`]),
//! 3. **minimal serialization lengths** (paper Ex. 3): the fewest characters
//!    an element instance can occupy in any valid document, counting
//!    required attributes — the ingredient of the initial jump offsets
//!    `J[q]` ([`MinLen`]).
//!
//! # Example
//!
//! ```
//! use smpx_dtd::Dtd;
//!
//! // The paper's Example 2 DTD.
//! let dtd = Dtd::parse(br#"<!DOCTYPE a [
//!     <!ELEMENT a (b|c)*>
//!     <!ELEMENT b (#PCDATA)>
//!     <!ELEMENT c (b,b?)>
//! ]>"#).unwrap();
//! assert_eq!(dtd.root(), "a");
//! assert!(!dtd.is_recursive());
//!
//! let auto = smpx_dtd::DtdAutomaton::build(&dtd).unwrap();
//! // q0 plus dual states for: a, b (child of a), c (child of a),
//! // b (1st child of c), b (2nd child of c)  =>  1 + 2*5 = 11.
//! assert_eq!(auto.state_count(), 11);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod automaton;
mod error;
pub mod glushkov;
mod minlen;
mod model;
mod parser;

pub use automaton::{DtdAutomaton, StateId, TagToken};
pub use error::DtdError;
pub use minlen::MinLen;
pub use model::{AttDef, AttDefault, ContentModel, Dtd, ElementDecl, Regex};
