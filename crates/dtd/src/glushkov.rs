//! Glushkov position automata for content-model regular expressions.
//!
//! The Glushkov construction (Brüggemann-Klein & Wood \[24\] in the paper)
//! yields a *homogeneous* automaton: every transition entering a position
//! carries that position's label. The paper relies on homogeneity to hang
//! actions off states, so this is the construction used for the DTD
//! automaton's per-element skeletons.

use crate::model::Regex;
use std::collections::BTreeSet;

/// The Glushkov position automaton of one content-model expression.
///
/// Positions are the occurrences of element names in the expression,
/// numbered left to right from 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Glushkov {
    /// Label (element name) of each position.
    pub labels: Vec<String>,
    /// Does the expression accept the empty word?
    pub nullable: bool,
    /// Positions that can start a word.
    pub first: Vec<usize>,
    /// Positions that can end a word.
    pub last: Vec<usize>,
    /// `follow[x]` = positions that may directly follow position `x`.
    pub follow: Vec<Vec<usize>>,
}

struct Info {
    nullable: bool,
    first: BTreeSet<usize>,
    last: BTreeSet<usize>,
}

impl Glushkov {
    /// Build the position automaton for `re`.
    pub fn build(re: &Regex) -> Glushkov {
        let mut labels = Vec::new();
        let mut follow: Vec<BTreeSet<usize>> = Vec::new();
        let info = walk(re, &mut labels, &mut follow);
        Glushkov {
            labels,
            nullable: info.nullable,
            first: info.first.into_iter().collect(),
            last: info.last.into_iter().collect(),
            follow: follow.into_iter().map(|s| s.into_iter().collect()).collect(),
        }
    }

    /// Number of positions.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the expression contains no positions.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// NFA simulation: does `seq` (a sequence of element names) match the
    /// expression? Used by tests and by the document validator.
    pub fn matches<S: AsRef<str>>(&self, seq: &[S]) -> bool {
        if seq.is_empty() {
            return self.nullable;
        }
        let mut current: BTreeSet<usize> =
            self.first.iter().copied().filter(|&p| self.labels[p] == seq[0].as_ref()).collect();
        for s in &seq[1..] {
            if current.is_empty() {
                return false;
            }
            let mut next = BTreeSet::new();
            for &p in &current {
                for &q in &self.follow[p] {
                    if self.labels[q] == s.as_ref() {
                        next.insert(q);
                    }
                }
            }
            current = next;
        }
        current.iter().any(|p| self.last.contains(p))
    }
}

fn walk(re: &Regex, labels: &mut Vec<String>, follow: &mut Vec<BTreeSet<usize>>) -> Info {
    match re {
        Regex::Name(n) => {
            let p = labels.len();
            labels.push(n.clone());
            follow.push(BTreeSet::new());
            Info {
                nullable: false,
                first: std::iter::once(p).collect(),
                last: std::iter::once(p).collect(),
            }
        }
        Regex::Seq(parts) => {
            let mut acc: Option<Info> = None;
            for part in parts {
                let cur = walk(part, labels, follow);
                acc = Some(match acc {
                    None => cur,
                    Some(prev) => {
                        // last(prev) → first(cur)
                        for &l in &prev.last {
                            follow[l].extend(cur.first.iter().copied());
                        }
                        Info {
                            nullable: prev.nullable && cur.nullable,
                            first: if prev.nullable {
                                prev.first.union(&cur.first).copied().collect()
                            } else {
                                prev.first
                            },
                            last: if cur.nullable {
                                prev.last.union(&cur.last).copied().collect()
                            } else {
                                cur.last
                            },
                        }
                    }
                });
            }
            acc.unwrap_or(Info { nullable: true, first: BTreeSet::new(), last: BTreeSet::new() })
        }
        Regex::Choice(parts) => {
            let mut nullable = false;
            let mut first = BTreeSet::new();
            let mut last = BTreeSet::new();
            for part in parts {
                let cur = walk(part, labels, follow);
                nullable |= cur.nullable;
                first.extend(cur.first);
                last.extend(cur.last);
            }
            Info { nullable, first, last }
        }
        Regex::Opt(inner) => {
            let cur = walk(inner, labels, follow);
            Info { nullable: true, ..cur }
        }
        Regex::Star(inner) | Regex::Plus(inner) => {
            let cur = walk(inner, labels, follow);
            for &l in &cur.last {
                let firsts: Vec<usize> = cur.first.iter().copied().collect();
                follow[l].extend(firsts);
            }
            Info { nullable: matches!(re, Regex::Star(_)) || cur.nullable, ..cur }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(n: &str) -> Regex {
        Regex::Name(n.into())
    }

    #[test]
    fn single_name() {
        let g = Glushkov::build(&name("a"));
        assert_eq!(g.len(), 1);
        assert!(!g.nullable);
        assert_eq!(g.first, vec![0]);
        assert_eq!(g.last, vec![0]);
        assert!(g.matches(&["a"]));
        assert!(!g.matches(&["b"]));
        assert!(!g.matches::<&str>(&[]));
        assert!(!g.matches(&["a", "a"]));
    }

    #[test]
    fn sequence() {
        let g = Glushkov::build(&Regex::Seq(vec![name("a"), name("b"), name("c")]));
        assert!(g.matches(&["a", "b", "c"]));
        assert!(!g.matches(&["a", "b"]));
        assert!(!g.matches(&["a", "c", "b"]));
        assert_eq!(g.follow[0], vec![1]);
        assert_eq!(g.follow[1], vec![2]);
        assert!(g.follow[2].is_empty());
    }

    #[test]
    fn choice_star_from_example2() {
        // (b|c)* — the paper's element `a` content.
        let g = Glushkov::build(&Regex::Star(Box::new(Regex::Choice(vec![name("b"), name("c")]))));
        assert!(g.nullable);
        assert!(g.matches::<&str>(&[]));
        assert!(g.matches(&["b", "c", "c", "b"]));
        assert_eq!(g.first, vec![0, 1]);
        assert_eq!(g.last, vec![0, 1]);
        assert_eq!(g.follow[0], vec![0, 1]);
        assert_eq!(g.follow[1], vec![0, 1]);
    }

    #[test]
    fn seq_with_optional_from_example2() {
        // (b, b?) — the paper's element `c` content.
        let g = Glushkov::build(&Regex::Seq(vec![name("b"), Regex::Opt(Box::new(name("b")))]));
        assert!(!g.nullable);
        assert!(g.matches(&["b"]));
        assert!(g.matches(&["b", "b"]));
        assert!(!g.matches(&["b", "b", "b"]));
        assert_eq!(g.first, vec![0]);
        assert_eq!(g.last, vec![0, 1]);
    }

    #[test]
    fn plus_repeats() {
        let g = Glushkov::build(&Regex::Plus(Box::new(name("x"))));
        assert!(!g.nullable);
        assert!(g.matches(&["x"]));
        assert!(g.matches(&["x", "x", "x"]));
        assert!(!g.matches::<&str>(&[]));
    }

    #[test]
    fn nullable_prefix_extends_first() {
        // (a?, b): first = {a, b}.
        let g = Glushkov::build(&Regex::Seq(vec![Regex::Opt(Box::new(name("a"))), name("b")]));
        assert_eq!(g.first, vec![0, 1]);
        assert!(g.matches(&["b"]));
        assert!(g.matches(&["a", "b"]));
        assert!(!g.matches(&["a"]));
    }

    #[test]
    fn duplicate_labels_are_distinct_positions() {
        // (b, b?) has two b-positions; Glushkov keeps them apart.
        let g = Glushkov::build(&Regex::Seq(vec![name("b"), Regex::Opt(Box::new(name("b")))]));
        assert_eq!(g.labels, vec!["b".to_string(), "b".to_string()]);
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn xmark_item_sequence() {
        // (location,name,payment,description,shipping,incategory+)
        let g = Glushkov::build(&Regex::Seq(vec![
            name("location"),
            name("name"),
            name("payment"),
            name("description"),
            name("shipping"),
            Regex::Plus(Box::new(name("incategory"))),
        ]));
        assert!(g.matches(&[
            "location",
            "name",
            "payment",
            "description",
            "shipping",
            "incategory",
            "incategory"
        ]));
        assert!(!g.matches(&["location", "name", "payment", "description", "shipping"]));
    }
}
