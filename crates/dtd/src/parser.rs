//! Recursive-descent parser for DTD internal subsets.
//!
//! Accepts either a full `<!DOCTYPE name [ … ]>` wrapper or a bare sequence
//! of `<!ELEMENT>` / `<!ATTLIST>` declarations. Comments are skipped;
//! parameter entities are not supported (none of the paper's schemas use
//! them).

use crate::error::DtdError;
use crate::model::{AttDef, AttDefault, ContentModel, Dtd, ElementDecl, Regex};
use smpx_xml::{is_name_byte, is_name_start_byte, is_xml_whitespace};
use std::collections::BTreeMap;

pub(crate) fn parse(input: &[u8]) -> Result<Dtd, DtdError> {
    let mut p = Parser { input, pos: 0 };
    p.skip_ws_and_comments();

    let mut doctype_root: Option<String> = None;
    if p.eat(b"<!DOCTYPE") {
        p.require_ws()?;
        doctype_root = Some(p.name()?);
        p.skip_ws_and_comments();
        if !p.eat(b"[") {
            return Err(p.err("expected '[' opening the internal subset"));
        }
    }

    let mut decls: Vec<(String, ContentModel)> = Vec::new();
    let mut attlists: BTreeMap<String, Vec<AttDef>> = BTreeMap::new();
    loop {
        p.skip_ws_and_comments();
        if p.done() {
            break;
        }
        if doctype_root.is_some() && p.peek() == Some(b']') {
            p.pos += 1;
            p.skip_ws_and_comments();
            if !p.eat(b">") {
                return Err(p.err("expected '>' closing DOCTYPE"));
            }
            p.skip_ws_and_comments();
            break;
        }
        if p.eat(b"<!ELEMENT") {
            p.require_ws()?;
            let name = p.name()?;
            p.require_ws()?;
            let content = p.content_model()?;
            p.skip_ws_and_comments();
            if !p.eat(b">") {
                return Err(p.err("expected '>' closing ELEMENT declaration"));
            }
            decls.push((name, content));
        } else if p.eat(b"<!ATTLIST") {
            p.require_ws()?;
            let elem = p.name()?;
            let defs = p.att_defs()?;
            attlists.entry(elem).or_default().extend(defs);
        } else if p.eat(b"<!ENTITY") || p.eat(b"<!NOTATION") {
            // Tolerated and skipped: scan to the closing '>'.
            while let Some(c) = p.peek() {
                p.pos += 1;
                if c == b'>' {
                    break;
                }
            }
        } else {
            return Err(p.err("expected a markup declaration"));
        }
    }

    if decls.is_empty() {
        return Err(DtdError::Empty);
    }
    let root = doctype_root.unwrap_or_else(|| decls[0].0.clone());
    let mut elements = Vec::with_capacity(decls.len());
    for (name, content) in decls {
        let attrs = attlists.remove(&name).unwrap_or_default();
        elements.push(ElementDecl { name, content, attrs });
    }
    // ATTLISTs for undeclared elements get a synthetic PCDATA declaration so
    // their required attributes still count toward minimal lengths.
    for (name, attrs) in attlists {
        elements.push(ElementDecl { name, content: ContentModel::Pcdata, attrs });
    }
    Dtd::from_parts(root, elements)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> DtdError {
        DtdError::Syntax { msg: msg.to_string(), pos: self.pos }
    }

    fn done(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn eat(&mut self, lit: &[u8]) -> bool {
        if self.input[self.pos.min(self.input.len())..].starts_with(lit) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.peek() {
            if is_xml_whitespace(c) {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn skip_ws_and_comments(&mut self) {
        loop {
            self.skip_ws();
            if self.eat(b"<!--") {
                while self.pos < self.input.len() && !self.input[self.pos..].starts_with(b"-->") {
                    self.pos += 1;
                }
                self.pos = (self.pos + 3).min(self.input.len());
            } else {
                break;
            }
        }
    }

    fn require_ws(&mut self) -> Result<(), DtdError> {
        match self.peek() {
            Some(c) if is_xml_whitespace(c) => {
                self.skip_ws_and_comments();
                Ok(())
            }
            _ => Err(self.err("expected whitespace")),
        }
    }

    fn name(&mut self) -> Result<String, DtdError> {
        let start = self.pos;
        match self.peek() {
            Some(c) if is_name_start_byte(c) => self.pos += 1,
            _ => return Err(self.err("expected a name")),
        }
        while let Some(c) = self.peek() {
            if is_name_byte(c) {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn content_model(&mut self) -> Result<ContentModel, DtdError> {
        if self.eat(b"EMPTY") {
            return Ok(ContentModel::Empty);
        }
        if self.eat(b"ANY") {
            return Ok(ContentModel::Any);
        }
        if self.peek() != Some(b'(') {
            // Non-standard shorthand some DTD excerpts use: `#PCDATA`
            // without parentheses (the paper's Fig. 1 uses this style).
            if self.eat(b"#PCDATA") {
                return Ok(ContentModel::Pcdata);
            }
            return Err(self.err("expected a content model"));
        }
        // Look ahead for mixed content.
        let save = self.pos;
        self.pos += 1; // consume '('
        self.skip_ws_and_comments();
        if self.eat(b"#PCDATA") {
            self.skip_ws_and_comments();
            let mut names = Vec::new();
            while self.eat(b"|") {
                self.skip_ws_and_comments();
                names.push(self.name()?);
                self.skip_ws_and_comments();
            }
            if !self.eat(b")") {
                return Err(self.err("expected ')' in mixed content"));
            }
            let starred = self.eat(b"*");
            if !names.is_empty() && !starred {
                return Err(self.err("mixed content with names requires trailing '*'"));
            }
            return Ok(if names.is_empty() {
                ContentModel::Pcdata
            } else {
                ContentModel::Mixed(names)
            });
        }
        // Element content: back up to the '(' and parse a regex.
        self.pos = save;
        let re = self.regex_particle()?;
        Ok(ContentModel::Children(re))
    }

    /// cp ::= (name | choice | seq) ('?' | '*' | '+')?
    fn regex_particle(&mut self) -> Result<Regex, DtdError> {
        self.skip_ws_and_comments();
        let base = if self.eat(b"(") {
            let re = self.regex_group()?;
            if !self.eat(b")") {
                return Err(self.err("expected ')'"));
            }
            re
        } else {
            Regex::Name(self.name()?)
        };
        Ok(match self.peek() {
            Some(b'?') => {
                self.pos += 1;
                Regex::Opt(Box::new(base))
            }
            Some(b'*') => {
                self.pos += 1;
                Regex::Star(Box::new(base))
            }
            Some(b'+') => {
                self.pos += 1;
                Regex::Plus(Box::new(base))
            }
            _ => base,
        })
    }

    /// group ::= cp ((',' cp)* | ('|' cp)*)
    fn regex_group(&mut self) -> Result<Regex, DtdError> {
        let first = self.regex_particle()?;
        self.skip_ws_and_comments();
        match self.peek() {
            Some(b',') => {
                let mut parts = vec![first];
                while self.eat(b",") {
                    parts.push(self.regex_particle()?);
                    self.skip_ws_and_comments();
                }
                Ok(Regex::Seq(parts))
            }
            Some(b'|') => {
                let mut parts = vec![first];
                while self.eat(b"|") {
                    parts.push(self.regex_particle()?);
                    self.skip_ws_and_comments();
                }
                Ok(Regex::Choice(parts))
            }
            _ => Ok(first),
        }
    }

    fn att_defs(&mut self) -> Result<Vec<AttDef>, DtdError> {
        let mut defs = Vec::new();
        loop {
            self.skip_ws_and_comments();
            if self.eat(b">") {
                return Ok(defs);
            }
            let name = self.name()?;
            self.require_ws()?;
            let ty = self.att_type()?;
            self.require_ws()?;
            let default = if self.eat(b"#REQUIRED") {
                AttDefault::Required
            } else if self.eat(b"#IMPLIED") {
                AttDefault::Implied
            } else if self.eat(b"#FIXED") {
                self.require_ws()?;
                AttDefault::Fixed(self.quoted()?)
            } else {
                AttDefault::Default(self.quoted()?)
            };
            defs.push(AttDef { name, ty, default });
        }
    }

    fn att_type(&mut self) -> Result<String, DtdError> {
        // Enumerated type?
        if self.peek() == Some(b'(') {
            let start = self.pos;
            while let Some(c) = self.peek() {
                self.pos += 1;
                if c == b')' {
                    return Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned());
                }
            }
            return Err(self.err("unterminated enumerated attribute type"));
        }
        // NOTATION (…)?
        if self.eat(b"NOTATION") {
            self.require_ws()?;
            if self.peek() == Some(b'(') {
                let start = self.pos;
                while let Some(c) = self.peek() {
                    self.pos += 1;
                    if c == b')' {
                        return Ok(format!(
                            "NOTATION {}",
                            String::from_utf8_lossy(&self.input[start..self.pos])
                        ));
                    }
                }
            }
            return Err(self.err("malformed NOTATION type"));
        }
        self.name()
    }

    fn quoted(&mut self) -> Result<String, DtdError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected a quoted value")),
        };
        self.pos += 1;
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == quote {
                let v = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                self.pos += 1;
                return Ok(v);
            }
            self.pos += 1;
        }
        Err(self.err("unterminated quoted value"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const XMARK_EXCERPT: &[u8] = br#"<!DOCTYPE site [
<!ELEMENT site (regions)>
<!ELEMENT regions (africa, asia, australia)>
<!ELEMENT africa (item*)>
<!ELEMENT asia (item*)>
<!ELEMENT australia (item*)>
<!ELEMENT item (location,name,payment,description,shipping,incategory+)>
<!ELEMENT incategory EMPTY>
<!ATTLIST incategory category ID #REQUIRED>
]>"#;

    #[test]
    fn parses_the_papers_fig1_excerpt() {
        let dtd = Dtd::parse(XMARK_EXCERPT).unwrap();
        assert_eq!(dtd.root(), "site");
        assert_eq!(*dtd.content("incategory"), ContentModel::Empty);
        assert_eq!(dtd.required_attrs("incategory").collect::<Vec<_>>(), vec!["category"]);
        // Unlisted tags default to PCDATA.
        assert_eq!(*dtd.content("location"), ContentModel::Pcdata);
        match dtd.content("item") {
            ContentModel::Children(Regex::Seq(parts)) => assert_eq!(parts.len(), 6),
            other => panic!("unexpected content model {other:?}"),
        }
        assert!(!dtd.is_recursive());
    }

    #[test]
    fn parses_example2_dtd() {
        let dtd = Dtd::parse(
            br#"<!DOCTYPE a [ <!ELEMENT a (b|c)*> <!ELEMENT b (#PCDATA)> <!ELEMENT c (b,b?)> ]>"#,
        )
        .unwrap();
        assert_eq!(dtd.root(), "a");
        match dtd.content("a") {
            ContentModel::Children(Regex::Star(inner)) => match &**inner {
                Regex::Choice(cs) => assert_eq!(cs.len(), 2),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
        match dtd.content("c") {
            ContentModel::Children(Regex::Seq(parts)) => {
                assert_eq!(parts[0], Regex::Name("b".into()));
                assert_eq!(parts[1], Regex::Opt(Box::new(Regex::Name("b".into()))));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bare_internal_subset_without_doctype() {
        let dtd = Dtd::parse(b"<!ELEMENT r (x?)> <!ELEMENT x EMPTY>").unwrap();
        assert_eq!(dtd.root(), "r");
    }

    #[test]
    fn mixed_content() {
        let dtd = Dtd::parse(b"<!ELEMENT p (#PCDATA | em | strong)*>").unwrap();
        assert_eq!(*dtd.content("p"), ContentModel::Mixed(vec!["em".into(), "strong".into()]));
        assert!(dtd.content("p").allows_text());
    }

    #[test]
    fn nested_groups_and_modifiers() {
        let dtd = Dtd::parse(b"<!ELEMENT r ((a | b)+, c?, (d, e)*)>").unwrap();
        match dtd.content("r") {
            ContentModel::Children(Regex::Seq(parts)) => {
                assert!(matches!(parts[0], Regex::Plus(_)));
                assert!(matches!(parts[1], Regex::Opt(_)));
                assert!(matches!(parts[2], Regex::Star(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn attlist_kinds() {
        let dtd = Dtd::parse(
            br#"<!ELEMENT e EMPTY>
                <!ATTLIST e id ID #REQUIRED
                            opt CDATA #IMPLIED
                            fix CDATA #FIXED "v"
                            def (x|y) "x">"#,
        )
        .unwrap();
        let attrs = dtd.attrs("e");
        assert_eq!(attrs.len(), 4);
        assert_eq!(attrs[0].default, AttDefault::Required);
        assert_eq!(attrs[1].default, AttDefault::Implied);
        assert_eq!(attrs[2].default, AttDefault::Fixed("v".into()));
        assert_eq!(attrs[3].default, AttDefault::Default("x".into()));
        assert_eq!(attrs[3].ty, "(x|y)");
    }

    #[test]
    fn attlist_for_undeclared_element_is_kept() {
        let dtd = Dtd::parse(b"<!ELEMENT r (ghost)> <!ATTLIST ghost g CDATA #REQUIRED>").unwrap();
        assert_eq!(dtd.required_attrs("ghost").count(), 1);
    }

    #[test]
    fn comments_and_entities_skipped() {
        let dtd = Dtd::parse(
            b"<!-- header --> <!ELEMENT r EMPTY> <!ENTITY nbsp \"&#160;\"> <!-- tail -->",
        )
        .unwrap();
        assert_eq!(dtd.root(), "r");
    }

    #[test]
    fn pcdata_without_parens_tolerated() {
        // The paper's Example 2 writes `<!ELEMENT b #PCDATA>`.
        let dtd = Dtd::parse(b"<!ELEMENT b #PCDATA>").unwrap();
        assert_eq!(*dtd.content("b"), ContentModel::Pcdata);
    }

    #[test]
    fn syntax_errors() {
        assert!(Dtd::parse(b"<!ELEMENT >").is_err());
        assert!(Dtd::parse(b"<!ELEMENT a (b|>").is_err());
        assert!(Dtd::parse(b"<!DOCTYPE a <!ELEMENT a EMPTY>").is_err());
        assert!(Dtd::parse(b"nonsense").is_err());
        assert!(Dtd::parse(b"").is_err());
        assert!(Dtd::parse(b"<!ATTLIST e a CDATA >").is_err());
    }

    #[test]
    fn duplicate_element_rejected() {
        assert!(matches!(
            Dtd::parse(b"<!ELEMENT a EMPTY> <!ELEMENT a EMPTY>"),
            Err(DtdError::DuplicateElement(_))
        ));
    }
}
