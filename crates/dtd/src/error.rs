//! DTD error type.

use std::fmt;

/// Errors raised while parsing a DTD or compiling automata from it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DtdError {
    /// Syntax error in the DTD text.
    Syntax {
        /// Human-readable description.
        msg: String,
        /// Byte offset in the DTD input.
        pos: usize,
    },
    /// The same element was declared twice.
    DuplicateElement(String),
    /// The DTD is recursive (an element can contain itself), which SMP's
    /// static analysis does not support (the paper assumes non-recursive
    /// schemas; recursion would require the extension sketched in its
    /// Sec. II).
    Recursive {
        /// One element on the cycle.
        element: String,
    },
    /// The expanded DTD-automaton exceeded the state budget, indicating a
    /// pathologically nested schema.
    TooLarge {
        /// Number of states at which expansion was aborted.
        limit: usize,
    },
    /// The DTD declares no elements.
    Empty,
}

impl fmt::Display for DtdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DtdError::Syntax { msg, pos } => write!(f, "DTD syntax error at byte {pos}: {msg}"),
            DtdError::DuplicateElement(e) => write!(f, "element {e:?} declared twice"),
            DtdError::Recursive { element } => {
                write!(f, "recursive DTD: element {element:?} can contain itself")
            }
            DtdError::TooLarge { limit } => {
                write!(f, "DTD-automaton exceeds {limit} states")
            }
            DtdError::Empty => write!(f, "DTD declares no elements"),
        }
    }
}

impl std::error::Error for DtdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(DtdError::Syntax { msg: "x".into(), pos: 3 }.to_string().contains("byte 3"));
        assert!(DtdError::Recursive { element: "a".into() }.to_string().contains("recursive"));
        assert!(DtdError::TooLarge { limit: 10 }.to_string().contains("10"));
    }
}
