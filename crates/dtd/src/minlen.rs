//! Minimal serialization lengths (paper Ex. 1 and Ex. 3).
//!
//! The initial jump offsets `J[q]` rest on one question: *how few characters
//! can a given piece of document structure occupy in any valid instance?*
//! This module answers it per element:
//!
//! * the minimal **open tag** `<name …>` including all `#REQUIRED`
//!   attributes at their shortest valid values,
//! * the minimal **close tag** `</name>`,
//! * the minimal **bachelor tag** `<name …/>` (only when the content model
//!   admits emptiness),
//! * the minimal **complete instance** (open + minimal content + close, or
//!   the bachelor form when allowed).
//!
//! Required attributes of enumerated type must carry one of the enumeration
//! tokens, so their minimal value is the shortest token; every other
//! attribute type admits an empty value as far as well-formedness is
//! concerned — matching the paper's `<incategory category=''/>` accounting
//! (25 characters).

use crate::error::DtdError;
use crate::model::{AttDefault, ContentModel, Dtd, Regex};
use std::collections::BTreeMap;

/// Precomputed minimal lengths for every element of a DTD.
#[derive(Debug, Clone)]
pub struct MinLen {
    attr_min: BTreeMap<String, usize>,
    content_min: BTreeMap<String, usize>,
    can_be_empty: BTreeMap<String, bool>,
}

impl MinLen {
    /// Compute the table. Fails on recursive DTDs (exact lengths would be
    /// ill-founded); use
    /// [`compute_allow_recursion`](Self::compute_allow_recursion) for the
    /// conservative variant.
    pub fn compute(dtd: &Dtd) -> Result<MinLen, DtdError> {
        if let Some(e) = dtd.find_cycle() {
            return Err(DtdError::Recursive { element: e.to_string() });
        }
        Self::compute_allow_recursion(dtd)
    }

    /// Compute the table, assigning recursive elements a conservative
    /// minimal content length of 0. All lengths remain valid *lower*
    /// bounds, which is the only property jump-offset safety needs.
    pub fn compute_allow_recursion(dtd: &Dtd) -> Result<MinLen, DtdError> {
        let mut ml = MinLen {
            attr_min: BTreeMap::new(),
            content_min: BTreeMap::new(),
            can_be_empty: BTreeMap::new(),
        };
        // Declared elements plus everything they reference.
        let mut names: Vec<String> = dtd.elements().map(|e| e.name.clone()).collect();
        let mut i = 0;
        while i < names.len() {
            let children: Vec<String> =
                dtd.effective_child_names(&names[i]).into_iter().map(str::to_string).collect();
            for c in children {
                if !names.contains(&c) {
                    names.push(c);
                }
            }
            i += 1;
        }
        for n in &names {
            ml.attr_min.insert(n.clone(), required_attrs_min(dtd, n));
            ml.can_be_empty.insert(n.clone(), dtd.content(n).can_be_empty());
        }
        // Pre-seed recursive elements with 0 so the memoized recursion is
        // well-founded (and conservative).
        for e in dtd.recursive_elements() {
            ml.content_min.insert(e.to_string(), 0);
        }
        for n in &names {
            content_min_memo(dtd, n, &mut ml.content_min);
        }
        Ok(ml)
    }

    /// Minimal total characters of the `#REQUIRED` attributes of `elem`,
    /// including the separating spaces (e.g. ` category=""` = 12).
    pub fn attrs(&self, elem: &str) -> usize {
        self.attr_min.get(elem).copied().unwrap_or(0)
    }

    /// Minimal characters of the content (between open and close tag).
    pub fn content_len(&self, elem: &str) -> usize {
        self.content_min.get(elem).copied().unwrap_or(0)
    }

    /// Minimal open tag `<elem …>` length.
    pub fn open_tag(&self, elem: &str) -> usize {
        1 + elem.len() + self.attrs(elem) + 1
    }

    /// Close tag `</elem>` length.
    pub fn close_tag(&self, elem: &str) -> usize {
        2 + elem.len() + 1
    }

    /// Minimal bachelor tag `<elem …/>` length, if the element may be empty.
    pub fn bachelor(&self, elem: &str) -> Option<usize> {
        if self.can_be_empty.get(elem).copied().unwrap_or(true) {
            Some(1 + elem.len() + self.attrs(elem) + 2)
        } else {
            None
        }
    }

    /// Minimal length of a complete instance of `elem` in any valid
    /// document.
    pub fn elem(&self, elem: &str) -> usize {
        let paired = self.open_tag(elem) + self.content_len(elem) + self.close_tag(elem);
        match self.bachelor(elem) {
            Some(b) => paired.min(b),
            None => paired,
        }
    }
}

/// Memoized minimal content length of `elem` (acyclic by the recursion
/// check, so plain recursion with a memo map terminates in O(schema size)).
fn content_min_memo(dtd: &Dtd, elem: &str, memo: &mut BTreeMap<String, usize>) -> usize {
    if let Some(&v) = memo.get(elem) {
        return v;
    }
    let v = match dtd.content(elem) {
        ContentModel::Empty | ContentModel::Pcdata | ContentModel::Any | ContentModel::Mixed(_) => {
            0
        }
        ContentModel::Children(re) => {
            let re = re.clone();
            regex_min_memo(dtd, &re, memo)
        }
    };
    memo.insert(elem.to_string(), v);
    v
}

fn regex_min_memo(dtd: &Dtd, re: &Regex, memo: &mut BTreeMap<String, usize>) -> usize {
    match re {
        Regex::Name(n) => elem_min_memo(dtd, n, memo),
        Regex::Seq(parts) => parts.iter().map(|p| regex_min_memo(dtd, p, memo)).sum(),
        Regex::Choice(parts) => {
            parts.iter().map(|p| regex_min_memo(dtd, p, memo)).min().unwrap_or(0)
        }
        Regex::Opt(_) | Regex::Star(_) => 0,
        Regex::Plus(inner) => regex_min_memo(dtd, inner, memo),
    }
}

/// Minimal length of a complete instance of `elem`.
fn elem_min_memo(dtd: &Dtd, elem: &str, memo: &mut BTreeMap<String, usize>) -> usize {
    let a = required_attrs_min(dtd, elem);
    let content = content_min_memo(dtd, elem, memo);
    let paired = (1 + elem.len() + a + 1) + content + (2 + elem.len() + 1);
    if dtd.content(elem).can_be_empty() {
        let bachelor = 1 + elem.len() + a + 2;
        paired.min(bachelor)
    } else {
        paired
    }
}

fn required_attrs_min(dtd: &Dtd, elem: &str) -> usize {
    dtd.attrs(elem)
        .iter()
        .filter(|a| matches!(a.default, AttDefault::Required))
        .map(|a| {
            // ` name="v"` = 1 + |name| + 1 + 2 + |v|.
            let min_value = min_attr_value_len(&a.ty);
            1 + a.name.len() + 1 + 2 + min_value
        })
        .sum()
}

/// Minimal value length by declared type: enumerations must use one of
/// their tokens; every other type admits the empty string as far as
/// well-formedness goes.
fn min_attr_value_len(ty: &str) -> usize {
    let ty = ty.trim();
    if let Some(body) = ty.strip_prefix('(').and_then(|t| t.strip_suffix(')')) {
        return body.split('|').map(|tok| tok.trim().len()).min().unwrap_or(0);
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1_dtd() -> Dtd {
        Dtd::parse(
            br#"<!DOCTYPE site [
            <!ELEMENT site (regions)>
            <!ELEMENT regions (africa, asia, australia)>
            <!ELEMENT africa (item*)>
            <!ELEMENT asia (item*)>
            <!ELEMENT australia (item*)>
            <!ELEMENT item (location,name,payment,description,shipping,incategory+)>
            <!ELEMENT incategory EMPTY>
            <!ATTLIST incategory category ID #REQUIRED>
            ]>"#,
        )
        .unwrap()
    }

    #[test]
    fn example1_jump_ingredients() {
        // "<regions><africa/><asia/>" has length 25 in the paper.
        let ml = MinLen::compute(&fig1_dtd()).unwrap();
        assert_eq!(ml.open_tag("regions"), 9);
        assert_eq!(ml.bachelor("africa"), Some(9));
        assert_eq!(ml.bachelor("asia"), Some(7));
        assert_eq!(ml.open_tag("regions") + ml.elem("africa") + ml.elem("asia"), 25);
    }

    #[test]
    fn example1_item_tail_ingredients() {
        // "<shipping/><incategory category=''/></item>" from the paper's
        // Example 1: 11 + 25 + 7 = 43.
        let ml = MinLen::compute(&fig1_dtd()).unwrap();
        assert_eq!(ml.elem("shipping"), 11);
        assert_eq!(ml.attrs("incategory"), 12);
        assert_eq!(ml.elem("incategory"), 25);
        assert_eq!(ml.close_tag("item"), 7);
        assert_eq!(ml.elem("shipping") + ml.elem("incategory") + ml.close_tag("item"), 43);
    }

    #[test]
    fn example3_c_content() {
        // DTD of Ex. 2: c has content (b,b?); minimal content is one
        // bachelor <b/> = 4 characters (J[q3] = 4 in Fig. 3).
        let dtd = Dtd::parse(
            br#"<!DOCTYPE a [ <!ELEMENT a (b|c)*> <!ELEMENT b (#PCDATA)> <!ELEMENT c (b,b?)> ]>"#,
        )
        .unwrap();
        let ml = MinLen::compute(&dtd).unwrap();
        assert_eq!(ml.content_len("c"), 4);
        assert_eq!(ml.bachelor("b"), Some(4));
        // c itself cannot be a bachelor (needs one b).
        assert_eq!(ml.bachelor("c"), None);
        assert_eq!(ml.elem("c"), 3 + 4 + 4); // <c> + <b/> + </c>
    }

    #[test]
    fn choice_takes_minimum() {
        let dtd = Dtd::parse(
            b"<!ELEMENT r (long_element | s)> <!ELEMENT long_element EMPTY> <!ELEMENT s EMPTY>",
        )
        .unwrap();
        let ml = MinLen::compute(&dtd).unwrap();
        assert_eq!(ml.content_len("r"), 4); // <s/>
    }

    #[test]
    fn plus_counts_one_instance() {
        let dtd = Dtd::parse(b"<!ELEMENT r (x+)> <!ELEMENT x EMPTY>").unwrap();
        let ml = MinLen::compute(&dtd).unwrap();
        assert_eq!(ml.content_len("r"), 4); // one <x/>
        assert_eq!(ml.bachelor("r"), None);
    }

    #[test]
    fn enumerated_required_attr_counts_shortest_token() {
        let dtd = Dtd::parse(br#"<!ELEMENT e EMPTY> <!ATTLIST e kind (alpha|hi|gamma) #REQUIRED>"#)
            .unwrap();
        let ml = MinLen::compute(&dtd).unwrap();
        // ` kind="hi"` = 1 + 4 + 1 + 2 + 2 = 10.
        assert_eq!(ml.attrs("e"), 10);
    }

    #[test]
    fn optional_attrs_do_not_count() {
        let dtd = Dtd::parse(br#"<!ELEMENT e EMPTY> <!ATTLIST e a CDATA #IMPLIED b CDATA "dflt">"#)
            .unwrap();
        let ml = MinLen::compute(&dtd).unwrap();
        assert_eq!(ml.attrs("e"), 0);
        assert_eq!(ml.bachelor("e"), Some(4));
    }

    #[test]
    fn undeclared_children_are_pcdata() {
        let dtd = Dtd::parse(b"<!ELEMENT r (ghost)>").unwrap();
        let ml = MinLen::compute(&dtd).unwrap();
        assert_eq!(ml.elem("ghost"), 8); // <ghost/>
        assert_eq!(ml.content_len("r"), 8);
    }

    #[test]
    fn recursive_dtd_rejected() {
        let dtd = Dtd::parse(b"<!ELEMENT a (b)> <!ELEMENT b (a)>").unwrap();
        assert!(matches!(MinLen::compute(&dtd), Err(DtdError::Recursive { .. })));
    }
}
