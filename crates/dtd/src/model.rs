//! Schema model: element declarations, content models, attribute lists.

use crate::error::DtdError;
use std::collections::{BTreeMap, BTreeSet};

/// A regular expression over child element names (the body of an element
/// content model).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Regex {
    /// A child element.
    Name(String),
    /// Concatenation `(a, b, …)`.
    Seq(Vec<Regex>),
    /// Alternation `(a | b | …)`.
    Choice(Vec<Regex>),
    /// `r?`.
    Opt(Box<Regex>),
    /// `r*`.
    Star(Box<Regex>),
    /// `r+`.
    Plus(Box<Regex>),
}

impl Regex {
    /// Can this expression match the empty sequence?
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Name(_) => false,
            Regex::Seq(rs) => rs.iter().all(Regex::nullable),
            Regex::Choice(rs) => rs.iter().any(Regex::nullable),
            Regex::Opt(_) | Regex::Star(_) => true,
            Regex::Plus(r) => r.nullable(),
        }
    }

    /// All element names mentioned.
    pub fn names(&self) -> BTreeSet<&str> {
        let mut out = BTreeSet::new();
        self.collect_names(&mut out);
        out
    }

    fn collect_names<'a>(&'a self, out: &mut BTreeSet<&'a str>) {
        match self {
            Regex::Name(n) => {
                out.insert(n.as_str());
            }
            Regex::Seq(rs) | Regex::Choice(rs) => {
                for r in rs {
                    r.collect_names(out);
                }
            }
            Regex::Opt(r) | Regex::Star(r) | Regex::Plus(r) => r.collect_names(out),
        }
    }
}

/// Content model of an element declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContentModel {
    /// `EMPTY`.
    Empty,
    /// `ANY` — any sequence of declared elements and text.
    Any,
    /// `(#PCDATA)` — text only.
    Pcdata,
    /// `(#PCDATA | a | b)*` — mixed content.
    Mixed(Vec<String>),
    /// Element content: a regular expression over child names.
    Children(Regex),
}

impl ContentModel {
    /// Can an instance of this content be completely empty (no child
    /// elements and no mandatory text)?  Text is never mandatory in XML, so
    /// this is true for everything except a non-nullable children model.
    pub fn can_be_empty(&self) -> bool {
        match self {
            ContentModel::Empty | ContentModel::Any | ContentModel::Pcdata => true,
            ContentModel::Mixed(_) => true,
            ContentModel::Children(r) => r.nullable(),
        }
    }

    /// May character data appear directly inside this content?
    pub fn allows_text(&self) -> bool {
        matches!(self, ContentModel::Any | ContentModel::Pcdata | ContentModel::Mixed(_))
    }

    /// The set of element names that may appear as direct children.
    pub fn child_names(&self) -> BTreeSet<&str> {
        match self {
            ContentModel::Empty | ContentModel::Pcdata | ContentModel::Any => BTreeSet::new(),
            ContentModel::Mixed(ns) => ns.iter().map(String::as_str).collect(),
            ContentModel::Children(r) => r.names(),
        }
    }
}

/// How an attribute is defaulted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttDefault {
    /// `#REQUIRED` — must be present in every instance.
    Required,
    /// `#IMPLIED` — optional.
    Implied,
    /// `#FIXED "v"` — optional in the instance, value fixed.
    Fixed(String),
    /// A literal default value — optional in the instance.
    Default(String),
}

/// One attribute definition from an `<!ATTLIST>` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttDef {
    /// Attribute name.
    pub name: String,
    /// Declared type, kept verbatim (`CDATA`, `ID`, `IDREF`, enumerations…).
    pub ty: String,
    /// Default declaration.
    pub default: AttDefault,
}

/// One `<!ELEMENT>` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElementDecl {
    /// Element name.
    pub name: String,
    /// Content model.
    pub content: ContentModel,
    /// Attributes from `<!ATTLIST>` declarations, in declaration order.
    pub attrs: Vec<AttDef>,
}

/// A parsed DTD.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dtd {
    root: String,
    elements: BTreeMap<String, ElementDecl>,
}

impl Dtd {
    /// Assemble a DTD from parts (used by the parser and by tests/property
    /// generators).
    pub fn from_parts(root: String, decls: Vec<ElementDecl>) -> Result<Dtd, DtdError> {
        if decls.is_empty() {
            return Err(DtdError::Empty);
        }
        let mut elements = BTreeMap::new();
        for d in decls {
            let name = d.name.clone();
            if elements.insert(name.clone(), d).is_some() {
                return Err(DtdError::DuplicateElement(name));
            }
        }
        Ok(Dtd { root, elements })
    }

    /// Parse DTD text: either a full `<!DOCTYPE name [ … ]>` or a bare
    /// internal subset (a sequence of `<!ELEMENT>`/`<!ATTLIST>`
    /// declarations; the root then defaults to the first declared element).
    pub fn parse(input: &[u8]) -> Result<Dtd, DtdError> {
        crate::parser::parse(input)
    }

    /// The document element name.
    pub fn root(&self) -> &str {
        &self.root
    }

    /// All declared elements in name order.
    pub fn elements(&self) -> impl Iterator<Item = &ElementDecl> {
        self.elements.values()
    }

    /// Look up a declaration.
    pub fn get(&self, name: &str) -> Option<&ElementDecl> {
        self.elements.get(name)
    }

    /// Content model of `name`. Elements that are referenced but not
    /// declared default to `(#PCDATA)` — the convention the paper uses for
    /// its Fig. 1 XMark excerpt ("assume that all unlisted tags have
    /// #PCDATA content").
    pub fn content(&self, name: &str) -> &ContentModel {
        static PCDATA: ContentModel = ContentModel::Pcdata;
        self.elements.get(name).map(|e| &e.content).unwrap_or(&PCDATA)
    }

    /// Attribute definitions of `name` (empty for undeclared elements).
    pub fn attrs(&self, name: &str) -> &[AttDef] {
        self.elements.get(name).map(|e| e.attrs.as_slice()).unwrap_or(&[])
    }

    /// Names of `#REQUIRED` attributes of `name`.
    pub fn required_attrs(&self, name: &str) -> impl Iterator<Item = &str> {
        self.attrs(name)
            .iter()
            .filter(|a| matches!(a.default, AttDefault::Required))
            .map(|a| a.name.as_str())
    }

    /// The element names that may appear as direct children of `name`,
    /// resolving `ANY` to all declared elements (which is what `ANY` means
    /// for containment and recursion purposes).
    pub fn effective_child_names(&self, name: &str) -> BTreeSet<&str> {
        match self.content(name) {
            ContentModel::Any => self.elements.keys().map(String::as_str).collect(),
            other => other.child_names(),
        }
    }

    /// Is any element (transitively) able to contain itself?
    pub fn is_recursive(&self) -> bool {
        self.find_cycle().is_some()
    }

    /// All elements that can (transitively) contain themselves — the
    /// elements the recursion extension treats as *opaque* (their subtrees
    /// are navigated by balanced tag counting instead of automaton states).
    pub fn recursive_elements(&self) -> BTreeSet<&str> {
        let names: Vec<&str> = self.elements.keys().map(String::as_str).collect();
        let mut out = BTreeSet::new();
        for &e in &names {
            // DFS from e's children; e is recursive iff it reaches itself.
            let mut seen: BTreeSet<&str> = BTreeSet::new();
            let mut stack: Vec<&str> = self.effective_child_names(e).into_iter().collect();
            let mut hit = false;
            while let Some(c) = stack.pop() {
                if c == e {
                    hit = true;
                    break;
                }
                if seen.insert(c) {
                    stack.extend(self.effective_child_names(c));
                }
            }
            if hit {
                out.insert(e);
            }
        }
        out
    }

    /// Returns an element on a containment cycle, if one exists.
    pub fn find_cycle(&self) -> Option<&str> {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let names: Vec<&str> = self.elements.keys().map(String::as_str).collect();
        let index: BTreeMap<&str, usize> = names.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let mut marks = vec![Mark::White; names.len()];

        // Iterative DFS with a grey/black coloring.
        for &start in &names {
            if marks[index[start]] != Mark::White {
                continue;
            }
            let mut stack: Vec<(usize, bool)> = vec![(index[start], false)];
            while let Some((v, processed)) = stack.pop() {
                if processed {
                    marks[v] = Mark::Black;
                    continue;
                }
                if marks[v] == Mark::Black {
                    continue;
                }
                marks[v] = Mark::Grey;
                stack.push((v, true));
                let children = self.effective_child_names(names[v]);
                for c in children {
                    if let Some(&ci) = index.get(c) {
                        match marks[ci] {
                            Mark::Grey => return Some(names[ci]),
                            Mark::White => stack.push((ci, false)),
                            Mark::Black => {}
                        }
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decl(name: &str, content: ContentModel) -> ElementDecl {
        ElementDecl { name: name.into(), content, attrs: Vec::new() }
    }

    #[test]
    fn nullable_regexes() {
        use Regex::*;
        assert!(!Name("a".into()).nullable());
        assert!(Opt(Box::new(Name("a".into()))).nullable());
        assert!(Star(Box::new(Name("a".into()))).nullable());
        assert!(!Plus(Box::new(Name("a".into()))).nullable());
        assert!(
            Seq(vec![Opt(Box::new(Name("a".into()))), Star(Box::new(Name("b".into())))]).nullable()
        );
        assert!(!Seq(vec![Opt(Box::new(Name("a".into()))), Name("b".into())]).nullable());
        assert!(Choice(vec![Name("a".into()), Star(Box::new(Name("b".into())))]).nullable());
    }

    #[test]
    fn undeclared_elements_default_to_pcdata() {
        let dtd = Dtd::from_parts(
            "a".into(),
            vec![decl("a", ContentModel::Children(Regex::Name("b".into())))],
        )
        .unwrap();
        assert_eq!(*dtd.content("b"), ContentModel::Pcdata);
        assert_eq!(*dtd.content("a"), ContentModel::Children(Regex::Name("b".into())));
    }

    #[test]
    fn recursion_detected() {
        let dtd = Dtd::from_parts(
            "a".into(),
            vec![
                decl("a", ContentModel::Children(Regex::Name("b".into()))),
                decl("b", ContentModel::Children(Regex::Opt(Box::new(Regex::Name("a".into()))))),
            ],
        )
        .unwrap();
        assert!(dtd.is_recursive());
    }

    #[test]
    fn self_recursion_detected() {
        let dtd =
            Dtd::from_parts("a".into(), vec![decl("a", ContentModel::Mixed(vec!["a".into()]))])
                .unwrap();
        assert!(dtd.is_recursive());
    }

    #[test]
    fn non_recursive() {
        let dtd = Dtd::from_parts(
            "a".into(),
            vec![
                decl(
                    "a",
                    ContentModel::Children(Regex::Star(Box::new(Regex::Choice(vec![
                        Regex::Name("b".into()),
                        Regex::Name("c".into()),
                    ])))),
                ),
                decl("b", ContentModel::Pcdata),
                decl(
                    "c",
                    ContentModel::Children(Regex::Seq(vec![
                        Regex::Name("b".into()),
                        Regex::Opt(Box::new(Regex::Name("b".into()))),
                    ])),
                ),
            ],
        )
        .unwrap();
        assert!(!dtd.is_recursive());
    }

    #[test]
    fn can_be_empty() {
        assert!(ContentModel::Empty.can_be_empty());
        assert!(ContentModel::Pcdata.can_be_empty());
        assert!(ContentModel::Mixed(vec!["a".into()]).can_be_empty());
        assert!(!ContentModel::Children(Regex::Name("a".into())).can_be_empty());
        assert!(
            ContentModel::Children(Regex::Star(Box::new(Regex::Name("a".into())))).can_be_empty()
        );
    }

    #[test]
    fn required_attrs_filtered() {
        let mut e = decl("a", ContentModel::Empty);
        e.attrs = vec![
            AttDef { name: "id".into(), ty: "ID".into(), default: AttDefault::Required },
            AttDef { name: "x".into(), ty: "CDATA".into(), default: AttDefault::Implied },
            AttDef { name: "y".into(), ty: "CDATA".into(), default: AttDefault::Fixed("v".into()) },
        ];
        let dtd = Dtd::from_parts("a".into(), vec![e]).unwrap();
        let req: Vec<&str> = dtd.required_attrs("a").collect();
        assert_eq!(req, vec!["id"]);
    }

    #[test]
    fn empty_dtd_rejected() {
        assert_eq!(Dtd::from_parts("a".into(), vec![]), Err(DtdError::Empty));
    }
}
