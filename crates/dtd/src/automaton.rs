//! The document-level DTD-automaton (paper Fig. 5).
//!
//! For a non-recursive DTD, the token language of valid documents (reading
//! only opening and closing tags, text skipped) is regular: the nesting
//! depth is bounded by the element containment DAG. The DTD-automaton makes
//! this explicit. It is built by recursively *expanding* element
//! declarations from the root: each element **instance** in the expansion
//! tree contributes a dual pair of states — `q` entered by reading the
//! opening tag `⟨t⟩` and `q̂` entered by reading the closing tag `⟨/t⟩` —
//! and the Glushkov automaton of the parent's content model wires the
//! instances together.
//!
//! Homogeneity (every transition into a state carries the same label) holds
//! by construction: the label of a transition is the label of its target.
//! Consequently transitions are stored as plain target lists.

use crate::error::DtdError;
use crate::glushkov::Glushkov;
use crate::model::{ContentModel, Dtd, Regex};
use std::collections::BTreeSet;

/// Hard cap on expansion size; beyond this the schema is pathological.
const STATE_LIMIT: usize = 200_000;

/// Index of a state in a [`DtdAutomaton`]. State 0 is the initial state
/// `q0`, which carries no label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub u32);

impl StateId {
    /// The initial state `q0`.
    pub const Q0: StateId = StateId(0);

    fn idx(self) -> usize {
        self.0 as usize
    }
}

/// The label of a non-initial state: the tag token that enters it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagToken<'a> {
    /// Element name.
    pub name: &'a str,
    /// True for a closing tag `⟨/name⟩`.
    pub close: bool,
}

#[derive(Debug, Clone)]
struct StateData {
    /// Index into `elem_names`; `u32::MAX` for `q0`.
    elem: u32,
    close: bool,
    dual: StateId,
    /// Open state of the enclosing element instance (`None` for the root
    /// instance and `q0`).
    parent: Option<StateId>,
    /// Outgoing transitions; the label of each is the target's label.
    trans: Vec<StateId>,
    /// Recursive element: the instance's interior is not expanded into
    /// states; the runtime navigates it by balanced tag counting.
    opaque: bool,
}

/// The homogeneous document-level automaton of a non-recursive DTD.
#[derive(Debug, Clone)]
pub struct DtdAutomaton {
    elem_names: Vec<String>,
    states: Vec<StateData>,
    final_state: StateId,
}

impl DtdAutomaton {
    /// Build the automaton. Fails on recursive DTDs and on schemas whose
    /// expansion exceeds the state budget.
    pub fn build(dtd: &Dtd) -> Result<DtdAutomaton, DtdError> {
        if let Some(e) = dtd.find_cycle() {
            return Err(DtdError::Recursive { element: e.to_string() });
        }
        Self::build_allow_recursion(dtd)
    }

    /// Build the automaton, representing recursive elements as *opaque*
    /// dual pairs (the paper's sketched extension, Sec. II): an opaque
    /// instance contributes its open and close states and a single
    /// open→close transition; its interior is not modelled — the runtime
    /// crosses it with a balanced depth-counting scan over `<e`/`</e`.
    pub fn build_allow_recursion(dtd: &Dtd) -> Result<DtdAutomaton, DtdError> {
        let recursive: BTreeSet<String> =
            dtd.recursive_elements().into_iter().map(str::to_string).collect();
        let mut b = Builder { dtd, recursive, elem_names: Vec::new(), states: Vec::new() };
        b.states.push(StateData {
            elem: u32::MAX,
            close: false,
            dual: StateId::Q0,
            parent: None,
            trans: Vec::new(),
            opaque: false,
        });
        let (open_root, close_root) = b.expand(dtd.root(), None)?;
        b.states[0].trans.push(open_root);
        Ok(DtdAutomaton { elem_names: b.elem_names, states: b.states, final_state: close_root })
    }

    /// Total number of states, `q0` included.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Iterator over all states.
    pub fn states(&self) -> impl Iterator<Item = StateId> {
        (0..self.states.len() as u32).map(StateId)
    }

    /// The accepting state (the closing tag of the root element).
    pub fn final_state(&self) -> StateId {
        self.final_state
    }

    /// The tag token entering `s`, or `None` for `q0`.
    pub fn label(&self, s: StateId) -> Option<TagToken<'_>> {
        let d = &self.states[s.idx()];
        if d.elem == u32::MAX {
            return None;
        }
        Some(TagToken { name: &self.elem_names[d.elem as usize], close: d.close })
    }

    /// Element name of `s` (panics on `q0`).
    pub fn elem_name(&self, s: StateId) -> &str {
        self.label(s).expect("q0 has no element").name
    }

    /// Is `s` a closing-tag state?
    pub fn is_close(&self, s: StateId) -> bool {
        self.states[s.idx()].close
    }

    /// The dual state (`q` ↔ `q̂`) of the same element instance.
    pub fn dual(&self, s: StateId) -> StateId {
        self.states[s.idx()].dual
    }

    /// The open state of the enclosing element instance.
    pub fn parent(&self, s: StateId) -> Option<StateId> {
        self.states[s.idx()].parent
    }

    /// Is `s` a state of an opaque (recursive) element instance?
    pub fn is_opaque(&self, s: StateId) -> bool {
        self.states[s.idx()].opaque
    }

    /// Element names that may occur (at any depth) inside instances of
    /// `elem` — used to reason about what an opaque subtree might contain.
    pub fn descendant_vocabulary<'d>(&self, dtd: &'d Dtd, elem: &str) -> BTreeSet<&'d str> {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut stack: Vec<&str> = dtd.effective_child_names(elem).into_iter().collect();
        while let Some(c) = stack.pop() {
            if seen.insert(c) {
                stack.extend(dtd.effective_child_names(c));
            }
        }
        seen
    }

    /// Outgoing transitions of `s`. The token labeling each transition is
    /// the target's [`label`](Self::label).
    pub fn transitions(&self, s: StateId) -> &[StateId] {
        &self.states[s.idx()].trans
    }

    /// The document branch of `s` (paper Ex. 9): the chain of element names
    /// from the root down to `s`'s element. Empty for `q0`.
    pub fn branch(&self, s: StateId) -> Vec<&str> {
        let mut out = Vec::new();
        let mut cur = Some(s);
        while let Some(c) = cur {
            if self.states[c.idx()].elem == u32::MAX {
                break;
            }
            out.push(self.elem_name(c));
            cur = self.parent(c);
        }
        out.reverse();
        out
    }

    /// Nesting depth of `s`'s element instance (root = 1, `q0` = 0).
    pub fn depth(&self, s: StateId) -> usize {
        let mut d = 0;
        let mut cur = Some(s);
        while let Some(c) = cur {
            if self.states[c.idx()].elem == u32::MAX {
                break;
            }
            d += 1;
            cur = self.parent(c);
        }
        d
    }

    /// NFA acceptance over a token sequence `(name, is_close)` — text
    /// tokens must already be filtered out by the caller. Used to validate
    /// generated documents against the DTD in tests.
    pub fn accepts<S: AsRef<str>>(&self, tokens: &[(S, bool)]) -> bool {
        let mut current = vec![StateId::Q0];
        for (name, close) in tokens {
            let mut next = Vec::new();
            for &s in &current {
                for &t in self.transitions(s) {
                    let lbl = self.label(t).expect("targets are labeled");
                    if lbl.close == *close && lbl.name == name.as_ref() && !next.contains(&t) {
                        next.push(t);
                    }
                }
            }
            if next.is_empty() {
                return false;
            }
            current = next;
        }
        current.contains(&self.final_state)
    }
}

struct Builder<'d> {
    dtd: &'d Dtd,
    recursive: BTreeSet<String>,
    elem_names: Vec<String>,
    states: Vec<StateData>,
}

impl<'d> Builder<'d> {
    fn intern(&mut self, name: &str) -> u32 {
        match self.elem_names.iter().position(|n| n == name) {
            Some(i) => i as u32,
            None => {
                self.elem_names.push(name.to_string());
                (self.elem_names.len() - 1) as u32
            }
        }
    }

    fn new_state(
        &mut self,
        elem: u32,
        close: bool,
        parent: Option<StateId>,
        opaque: bool,
    ) -> Result<StateId, DtdError> {
        if self.states.len() >= STATE_LIMIT {
            return Err(DtdError::TooLarge { limit: STATE_LIMIT });
        }
        let id = StateId(self.states.len() as u32);
        self.states.push(StateData { elem, close, dual: id, parent, trans: Vec::new(), opaque });
        Ok(id)
    }

    /// Expand one element instance; returns its (open, close) states.
    fn expand(
        &mut self,
        elem: &str,
        parent: Option<StateId>,
    ) -> Result<(StateId, StateId), DtdError> {
        let e = self.intern(elem);
        let opaque = self.recursive.contains(elem);
        let open = self.new_state(e, false, parent, opaque)?;
        let close = self.new_state(e, true, parent, opaque)?;
        self.states[open.idx()].dual = close;
        self.states[close.idx()].dual = open;

        if opaque {
            // Interior elided: the subtree is crossed by balanced scanning.
            self.states[open.idx()].trans.push(close);
            return Ok((open, close));
        }

        let content = self.dtd.content(elem).clone();
        match content {
            ContentModel::Empty | ContentModel::Pcdata => {
                self.states[open.idx()].trans.push(close);
            }
            ContentModel::Any => {
                let names: Vec<String> =
                    self.dtd.effective_child_names(elem).into_iter().map(str::to_string).collect();
                self.expand_star_of_choices(&names, open, close)?;
            }
            ContentModel::Mixed(names) => {
                self.expand_star_of_choices(&names, open, close)?;
            }
            ContentModel::Children(re) => {
                self.expand_regex(&re, elem, open, close)?;
            }
        }
        Ok((open, close))
    }

    /// Wire `(n1 | … | nk)*` content between `open` and `close`.
    fn expand_star_of_choices(
        &mut self,
        names: &[String],
        open: StateId,
        close: StateId,
    ) -> Result<(), DtdError> {
        let mut child_states = Vec::with_capacity(names.len());
        for n in names {
            child_states.push(self.expand(n, Some(open))?);
        }
        self.states[open.idx()].trans.push(close);
        for &(co, _) in &child_states {
            self.states[open.idx()].trans.push(co);
        }
        for &(_, cc) in &child_states {
            self.states[cc.idx()].trans.push(close);
            for &(co2, _) in &child_states {
                self.states[cc.idx()].trans.push(co2);
            }
        }
        Ok(())
    }

    /// Wire element content `re` between `open` and `close` using the
    /// Glushkov automaton of the content model.
    fn expand_regex(
        &mut self,
        re: &Regex,
        _elem: &str,
        open: StateId,
        close: StateId,
    ) -> Result<(), DtdError> {
        let g = Glushkov::build(re);
        let mut pos_states = Vec::with_capacity(g.len());
        for label in &g.labels {
            pos_states.push(self.expand(label, Some(open))?);
        }
        for &f in &g.first {
            let target = pos_states[f].0;
            self.states[open.idx()].trans.push(target);
        }
        if g.nullable {
            self.states[open.idx()].trans.push(close);
        }
        for (x, follows) in g.follow.iter().enumerate() {
            let from = pos_states[x].1;
            for &y in follows {
                let to = pos_states[y].0;
                self.states[from.idx()].trans.push(to);
            }
        }
        for &l in &g.last {
            let from = pos_states[l].1;
            self.states[from.idx()].trans.push(close);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example2_dtd() -> Dtd {
        Dtd::parse(
            br#"<!DOCTYPE a [ <!ELEMENT a (b|c)*> <!ELEMENT b (#PCDATA)> <!ELEMENT c (b,b?)> ]>"#,
        )
        .unwrap()
    }

    /// Convert "<a> </a> <b>"-style text into (name, close) pairs.
    fn tokens(s: &str) -> Vec<(String, bool)> {
        s.split_whitespace()
            .map(|t| {
                let t = t.trim_start_matches('<').trim_end_matches('>');
                match t.strip_prefix('/') {
                    Some(n) => (n.to_string(), true),
                    None => (t.to_string(), false),
                }
            })
            .collect()
    }

    #[test]
    fn figure5_shape() {
        let auto = DtdAutomaton::build(&example2_dtd()).unwrap();
        // q0 + dual pairs for instances {a, b@a, c@a, b1@c, b2@c}.
        assert_eq!(auto.state_count(), 11);
        // q0 has exactly one transition, to <a>.
        let t = auto.transitions(StateId::Q0);
        assert_eq!(t.len(), 1);
        let a_open = t[0];
        assert_eq!(auto.elem_name(a_open), "a");
        assert!(!auto.is_close(a_open));
        // <a> can be followed by <b>, <c> or </a>.
        let labels: Vec<(String, bool)> = auto
            .transitions(a_open)
            .iter()
            .map(|&s| {
                let l = auto.label(s).unwrap();
                (l.name.to_string(), l.close)
            })
            .collect();
        assert!(labels.contains(&("b".to_string(), false)));
        assert!(labels.contains(&("c".to_string(), false)));
        assert!(labels.contains(&("a".to_string(), true)));
        assert_eq!(labels.len(), 3);
        // Final state is </a>.
        assert_eq!(auto.elem_name(auto.final_state()), "a");
        assert!(auto.is_close(auto.final_state()));
    }

    #[test]
    fn duals_and_parents() {
        let auto = DtdAutomaton::build(&example2_dtd()).unwrap();
        let a_open = auto.transitions(StateId::Q0)[0];
        assert_eq!(auto.dual(auto.dual(a_open)), a_open);
        assert_eq!(auto.parent(a_open), None);
        // Children of <a> report a_open as their parent.
        for &s in auto.transitions(a_open) {
            if !auto.is_close(s) {
                assert_eq!(auto.parent(s), Some(a_open));
            }
        }
    }

    #[test]
    fn branches_match_example9() {
        let auto = DtdAutomaton::build(&example2_dtd()).unwrap();
        assert_eq!(auto.branch(StateId::Q0), Vec::<&str>::new());
        let a_open = auto.transitions(StateId::Q0)[0];
        assert_eq!(auto.branch(a_open), vec!["a"]);
        assert_eq!(auto.branch(auto.dual(a_open)), vec!["a"]);
        let b_open = *auto
            .transitions(a_open)
            .iter()
            .find(|&&s| auto.elem_name(s) == "b" && !auto.is_close(s))
            .unwrap();
        assert_eq!(auto.branch(b_open), vec!["a", "b"]);
        assert_eq!(auto.depth(b_open), 2);
        let c_open = *auto
            .transitions(a_open)
            .iter()
            .find(|&&s| auto.elem_name(s) == "c" && !auto.is_close(s))
            .unwrap();
        let b_in_c = auto.transitions(c_open)[0];
        assert_eq!(auto.branch(b_in_c), vec!["a", "c", "b"]);
    }

    #[test]
    fn acceptance() {
        let auto = DtdAutomaton::build(&example2_dtd()).unwrap();
        assert!(auto.accepts(&tokens("<a> </a>")));
        assert!(auto.accepts(&tokens("<a> <b> </b> </a>")));
        assert!(auto.accepts(&tokens("<a> <c> <b> </b> </c> </a>")));
        assert!(auto.accepts(&tokens("<a> <c> <b> </b> <b> </b> </c> <b> </b> </a>")));
        // c needs at least one b.
        assert!(!auto.accepts(&tokens("<a> <c> </c> </a>")));
        // c allows at most two b's.
        assert!(!auto.accepts(&tokens("<a> <c> <b> </b> <b> </b> <b> </b> </c> </a>")));
        // Wrong root.
        assert!(!auto.accepts(&tokens("<b> </b>")));
        // Incomplete.
        assert!(!auto.accepts(&tokens("<a>")));
        // Empty input is not a document.
        assert!(!auto.accepts::<&str>(&[]));
    }

    #[test]
    fn recursive_dtd_rejected() {
        let dtd = Dtd::parse(b"<!ELEMENT a (b)> <!ELEMENT b (a?)>").unwrap();
        assert!(matches!(DtdAutomaton::build(&dtd), Err(DtdError::Recursive { .. })));
    }

    #[test]
    fn any_content_expands_to_all_elements() {
        let dtd = Dtd::parse(b"<!ELEMENT r ANY> <!ELEMENT x EMPTY>").unwrap();
        // r ANY would contain r itself -> recursive.
        assert!(matches!(DtdAutomaton::build(&dtd), Err(DtdError::Recursive { .. })));
    }

    #[test]
    fn mixed_content_accepts_any_interleaving() {
        let dtd =
            Dtd::parse(b"<!ELEMENT p (#PCDATA|em|b)*> <!ELEMENT em EMPTY> <!ELEMENT b EMPTY>")
                .unwrap();
        let auto = DtdAutomaton::build(&dtd).unwrap();
        assert!(auto.accepts(&tokens("<p> </p>")));
        assert!(auto.accepts(&tokens("<p> <em> </em> <b> </b> <em> </em> </p>")));
        assert!(!auto.accepts(&tokens("<p> <q> </q> </p>")));
    }

    #[test]
    fn figure1_xmark_excerpt_automaton() {
        let dtd = Dtd::parse(
            br#"<!DOCTYPE site [
            <!ELEMENT site (regions)>
            <!ELEMENT regions (africa, asia, australia)>
            <!ELEMENT africa (item*)>
            <!ELEMENT asia (item*)>
            <!ELEMENT australia (item*)>
            <!ELEMENT item (location,name,payment,description,shipping,incategory+)>
            <!ELEMENT incategory EMPTY>
            <!ATTLIST incategory category ID #REQUIRED>
            ]>"#,
        )
        .unwrap();
        let auto = DtdAutomaton::build(&dtd).unwrap();
        // site, regions, 3 continents, 3 items, 3*6 item children:
        // instances = 1 + 1 + 3 + 3 + 18 = 26, states = 1 + 52.
        assert_eq!(auto.state_count(), 53);
        assert!(auto.accepts(&tokens(
            "<site> <regions> <africa> </africa> <asia> </asia> \
             <australia> <item> <location> </location> <name> </name> \
             <payment> </payment> <description> </description> \
             <shipping> </shipping> <incategory> </incategory> </item> \
             </australia> </regions> </site>"
        )));
        assert!(!auto.accepts(&tokens("<site> </site>")));
    }
}
