//! Property tests for the Glushkov construction: the position automaton
//! must accept exactly the language of the regular expression. The oracle
//! is a direct recursive membership test on the AST (derivative-free
//! brute force over split points).

use proptest::prelude::*;
use smpx_dtd::glushkov::Glushkov;
use smpx_dtd::Regex;

/// Direct membership oracle: O(n³)-ish, fine for tiny inputs.
fn matches_ast(re: &Regex, word: &[usize]) -> bool {
    match re {
        Regex::Name(n) => word.len() == 1 && name_id(n) == word[0],
        Regex::Seq(parts) => seq_matches(parts, word),
        Regex::Choice(parts) => parts.iter().any(|p| matches_ast(p, word)),
        Regex::Opt(inner) => word.is_empty() || matches_ast(inner, word),
        Regex::Star(inner) => star_matches(inner, word),
        Regex::Plus(inner) => {
            if word.is_empty() {
                // One iteration of a nullable inner matches ε.
                matches_ast(inner, &[])
            } else {
                (1..=word.len())
                    .any(|i| matches_ast(inner, &word[..i]) && star_matches(inner, &word[i..]))
            }
        }
    }
}

fn star_matches(inner: &Regex, word: &[usize]) -> bool {
    if word.is_empty() {
        return true;
    }
    (1..=word.len()).any(|i| matches_ast(inner, &word[..i]) && star_matches(inner, &word[i..]))
}

fn seq_matches(parts: &[Regex], word: &[usize]) -> bool {
    match parts {
        [] => word.is_empty(),
        [first, rest @ ..] => (0..=word.len())
            .any(|i| matches_ast(first, &word[..i]) && seq_matches(rest, &word[i..])),
    }
}

const ALPHABET: [&str; 3] = ["x", "y", "z"];

fn name_id(n: &str) -> usize {
    ALPHABET.iter().position(|&a| a == n).expect("known name")
}

/// Random regex over a 3-letter alphabet.
fn arb_regex() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        Just(Regex::Name("x".into())),
        Just(Regex::Name("y".into())),
        Just(Regex::Name("z".into())),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Regex::Seq),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Regex::Choice),
            inner.clone().prop_map(|r| Regex::Opt(Box::new(r))),
            inner.clone().prop_map(|r| Regex::Star(Box::new(r))),
            inner.prop_map(|r| Regex::Plus(Box::new(r))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn glushkov_accepts_exactly_the_language(
        re in arb_regex(),
        word in proptest::collection::vec(0usize..3, 0..6),
    ) {
        let g = Glushkov::build(&re);
        let labels: Vec<&str> = word.iter().map(|&i| ALPHABET[i]).collect();
        let want = matches_ast(&re, &word);
        prop_assert_eq!(
            g.matches(&labels),
            want,
            "re={:?} word={:?}",
            re,
            labels
        );
    }

    #[test]
    fn nullable_agrees_with_empty_word(re in arb_regex()) {
        let g = Glushkov::build(&re);
        prop_assert_eq!(g.nullable, matches_ast(&re, &[]));
        prop_assert_eq!(g.matches::<&str>(&[]), re.nullable());
    }

    #[test]
    fn first_and_last_are_sound(re in arb_regex()) {
        let g = Glushkov::build(&re);
        // Every single-symbol word accepted must start with a first
        // position's label and end with a last position's label.
        for (i, &a) in ALPHABET.iter().enumerate() {
            if matches_ast(&re, &[i]) {
                prop_assert!(g.first.iter().any(|&p| g.labels[p] == a));
                prop_assert!(g.last.iter().any(|&p| g.labels[p] == a));
            }
        }
    }
}
