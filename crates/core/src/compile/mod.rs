//! Static analysis: from DTD + projection paths to runtime lookup tables
//! (paper Sec. IV).
//!
//! The pipeline is exactly the paper's Fig. 6:
//!
//! 1. build the DTD-automaton (in `smpx-dtd`),
//! 2. select the state set `S` — relevance, copy-on pruning, orientation
//!    stopovers (`select` module),
//! 3. contract to the subgraph automaton `D|S` with minimal-gap
//!    annotations (`subgraph` module),
//! 4. determinize and emit the `A`/`V`/`J`/`T` tables (`tables` module).

pub(crate) mod select;
pub(crate) mod subgraph;
pub(crate) mod tables;

pub use tables::{Action, CompiledTables, Keyword, RtState};

use crate::error::CoreError;
use smpx_dtd::{Dtd, DtdAutomaton, MinLen};
use smpx_paths::{PathSet, Relevance};
use std::collections::{BTreeMap, BTreeSet};

/// Run the full static analysis.
///
/// Recursive DTDs are supported via the opaque-state extension the paper
/// sketches (Sec. II): recursive elements are navigated by balanced
/// depth-counting scans, and subtrees that projection paths could reach
/// into are conservatively preserved whole.
pub fn compile(dtd: &Dtd, paths: &PathSet) -> Result<CompiledTables, CoreError> {
    if paths.is_empty() {
        return Err(CoreError::NoPaths);
    }
    let auto = DtdAutomaton::build_allow_recursion(dtd)?;
    let minlen = MinLen::compute_allow_recursion(dtd)?;
    let rel = Relevance::new(paths);
    let mut s = select::select_states(&auto, &rel);
    // Step (c) above analyses orientation hazards per NFA state, which is
    // exact when the content models are 1-unambiguous (the XML spec's
    // requirement, and the paper's assumption). For ambiguous models the
    // subset construction can merge states and *combine* their frontier
    // vocabularies, creating hazards no single member has: a keyword of one
    // member may occur inside a region another member skips. Re-check on
    // the determinized automaton and iterate to a fixpoint (S only grows,
    // so this terminates).
    loop {
        let sub = subgraph::build_subgraph(&auto, &minlen, &s);
        let (tables, subsets) = tables::determinize_with_subsets(&auto, &rel, &sub);
        let mut to_add: BTreeSet<smpx_dtd::StateId> = BTreeSet::new();
        // The skipped-closure depends only on (member, S) and members recur
        // across subsets; memoize it per fixpoint iteration.
        let mut reach_memo: BTreeMap<smpx_dtd::StateId, BTreeSet<smpx_dtd::StateId>> =
            BTreeMap::new();
        for (i, st) in tables.states.iter().enumerate() {
            if st.keywords.is_empty() || st.balanced {
                // Balanced states cross their subtree with a depth-counting
                // scan instead of the frontier search.
                continue;
            }
            let vocab: BTreeSet<(&str, bool)> =
                st.keywords.iter().map(|k| (k.name.as_str(), k.close)).collect();
            for &m in &subsets[i] {
                let reach =
                    reach_memo.entry(m).or_insert_with(|| select::reach_via_skipped(&auto, m, &s));
                for &r in reach.iter() {
                    if s.contains(&r) {
                        continue;
                    }
                    if vocab.contains(&(auto.elem_name(r), auto.is_close(r))) {
                        select::add_stopover(&auto, r, &s, &mut to_add);
                    }
                }
            }
        }
        if to_add.is_empty() {
            return Ok(tables);
        }
        s.extend(to_add);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_paths_rejected() {
        let dtd = Dtd::parse(b"<!ELEMENT a EMPTY>").unwrap();
        let paths = PathSet::new(vec![]);
        assert!(matches!(compile(&dtd, &paths), Err(CoreError::NoPaths)));
    }

    #[test]
    fn recursive_dtd_compiles_with_opaque_states() {
        // a → b → a?: both elements are recursive; the automaton degrades
        // to opaque pairs and balanced scanning.
        let dtd = Dtd::parse(b"<!ELEMENT a (b)> <!ELEMENT b (a?)>").unwrap();
        let paths = PathSet::parse(&["/*"]).unwrap();
        let t = compile(&dtd, &paths).unwrap();
        assert!(t.states.iter().any(|s| s.balanced));
    }

    #[test]
    fn paths_unsatisfiable_by_dtd_yield_trivial_tables() {
        // No /* and no matching tags: nothing is ever searched for.
        let dtd = Dtd::parse(b"<!ELEMENT a (#PCDATA)>").unwrap();
        let paths = PathSet::parse(&["/zzz"]).unwrap();
        let t = compile(&dtd, &paths).unwrap();
        assert_eq!(t.state_count(), 1);
        assert!(t.states[0].keywords.is_empty());
    }
}
