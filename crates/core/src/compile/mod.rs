//! Static analysis: from DTD + projection paths to runtime lookup tables
//! (paper Sec. IV).
//!
//! The pipeline is exactly the paper's Fig. 6:
//!
//! 1. build the DTD-automaton (in `smpx-dtd`),
//! 2. select the state set `S` — relevance, copy-on pruning, orientation
//!    stopovers (`select` module),
//! 3. contract to the subgraph automaton `D|S` with minimal-gap
//!    annotations (`subgraph` module),
//! 4. determinize and emit the `A`/`V`/`J`/`T` tables (`tables` module).

pub(crate) mod select;
pub(crate) mod subgraph;
pub(crate) mod tables;

pub use tables::{Action, CompiledTables, Keyword, RtState};

use crate::error::CoreError;
use smpx_dtd::{Dtd, DtdAutomaton, MinLen};
use smpx_paths::{PathSet, Relevance};

/// Run the full static analysis.
///
/// Recursive DTDs are supported via the opaque-state extension the paper
/// sketches (Sec. II): recursive elements are navigated by balanced
/// depth-counting scans, and subtrees that projection paths could reach
/// into are conservatively preserved whole.
pub fn compile(dtd: &Dtd, paths: &PathSet) -> Result<CompiledTables, CoreError> {
    if paths.is_empty() {
        return Err(CoreError::NoPaths);
    }
    let auto = DtdAutomaton::build_allow_recursion(dtd)?;
    let minlen = MinLen::compute_allow_recursion(dtd)?;
    let rel = Relevance::new(paths);
    let s = select::select_states(&auto, &rel);
    let sub = subgraph::build_subgraph(&auto, &minlen, &s);
    Ok(tables::determinize(&auto, &rel, &sub))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_paths_rejected() {
        let dtd = Dtd::parse(b"<!ELEMENT a EMPTY>").unwrap();
        let paths = PathSet::new(vec![]);
        assert!(matches!(compile(&dtd, &paths), Err(CoreError::NoPaths)));
    }

    #[test]
    fn recursive_dtd_compiles_with_opaque_states() {
        // a → b → a?: both elements are recursive; the automaton degrades
        // to opaque pairs and balanced scanning.
        let dtd = Dtd::parse(b"<!ELEMENT a (b)> <!ELEMENT b (a?)>").unwrap();
        let paths = PathSet::parse(&["/*"]).unwrap();
        let t = compile(&dtd, &paths).unwrap();
        assert!(t.states.iter().any(|s| s.balanced));
    }

    #[test]
    fn paths_unsatisfiable_by_dtd_yield_trivial_tables() {
        // No /* and no matching tags: nothing is ever searched for.
        let dtd = Dtd::parse(b"<!ELEMENT a (#PCDATA)>").unwrap();
        let paths = PathSet::parse(&["/zzz"]).unwrap();
        let t = compile(&dtd, &paths).unwrap();
        assert_eq!(t.state_count(), 1);
        assert!(t.states[0].keywords.is_empty());
    }
}
