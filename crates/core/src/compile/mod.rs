//! Static analysis: from DTD + projection paths to runtime lookup tables
//! (paper Sec. IV).
//!
//! The pipeline is exactly the paper's Fig. 6:
//!
//! 1. build the DTD-automaton (in `smpx-dtd`),
//! 2. select the state set `S` — relevance, copy-on pruning, orientation
//!    stopovers (`select` module),
//! 3. contract to the subgraph automaton `D|S` with minimal-gap
//!    annotations (`subgraph` module),
//! 4. determinize and emit the `A`/`V`/`J`/`T` tables (`tables` module).

pub(crate) mod select;
pub(crate) mod subgraph;
pub(crate) mod tables;

pub use tables::{Action, Attribution, CompiledTables, Keyword, RtState};

use crate::error::CoreError;
use crate::idset::{QueryId, QueryIdSet};
use smpx_dtd::{Dtd, DtdAutomaton, MinLen, StateId};
use smpx_paths::{PathSet, Relevance};
use std::collections::{BTreeMap, BTreeSet};

/// Run the full static analysis.
///
/// Recursive DTDs are supported via the opaque-state extension the paper
/// sketches (Sec. II): recursive elements are navigated by balanced
/// depth-counting scans, and subtrees that projection paths could reach
/// into are conservatively preserved whole.
pub fn compile(dtd: &Dtd, paths: &PathSet) -> Result<CompiledTables, CoreError> {
    compile_counted(dtd, paths).map(|(tables, _)| tables)
}

/// [`compile`], also reporting how many determinization passes the
/// DFA-level hazard fixpoint took. The per-label-group pre-analysis in
/// state selection is designed to make this exactly 1 (the fixpoint then
/// verifies and finds nothing) — the ambiguity tests pin that, so a
/// regression in the pre-analysis shows up as a pass count, not as a
/// silent compile-time cliff.
#[doc(hidden)]
pub fn compile_counted(dtd: &Dtd, paths: &PathSet) -> Result<(CompiledTables, usize), CoreError> {
    if paths.is_empty() {
        return Err(CoreError::NoPaths);
    }
    let auto = DtdAutomaton::build_allow_recursion(dtd)?;
    let minlen = MinLen::compute_allow_recursion(dtd)?;
    let rel = Relevance::new(paths);
    let s = select::select_states(&auto, &rel);
    let (tables, passes, _) = compile_from_selection(&auto, &minlen, &rel, s);
    Ok((tables, passes))
}

/// Contract, determinize and hazard-check a chosen state set: steps 3–4
/// of the Fig. 6 pipeline, shared by the single-query and the multi-query
/// (registry) compiles. Returns the tables, the pass count, and each
/// runtime-DFA state's member subset (the registry derives its hit
/// attribution from the subsets).
///
/// State selection's step (c) runs per *label group* (all same-labeled
/// selected states analysed with their reaches united), which
/// over-approximates every merge the subset construction below can
/// perform — determinization only ever merges states entered by the
/// same token. The loop here re-checks orientation hazards on the
/// actual determinized automaton as a safety net: with the grouped
/// pre-analysis it finds nothing and the tables compile in one pass,
/// where the per-NFA-state analysis of earlier revisions needed up to
/// a handful of recompiles on ambiguous (non-1-unambiguous) content
/// models. S only grows, so the fixpoint terminates either way.
fn compile_from_selection(
    auto: &DtdAutomaton,
    minlen: &MinLen,
    rel: &Relevance,
    mut s: BTreeSet<StateId>,
) -> (CompiledTables, usize, Vec<Vec<StateId>>) {
    let mut passes = 0usize;
    loop {
        passes += 1;
        let sub = subgraph::build_subgraph(auto, minlen, &s);
        let (tables, subsets) = tables::determinize_with_subsets(auto, rel, &sub);
        let mut to_add: BTreeSet<StateId> = BTreeSet::new();
        // The skipped-closure depends only on (member, S) and members recur
        // across subsets; memoize it per fixpoint iteration.
        let mut reach_memo: BTreeMap<StateId, BTreeSet<StateId>> = BTreeMap::new();
        for (i, st) in tables.states.iter().enumerate() {
            if st.keywords.is_empty() || st.balanced {
                // Balanced states cross their subtree with a depth-counting
                // scan instead of the frontier search.
                continue;
            }
            let vocab: BTreeSet<(&str, bool)> =
                st.keywords.iter().map(|k| (k.name.as_str(), k.close)).collect();
            for &m in &subsets[i] {
                let reach =
                    reach_memo.entry(m).or_insert_with(|| select::reach_via_skipped(auto, m, &s));
                for &r in reach.iter() {
                    if s.contains(&r) {
                        continue;
                    }
                    if vocab.contains(&(auto.elem_name(r), auto.is_close(r))) {
                        select::add_stopover(auto, r, &s, &mut to_add);
                    }
                }
            }
        }
        if to_add.is_empty() {
            return (tables, passes, subsets);
        }
        s.extend(to_add);
    }
}

/// Compile a whole query workload into one shared automaton whose states
/// carry query-id attribution (the multi-query registry).
///
/// The automaton is the single-query compile of the *union* of the
/// queries' path sets, with two additions:
///
/// 1. **Selection**: every query's *hit states* — the DTD-automaton
///    states whose action indicates a match under that query's own
///    relevance, restricted to that query's own selected set — are forced
///    into the union selection as dual pairs
///    ([`select::select_states_with_extra`]). The union's copy-on pruning
///    could otherwise hide one query's hit states inside another query's
///    raw-copied instance, and a never-visited hit state can never
///    attribute (a missed id would be a soundness bug). Restricting to
///    the query's own selected set matters in the other direction: a
///    query's own step-(b) pruning removes nested hit states whose
///    instances are already covered by an enclosing raw copy, and
///    re-adding those would over-attribute.
/// 2. **Attribution**: after determinization, runtime state `i` is
///    attributed to query `q` iff some member of subset `i` is one of
///    `q`'s hit states. By relevance monotonicity (the union's relevance
///    dominates each query's) such a state's joined action is itself in
///    the hit class, so attributed entries coincide with the union run's
///    match events.
pub(crate) fn compile_multi(dtd: &Dtd, queries: &[PathSet]) -> Result<CompiledTables, CoreError> {
    if queries.is_empty() || queries.iter().any(PathSet::is_empty) {
        return Err(CoreError::NoPaths);
    }
    let auto = DtdAutomaton::build_allow_recursion(dtd)?;
    let minlen = MinLen::compute_allow_recursion(dtd)?;

    // Per-query hit states, and the forced extras (dual pairs).
    let mut hit_states: Vec<BTreeSet<StateId>> = Vec::with_capacity(queries.len());
    let mut extra: BTreeSet<StateId> = BTreeSet::new();
    for paths in queries {
        let rel_q = Relevance::new(paths);
        let s_q = select::select_states(&auto, &rel_q);
        let hits: BTreeSet<StateId> = s_q
            .iter()
            .copied()
            .filter(|&m| tables::member_action(&auto, &rel_q, m).indicates_match())
            .collect();
        for &m in &hits {
            extra.insert(m);
            extra.insert(auto.dual(m));
        }
        hit_states.push(hits);
    }

    let union = queries.iter().fold(PathSet::new(vec![]), |u, q| u.union(q));
    let rel = Relevance::new(&union);
    let s = select::select_states_with_extra(&auto, &rel, &extra);
    let (mut tables, _, subsets) = compile_from_selection(&auto, &minlen, &rel, s);

    let mut state_hits = vec![QueryIdSet::new(); tables.states.len()];
    for (i, members) in subsets.iter().enumerate() {
        for (qi, hits) in hit_states.iter().enumerate() {
            if members.iter().any(|m| hits.contains(m)) {
                state_hits[i].insert(QueryId(qi as u32));
            }
        }
    }
    tables.attribution = Some(Attribution { n_queries: queries.len() as u32, state_hits });
    Ok(tables)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_paths_rejected() {
        let dtd = Dtd::parse(b"<!ELEMENT a EMPTY>").unwrap();
        let paths = PathSet::new(vec![]);
        assert!(matches!(compile(&dtd, &paths), Err(CoreError::NoPaths)));
    }

    #[test]
    fn recursive_dtd_compiles_with_opaque_states() {
        // a → b → a?: both elements are recursive; the automaton degrades
        // to opaque pairs and balanced scanning.
        let dtd = Dtd::parse(b"<!ELEMENT a (b)> <!ELEMENT b (a?)>").unwrap();
        let paths = PathSet::parse(&["/*"]).unwrap();
        let t = compile(&dtd, &paths).unwrap();
        assert!(t.states.iter().any(|s| s.balanced));
    }

    #[test]
    fn paths_unsatisfiable_by_dtd_yield_trivial_tables() {
        // No /* and no matching tags: nothing is ever searched for.
        let dtd = Dtd::parse(b"<!ELEMENT a (#PCDATA)>").unwrap();
        let paths = PathSet::parse(&["/zzz"]).unwrap();
        let t = compile(&dtd, &paths).unwrap();
        assert_eq!(t.state_count(), 1);
        assert!(t.states[0].keywords.is_empty());
    }

    /// Ambiguous content models whose orientation hazards only exist on
    /// the *merged* (determinized) states: the per-label-group
    /// pre-analysis in state selection must catch them up front, so the
    /// DFA-level safety-net fixpoint verifies in exactly one
    /// determinization pass. Before the grouped analysis each of these
    /// took two passes (table recompiles).
    ///
    /// The shape, in the first case: `(item*, (item, y, cd), y)` makes
    /// `<item` from the root reach two item states, which determinization
    /// merges; one merged member keeps `<item` in the frontier vocabulary
    /// while the other member's scan skips across `cd` — whose interior
    /// contains items. No single NFA state has both the stop label and
    /// the hazardous region, so the paper's per-state step (c) is blind
    /// to it.
    #[test]
    fn ambiguous_models_compile_tables_in_one_pass() {
        let cases: &[(&[u8], &[&str])] = &[
            (
                b"<!ELEMENT a (item*, (item, y, cd), y)> <!ELEMENT item (#PCDATA)> \
                  <!ELEMENT y (#PCDATA)> <!ELEMENT cd (item*)>",
                &["/*", "/a/item#"],
            ),
            (
                b"<!ELEMENT a (item*, (item, y, cd), y)> <!ELEMENT item (#PCDATA)> \
                  <!ELEMENT y (item*)> <!ELEMENT cd (item*)>",
                &["/*", "/a/item#"],
            ),
            (b"<!ELEMENT a (b?, b, c)> <!ELEMENT b (#PCDATA)> <!ELEMENT c (b*)>", &["/*", "/a/b#"]),
        ];
        for (i, (dtd_text, path_texts)) in cases.iter().enumerate() {
            let dtd = Dtd::parse(dtd_text).unwrap();
            let paths = PathSet::parse(path_texts).unwrap();
            let (tables, passes) = compile_counted(&dtd, &paths).unwrap();
            assert_eq!(
                passes, 1,
                "case {i}: grouped pre-analysis must leave nothing for the DFA fixpoint"
            );
            // The hazard repair itself must still be present: the `cd`/`c`
            // region gained its stopover pair, visible as extra states
            // beyond the plain selected set.
            assert!(tables.state_count() >= 7, "case {i}: stopovers missing");
        }
    }

    /// Unambiguous models (the paper's assumption) stay single-pass too,
    /// and the grouped analysis must not add anything beyond the paper's
    /// per-state step (c) there — Fig. 3's exact 7-state automaton is
    /// pinned in `tables::tests::figure3_tables`.
    #[test]
    fn unambiguous_models_are_single_pass() {
        let dtd = Dtd::parse(
            br#"<!DOCTYPE a [ <!ELEMENT a (b|c)*> <!ELEMENT b (#PCDATA)> <!ELEMENT c (b,b?)> ]>"#,
        )
        .unwrap();
        for texts in [&["/*", "/a/b#"][..], &["/*", "//c#"], &["/*", "//b#"]] {
            let paths = PathSet::parse(texts).unwrap();
            let (_, passes) = compile_counted(&dtd, &paths).unwrap();
            assert_eq!(passes, 1);
        }
    }
}
