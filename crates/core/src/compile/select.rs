//! State selection — steps (1a), (1b), (1c) of the paper's Fig. 6.
//!
//! * **(a)** every DTD-automaton state whose document branch is relevant
//!   (Def. 5 via Def. 3) enters `S` — these are the tokens that must be
//!   preserved.
//! * **(b)** if the element instance of a dual pair `(q, q̂)` is copied
//!   *raw* (`copy on/off`, i.e. its leaf is `#`-matched), the runtime never
//!   needs to stop over inside it: all interior states are removed from
//!   `S`. The paper phrases this as "if R ⊆ S then remove R" — under C2
//!   every interior state of a `#`-matched instance is relevant, so the
//!   set-inclusion test and the copy-on test coincide on relevant inputs;
//!   we key on copy-on directly, which stays safe when they differ.
//! * **(c)** orientation stopovers: if from some `q ∈ S ∪ {q0}` the
//!   runtime, scanning for the label of an in-`S` state `p`, could instead
//!   hit an out-of-`S` state `p′` with the *same label* (both reachable
//!   through skipped states only), it would be thrown off-track. The
//!   parent states (dual pair) of `p′` are added to `S`, and the analysis
//!   repeats until a fixpoint is reached (paper Ex. 11: `q3`, `q̂3`).
//!
//! Step (c) here runs per **label group** rather than per state: all
//! selected states with the same token label are analysed together, with
//! their skipped-closures and stop vocabularies united. The paper's
//! per-state analysis is exact for 1-unambiguous content models (the XML
//! spec's requirement), but an ambiguous model lets the later subset
//! construction merge same-labeled states and *combine* their frontier
//! vocabularies — creating hazards no single member has. Since
//! determinization only ever merges states entered by the same token, the
//! label group over-approximates every merge it can perform, so the
//! grouped fixpoint subsumes both the per-state step (c) and the DFA-level
//! re-check in `compile()` (which remains as a verifying safety net and is
//! pinned to find nothing by the one-pass compile assertions).

use smpx_dtd::{DtdAutomaton, StateId};
use smpx_paths::Relevance;
use std::collections::{BTreeMap, BTreeSet};

/// The selected state set `S` (never contains `q0`).
pub fn select_states(auto: &DtdAutomaton, rel: &Relevance) -> BTreeSet<StateId> {
    select_states_with_extra(auto, rel, &BTreeSet::new())
}

/// [`select_states`] with additional states forced into `S` after the
/// copy-on pruning of step (b) and before the stopover fixpoint of step
/// (c). The multi-query registry compile uses this to keep every
/// member query's hit-indicating states selected even where the *union*
/// path set's step (b) would prune them (a query's `#`-instance nested
/// inside another query's): a pruned hit state could never fire its
/// attribution. The forced states always lie strictly inside a union
/// copy-on instance, so at runtime they are only entered while a raw copy
/// range is active — the depth-counted multi-query copy semantics keep
/// the union projection unchanged. Step (c) then re-establishes the
/// orientation guarantee for the grown `S`.
pub(crate) fn select_states_with_extra(
    auto: &DtdAutomaton,
    rel: &Relevance,
    extra: &BTreeSet<StateId>,
) -> BTreeSet<StateId> {
    let mut s = step_a(auto, rel);
    // Recursion extension: every opaque (recursive-element) state joins S
    // whenever anything is selected at all. An opaque subtree may contain
    // tags of any element it can reach, so scanning *over* an unvisited
    // opaque instance could be thrown off-track; visiting it costs one
    // balanced scan and restores the orientation guarantee.
    if !s.is_empty() {
        for q in auto.states().skip(1) {
            if auto.is_opaque(q) {
                s.insert(q);
            }
        }
    }
    step_b(auto, rel, &mut s);
    s.extend(extra.iter().copied());
    step_c(auto, &mut s);
    s
}

/// Step (a): relevant states.
fn step_a(auto: &DtdAutomaton, rel: &Relevance) -> BTreeSet<StateId> {
    let mut s = BTreeSet::new();
    for q in auto.states().skip(1) {
        let branch = auto.branch(q);
        if rel.relevant_tag(&branch) {
            s.insert(q);
        }
    }
    s
}

/// Step (b): prune the interior of copy-on instances.
fn step_b(auto: &DtdAutomaton, rel: &Relevance, s: &mut BTreeSet<StateId>) {
    // Collect the open states of #-matched instances that are in S.
    let copy_on_opens: Vec<StateId> =
        s.iter().copied().filter(|&q| !auto.is_close(q) && rel.c2_leaf(&auto.branch(q))).collect();
    for q in copy_on_opens {
        // If q itself sits inside another copy-on instance it may already
        // have been removed; skip it then.
        if !s.contains(&q) {
            continue;
        }
        remove_interior(auto, q, s);
    }
}

/// Remove every state strictly inside the instance of open state `q` from
/// `S` (descendant instances).
fn remove_interior(auto: &DtdAutomaton, q: StateId, s: &mut BTreeSet<StateId>) {
    let interior: Vec<StateId> = s
        .iter()
        .copied()
        .filter(|&p| p != q && p != auto.dual(q) && has_ancestor_instance(auto, p, q))
        .collect();
    for p in interior {
        s.remove(&p);
    }
}

/// Is open state `anc` (an instance) a proper ancestor of `p`'s instance?
fn has_ancestor_instance(auto: &DtdAutomaton, p: StateId, anc: StateId) -> bool {
    let mut cur = auto.parent(p);
    while let Some(c) = cur {
        if c == anc {
            return true;
        }
        cur = auto.parent(c);
    }
    false
}

/// Step (c), grouped: add orientation stopovers until fixpoint, analysing
/// all same-labeled selected states as one unit (module docs).
///
/// For every group — `q0` alone (determinization starts from `{q0}`),
/// plus the selected states bucketed by `(name, close)` — the skipped
/// closures of the members are united; the group's stop vocabulary is the
/// labels of in-`S` states in that union, and any out-of-`S` state in the
/// union carrying a stop label is a hazard whose enclosing instance gets
/// a stopover. Singleton groups reproduce the paper's per-state step (c)
/// exactly; multi-member groups additionally cover the vocabulary unions
/// the subset construction can later create.
fn step_c(auto: &DtdAutomaton, s: &mut BTreeSet<StateId>) {
    loop {
        let mut groups: BTreeMap<Option<(String, bool)>, Vec<StateId>> = BTreeMap::new();
        groups.insert(None, vec![StateId::Q0]);
        for &q in s.iter() {
            groups
                .entry(Some((auto.elem_name(q).to_string(), auto.is_close(q))))
                .or_default()
                .push(q);
        }
        let mut to_add: BTreeSet<StateId> = BTreeSet::new();
        for members in groups.values() {
            // United closure through states not in S, over the group.
            let mut reach: BTreeSet<StateId> = BTreeSet::new();
            for &m in members {
                reach.extend(reach_via_skipped(auto, m, s));
            }
            // Labels the runtime could scan for from any member: in-S
            // states reached.
            let stop_labels: BTreeSet<(String, bool)> = reach
                .iter()
                .filter(|&&r| s.contains(&r))
                .map(|&r| (auto.elem_name(r).to_string(), auto.is_close(r)))
                .collect();
            if stop_labels.is_empty() {
                continue;
            }
            // Hazards: out-of-S states with one of those labels.
            for &r in &reach {
                if s.contains(&r) {
                    continue;
                }
                let lbl = (auto.elem_name(r).to_string(), auto.is_close(r));
                if stop_labels.contains(&lbl) {
                    add_stopover(auto, r, s, &mut to_add);
                }
            }
        }
        if to_add.is_empty() {
            return;
        }
        s.extend(to_add);
    }
}

/// The orientation-stopover repair for hazard state `r`: select the dual
/// pair of `r`'s enclosing instance (the runtime then stops over there and
/// cannot stray into the hazard region). Shared by step (c) and the
/// DFA-level fixpoint in `compile()`. Root-level states have no enclosing
/// instance and need no repair: the root pair is in `S` whenever `S` is
/// non-empty (prefix closure), so a root state is never a hazard.
pub(crate) fn add_stopover(
    auto: &DtdAutomaton,
    r: StateId,
    s: &BTreeSet<StateId>,
    to_add: &mut BTreeSet<StateId>,
) {
    if let Some(parent_open) = auto.parent(r) {
        if !s.contains(&parent_open) {
            to_add.insert(parent_open);
        }
        let parent_close = auto.dual(parent_open);
        if !s.contains(&parent_close) {
            to_add.insert(parent_close);
        }
    }
}

/// States reachable from `q` by a non-empty path whose intermediate states
/// are all outside `S`. The returned set contains both the first in-`S`
/// states reached (search stops there) and all skipped states passed
/// through.
pub fn reach_via_skipped(
    auto: &DtdAutomaton,
    q: StateId,
    s: &BTreeSet<StateId>,
) -> BTreeSet<StateId> {
    let mut seen: BTreeSet<StateId> = BTreeSet::new();
    let mut stack: Vec<StateId> = auto.transitions(q).to_vec();
    while let Some(t) = stack.pop() {
        if !seen.insert(t) {
            continue;
        }
        if s.contains(&t) {
            continue; // in-S states terminate the scan
        }
        stack.extend(auto.transitions(t).iter().copied());
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use smpx_dtd::Dtd;
    use smpx_paths::PathSet;

    fn example2() -> (Dtd, DtdAutomaton) {
        let dtd = Dtd::parse(
            br#"<!DOCTYPE a [ <!ELEMENT a (b|c)*> <!ELEMENT b (#PCDATA)> <!ELEMENT c (b,b?)> ]>"#,
        )
        .unwrap();
        let auto = DtdAutomaton::build(&dtd).unwrap();
        (dtd, auto)
    }

    fn names_of(auto: &DtdAutomaton, s: &BTreeSet<StateId>) -> Vec<String> {
        let mut v: Vec<String> = s
            .iter()
            .map(|&q| {
                format!(
                    "{}{}@{}",
                    if auto.is_close(q) { "/" } else { "" },
                    auto.elem_name(q),
                    auto.branch(q).join(".")
                )
            })
            .collect();
        v.sort();
        v
    }

    /// Paper Example 11: P = {/*, /a/b#} selects a, b-under-a, and then
    /// step (c) adds the dual pair of c (because c contains a second
    /// b-labeled state).
    #[test]
    fn example11_selection() {
        let (_, auto) = example2();
        let rel = Relevance::new(&PathSet::parse(&["/*", "/a/b#"]).unwrap());
        let s = select_states(&auto, &rel);
        let names = names_of(&auto, &s);
        assert_eq!(
            names,
            vec![
                "/a@a",   // q̂1
                "/b@a.b", // q̂2
                "/c@a.c", // q̂3 (added by step c)
                "a@a",    // q1
                "b@a.b",  // q2
                "c@a.c",  // q3 (added by step c)
            ]
        );
    }

    /// Paper Example 12: P = {/*, //c#}: step (a) selects everything under
    /// c too, step (b) prunes the interior of c.
    #[test]
    fn example12_selection() {
        let (_, auto) = example2();
        let rel = Relevance::new(&PathSet::parse(&["/*", "//c#"]).unwrap());
        let s = select_states(&auto, &rel);
        let names = names_of(&auto, &s);
        assert_eq!(names, vec!["/a@a", "/c@a.c", "a@a", "c@a.c"]);
    }

    #[test]
    fn step_a_alone_matches_example12_prepruning() {
        let (_, auto) = example2();
        let rel = Relevance::new(&PathSet::parse(&["/*", "//c#"]).unwrap());
        let s = step_a(&auto, &rel);
        // q0 excluded; a (C1 via /*... via prefix "/" of //c? "/" matches
        // the empty branch only; /* matches [a]), c states (C1), b-inside-c
        // states (C2). The b-under-a states are NOT relevant.
        let names = names_of(&auto, &s);
        assert_eq!(
            names,
            vec!["/a@a", "/b@a.c.b", "/b@a.c.b", "/c@a.c", "a@a", "b@a.c.b", "b@a.c.b", "c@a.c"]
        );
    }

    /// With P = {/*, //b#} every b is copy-on; no stopovers needed because
    /// every b-labeled state is in S.
    #[test]
    fn no_stopover_when_all_same_label_selected() {
        let (_, auto) = example2();
        let rel = Relevance::new(&PathSet::parse(&["/*", "//b#"]).unwrap());
        let s = select_states(&auto, &rel);
        let names = names_of(&auto, &s);
        assert_eq!(
            names,
            vec!["/a@a", "/b@a.b", "/b@a.c.b", "/b@a.c.b", "a@a", "b@a.b", "b@a.c.b", "b@a.c.b"]
        );
    }

    /// Nested copy-on: the outer # instance prunes inner selected states.
    #[test]
    fn nested_copy_on_prunes_inner() {
        let dtd =
            Dtd::parse(b"<!ELEMENT r (x*)> <!ELEMENT x (y*)> <!ELEMENT y (#PCDATA)>").unwrap();
        let auto = DtdAutomaton::build(&dtd).unwrap();
        let rel = Relevance::new(&PathSet::parse(&["/*", "/r/x#", "//y#"]).unwrap());
        let s = select_states(&auto, &rel);
        let names = names_of(&auto, &s);
        // y is inside the copy-on x: pruned.
        assert_eq!(names, vec!["/r@r", "/x@r.x", "r@r", "x@r.x"]);
    }

    #[test]
    fn reach_via_skipped_stops_at_s() {
        let (_, auto) = example2();
        let rel = Relevance::new(&PathSet::parse(&["/*", "/a/b#"]).unwrap());
        let s = step_a(&auto, &rel); // before step (c): c states not in S
        let a_open = auto.transitions(StateId::Q0)[0];
        let reach = reach_via_skipped(&auto, a_open, &s);
        // From <a> we can reach <b> (in S, stop), </a> (in S, stop), <c>
        // (skipped) and through c: its b's and </c>.
        assert!(reach.len() >= 6);
        let b_under_c_open =
            reach.iter().any(|&r| auto.elem_name(r) == "b" && auto.branch(r) == ["a", "c", "b"]);
        assert!(b_under_c_open, "skipped scan must pass through c's interior");
    }
}
