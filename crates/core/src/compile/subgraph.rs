//! The subgraph automaton `D|S` (paper Def. 4) with minimal-gap
//! annotations.
//!
//! A contracted transition `q → p` (both in `S ∪ {q0}`) stands for every
//! path `q → r1 → … → rk → p` of the DTD-automaton whose intermediate
//! states `ri` lie outside `S`: at runtime those tokens are *skipped
//! unparsed*. The **gap** of the transition is the minimum number of
//! characters those skipped tokens must occupy in any valid document —
//! intermediate open/close tags at their minimal serialization (required
//! attributes included), with a directly-closed pair `⟨x⟩⟨/x⟩` charged at
//! bachelor cost `⟨x/⟩`. Text contributes nothing (it may be empty). The
//! per-state minimum over outgoing gaps becomes the initial jump offset
//! `J[q]` (paper Ex. 3).
//!
//! Gap minimality is a *safety* requirement: the runtime advances the
//! cursor by `J[q]` before searching, so `J[q]` must lower-bound the
//! distance to the next token of interest in every valid document.

use smpx_dtd::{DtdAutomaton, MinLen, StateId};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

/// `D|S` with gap-annotated transitions.
#[derive(Debug, Clone)]
pub struct Subgraph {
    /// Contracted transitions per source (`q0` and every state of `S`).
    /// Targets are always in `S`; the `u32` is the minimal gap.
    pub trans: BTreeMap<StateId, Vec<(StateId, u32)>>,
    /// States after which the document may end without visiting another
    /// in-`S` state (Def. 4's final states; includes `q0` when the whole
    /// document may be skipped).
    pub finals: BTreeSet<StateId>,
}

/// Build `D|S` from the DTD-automaton, the minimal-length table and the
/// selected set `S`.
pub fn build_subgraph(auto: &DtdAutomaton, minlen: &MinLen, s: &BTreeSet<StateId>) -> Subgraph {
    let mut trans: BTreeMap<StateId, Vec<(StateId, u32)>> = BTreeMap::new();
    let mut finals: BTreeSet<StateId> = BTreeSet::new();
    let doc_final = auto.final_state();

    let mut sources: Vec<StateId> = vec![StateId::Q0];
    sources.extend(s.iter().copied());

    for &q in &sources {
        let (gaps, reaches_end) = dijkstra_gaps(auto, minlen, s, q, doc_final);
        let mut out: Vec<(StateId, u32)> = gaps.into_iter().collect();
        out.sort();
        if !out.is_empty() {
            trans.insert(q, out);
        }
        if q == doc_final || reaches_end {
            finals.insert(q);
        }
    }
    Subgraph { trans, finals }
}

/// Single-source shortest gaps from `q` to each reachable in-`S` state,
/// where path cost is the minimal serialization of skipped tokens.
/// Also reports whether the document-final state is reachable via skipped
/// states only (making `q` final in `D|S`).
fn dijkstra_gaps(
    auto: &DtdAutomaton,
    minlen: &MinLen,
    s: &BTreeSet<StateId>,
    q: StateId,
    doc_final: StateId,
) -> (BTreeMap<StateId, u32>, bool) {
    // dist over skipped (out-of-S) states; `best` over in-S targets.
    let mut dist: BTreeMap<StateId, u64> = BTreeMap::new();
    let mut best: BTreeMap<StateId, u32> = BTreeMap::new();
    let mut reaches_end = q == doc_final && !s.contains(&doc_final);
    let mut heap: BinaryHeap<Reverse<(u64, StateId)>> = BinaryHeap::new();

    let relax = |u: Option<StateId>,
                 base: u64,
                 v: StateId,
                 dist: &mut BTreeMap<StateId, u64>,
                 best: &mut BTreeMap<StateId, u32>,
                 heap: &mut BinaryHeap<Reverse<(u64, StateId)>>,
                 reaches_end: &mut bool| {
        if s.contains(&v) {
            let g = base.min(u32::MAX as u64) as u32;
            match best.get(&v) {
                Some(&old) if old <= g => {}
                _ => {
                    best.insert(v, g);
                }
            }
            return;
        }
        // v is skipped: charge its token.
        let cost = skipped_token_cost(auto, minlen, u, v);
        let nd = base + cost;
        if v == doc_final {
            *reaches_end = true;
        }
        match dist.get(&v) {
            Some(&old) if old <= nd => {}
            _ => {
                dist.insert(v, nd);
                heap.push(Reverse((nd, v)));
            }
        }
    };

    for &t in auto.transitions(q) {
        relax(Some(q), 0, t, &mut dist, &mut best, &mut heap, &mut reaches_end);
    }
    while let Some(Reverse((d, u))) = heap.pop() {
        if dist.get(&u) != Some(&d) {
            continue; // stale entry
        }
        for &v in auto.transitions(u) {
            relax(Some(u), d, v, &mut dist, &mut best, &mut heap, &mut reaches_end);
        }
    }
    (best, reaches_end)
}

/// Minimal characters the skipped token of state `v` adds to the gap, given
/// it is entered from `u`.
fn skipped_token_cost(auto: &DtdAutomaton, minlen: &MinLen, u: Option<StateId>, v: StateId) -> u64 {
    let name = auto.elem_name(v);
    if auto.is_close(v) {
        // Direct open→close of the same *skipped* instance: the pair can be
        // serialized as a bachelor tag; the close then costs only the
        // difference over the already-charged open tag (one character).
        if let Some(u) = u {
            if !auto.is_close(u) && auto.dual(u) == v && u != StateId::Q0 {
                // `u` itself must be a skipped state for the pair rewrite
                // to apply; when `u` is the matched source token its open
                // tag is already in the document, so the close costs full.
                // Sources are never passed as `u` here with dual `v` in
                // skipped position unless u ∉ S — see relax() call sites.
                if let Some(b) = minlen.bachelor(name) {
                    return (b - minlen.open_tag(name)) as u64;
                }
            }
        }
        minlen.close_tag(name) as u64
    } else {
        minlen.open_tag(name) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::select::select_states;
    use smpx_dtd::Dtd;
    use smpx_paths::{PathSet, Relevance};

    fn setup(dtd_text: &[u8], paths: &[&str]) -> (DtdAutomaton, MinLen, BTreeSet<StateId>) {
        let dtd = Dtd::parse(dtd_text).unwrap();
        let auto = DtdAutomaton::build(&dtd).unwrap();
        let minlen = MinLen::compute(&dtd).unwrap();
        let rel = Relevance::new(&PathSet::parse(paths).unwrap());
        let s = select_states(&auto, &rel);
        (auto, minlen, s)
    }

    fn find_state(auto: &DtdAutomaton, branch: &[&str], close: bool) -> StateId {
        auto.states()
            .skip(1)
            .find(|&q| auto.is_close(q) == close && auto.branch(q) == branch)
            .expect("state exists")
    }

    const EX2: &[u8] =
        br#"<!DOCTYPE a [ <!ELEMENT a (b|c)*> <!ELEMENT b (#PCDATA)> <!ELEMENT c (b,b?)> ]>"#;

    /// Paper Fig. 3: with P = {/*, /a/b#}, J[q3] = 4 (the mandatory <b/>
    /// inside c) and all other jumps are 0.
    #[test]
    fn figure3_jump_offsets() {
        let (auto, minlen, s) = setup(EX2, &["/*", "/a/b#"]);
        let sub = build_subgraph(&auto, &minlen, &s);
        let c_open = find_state(&auto, &["a", "c"], false);
        let c_trans = &sub.trans[&c_open];
        // From <c> the only contracted transition goes to </c> with gap 4.
        assert_eq!(c_trans.len(), 1);
        let (tgt, gap) = c_trans[0];
        assert_eq!(auto.elem_name(tgt), "c");
        assert!(auto.is_close(tgt));
        assert_eq!(gap, 4);

        // From <a>: direct neighbours <b>, <c>, </a> — gap 0.
        let a_open = find_state(&auto, &["a"], false);
        for &(_, gap) in &sub.trans[&a_open] {
            assert_eq!(gap, 0);
        }
        // q0 → <a>: gap 0.
        assert_eq!(sub.trans[&StateId::Q0], vec![(a_open, 0)]);
    }

    /// Example 12 selection: from <c> we scan for </c> skipping one or two
    /// b's; minimal skipped content is one bachelor <b/> = 4.
    #[test]
    fn example12_gap_through_interior() {
        let (auto, minlen, s) = setup(EX2, &["/*", "//c#"]);
        let sub = build_subgraph(&auto, &minlen, &s);
        let c_open = find_state(&auto, &["a", "c"], false);
        let (tgt, gap) = sub.trans[&c_open][0];
        assert!(auto.is_close(tgt));
        assert_eq!(gap, 4);
    }

    /// Paper Example 1: after <site>, scanning for <australia> skips at
    /// least "<regions><africa/><asia/>" = 25 characters.
    #[test]
    fn example1_initial_jump_25() {
        let dtd_text: &[u8] = br#"<!DOCTYPE site [
            <!ELEMENT site (regions)>
            <!ELEMENT regions (africa, asia, australia)>
            <!ELEMENT africa (item*)>
            <!ELEMENT asia (item*)>
            <!ELEMENT australia (item*)>
            <!ELEMENT item (location,name,payment,description,shipping,incategory+)>
            <!ELEMENT incategory EMPTY>
            <!ATTLIST incategory category ID #REQUIRED>
            ]>"#;
        let (auto, minlen, s) = setup(dtd_text, &["/*", "//australia//description#"]);
        let sub = build_subgraph(&auto, &minlen, &s);
        let site_open = find_state(&auto, &["site"], false);
        let trans = &sub.trans[&site_open];
        let to_australia = trans
            .iter()
            .find(|&&(t, _)| auto.elem_name(t) == "australia" && !auto.is_close(t))
            .expect("australia transition");
        assert_eq!(to_australia.1, 25);
    }

    #[test]
    fn finals_include_close_root_and_skippable_tails() {
        let (auto, minlen, s) = setup(EX2, &["/*", "/a/b#"]);
        let sub = build_subgraph(&auto, &minlen, &s);
        let a_close = find_state(&auto, &["a"], true);
        assert!(sub.finals.contains(&a_close));
        // <a> itself is not final: </a> is in S and must still be seen.
        let a_open = find_state(&auto, &["a"], false);
        assert!(!sub.finals.contains(&a_open));
    }

    #[test]
    fn ancestors_always_selected_so_close_root_terminates() {
        // The prefix closure keeps every ancestor of a kept node, so the
        // root's closing tag is always in S when S is non-empty: </x> is
        // NOT final (</r> still needs to be matched after it).
        let dtd_text: &[u8] = b"<!ELEMENT r (x, y*)> <!ELEMENT x EMPTY> <!ELEMENT y EMPTY>";
        let (auto, minlen, s) = setup(dtd_text, &["/r/x"]);
        let sub = build_subgraph(&auto, &minlen, &s);
        let x_close = find_state(&auto, &["r", "x"], true);
        assert!(!sub.finals.contains(&x_close));
        let r_close = find_state(&auto, &["r"], true);
        assert!(s.contains(&r_close));
        assert!(sub.finals.contains(&r_close));
    }

    #[test]
    fn q0_final_when_nothing_selected() {
        // Paths matching nothing in the schema: the whole document may be
        // skipped, so q0 itself is final in D|S.
        let dtd_text: &[u8] = b"<!ELEMENT r (x)> <!ELEMENT x EMPTY>";
        let (auto, minlen, s) = setup(dtd_text, &["/zzz"]);
        assert!(s.is_empty());
        let sub = build_subgraph(&auto, &minlen, &s);
        assert!(sub.finals.contains(&StateId::Q0));
    }

    #[test]
    fn gap_counts_required_attributes() {
        // Skipping <e cat=""/><f/> before <g>: e has a required attribute.
        let dtd_text: &[u8] = br#"<!DOCTYPE r [
            <!ELEMENT r (e, f, g)>
            <!ELEMENT e EMPTY> <!ATTLIST e cat CDATA #REQUIRED>
            <!ELEMENT f EMPTY>
            <!ELEMENT g (#PCDATA)>
        ]>"#;
        let (auto, minlen, s) = setup(dtd_text, &["/r/g#"]);
        let sub = build_subgraph(&auto, &minlen, &s);
        let r_open = find_state(&auto, &["r"], false);
        let to_g = sub.trans[&r_open]
            .iter()
            .find(|&&(t, _)| auto.elem_name(t) == "g" && !auto.is_close(t))
            .unwrap();
        // <e cat=""/> = 11, <f/> = 4  =>  gap 15.
        assert_eq!(to_g.1, 15);
    }

    #[test]
    fn non_nullable_skipped_pair_charges_full_tags() {
        // y requires a z child, so skipping y costs <y> + <z/> + </y>.
        let dtd_text: &[u8] =
            b"<!ELEMENT r (y, g)> <!ELEMENT y (z)> <!ELEMENT z EMPTY> <!ELEMENT g (#PCDATA)>";
        let (auto, minlen, s) = setup(dtd_text, &["/r/g#"]);
        let sub = build_subgraph(&auto, &minlen, &s);
        let r_open = find_state(&auto, &["r"], false);
        let to_g = sub.trans[&r_open]
            .iter()
            .find(|&&(t, _)| auto.elem_name(t) == "g" && !auto.is_close(t))
            .unwrap();
        // <y> = 3, <z/> = 4, </y> = 4  =>  11.
        assert_eq!(to_g.1, 11);
    }
}
