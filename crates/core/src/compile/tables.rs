//! Determinization of `D|S` and emission of the runtime lookup tables.
//!
//! The paper's four tables (Fig. 3) are packaged per runtime-DFA state:
//!
//! * `V[q]` — the frontier vocabulary, here the [`Keyword`] list: the byte
//!   patterns `<name` / `</name` to scan for (trailing bracket excluded, as
//!   tags may contain attributes or whitespace),
//! * `A[q, token]` — the transition function, stored as each keyword's
//!   `target`,
//! * `J[q]` — the initial jump offset (minimum over the member states'
//!   contracted-transition gaps),
//! * `T[q]` — the action, attached to states thanks to homogeneity, which
//!   subset construction preserves (Champarnaud \[25\]).
//!
//! When determinization merges member states whose actions differ, the
//! *strongest* action wins (`copy on/off` ≻ `copy tag + atts` ≻ `copy tag`
//! ≻ `nop`): preserving more nodes never violates projection-safety
//! (Lemma 1), it only costs output size. The differential tests against the
//! token-level oracle check that this conservatism rarely triggers.

use super::subgraph::Subgraph;
use crate::idset::QueryIdSet;
use smpx_dtd::{DtdAutomaton, StateId};
use smpx_paths::Relevance;
use std::collections::BTreeMap;

/// The action `T[q]` performed when entering a state (paper Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Do nothing (orientation stopovers).
    Nop,
    /// Emit the matched tag; with `with_atts` the raw source tag is copied,
    /// otherwise a bare `<name>` / `</name>` is reconstructed.
    CopyTag {
        /// Copy the attributes too?
        with_atts: bool,
    },
    /// Start raw copying at this opening tag (`copy on`).
    CopyOn,
    /// Stop raw copying after this closing tag and emit the range
    /// (`copy off`).
    CopyOff,
}

impl Action {
    /// Does entering a state with this action signal a potential query
    /// match? `copy on`/`copy off` fire exactly at `#`-matched instances
    /// and `copy tag + atts` exactly at C1-exact tags — the tokens a
    /// query selects. Bare `copy tag` is structural skeleton (every
    /// document's root fires it) and `nop` is orientation only, so
    /// neither counts. The join below preserves membership in this hit
    /// class exactly: a merged state indicates a match iff some member
    /// does.
    pub(crate) fn indicates_match(self) -> bool {
        matches!(self, Action::CopyOn | Action::CopyOff | Action::CopyTag { with_atts: true })
    }

    /// Conservative join for merged member states (see module docs).
    fn join(self, other: Action) -> Action {
        use Action::*;
        match (self, other) {
            (CopyOn, _) | (_, CopyOn) => CopyOn,
            (CopyOff, _) | (_, CopyOff) => CopyOff,
            (CopyTag { with_atts: a }, CopyTag { with_atts: b }) => CopyTag { with_atts: a || b },
            (CopyTag { with_atts }, Nop) | (Nop, CopyTag { with_atts }) => CopyTag { with_atts },
            (Nop, Nop) => Nop,
        }
    }
}

/// One entry of the frontier vocabulary `V[q]` with its `A[q, ·]` target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Keyword {
    /// The scan pattern: `<name` or `</name` (no trailing bracket).
    pub bytes: Vec<u8>,
    /// The tag name.
    pub name: String,
    /// Closing-tag keyword?
    pub close: bool,
    /// Runtime-DFA state entered when this token is matched.
    pub target: u32,
}

/// One runtime-DFA state with its table rows.
#[derive(Debug, Clone)]
pub struct RtState {
    /// The token label entering this state (`None` for the start state).
    pub label: Option<(String, bool)>,
    /// `V[q]` + `A[q, ·]`, sorted by pattern bytes for determinism.
    pub keywords: Vec<Keyword>,
    /// `J[q]`.
    pub jump: u32,
    /// `T[q]`.
    pub action: Action,
    /// May the document end in this state (diagnostics; the runtime also
    /// simply stops when no further keyword occurs)?
    pub is_final: bool,
    /// Recursion extension: this open state belongs to a recursive
    /// element; instead of the normal frontier search the runtime crosses
    /// the subtree with a balanced depth-counting scan for `<e`/`</e`.
    pub balanced: bool,
}

/// Query attribution for a multi-query (registry) automaton: which
/// registered queries each runtime-DFA state's match events belong to.
#[derive(Debug, Clone)]
pub struct Attribution {
    /// Number of registered queries (ids are `0..n_queries`).
    pub n_queries: u32,
    /// Per runtime state, the ids of the queries for which entering this
    /// state is a match event — empty for purely structural states.
    /// Indexed like [`CompiledTables::states`].
    pub state_hits: Vec<QueryIdSet>,
}

impl Attribution {
    /// Approximate heap bytes of the attribution table.
    pub fn table_bytes(&self) -> usize {
        self.state_hits.capacity() * std::mem::size_of::<QueryIdSet>()
            + self.state_hits.iter().map(QueryIdSet::memory_bytes).sum::<usize>()
    }
}

/// The complete compiled lookup tables; state 0 is the start state.
#[derive(Debug, Clone)]
pub struct CompiledTables {
    /// Runtime-DFA states.
    pub states: Vec<RtState>,
    /// Length of the longest keyword (window sizing for streaming).
    pub max_kw_len: usize,
    /// Multi-query attribution (`Some` exactly for registry-compiled
    /// automata; `None` keeps the single-query runtime path unchanged).
    pub attribution: Option<Attribution>,
}

impl CompiledTables {
    /// Number of states whose frontier vocabulary needs Commentz–Walter
    /// (≥ 2 keywords).
    pub fn cw_states(&self) -> usize {
        self.states.iter().filter(|s| s.keywords.len() >= 2).count()
    }

    /// Number of states searched with Boyer–Moore (exactly 1 keyword).
    pub fn bm_states(&self) -> usize {
        self.states.iter().filter(|s| s.keywords.len() == 1).count()
    }

    /// Total number of runtime-DFA states (paper's `States`).
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Approximate heap bytes of the static tables (before lazy matcher
    /// construction) — part of the paper's `Mem` column.
    pub fn table_bytes(&self) -> usize {
        let mut total = self.states.capacity() * std::mem::size_of::<RtState>();
        for s in &self.states {
            for k in &s.keywords {
                total += k.bytes.len() + k.name.len() + std::mem::size_of::<Keyword>();
            }
            if let Some((n, _)) = &s.label {
                total += n.len();
            }
        }
        if let Some(att) = &self.attribution {
            total += att.table_bytes();
        }
        total
    }
}

/// Member-state action from relevance (paper Sec. IV, "Remaining lookup
/// tables"). Also used by the multi-query compile to find each query's
/// *hit states* — the member states whose action indicates a match under
/// that query's own relevance.
pub(crate) fn member_action(auto: &DtdAutomaton, rel: &Relevance, q: StateId) -> Action {
    let branch = auto.branch(q);
    let close = auto.is_close(q);
    if rel.c2_leaf(&branch) {
        return if close { Action::CopyOff } else { Action::CopyOn };
    }
    // Recursion extension: the prefilter cannot navigate inside an opaque
    // subtree, so if any path could select nodes below it the whole
    // subtree is conservatively preserved (projection-safety keeps more,
    // never less).
    if auto.is_opaque(q) && rel.may_match_below(&branch) {
        return if close { Action::CopyOff } else { Action::CopyOn };
    }
    if rel.relevant_tag(&branch) {
        let with_atts = !close && rel.c1_exact(&branch);
        return Action::CopyTag { with_atts };
    }
    Action::Nop
}

/// Subset construction over `D|S`, producing the runtime tables along with
/// each runtime-DFA state's member set — the compile driver re-checks
/// orientation hazards on the merged states (see `compile()`), which the
/// per-NFA-state step (c) cannot see when an ambiguous content model makes
/// `D` nondeterministic.
pub(crate) fn determinize_with_subsets(
    auto: &DtdAutomaton,
    rel: &Relevance,
    sub: &Subgraph,
) -> (CompiledTables, Vec<Vec<StateId>>) {
    let mut subsets: Vec<Vec<StateId>> = vec![vec![StateId::Q0]];
    let mut index: BTreeMap<Vec<StateId>, u32> = BTreeMap::new();
    index.insert(subsets[0].clone(), 0);
    let mut states: Vec<RtState> = Vec::new();
    let mut work = 0usize;

    while work < subsets.len() {
        let members = subsets[work].clone();
        // Group member transitions by token label.
        let mut by_label: BTreeMap<(String, bool), Vec<StateId>> = BTreeMap::new();
        let mut jump: Option<u32> = None;
        let mut is_final = false;
        for &m in &members {
            if sub.finals.contains(&m) {
                is_final = true;
            }
            if let Some(trans) = sub.trans.get(&m) {
                for &(tgt, gap) in trans {
                    jump = Some(jump.map_or(gap, |j| j.min(gap)));
                    let lbl = (auto.elem_name(tgt).to_string(), auto.is_close(tgt));
                    let entry = by_label.entry(lbl).or_default();
                    if !entry.contains(&tgt) {
                        entry.push(tgt);
                    }
                }
            }
        }
        // Build keywords and successor subsets.
        let mut keywords = Vec::with_capacity(by_label.len());
        for ((name, close), mut targets) in by_label {
            targets.sort();
            targets.dedup();
            let id = match index.get(&targets) {
                Some(&i) => i,
                None => {
                    let i = subsets.len() as u32;
                    index.insert(targets.clone(), i);
                    subsets.push(targets);
                    i
                }
            };
            let mut bytes = Vec::with_capacity(name.len() + 2);
            bytes.push(b'<');
            if close {
                bytes.push(b'/');
            }
            bytes.extend_from_slice(name.as_bytes());
            keywords.push(Keyword { bytes, name, close, target: id });
        }
        keywords.sort_by(|a, b| a.bytes.cmp(&b.bytes));

        // Label and action: homogeneity guarantees all members agree on the
        // label; actions are joined.
        let label = members
            .first()
            .filter(|&&m| m != StateId::Q0)
            .map(|&m| (auto.elem_name(m).to_string(), auto.is_close(m)));
        let action = members
            .iter()
            .filter(|&&m| m != StateId::Q0)
            .map(|&m| member_action(auto, rel, m))
            .fold(Action::Nop, Action::join);
        let balanced =
            members.iter().any(|&m| m != StateId::Q0 && auto.is_opaque(m) && !auto.is_close(m));

        states.push(RtState {
            label,
            keywords,
            jump: jump.unwrap_or(0),
            action,
            is_final,
            balanced,
        });
        work += 1;
    }

    let max_kw_len =
        states.iter().flat_map(|s| s.keywords.iter().map(|k| k.bytes.len())).max().unwrap_or(1);
    (CompiledTables { states, max_kw_len, attribution: None }, subsets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use smpx_dtd::Dtd;
    use smpx_paths::PathSet;

    const EX2: &[u8] =
        br#"<!DOCTYPE a [ <!ELEMENT a (b|c)*> <!ELEMENT b (#PCDATA)> <!ELEMENT c (b,b?)> ]>"#;

    fn tables(dtd: &[u8], paths: &[&str]) -> CompiledTables {
        let dtd = Dtd::parse(dtd).unwrap();
        let paths = PathSet::parse(paths).unwrap();
        compile(&dtd, &paths).unwrap()
    }

    /// The paper's Fig. 3 runtime automaton: 7 states (q0, q1, q̂1, q2, q̂2,
    /// q3, q̂3), V as listed, J[q3] = 4, T as listed.
    #[test]
    fn figure3_tables() {
        let t = tables(EX2, &["/*", "/a/b#"]);
        assert_eq!(t.state_count(), 7);

        // Start state: V = {"<a"}, J = 0, action nop.
        let q0 = &t.states[0];
        assert_eq!(q0.label, None);
        assert_eq!(q0.jump, 0);
        assert_eq!(q0.action, Action::Nop);
        assert_eq!(
            q0.keywords.iter().map(|k| k.bytes.clone()).collect::<Vec<_>>(),
            vec![b"<a".to_vec()]
        );

        // q1 = after <a>: V = {"</a", "<b", "<c"} (sorted by bytes), copy tag.
        let q1 = &t.states[q0.keywords[0].target as usize];
        assert_eq!(q1.label, Some(("a".to_string(), false)));
        let kw: Vec<Vec<u8>> = q1.keywords.iter().map(|k| k.bytes.clone()).collect();
        assert_eq!(kw, vec![b"</a".to_vec(), b"<b".to_vec(), b"<c".to_vec()]);
        assert_eq!(q1.action, Action::CopyTag { with_atts: false });
        assert_eq!(q1.jump, 0);

        // q2 = after <b>: V = {"</b"}, copy on.
        let q2_id = q1.keywords.iter().find(|k| k.bytes == b"<b").unwrap().target;
        let q2 = &t.states[q2_id as usize];
        assert_eq!(q2.action, Action::CopyOn);
        assert_eq!(q2.keywords.len(), 1);
        assert_eq!(q2.keywords[0].bytes, b"</b".to_vec());

        // q̂2 = after </b>: copy off, V like q1's.
        let q2h = &t.states[q2.keywords[0].target as usize];
        assert_eq!(q2h.action, Action::CopyOff);
        assert_eq!(q2h.keywords.len(), 3);

        // q3 = after <c>: nop, V = {"</c"}, J = 4 (Example 3!).
        let q3_id = q1.keywords.iter().find(|k| k.bytes == b"<c").unwrap().target;
        let q3 = &t.states[q3_id as usize];
        assert_eq!(q3.action, Action::Nop);
        assert_eq!(q3.jump, 4);
        assert_eq!(q3.keywords[0].bytes, b"</c".to_vec());

        // q̂3 = after </c>: nop.
        let q3h = &t.states[q3.keywords[0].target as usize];
        assert_eq!(q3h.action, Action::Nop);

        // q̂1 = after </a>: final, empty vocabulary.
        let q1h_id = q1.keywords.iter().find(|k| k.bytes == b"</a").unwrap().target;
        let q1h = &t.states[q1h_id as usize];
        assert!(q1h.is_final);
        assert!(q1h.keywords.is_empty());
        assert_eq!(q1h.action, Action::CopyTag { with_atts: false });

        // CW/BM split per Fig. 3's V column: q1, q̂2, q̂3 need CW; q0, q2,
        // q3 need BM; q̂1 has an empty vocabulary.
        assert_eq!(t.cw_states(), 3);
        assert_eq!(t.bm_states(), 3);
    }

    /// Example 12 runtime automaton: only a and c states; action copy
    /// on/off at c, jump 4 at q3.
    #[test]
    fn example12_tables() {
        let t = tables(EX2, &["/*", "//c#"]);
        assert_eq!(t.state_count(), 5); // q0, a, â, c, ĉ
        let q0 = &t.states[0];
        let q1 = &t.states[q0.keywords[0].target as usize];
        let kw: Vec<Vec<u8>> = q1.keywords.iter().map(|k| k.bytes.clone()).collect();
        assert_eq!(kw, vec![b"</a".to_vec(), b"<c".to_vec()]);
        let qc = &t.states[q1.keywords[1].target as usize];
        assert_eq!(qc.action, Action::CopyOn);
        assert_eq!(qc.jump, 4);
        let qch = &t.states[qc.keywords[0].target as usize];
        assert_eq!(qch.action, Action::CopyOff);
    }

    #[test]
    fn join_is_conservative() {
        use Action::*;
        assert_eq!(Nop.join(CopyTag { with_atts: false }), CopyTag { with_atts: false });
        assert_eq!(
            CopyTag { with_atts: false }.join(CopyTag { with_atts: true }),
            CopyTag { with_atts: true }
        );
        assert_eq!(CopyOn.join(CopyTag { with_atts: true }), CopyOn);
        assert_eq!(Nop.join(Nop), Nop);
    }

    #[test]
    fn table_bytes_reasonable() {
        let t = tables(EX2, &["/*", "/a/b#"]);
        let bytes = t.table_bytes();
        assert!(bytes > 0 && bytes < 64 * 1024, "got {bytes}");
    }

    #[test]
    fn max_kw_len_is_longest_pattern() {
        let t = tables(EX2, &["/*", "/a/b#"]);
        assert_eq!(t.max_kw_len, 3); // "</a", "</b", "</c"
    }
}
