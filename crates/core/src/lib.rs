//! SMP — XML prefiltering as a string matching problem.
//!
//! The primary contribution of Koch, Scherzinger, Schmidt (ICDE 2008),
//! reproduced in full:
//!
//! * **Static analysis** ([`compile`]): from a non-recursive DTD and a set
//!   of projection paths, select the automaton states the runtime must
//!   visit (Fig. 6 steps (a)–(c)), contract the DTD-automaton to the
//!   subgraph automaton `D|S` (Def. 4) with minimal-gap annotations,
//!   determinize it, and emit the four lookup tables `A` (transitions),
//!   `V` (frontier vocabularies), `J` (initial jump offsets) and `T`
//!   (actions) — packaged as [`CompiledTables`].
//! * **Runtime** ([`runtime`]): the Fig. 4 loop. In each automaton state
//!   the frontier vocabulary is searched with Boyer–Moore (one keyword) or
//!   Commentz–Walter (several), after an initial jump of `J[q]` characters;
//!   the trailing `>`/`/>` is sought locally; the state transition fires the
//!   associated copy action. Only a fraction of the input is ever
//!   inspected.
//!
//! # Quick start
//!
//! ```
//! use smpx_core::Prefilter;
//! use smpx_dtd::Dtd;
//! use smpx_paths::PathSet;
//!
//! let dtd = Dtd::parse(br#"<!DOCTYPE a [
//!     <!ELEMENT a (b|c)*> <!ELEMENT b (#PCDATA)> <!ELEMENT c (b,b?)> ]>"#).unwrap();
//! let paths = PathSet::parse(&["/*", "/a/b#"]).unwrap();
//! let mut pf = Prefilter::compile(&dtd, &paths).unwrap();
//!
//! let doc = b"<a><c><b>skip me</b></c><b>keep me</b><c><b>no</b></c></a>";
//! let (out, stats) = pf.filter_to_vec(doc).unwrap();
//! assert_eq!(out, b"<a><b>keep me</b></a>");
//! assert!(stats.chars_compared < doc.len() as u64);
//! ```

// `unsafe` is denied crate-wide and allowed back in exactly two places:
// the `extern "C"` mmap shim in `runtime::source::mmap` and the `readv`
// shim in `runtime::source::prefetch`, each call with its bounds argument
// spelled out (same policy as `smpx_stringmatch::memscan`).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
mod error;
pub mod idset;
pub mod lifecycle;
pub mod obs;
pub mod registry;
pub mod runtime;
mod stats;

pub use compile::{Action, Attribution, CompiledTables, RtState};
pub use error::CoreError;
pub use idset::{QueryId, QueryIdSet};
pub use lifecycle::{Generation, SharedPrefilter};
pub use registry::{MultiPrefilter, QueryRegistry};
pub use runtime::parallel::{BatchError, FrozenPrefilter, Pool, DEFAULT_AUTO_SHARD_BYTES};
pub use runtime::source::{
    DocSource, MmapSource, PrefetchSource, ReaderSource, SliceSource, SourceKind,
};
pub use runtime::Prefilter;
pub use stats::{MultiVerdict, RunStats};
