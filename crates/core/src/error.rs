//! Error type for compilation and runtime.

use std::fmt;

/// Errors from SMP compilation or the prefilter runtime.
#[derive(Debug)]
pub enum CoreError {
    /// DTD-level failure (parse error, recursion, size).
    Dtd(smpx_dtd::DtdError),
    /// The path set is empty — nothing to preserve.
    NoPaths,
    /// Runtime: the input contained a tag of interest in a position the
    /// runtime automaton has no transition for (the document is not valid
    /// w.r.t. the DTD, which the algorithm assumes — paper Sec. II).
    UnexpectedToken {
        /// The tag name.
        name: String,
        /// Closing tag?
        close: bool,
        /// Byte offset of the token.
        pos: usize,
    },
    /// Runtime: input ended while a construct was still open (truncated or
    /// invalid document).
    UnexpectedEof {
        /// What the runtime was doing.
        context: &'static str,
    },
    /// An I/O operation failed: opening or reading a document source, or
    /// writing to the output sink.
    Io(std::io::Error),
    /// A query registered with the multi-query registry failed to parse
    /// as an XPath expression.
    Query(smpx_paths::xpath::XPathError),
    /// A dynamic-lifecycle edit was rejected (unknown id, double remove,
    /// or an edit that would leave the shared registry empty).
    LifecycleEdit {
        /// The external query id the edit named.
        id: crate::idset::QueryId,
        /// Why the edit was refused.
        reason: &'static str,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Dtd(e) => write!(f, "DTD error: {e}"),
            CoreError::NoPaths => write!(f, "empty projection path set"),
            CoreError::UnexpectedToken { name, close, pos } => {
                let slash = if *close { "/" } else { "" };
                write!(
                    f,
                    "unexpected token <{slash}{name}> at byte {pos} (document invalid w.r.t. DTD?)"
                )
            }
            CoreError::UnexpectedEof { context } => {
                write!(f, "unexpected end of input while {context}")
            }
            // Sources and sinks both route here — don't blame one side.
            CoreError::Io(e) => write!(f, "I/O error: {e}"),
            CoreError::Query(e) => write!(f, "query error: {e}"),
            CoreError::LifecycleEdit { id, reason } => {
                write!(f, "lifecycle edit rejected for {id}: {reason}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Dtd(e) => Some(e),
            CoreError::Io(e) => Some(e),
            CoreError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<smpx_dtd::DtdError> for CoreError {
    fn from(e: smpx_dtd::DtdError) -> Self {
        CoreError::Dtd(e)
    }
}

impl From<std::io::Error> for CoreError {
    fn from(e: std::io::Error) -> Self {
        CoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = CoreError::UnexpectedToken { name: "a".into(), close: true, pos: 7 };
        assert!(e.to_string().contains("</a>"));
        assert!(e.to_string().contains("byte 7"));
        assert!(CoreError::NoPaths.to_string().contains("empty"));
    }
}
