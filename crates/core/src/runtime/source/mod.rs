//! Pluggable document sources: how bytes reach the prefilter.
//!
//! PR 2–3 made the scan path vector-fast; this module makes the *delivery*
//! of bytes pluggable so multi-GB corpora do not pay a memcpy before the
//! skip-scan ever runs. Four backends implement one trait:
//!
//! * [`SliceSource`] — a borrowed `&[u8]` already in memory (zero-copy),
//! * [`MmapSource`] — a file mapped with `mmap`/`madvise(SEQUENTIAL)` on
//!   64-bit unix (zero-copy; a read-to-`Vec` fallback elsewhere),
//! * [`ReaderSource`] — the paper's chunked window over any `io::Read`
//!   (one bounded copy; works on pipes),
//! * [`PrefetchSource`] — the same window with refills prefetched by a
//!   dedicated `smpx-io` thread (double-buffered handoff; I/O latency
//!   hides behind scan time).
//!
//! The runtime algorithm itself is written once against the private
//! [`SourceInput`] adapter, which pairs a [`DocSource`] with an output
//! `Write` sink and owns the copy-range bookkeeping.
//!
//! # The residency contract
//!
//! A source exposes a *resident* contiguous region `[base, base + len)` of
//! the document:
//!
//! * [`DocSource::ensure`] makes an absolute position resident (refilling
//!   or page-faulting as needed) or reports that it is at/past EOF.
//! * Resident bytes are read through [`DocSource::resident`]; any `&mut`
//!   call may refill and *compact* the region, moving [`DocSource::base`],
//!   so slices must be re-requested after such calls.
//! * [`DocSource::set_guard`] raises the discard guard: bytes below it may
//!   be dropped at the next refill and must never be requested again.
//!   Fully-resident sources ignore it.
//! * [`DocSource::grow`] delivers more bytes if the stream has any left —
//!   a scan that exhausts the resident region calls it (directly or by
//!   probing one byte past the region) to distinguish "window ended" from
//!   EOF.

mod mmap;
mod prefetch;
mod reader;
mod slice;

pub use mmap::MmapSource;
pub use prefetch::PrefetchSource;
pub use reader::ReaderSource;
pub use slice::SliceSource;

use super::matchers::Searcher;
use crate::error::CoreError;
use smpx_stringmatch::Metrics;
use std::io::Write;

/// Which backend a [`DocSource`] is (for self-describing stats and bench
/// rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SourceKind {
    /// Borrowed in-memory slice.
    Slice,
    /// Memory-mapped file (or its read-to-`Vec` fallback).
    Mmap,
    /// Chunked streaming window over an `io::Read`.
    Reader,
    /// Chunked streaming window with refills prefetched by the `smpx-io`
    /// thread.
    Prefetch,
}

impl SourceKind {
    /// Stable lower-case tag (`"slice"` / `"mmap"` / `"reader"` /
    /// `"prefetch"`).
    pub fn as_str(self) -> &'static str {
        match self {
            SourceKind::Slice => "slice",
            SourceKind::Mmap => "mmap",
            SourceKind::Reader => "reader",
            SourceKind::Prefetch => "prefetch",
        }
    }
}

impl std::fmt::Display for SourceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A pluggable document-byte delivery backend (see the module docs for the
/// residency contract).
///
/// The trait is object-safe: heterogeneous call sites (the CLI picking a
/// backend per flag) can drive `Box<dyn DocSource>`.
pub trait DocSource {
    /// Absolute offset of the first resident byte.
    fn base(&self) -> usize;

    /// The resident bytes `[base(), base() + resident().len())`.
    fn resident(&self) -> &[u8];

    /// Make `pos` resident, refilling as needed. `Ok(false)` means `pos`
    /// is at or past EOF; earlier bytes (from the guard on) stay resident.
    fn ensure(&mut self, pos: usize) -> Result<bool, CoreError>;

    /// Deliver more bytes if the stream has any left (`Ok(false)` at EOF).
    /// Refill-only sources compact below the guard first; fully-resident
    /// sources always return `Ok(false)`.
    fn grow(&mut self) -> Result<bool, CoreError>;

    /// Raise the discard guard: bytes before `pos` may be dropped at the
    /// next refill. Positions below the guard must never be requested
    /// again. No-op for fully-resident sources.
    fn set_guard(&mut self, pos: usize);

    /// Total document length in bytes, when known up front (`None` for
    /// unbounded streams).
    fn len_hint(&self) -> Option<u64>;

    /// Peak bytes of *owned* I/O buffer the source allocated — the
    /// paper's `Mem` window share. The window capacity for
    /// [`ReaderSource`], the whole document for [`MmapSource`]'s
    /// read-to-`Vec` fallback, and zero for borrowed slices and real
    /// mappings (delivering without a copy is the point).
    fn peak_io_bytes(&self) -> usize;

    /// Which backend this is.
    fn kind(&self) -> SourceKind;
}

impl<S: DocSource + ?Sized> DocSource for Box<S> {
    fn base(&self) -> usize {
        (**self).base()
    }
    fn resident(&self) -> &[u8] {
        (**self).resident()
    }
    fn ensure(&mut self, pos: usize) -> Result<bool, CoreError> {
        (**self).ensure(pos)
    }
    fn grow(&mut self) -> Result<bool, CoreError> {
        (**self).grow()
    }
    fn set_guard(&mut self, pos: usize) {
        (**self).set_guard(pos)
    }
    fn len_hint(&self) -> Option<u64> {
        (**self).len_hint()
    }
    fn peak_io_bytes(&self) -> usize {
        (**self).peak_io_bytes()
    }
    fn kind(&self) -> SourceKind {
        (**self).kind()
    }
}

/// The runtime's view of one document: a [`DocSource`] for bytes in, a
/// `Write` sink for projected bytes out, and the copy-range bookkeeping
/// between them.
///
/// The copy-range/discard interplay lives here, not in the sources: before
/// the guard moves past an active copy range ([`advance`](Self::advance)),
/// the still-resident prefix of the range is flushed to the sink and the
/// range start bumped, so a source may drop everything below its guard
/// without ever knowing about copy ranges. The guard is additionally
/// clamped to the unflushed copy start, so unflushed bytes are never
/// discardable — bounded memory falls out of the runtime advancing its
/// cursor every loop iteration.
pub(crate) struct SourceInput<S: DocSource, W: Write> {
    src: S,
    out: W,
    /// Unflushed start of the active copy range.
    copy_from: Option<usize>,
    written: u64,
}

impl<S: DocSource, W: Write> SourceInput<S, W> {
    pub fn new(src: S, out: W) -> Self {
        SourceInput { src, out, copy_from: None, written: 0 }
    }

    /// Flush the sink and return it together with the source and the
    /// total bytes written.
    pub fn finish(mut self) -> Result<(S, W, u64), CoreError> {
        self.out.flush()?;
        Ok((self.src, self.out, self.written))
    }

    /// First keyword occurrence at or after absolute position `from`:
    /// `(keyword index, start)`. Searches the full resident region and
    /// grows it on miss, re-scanning `longest - 1` overlap bytes so a
    /// match straddling the old region end is not lost.
    pub fn find<Se: Searcher, M: Metrics>(
        &mut self,
        matcher: &Se,
        from: usize,
        m: &mut M,
    ) -> Result<Option<(usize, usize)>, CoreError> {
        let overlap = matcher.longest().max(1);
        let mut search_from = from.max(self.src.base());
        loop {
            self.src.ensure(search_from)?;
            let base = self.src.base();
            let buf = self.src.resident();
            let rel_from = search_from.saturating_sub(base);
            if rel_from < buf.len() {
                if let Some((kw, rel_start)) = matcher.search_in(buf, rel_from, m) {
                    return Ok(Some((kw, base + rel_start)));
                }
            }
            // No match in the resident region: extend it and retry from
            // the boundary overlap.
            let end = base + buf.len();
            if !self.src.grow()? {
                return Ok(None);
            }
            search_from = end.saturating_sub(overlap.saturating_sub(1)).max(search_from);
        }
    }

    /// Byte at absolute position (`None` at EOF). Probing one byte past a
    /// [`window`](Self::window) view forces the refill that distinguishes
    /// "window ended" from EOF.
    pub fn byte(&mut self, pos: usize) -> Result<Option<u8>, CoreError> {
        if !self.src.ensure(pos)? {
            return Ok(None);
        }
        Ok(Some(self.src.resident()[pos - self.src.base()]))
    }

    /// Contiguous view of the resident bytes starting at absolute `pos`,
    /// for windowed vector scans. `Ok(None)` means `pos` is at/past EOF —
    /// never an empty slice. The slice is invalidated by any subsequent
    /// `&mut self` call (a refill may compact the region and move its
    /// base); callers re-request after such calls. `pos` must not precede
    /// the discard guard set by [`advance`](Self::advance).
    pub fn window(&mut self, pos: usize) -> Result<Option<&[u8]>, CoreError> {
        if !self.src.ensure(pos)? {
            return Ok(None);
        }
        debug_assert!(pos >= self.src.base(), "window request before the discard guard");
        let w = &self.src.resident()[pos - self.src.base()..];
        debug_assert!(!w.is_empty(), "ensure() admitted an EOF position");
        Ok(Some(w))
    }

    /// Does `pat` occur at absolute position `pos`? Counts comparisons.
    pub fn matches_at<M: Metrics>(
        &mut self,
        pos: usize,
        pat: &[u8],
        m: &mut M,
    ) -> Result<bool, CoreError> {
        for (i, &b) in pat.iter().enumerate() {
            match self.byte(pos + i)? {
                Some(c) => {
                    m.cmp(1);
                    if c != b {
                        return Ok(false);
                    }
                }
                None => return Ok(false),
            }
        }
        Ok(true)
    }

    /// Start a raw-copy range at absolute position `start`.
    pub fn copy_on(&mut self, start: usize) {
        if self.copy_from.is_none() {
            self.copy_from = Some(start);
        }
    }

    /// Is a raw-copy range active?
    pub fn copy_active(&self) -> bool {
        self.copy_from.is_some()
    }

    /// End the raw-copy range, emitting everything up to `end` (exclusive).
    pub fn copy_off(&mut self, end: usize) -> Result<(), CoreError> {
        if let Some(cf) = self.copy_from.take() {
            if cf < end {
                // Everything in [cf, end) is still resident: the guard is
                // clamped to the unflushed copy start and only moves with
                // the cursor, which never passes the scan point.
                let base = self.src.base();
                let buf = self.src.resident();
                let a = cf.max(base) - base;
                let b = (end - base).min(buf.len());
                if a < b {
                    self.out.write_all(&buf[a..b])?;
                    self.written += (b - a) as u64;
                }
            }
        }
        Ok(())
    }

    /// Emit the raw input range `[a, b)` (a just-scanned tag, guaranteed
    /// to still be resident).
    pub fn emit_range(&mut self, a: usize, b: usize) -> Result<(), CoreError> {
        debug_assert!(a >= self.src.base(), "emit_range before the resident region");
        let base = self.src.base();
        let buf = self.src.resident();
        let ra = a - base;
        let rb = (b - base).min(buf.len());
        if ra < rb {
            self.out.write_all(&buf[ra..rb])?;
            self.written += (rb - ra) as u64;
        }
        Ok(())
    }

    /// Emit constructed bytes.
    pub fn emit_bytes(&mut self, bytes: &[u8]) -> Result<(), CoreError> {
        self.out.write_all(bytes)?;
        self.written += bytes.len() as u64;
        Ok(())
    }

    /// The cursor has moved past `pos`: flush the resident prefix of an
    /// active copy range up to `pos`, then raise the source's discard
    /// guard (clamped so unflushed copy bytes stay resident).
    pub fn advance(&mut self, pos: usize) -> Result<(), CoreError> {
        if let Some(cf) = self.copy_from {
            if cf < pos {
                let base = self.src.base();
                debug_assert!(cf >= base, "copy range start was discarded");
                let buf = self.src.resident();
                let a = cf - base;
                let b = (pos - base).min(buf.len());
                if a < b {
                    self.out.write_all(&buf[a..b])?;
                    self.written += (b - a) as u64;
                    self.copy_from = Some(base + b);
                }
            }
        }
        let guard = match self.copy_from {
            Some(cf) => pos.min(cf),
            None => pos,
        };
        self.src.set_guard(guard);
        Ok(())
    }

    /// Total bytes emitted.
    pub fn emitted(&self) -> u64 {
        self.written
    }
}

#[cfg(test)]
mod tests {
    use super::super::matchers::StateMatcher;
    use super::*;
    use smpx_stringmatch::{BoyerMoore, NoMetrics};

    fn bm(pat: &[u8]) -> StateMatcher {
        StateMatcher::Bm(Box::new(BoyerMoore::new(pat)))
    }

    fn slice_input(doc: &[u8]) -> SourceInput<SliceSource<'_>, Vec<u8>> {
        SourceInput::new(SliceSource::new(doc), Vec::new())
    }

    fn reader_input(doc: &[u8], chunk: usize) -> SourceInput<ReaderSource<&[u8]>, Vec<u8>> {
        SourceInput::new(ReaderSource::new(doc, chunk), Vec::new())
    }

    #[test]
    fn slice_find_and_emit() {
        let doc = b"xx<item>yy</item>";
        let mut s = slice_input(doc);
        let hit = s.find(&bm(b"<item"), 0, &mut NoMetrics).unwrap();
        assert_eq!(hit, Some((0, 2)));
        s.emit_range(2, 8).unwrap();
        s.emit_bytes(b"!").unwrap();
        assert_eq!(s.emitted(), 7);
        let (_, out, written) = s.finish().unwrap();
        assert_eq!(written, 7);
        assert_eq!(out, b"<item>!".to_vec());
    }

    #[test]
    fn slice_copy_range() {
        let doc = b"ab<k>x</k>cd";
        let mut s = slice_input(doc);
        s.copy_on(2);
        assert!(s.copy_active());
        s.copy_off(10).unwrap();
        assert!(!s.copy_active());
        let (_, out, _) = s.finish().unwrap();
        assert_eq!(out, b"<k>x</k>".to_vec());
    }

    #[test]
    fn reader_find_across_chunk_boundaries() {
        // Chunk size 8 forces the keyword to straddle a refill.
        let doc = b"0123456<item attr='1'>xyz";
        let mut s = reader_input(doc, 8);
        let hit = s.find(&bm(b"<item"), 0, &mut NoMetrics).unwrap();
        assert_eq!(hit, Some((0, 7)));
    }

    #[test]
    fn reader_byte_and_eof() {
        let doc = b"abc";
        let mut s = reader_input(doc, 2);
        assert_eq!(s.byte(0).unwrap(), Some(b'a'));
        assert_eq!(s.byte(2).unwrap(), Some(b'c'));
        assert_eq!(s.byte(3).unwrap(), None);
        assert_eq!(s.byte(100).unwrap(), None);
    }

    #[test]
    fn reader_copy_range_flushes_incrementally() {
        // Copy range longer than the window: bytes must flush as the
        // guard advances, keeping the resident region bounded.
        let body = "y".repeat(100);
        let doc = format!("<k>{body}</k>");
        let mut s = reader_input(doc.as_bytes(), 16);
        s.copy_on(0);
        // Walk a cursor through the document as the runtime would.
        for pos in 0..doc.len() {
            s.advance(pos.saturating_sub(8)).unwrap();
            let _ = s.byte(pos).unwrap();
        }
        s.copy_off(doc.len()).unwrap();
        let (src, out, written) = s.finish().unwrap();
        assert_eq!(written as usize, doc.len());
        assert_eq!(out, doc.as_bytes());
        // The window never had to hold the whole copy range.
        assert!(src.peak_io_bytes() < doc.len());
    }

    #[test]
    fn slice_window_views_rest_of_document() {
        let doc = b"<a><b>x</b></a>";
        let mut s = slice_input(doc);
        assert_eq!(s.window(0).unwrap(), Some(&doc[..]));
        assert_eq!(s.window(4).unwrap(), Some(&doc[4..]));
        assert_eq!(s.window(doc.len()).unwrap(), None);
        assert_eq!(s.window(doc.len() + 5).unwrap(), None);
    }

    #[test]
    fn reader_window_advances_with_refills() {
        let doc = b"0123456789abcdef";
        let mut s = reader_input(doc, 4);
        // First request makes the position resident; the view ends at the
        // current chunk window, not at EOF.
        let w0 = s.window(0).unwrap().unwrap().to_vec();
        assert!(w0.len() >= 4 && w0.len() <= doc.len());
        assert_eq!(&doc[..w0.len()], &w0[..]);
        // Requesting the old window's end refills and continues.
        let w1 = s.window(w0.len()).unwrap().unwrap().to_vec();
        assert_eq!(&doc[w0.len()..w0.len() + w1.len()], &w1[..]);
        // Past EOF: None, never an empty slice.
        assert_eq!(s.window(doc.len()).unwrap(), None);
        assert_eq!(s.window(100).unwrap(), None);
    }

    #[test]
    fn reader_matches_at_handles_boundaries() {
        let doc = b"abcdefgh<key>";
        let mut s = reader_input(doc, 4);
        assert!(s.matches_at(8, b"<key", &mut NoMetrics).unwrap());
        assert!(!s.matches_at(8, b"<kez", &mut NoMetrics).unwrap());
        assert!(!s.matches_at(11, b"<key", &mut NoMetrics).unwrap());
    }

    #[test]
    fn boxed_source_is_usable() {
        let doc: &'static [u8] = b"xx<item>";
        let boxed: Box<dyn DocSource> = Box::new(SliceSource::new(doc));
        assert_eq!(boxed.kind(), SourceKind::Slice);
        let mut s = SourceInput::new(boxed, Vec::new());
        let hit = s.find(&bm(b"<item"), 0, &mut NoMetrics).unwrap();
        assert_eq!(hit, Some((0, 2)));
    }

    #[test]
    fn kind_tags_are_stable() {
        assert_eq!(SourceKind::Slice.to_string(), "slice");
        assert_eq!(SourceKind::Mmap.as_str(), "mmap");
        assert_eq!(SourceKind::Reader.as_str(), "reader");
        assert_eq!(SourceKind::Prefetch.as_str(), "prefetch");
    }
}
