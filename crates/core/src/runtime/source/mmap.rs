//! Memory-mapped document source.
//!
//! On 64-bit unix the file is mapped read-only with `mmap` and advised
//! `MADV_SEQUENTIAL`, so the prefilter reads pages straight from the page
//! cache — no copy into a user buffer ever happens, which is the whole
//! point of the Input-layer refactor: when matching is this cheap,
//! delivery of bytes is the bottleneck. Elsewhere (non-unix, or 32-bit
//! targets where `off_t` widths get platform-specific) the source
//! degrades to reading the file into a `Vec` once — same semantics, one
//! copy.

use super::{DocSource, SourceKind};
use crate::error::CoreError;
use std::path::Path;

/// A whole file delivered as one resident region, memory-mapped when the
/// platform allows it.
///
/// # Caveat: the file must stay put
///
/// Like every `mmap` wrapper, the mapping assumes the underlying file is
/// not truncated while the source is alive (a truncation turns page reads
/// into `SIGBUS`) and treats concurrent writers as undefined content. The
/// CLI and benches map files they own for the duration of a run; callers
/// with adversarial writers should use [`ReaderSource`] instead.
///
/// [`ReaderSource`]: super::ReaderSource
pub struct MmapSource {
    backing: Backing,
}

enum Backing {
    #[cfg(all(unix, target_pointer_width = "64"))]
    Map(sys::Map),
    Owned(Vec<u8>),
}

impl MmapSource {
    /// Map `path` read-only (or read it into memory on platforms without
    /// the mmap shim). Non-regular files — FIFOs, process substitutions,
    /// whose metadata length is meaningless — and empty files cannot be
    /// mapped (`mmap(len = 0)` is invalid) and are read into memory
    /// instead: same semantics, one copy.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<MmapSource, CoreError> {
        let src = Self::open_inner(path)?;
        crate::obs::add(crate::obs::CounterId::SourceMmapBytes, src.bytes().len() as u64);
        Ok(src)
    }

    fn open_inner<P: AsRef<Path>>(path: P) -> Result<MmapSource, CoreError> {
        #[cfg(all(unix, target_pointer_width = "64"))]
        {
            use std::io::Read as _;
            let mut file = std::fs::File::open(path.as_ref())?;
            let meta = file.metadata()?;
            if !meta.is_file() || meta.len() == 0 {
                let mut buf = Vec::new();
                file.read_to_end(&mut buf)?;
                return Ok(MmapSource { backing: Backing::Owned(buf) });
            }
            let map = sys::Map::new(&file, meta.len() as usize)?;
            Ok(MmapSource { backing: Backing::Map(map) })
        }
        #[cfg(not(all(unix, target_pointer_width = "64")))]
        {
            Ok(MmapSource { backing: Backing::Owned(std::fs::read(path.as_ref())?) })
        }
    }

    /// The full document bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Backing::Map(m) => m.bytes(),
            Backing::Owned(v) => v,
        }
    }

    /// `true` when the document is actually memory-mapped (as opposed to
    /// the read-to-`Vec` fallback).
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Backing::Map(_) => true,
            Backing::Owned(_) => false,
        }
    }
}

impl DocSource for MmapSource {
    fn base(&self) -> usize {
        0
    }

    fn resident(&self) -> &[u8] {
        self.bytes()
    }

    fn ensure(&mut self, pos: usize) -> Result<bool, CoreError> {
        Ok(pos < self.bytes().len())
    }

    fn grow(&mut self) -> Result<bool, CoreError> {
        Ok(false)
    }

    fn set_guard(&mut self, _pos: usize) {}

    fn len_hint(&self) -> Option<u64> {
        Some(self.bytes().len() as u64)
    }

    fn peak_io_bytes(&self) -> usize {
        match &self.backing {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Backing::Map(_) => 0, // page cache, no owned buffer
            Backing::Owned(v) => v.len(),
        }
    }

    fn kind(&self) -> SourceKind {
        SourceKind::Mmap
    }
}

/// The self-contained `extern "C"` mmap shim. `unsafe` is denied
/// crate-wide and allowed back only here; every call carries its argument
/// in a comment, in the style of `smpx_stringmatch::memscan`.
#[cfg(all(unix, target_pointer_width = "64"))]
#[allow(unsafe_code)]
mod sys {
    use crate::error::CoreError;
    use std::ffi::{c_int, c_void};
    use std::os::unix::io::AsRawFd;

    // Stable across the 64-bit unix targets this cfg admits (Linux and
    // the BSD family including macOS): PROT_READ = 1, MAP_PRIVATE = 2,
    // MADV_SEQUENTIAL = 2, MAP_FAILED = (void*)-1.
    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;
    const MADV_SEQUENTIAL: c_int = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            // `off_t` is 64-bit on every target_pointer_width = "64" unix,
            // which is exactly what the enclosing cfg admits.
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
        fn madvise(addr: *mut c_void, len: usize, advice: c_int) -> c_int;
    }

    /// An owned read-only mapping of `len > 0` bytes.
    pub(super) struct Map {
        ptr: *const u8,
        len: usize,
    }

    impl Map {
        pub(super) fn new(file: &std::fs::File, len: usize) -> Result<Map, CoreError> {
            assert!(len > 0, "zero-length mappings are invalid");
            // SAFETY: addr = null lets the kernel pick the placement; the
            // fd is open for reading and outlives the call (the mapping
            // itself survives the fd per POSIX); len > 0 was asserted.
            // The only failure channel is MAP_FAILED, checked below.
            let ptr = unsafe {
                mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, file.as_raw_fd(), 0)
            };
            if ptr as isize == -1 {
                return Err(CoreError::Io(std::io::Error::last_os_error()));
            }
            // SAFETY: [ptr, ptr + len) is exactly the region mmap just
            // returned. madvise is advisory; failure is ignored.
            unsafe {
                let _ = madvise(ptr, len, MADV_SEQUENTIAL);
            }
            Ok(Map { ptr: ptr as *const u8, len })
        }

        pub(super) fn bytes(&self) -> &[u8] {
            // SAFETY: [ptr, ptr + len) stays mapped and readable until
            // Drop runs (munmap is the only unmapping site, and Drop
            // takes &mut self, so no `&[u8]` borrow can outlive it). The
            // bytes are plain file content; see the type-level caveat on
            // concurrent truncation.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for Map {
        fn drop(&mut self) {
            // SAFETY: (ptr, len) is the exact pair mmap returned; the
            // region is unmapped exactly once.
            unsafe {
                let _ = munmap(self.ptr as *mut c_void, self.len);
            }
        }
    }

    // SAFETY: the mapping is read-only and the struct owns it exclusively;
    // sending it to another thread moves that exclusive ownership.
    unsafe impl Send for Map {}
    // SAFETY: shared access only ever reads the immutable mapping.
    unsafe impl Sync for Map {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("smpx-mmap-test-{}-{}.bin", std::process::id(), tag))
    }

    #[test]
    fn maps_file_contents() {
        let path = temp_path("contents");
        let payload = b"<a><b>mapped</b></a>".repeat(500);
        std::fs::File::create(&path).unwrap().write_all(&payload).unwrap();
        let mut src = MmapSource::open(&path).unwrap();
        assert_eq!(src.bytes(), &payload[..]);
        assert_eq!(src.len_hint(), Some(payload.len() as u64));
        assert_eq!(src.kind(), SourceKind::Mmap);
        assert!(src.ensure(payload.len() - 1).unwrap());
        assert!(!src.ensure(payload.len()).unwrap());
        assert!(!src.grow().unwrap());
        if cfg!(all(unix, target_pointer_width = "64")) {
            assert!(src.is_mapped());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_is_empty_source() {
        let path = temp_path("empty");
        std::fs::File::create(&path).unwrap();
        let mut src = MmapSource::open(&path).unwrap();
        assert_eq!(src.bytes(), b"");
        assert!(!src.ensure(0).unwrap());
        assert!(!src.is_mapped());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        match MmapSource::open(temp_path("does-not-exist")) {
            Err(CoreError::Io(_)) => {}
            Err(e) => panic!("expected an I/O error, got {e}"),
            Ok(_) => panic!("opening a missing file must fail"),
        }
    }
}
