//! Double-buffered prefetching window: overlap I/O with scanning.
//!
//! [`ReaderSource`] blocks the automaton on every window boundary — the
//! scan thread sits idle for the full latency of each `read`. This source
//! keeps the same residency contract but moves the reads to a dedicated
//! `smpx-io` thread that fills the *next* chunk into a spare buffer while
//! the automaton scans the current one, so refills become a buffer
//! handoff instead of a blocking syscall.
//!
//! # The two-buffer handoff
//!
//! Producer and consumer share a bounded channel of [`SLOTS`] (= 2)
//! recycled chunk buffers guarded by one mutex and two condvars — no
//! busy-wait, no allocation per chunk in steady state:
//!
//! * the `smpx-io` thread parks on `space` until a free buffer exists,
//!   fills it from the wrapped `Read` (retrying `EINTR`, like the sync
//!   path), pushes it onto the `filled` queue and signals `avail`;
//! * the consumer's `refill` parks on `avail` until a filled buffer
//!   exists, splices it onto the resident window (after compacting below
//!   the discard guard, exactly as [`ReaderSource::refill`] does), returns
//!   the empty buffer to the `free` list and signals `space`.
//!
//! Output is byte-identical to the sync reader at every chunk size
//! because the runtime is already chunk-invariant: the window contract
//! (ensure/grow/guard + overlap re-scan in `SourceInput::find`) never
//! depends on *where* delivery boundaries fall, only on bytes arriving in
//! order — and the handoff queue preserves order by construction.
//!
//! # Error and shutdown rules
//!
//! A read error is parked in the channel and re-raised by the consumer
//! only after every block read *before* the error has been delivered, so
//! the failure surfaces at the same byte offset — and with the same
//! [`CoreError::Io`] wording — as the sync path. Dropping the source
//! early (the prefilter stops at a final state, a batch is cancelled)
//! sets a `closed` flag, wakes both condvars and joins the thread; the
//! producer re-checks `closed` at every park and before every push, so
//! the join cannot deadlock. The one wait that cannot be interrupted is a
//! producer blocked *inside* `read` on a stalled pipe — drop then waits
//! for that read to return, the standard cost of owning a blocking
//! reader.
//!
//! [`ReaderSource`]: super::ReaderSource
//! [`ReaderSource::refill`]: super::ReaderSource

use super::reader::read_full_io;
use super::{DocSource, SourceKind};
use crate::error::CoreError;
use std::collections::VecDeque;
use std::io::Read;
use std::marker::PhantomData;
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex};

/// Buffers in flight between the I/O thread and the consumer. Two is the
/// classic double-buffer: one being scanned-from, one being filled.
const SLOTS: usize = 2;

/// Channel state shared between the consumer and the `smpx-io` thread.
struct Chan {
    /// Blocks read from the stream, oldest first.
    filled: VecDeque<Vec<u8>>,
    /// Recycled empty buffers the producer may fill.
    free: Vec<Vec<u8>>,
    /// A read error, delivered after all `filled` blocks drain.
    err: Option<std::io::Error>,
    /// The producer reached end of stream (or stopped on `err`).
    eof: bool,
    /// The consumer is gone; the producer must exit.
    closed: bool,
}

struct Shared {
    chan: Mutex<Chan>,
    /// Signalled when `filled` gains a block (or `eof`/`err`/`closed`).
    avail: Condvar,
    /// Signalled when `free` gains a buffer (or `closed`).
    space: Condvar,
}

/// How the `smpx-io` thread pulls bytes from the underlying stream.
enum Feed<R> {
    /// Any `Read`: one buffer per wakeup with [`read_full_io`] semantics.
    /// Pipes and sockets deliver what they have; blocking for a second
    /// buffer would add latency instead of hiding it.
    Plain(R),
    /// Regular file on 64-bit unix: when both slot buffers are free, one
    /// `readv` fills them in a single syscall (half the syscall count of
    /// the sync reader at small `--chunk-kb`).
    #[cfg(all(unix, target_pointer_width = "64"))]
    Vectored(std::fs::File),
}

impl<R: Read> Feed<R> {
    /// May this feed profitably fill two buffers per wakeup?
    fn wants_pair(&self) -> bool {
        match self {
            Feed::Plain(_) => false,
            #[cfg(all(unix, target_pointer_width = "64"))]
            Feed::Vectored(_) => true,
        }
    }

    /// Fill `bufs` in order; total bytes written (short only at EOF).
    /// Retries `EINTR` on every path.
    fn fill(&mut self, bufs: &mut [Vec<u8>]) -> std::io::Result<usize> {
        match self {
            Feed::Plain(r) => read_full_io(r, &mut bufs[0]),
            #[cfg(all(unix, target_pointer_width = "64"))]
            Feed::Vectored(f) => match bufs {
                [a] => read_full_io(f, a),
                [a, b] => sys::readv_full(f, a, b),
                _ => unreachable!("SLOTS = 2 bounds the buffer take"),
            },
        }
    }
}

/// A [`DocSource`] window over any `Read` whose refills are prefetched by
/// a dedicated `smpx-io` thread (see the module docs for the handoff
/// protocol). Byte-identical to [`ReaderSource`] at every chunk size;
/// `grow()` is a buffer swap instead of a blocking read.
///
/// `R` is the wrapped reader type; the reader itself moves into the I/O
/// thread at construction.
///
/// [`ReaderSource`]: super::ReaderSource
pub struct PrefetchSource<R> {
    shared: Arc<Shared>,
    io_thread: Option<std::thread::JoinHandle<()>>,
    /// Window bytes `[base, base + buf.len())` of the stream.
    buf: Vec<u8>,
    /// Absolute offset of `buf[0]`.
    base: usize,
    eof: bool,
    chunk: usize,
    /// Bytes before `guard` may be discarded.
    guard: usize,
    /// Peak window capacity; both slot buffers are added on report.
    peak: usize,
    _reader: PhantomData<fn() -> R>,
}

impl<R: Read + Send + 'static> PrefetchSource<R> {
    /// Stream `reader` through a prefetched window refilled `chunk` bytes
    /// at a time. Works on anything `Read` — pipes, sockets, stdin; use
    /// [`PrefetchSource::from_file`] for regular files to get the
    /// vectored-read path.
    ///
    /// Tiny chunks (down to a single byte) are honored, same as
    /// [`ReaderSource::new`](super::ReaderSource::new).
    pub fn new(reader: R, chunk: usize) -> Self {
        Self::spawn(Feed::Plain(reader), chunk)
    }
}

impl PrefetchSource<std::fs::File> {
    /// Prefetch a regular file. On 64-bit unix the `smpx-io` thread fills
    /// both slot buffers with one `readv` syscall whenever both are free;
    /// elsewhere this is identical to [`PrefetchSource::new`].
    pub fn from_file(file: std::fs::File, chunk: usize) -> Self {
        #[cfg(all(unix, target_pointer_width = "64"))]
        {
            Self::spawn(Feed::Vectored(file), chunk)
        }
        #[cfg(not(all(unix, target_pointer_width = "64")))]
        {
            Self::spawn(Feed::Plain(file), chunk)
        }
    }

    /// Open `path` and prefetch it (see [`PrefetchSource::from_file`]).
    pub fn open<P: AsRef<Path>>(path: P, chunk: usize) -> Result<Self, CoreError> {
        Ok(Self::from_file(std::fs::File::open(path.as_ref())?, chunk))
    }
}

impl<R> PrefetchSource<R> {
    fn spawn(feed: Feed<R>, chunk: usize) -> Self
    where
        R: Read + Send + 'static,
    {
        let chunk = chunk.max(1);
        let shared = Arc::new(Shared {
            chan: Mutex::new(Chan {
                filled: VecDeque::with_capacity(SLOTS),
                free: (0..SLOTS).map(|_| Vec::with_capacity(chunk)).collect(),
                err: None,
                eof: false,
                closed: false,
            }),
            avail: Condvar::new(),
            space: Condvar::new(),
        });
        let io_shared = Arc::clone(&shared);
        let io_thread = std::thread::Builder::new()
            .name("smpx-io".into())
            .spawn(move || io_loop(feed, &io_shared, chunk))
            .expect("spawning the smpx-io thread");
        PrefetchSource {
            shared,
            io_thread: Some(io_thread),
            buf: Vec::with_capacity(chunk * 2),
            base: 0,
            eof: false,
            chunk,
            guard: 0,
            peak: 0,
            _reader: PhantomData,
        }
    }

    fn window_end(&self) -> usize {
        self.base + self.buf.len()
    }

    /// Take the next prefetched block, compacting the window below the
    /// guard first — the swap that replaces [`ReaderSource::refill`]'s
    /// blocking read.
    ///
    /// [`ReaderSource::refill`]: super::ReaderSource
    fn refill(&mut self) -> Result<(), CoreError> {
        debug_assert!(self.chunk >= 1, "constructor clamps chunk to >= 1");
        let keep_from = self.guard.min(self.window_end()).max(self.base);
        let drop = keep_from - self.base;
        if drop > 0 {
            self.buf.drain(..drop);
            self.base += drop;
        }
        let mut st = self.shared.chan.lock().expect("smpx-io thread panicked");
        loop {
            if let Some(block) = st.filled.pop_front() {
                crate::obs::add(crate::obs::CounterId::PrefetchChunks, 1);
                crate::obs::add(crate::obs::CounterId::PrefetchBytes, block.len() as u64);
                self.buf.extend_from_slice(&block);
                if st.free.len() < SLOTS {
                    st.free.push(block);
                }
                self.shared.space.notify_one();
                break;
            }
            // Blocks drain before the error: bytes read ahead of a
            // failure are valid data, so the failure surfaces at the
            // same offset as the sync path.
            if let Some(e) = st.err.take() {
                return Err(CoreError::Io(e));
            }
            if st.eof {
                self.eof = true;
                break;
            }
            // The producer has not caught up: this wait is exactly the
            // I/O latency the double buffer failed to hide.
            let wait = crate::obs::enabled().then(std::time::Instant::now);
            st = self.shared.avail.wait(st).expect("smpx-io thread panicked");
            if let Some(t0) = wait {
                crate::obs::add_nanos(
                    crate::obs::CounterId::PrefetchConsumerWaitNanos,
                    t0.elapsed().as_nanos(),
                );
            }
        }
        std::mem::drop(st);
        self.peak = self.peak.max(self.buf.capacity());
        Ok(())
    }
}

/// The `smpx-io` producer: park for a free buffer, fill it (or both, on
/// the vectored path), hand it over, repeat until EOF, error or close.
fn io_loop<R: Read>(mut feed: Feed<R>, shared: &Shared, chunk: usize) {
    let pair = feed.wants_pair();
    loop {
        let mut bufs: Vec<Vec<u8>> = {
            let mut st = shared.chan.lock().expect("consumer panicked");
            loop {
                if st.closed {
                    return;
                }
                if !st.free.is_empty() {
                    break;
                }
                // Both buffers are full and unclaimed: the consumer is
                // the bottleneck and the I/O thread idles here.
                let stall = crate::obs::enabled().then(std::time::Instant::now);
                st = shared.space.wait(st).expect("consumer panicked");
                if let Some(t0) = stall {
                    crate::obs::add_nanos(
                        crate::obs::CounterId::PrefetchProducerStallNanos,
                        t0.elapsed().as_nanos(),
                    );
                }
            }
            let take = if pair { st.free.len() } else { 1 };
            st.free.drain(..take).collect()
        };
        for b in &mut bufs {
            b.clear();
            b.resize(chunk, 0);
        }
        let want = chunk * bufs.len();
        let res = feed.fill(&mut bufs);
        let mut st = shared.chan.lock().expect("consumer panicked");
        if st.closed {
            return;
        }
        match res {
            Ok(n) => {
                let mut left = n;
                for mut b in bufs {
                    let keep = left.min(b.len());
                    b.truncate(keep);
                    left -= keep;
                    if b.is_empty() {
                        st.free.push(b);
                    } else {
                        st.filled.push_back(b);
                    }
                }
                if n < want {
                    st.eof = true;
                }
                let done = st.eof;
                drop(st);
                shared.avail.notify_one();
                if done {
                    return;
                }
            }
            Err(e) => {
                // Partial bytes before a failed fill are discarded, same
                // as the sync `read_full` path.
                st.err = Some(e);
                st.eof = true;
                drop(st);
                shared.avail.notify_one();
                return;
            }
        }
    }
}

impl<R> Drop for PrefetchSource<R> {
    fn drop(&mut self) {
        {
            let mut st = match self.shared.chan.lock() {
                Ok(st) => st,
                Err(poisoned) => poisoned.into_inner(),
            };
            st.closed = true;
        }
        // Wake the producer wherever it parks; it re-checks `closed` at
        // every park and before every push.
        self.shared.space.notify_all();
        self.shared.avail.notify_all();
        if let Some(h) = self.io_thread.take() {
            let _ = h.join();
        }
    }
}

impl<R> DocSource for PrefetchSource<R> {
    fn base(&self) -> usize {
        self.base
    }

    fn resident(&self) -> &[u8] {
        &self.buf
    }

    fn ensure(&mut self, pos: usize) -> Result<bool, CoreError> {
        while pos >= self.window_end() {
            if self.eof {
                return Ok(false);
            }
            self.refill()?;
        }
        Ok(true)
    }

    fn grow(&mut self) -> Result<bool, CoreError> {
        if self.eof {
            return Ok(false);
        }
        let before = self.window_end();
        self.refill()?;
        Ok(self.window_end() > before)
    }

    fn set_guard(&mut self, pos: usize) {
        self.guard = self.guard.max(pos);
    }

    fn len_hint(&self) -> Option<u64> {
        // Like `ReaderSource`: hint-less, so prefetched one-doc batches
        // never trigger auto-shard slurping and stats initialize the
        // same way as the sync reader.
        None
    }

    fn peak_io_bytes(&self) -> usize {
        // Honest accounting: the window plus BOTH prefetch slot buffers —
        // double-buffering costs real memory and the `Mem` column must
        // not hide it.
        self.peak.max(self.buf.capacity()) + SLOTS * self.chunk
    }

    fn kind(&self) -> SourceKind {
        SourceKind::Prefetch
    }
}

/// The self-contained `extern "C"` readv shim. `unsafe` is denied
/// crate-wide and allowed back only here and in the `mmap` shim; every
/// call carries its argument bounds in a comment, in the style of
/// `smpx_stringmatch::memscan`.
#[cfg(all(unix, target_pointer_width = "64"))]
#[allow(unsafe_code)]
mod sys {
    use std::ffi::{c_int, c_void};
    use std::os::unix::io::AsRawFd;

    /// Matches `struct iovec` on every 64-bit unix this cfg admits
    /// (Linux and the BSD family including macOS): a `void *iov_base`
    /// followed by a `size_t iov_len`.
    #[repr(C)]
    struct IoVec {
        base: *mut c_void,
        len: usize,
    }

    extern "C" {
        fn readv(fd: c_int, iov: *const IoVec, iovcnt: c_int) -> isize;
    }

    /// Fill `a` then `b` from `f` with as few `readv` syscalls as the
    /// kernel allows — both buffers in one call on the fast path.
    /// Returns total bytes written; short only at EOF. Retries `EINTR`.
    pub(super) fn readv_full(
        f: &std::fs::File,
        a: &mut [u8],
        b: &mut [u8],
    ) -> std::io::Result<usize> {
        let fd = f.as_raw_fd();
        let want = a.len() + b.len();
        let mut total = 0;
        while total < want {
            // Remaining unfilled suffixes of the two buffers.
            let (ra, rb) = if total < a.len() {
                (&mut a[total..], &mut b[..])
            } else {
                (&mut b[total - a.len()..], &mut [][..])
            };
            let iov = [
                IoVec { base: ra.as_mut_ptr() as *mut c_void, len: ra.len() },
                IoVec { base: rb.as_mut_ptr() as *mut c_void, len: rb.len() },
            ];
            let cnt = if rb.is_empty() { 1 } else { 2 };
            // SAFETY: each iovec points into a live &mut [u8] of exactly
            // the stated length (an empty second slice is excluded via
            // `cnt`); the fd is open for reading and outlives the call.
            // The kernel writes at most `ra.len() + rb.len()` bytes.
            let n = unsafe { readv(fd, iov.as_ptr(), cnt) };
            if n < 0 {
                let e = std::io::Error::last_os_error();
                if e.kind() == std::io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(e);
            }
            if n == 0 {
                break;
            }
            total += n as usize;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_stays_bounded_by_guard() {
        let doc: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let mut s = PrefetchSource::new(std::io::Cursor::new(doc.clone()), 16);
        for (pos, &byte) in doc.iter().enumerate() {
            assert!(s.ensure(pos).unwrap());
            assert_eq!(s.resident()[pos - s.base()], byte);
            s.set_guard(pos.saturating_sub(8));
        }
        assert!(!s.ensure(doc.len()).unwrap());
        // Window plus the two slot buffers stays near the chunk size.
        assert!(s.peak_io_bytes() < 512, "peak {}", s.peak_io_bytes());
    }

    #[test]
    fn grow_reports_eof_once_exhausted() {
        let doc = b"abcdef";
        let mut s = PrefetchSource::new(std::io::Cursor::new(doc.to_vec()), 4);
        assert!(s.ensure(0).unwrap());
        while s.grow().unwrap() {}
        assert_eq!(s.resident(), doc);
        assert!(!s.grow().unwrap());
        assert_eq!(s.len_hint(), None);
        assert_eq!(s.kind(), SourceKind::Prefetch);
    }

    #[test]
    fn chunk_zero_is_clamped_like_the_sync_reader() {
        let doc = b"chunk zero must not underflow";
        let mut s = PrefetchSource::new(std::io::Cursor::new(doc.to_vec()), 0);
        let mut got = Vec::new();
        let mut pos = 0;
        while s.ensure(pos).unwrap() {
            got.push(s.resident()[pos - s.base()]);
            pos += 1;
        }
        assert_eq!(got, doc);
    }

    #[test]
    fn file_path_uses_vectored_reads() {
        let path =
            std::env::temp_dir().join(format!("smpx-prefetch-test-{}.xml", std::process::id()));
        let payload = b"<a><b>vectored</b></a>".repeat(300);
        std::fs::write(&path, &payload).unwrap();
        let mut s = PrefetchSource::open(&path, 64).unwrap();
        let mut got = Vec::new();
        let mut pos = 0;
        while s.ensure(pos).unwrap() {
            let rel = pos - s.base();
            let w = &s.resident()[rel..];
            got.extend_from_slice(w);
            pos += w.len();
            s.set_guard(pos);
        }
        assert_eq!(got, payload);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn peak_reports_both_slot_buffers() {
        let doc = vec![b'x'; 1024];
        let mut s = PrefetchSource::new(std::io::Cursor::new(doc), 128);
        assert!(s.ensure(0).unwrap());
        // At least the window capacity plus 2 × chunk.
        assert!(s.peak_io_bytes() >= 2 * 128, "peak {}", s.peak_io_bytes());
    }

    #[test]
    fn early_drop_joins_without_deadlock() {
        // Consume only the first byte, then drop while the producer is
        // parked with both slots filled. Drop must return (join the
        // thread), not hang.
        let doc = vec![b'y'; 1 << 16];
        let mut s = PrefetchSource::new(std::io::Cursor::new(doc), 64);
        assert!(s.ensure(0).unwrap());
        drop(s);
    }

    #[test]
    fn drop_without_any_read_joins() {
        let doc = vec![b'z'; 4096];
        let s = PrefetchSource::new(std::io::Cursor::new(doc), 64);
        drop(s);
    }

    /// A reader that yields some bytes, then fails with a fixed message.
    struct FailAfter {
        left: usize,
        msg: &'static str,
    }

    impl Read for FailAfter {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.left == 0 {
                return Err(std::io::Error::other(self.msg));
            }
            let n = self.left.min(buf.len());
            buf[..n].fill(b'q');
            self.left -= n;
            Ok(n)
        }
    }

    #[test]
    fn mid_stream_error_surfaces_after_prefix() {
        // 96 = 3 full chunks: like the sync path, a partial fill that
        // ends in an error is discarded, so the readable prefix is the
        // last full chunk boundary before the failure.
        let mut s = PrefetchSource::new(FailAfter { left: 96, msg: "disk on fire" }, 32);
        assert!(s.ensure(95).unwrap());
        // ...then the parked error surfaces with the sync path's wording.
        let err = s.ensure(96).unwrap_err();
        assert!(matches!(&err, CoreError::Io(e) if e.to_string().contains("disk on fire")));
    }
}
