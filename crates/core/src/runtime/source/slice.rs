//! Borrowed in-memory document source.

use super::{DocSource, SourceKind};
use crate::error::CoreError;

/// A document already resident in memory, borrowed zero-copy.
///
/// The whole slice is resident for the source's lifetime: `ensure` is a
/// bounds check, `grow` always reports EOF and the discard guard is
/// ignored.
pub struct SliceSource<'a> {
    doc: &'a [u8],
}

impl<'a> SliceSource<'a> {
    /// Wrap a borrowed document.
    pub fn new(doc: &'a [u8]) -> Self {
        SliceSource { doc }
    }
}

impl DocSource for SliceSource<'_> {
    fn base(&self) -> usize {
        0
    }

    fn resident(&self) -> &[u8] {
        self.doc
    }

    fn ensure(&mut self, pos: usize) -> Result<bool, CoreError> {
        Ok(pos < self.doc.len())
    }

    fn grow(&mut self) -> Result<bool, CoreError> {
        Ok(false)
    }

    fn set_guard(&mut self, _pos: usize) {}

    fn len_hint(&self) -> Option<u64> {
        Some(self.doc.len() as u64)
    }

    fn peak_io_bytes(&self) -> usize {
        0 // borrowed, not owned
    }

    fn kind(&self) -> SourceKind {
        SourceKind::Slice
    }
}
