//! Chunked streaming window over any `io::Read`.

use super::{DocSource, SourceKind};
use crate::error::CoreError;
use std::io::Read;

/// The paper's single-pass streaming mode, refill-only: a pre-allocated
/// buffer is filled in fixed-size chunks ("eight times the system page
/// size" in the prototype, Sec. V) and compacted below the discard guard,
/// so memory stays bounded by the window size.
///
/// This is the one backend that pays a copy per byte — and the one that
/// works on pipes and sockets. Copy-range flushing is *not* its concern:
/// the runtime adapter flushes before it raises the guard, so `refill`
/// can drop everything below the guard unconditionally.
pub struct ReaderSource<R: Read> {
    reader: R,
    /// Window bytes `[base, base + buf.len())` of the stream.
    buf: Vec<u8>,
    /// Absolute offset of `buf\[0\]`.
    base: usize,
    eof: bool,
    chunk: usize,
    /// Bytes before `guard` may be discarded.
    guard: usize,
    /// Peak window capacity (memory reporting).
    peak: usize,
}

impl<R: Read> ReaderSource<R> {
    /// Stream `reader` through a window refilled `chunk` bytes at a time.
    ///
    /// Tiny chunks (down to a single byte) are honored: the refill and
    /// overlap logic is chunk-size-independent, and the differential
    /// chunk-boundary suite sweeps 1/2/lane±1 to exercise every
    /// `window()` split.
    pub fn new(reader: R, chunk: usize) -> Self {
        let chunk = chunk.max(1);
        ReaderSource {
            reader,
            buf: Vec::with_capacity(chunk * 2),
            base: 0,
            eof: false,
            chunk,
            guard: 0,
            peak: 0,
        }
    }

    fn window_end(&self) -> usize {
        self.base + self.buf.len()
    }

    /// Read one more chunk, compacting the window below the guard first.
    fn refill(&mut self) -> Result<(), CoreError> {
        let keep_from = self.guard.min(self.window_end()).max(self.base);
        let drop = keep_from - self.base;
        if drop > 0 {
            self.buf.drain(..drop);
            self.base += drop;
        }
        let old_len = self.buf.len();
        self.buf.resize(old_len + self.chunk, 0);
        let n = read_full(&mut self.reader, &mut self.buf[old_len..])?;
        self.buf.truncate(old_len + n);
        if n == 0 {
            self.eof = true;
        }
        self.peak = self.peak.max(self.buf.capacity());
        Ok(())
    }
}

fn read_full<R: Read>(r: &mut R, mut buf: &mut [u8]) -> Result<usize, CoreError> {
    let mut total = 0;
    while !buf.is_empty() {
        match r.read(buf) {
            Ok(0) => break,
            Ok(n) => {
                total += n;
                buf = &mut std::mem::take(&mut buf)[n..];
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(CoreError::Io(e)),
        }
    }
    Ok(total)
}

impl<R: Read> DocSource for ReaderSource<R> {
    fn base(&self) -> usize {
        self.base
    }

    fn resident(&self) -> &[u8] {
        &self.buf
    }

    fn ensure(&mut self, pos: usize) -> Result<bool, CoreError> {
        while pos >= self.window_end() {
            if self.eof {
                return Ok(false);
            }
            self.refill()?;
        }
        Ok(true)
    }

    fn grow(&mut self) -> Result<bool, CoreError> {
        if self.eof {
            return Ok(false);
        }
        let before = self.window_end();
        self.refill()?;
        Ok(self.window_end() > before)
    }

    fn set_guard(&mut self, pos: usize) {
        self.guard = self.guard.max(pos);
    }

    fn len_hint(&self) -> Option<u64> {
        None
    }

    fn peak_io_bytes(&self) -> usize {
        self.peak
    }

    fn kind(&self) -> SourceKind {
        SourceKind::Reader
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_stays_bounded_by_guard() {
        let doc: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let mut s = ReaderSource::new(&doc[..], 16);
        for (pos, &byte) in doc.iter().enumerate() {
            assert!(s.ensure(pos).unwrap());
            assert_eq!(s.resident()[pos - s.base()], byte);
            s.set_guard(pos.saturating_sub(8));
        }
        assert!(!s.ensure(doc.len()).unwrap());
        // Guarded discards kept the window near the chunk size, not the
        // document size.
        assert!(s.peak_io_bytes() < 256, "peak {}", s.peak_io_bytes());
    }

    #[test]
    fn grow_reports_eof_once_exhausted() {
        let doc = b"abcdef";
        let mut s = ReaderSource::new(&doc[..], 4);
        assert!(s.ensure(0).unwrap());
        while s.grow().unwrap() {}
        assert_eq!(s.resident(), doc);
        assert!(!s.grow().unwrap());
        assert_eq!(s.len_hint(), None);
        assert_eq!(s.kind(), SourceKind::Reader);
    }
}
