//! Chunked streaming window over any `io::Read`.

use super::{DocSource, SourceKind};
use crate::error::CoreError;
use std::io::Read;

/// The paper's single-pass streaming mode, refill-only: a pre-allocated
/// buffer is filled in fixed-size chunks ("eight times the system page
/// size" in the prototype, Sec. V) and compacted below the discard guard,
/// so memory stays bounded by the window size.
///
/// This is the one backend that pays a copy per byte — and the one that
/// works on pipes and sockets. Copy-range flushing is *not* its concern:
/// the runtime adapter flushes before it raises the guard, so `refill`
/// can drop everything below the guard unconditionally.
pub struct ReaderSource<R: Read> {
    reader: R,
    /// Window bytes `[base, base + buf.len())` of the stream.
    buf: Vec<u8>,
    /// Absolute offset of `buf\[0\]`.
    base: usize,
    eof: bool,
    chunk: usize,
    /// Bytes before `guard` may be discarded.
    guard: usize,
    /// Peak window capacity (memory reporting).
    peak: usize,
}

impl<R: Read> ReaderSource<R> {
    /// Stream `reader` through a window refilled `chunk` bytes at a time.
    ///
    /// Tiny chunks (down to a single byte) are honored: the refill and
    /// overlap logic is chunk-size-independent, and the differential
    /// chunk-boundary suite sweeps 1/2/lane±1 to exercise every
    /// `window()` split.
    pub fn new(reader: R, chunk: usize) -> Self {
        let chunk = chunk.max(1);
        ReaderSource {
            reader,
            buf: Vec::with_capacity(chunk * 2),
            base: 0,
            eof: false,
            chunk,
            guard: 0,
            peak: 0,
        }
    }

    fn window_end(&self) -> usize {
        self.base + self.buf.len()
    }

    /// Read one more chunk, compacting the window below the guard first.
    fn refill(&mut self) -> Result<(), CoreError> {
        debug_assert!(self.chunk >= 1, "constructor clamps chunk to >= 1");
        let keep_from = self.guard.min(self.window_end()).max(self.base);
        let drop = keep_from - self.base;
        if drop > 0 {
            self.buf.drain(..drop);
            self.base += drop;
        }
        let old_len = self.buf.len();
        self.buf.resize(old_len + self.chunk, 0);
        let io_span = crate::obs::stage(crate::obs::StageId::IoWait);
        let n = read_full(&mut self.reader, &mut self.buf[old_len..])?;
        std::mem::drop(io_span);
        crate::obs::add(crate::obs::CounterId::SourceReadBytes, n as u64);
        self.buf.truncate(old_len + n);
        if n == 0 {
            self.eof = true;
        }
        self.peak = self.peak.max(self.buf.capacity());
        Ok(())
    }
}

fn read_full<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<usize, CoreError> {
    read_full_io(r, buf).map_err(CoreError::Io)
}

/// Fill `buf` from `r`, looping over short reads; short only at EOF.
/// `ErrorKind::Interrupted` (EINTR — a signal landed mid-read) is retried,
/// never surfaced: both the sync refill here and the `smpx-io` prefetch
/// thread route every read through this one function so neither path can
/// regress to treating EINTR as a hard error.
pub(super) fn read_full_io<R: Read>(r: &mut R, mut buf: &mut [u8]) -> std::io::Result<usize> {
    let mut total = 0;
    while !buf.is_empty() {
        match r.read(buf) {
            Ok(0) => break,
            Ok(n) => {
                total += n;
                buf = &mut std::mem::take(&mut buf)[n..];
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(total)
}

impl<R: Read> DocSource for ReaderSource<R> {
    fn base(&self) -> usize {
        self.base
    }

    fn resident(&self) -> &[u8] {
        &self.buf
    }

    fn ensure(&mut self, pos: usize) -> Result<bool, CoreError> {
        while pos >= self.window_end() {
            if self.eof {
                return Ok(false);
            }
            self.refill()?;
        }
        Ok(true)
    }

    fn grow(&mut self) -> Result<bool, CoreError> {
        if self.eof {
            return Ok(false);
        }
        let before = self.window_end();
        self.refill()?;
        Ok(self.window_end() > before)
    }

    fn set_guard(&mut self, pos: usize) {
        self.guard = self.guard.max(pos);
    }

    fn len_hint(&self) -> Option<u64> {
        None
    }

    fn peak_io_bytes(&self) -> usize {
        self.peak
    }

    fn kind(&self) -> SourceKind {
        SourceKind::Reader
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_stays_bounded_by_guard() {
        let doc: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let mut s = ReaderSource::new(&doc[..], 16);
        for (pos, &byte) in doc.iter().enumerate() {
            assert!(s.ensure(pos).unwrap());
            assert_eq!(s.resident()[pos - s.base()], byte);
            s.set_guard(pos.saturating_sub(8));
        }
        assert!(!s.ensure(doc.len()).unwrap());
        // Guarded discards kept the window near the chunk size, not the
        // document size.
        assert!(s.peak_io_bytes() < 256, "peak {}", s.peak_io_bytes());
    }

    #[test]
    fn grow_reports_eof_once_exhausted() {
        let doc = b"abcdef";
        let mut s = ReaderSource::new(&doc[..], 4);
        assert!(s.ensure(0).unwrap());
        while s.grow().unwrap() {}
        assert_eq!(s.resident(), doc);
        assert!(!s.grow().unwrap());
        assert_eq!(s.len_hint(), None);
        assert_eq!(s.kind(), SourceKind::Reader);
    }

    /// A reader that injects `ErrorKind::Interrupted` before every
    /// successful read, the way a signal-heavy process sees EINTR.
    struct Interrupting<R> {
        inner: R,
        interrupt_next: bool,
    }

    impl<R: Read> Read for Interrupting<R> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.interrupt_next {
                self.interrupt_next = false;
                return Err(std::io::Error::from(std::io::ErrorKind::Interrupted));
            }
            self.interrupt_next = true;
            self.inner.read(buf)
        }
    }

    #[test]
    fn eintr_is_retried_not_fatal() {
        let doc = b"<a><b>interrupted but intact</b></a>";
        let interrupting = Interrupting { inner: &doc[..], interrupt_next: true };
        let mut s = ReaderSource::new(interrupting, 4);
        let mut got = Vec::new();
        let mut pos = 0;
        while s.ensure(pos).unwrap() {
            got.push(s.resident()[pos - s.base()]);
            pos += 1;
        }
        assert_eq!(got, doc);
    }

    #[test]
    fn eintr_is_retried_by_read_full_io() {
        // The shared fill loop (also used by the prefetch I/O thread)
        // must absorb any number of interleaved EINTRs.
        let doc = b"0123456789";
        let mut r = Interrupting { inner: &doc[..], interrupt_next: true };
        let mut buf = [0u8; 10];
        assert_eq!(read_full_io(&mut r, &mut buf).unwrap(), 10);
        assert_eq!(&buf, doc);
    }

    #[test]
    fn chunk_zero_is_clamped_to_one() {
        // Regression: chunk == 0 must behave exactly like chunk == 1
        // (refill in 1-byte steps), not underflow or spin on empty reads.
        let doc = b"chunk zero";
        let mut s = ReaderSource::new(&doc[..], 0);
        let mut got = Vec::new();
        let mut pos = 0;
        while s.ensure(pos).unwrap() {
            got.push(s.resident()[pos - s.base()]);
            pos += 1;
        }
        assert_eq!(got, doc);
        assert!(!s.grow().unwrap());
    }
}
