//! Input abstraction: whole-slice and streaming-window access.
//!
//! The runtime algorithm is written once against [`Input`]. The
//! [`SliceInput`] runs over a document held in memory; the [`StreamInput`]
//! implements the paper's single-pass streaming mode: a pre-allocated
//! buffer is filled in fixed-size chunks ("eight times the system page
//! size" in the prototype, Sec. V), the runtime jumps back and forth only
//! within the window, and `copy on/off` ranges are flushed incrementally so
//! memory stays bounded by the window size, not the copied subtree.

use super::matchers::Searcher;
#[cfg(test)]
use super::matchers::StateMatcher;
use crate::error::CoreError;
use smpx_stringmatch::Metrics;
use std::io::{Read, Write};

/// Access to the document bytes and the output sink.
pub(crate) trait Input {
    /// First keyword occurrence at or after absolute position `from`.
    fn find<S: Searcher, M: Metrics>(
        &mut self,
        matcher: &S,
        from: usize,
        m: &mut M,
    ) -> Result<Option<(usize, usize)>, CoreError>;

    /// Byte at absolute position (None at EOF).
    fn byte(&mut self, pos: usize) -> Result<Option<u8>, CoreError>;

    /// Contiguous view of the resident document bytes starting at absolute
    /// position `pos`, for windowed vector scans ([`smpx_stringmatch::memscan`]).
    ///
    /// Contract:
    /// * `Ok(None)` means `pos` is at or past end of input — never an
    ///   empty slice.
    /// * For [`SliceInput`] the view reaches to the end of the document;
    ///   for [`StreamInput`] it reaches to the end of the buffered chunk
    ///   window (`pos` is made resident first, refilling as needed). A
    ///   scan that exhausts the view continues by requesting a new window
    ///   at the old view's end — probing one byte past it (e.g. via
    ///   [`byte`](Input::byte)) forces the refill that distinguishes
    ///   "window ended" from EOF.
    /// * The returned slice is invalidated by *any* subsequent `&mut self`
    ///   call (`byte`, `find`, `matches_at`, `window`, `advance`, the
    ///   copy/emit family): a refill may compact the window and move its
    ///   base. Callers re-request the window after such calls.
    /// * `pos` must not precede the discard guard set by
    ///   [`advance`](Input::advance) — those bytes may already be gone.
    fn window(&mut self, pos: usize) -> Result<Option<&[u8]>, CoreError>;

    /// Does `pat` occur at absolute position `pos`? Counts comparisons.
    fn matches_at<M: Metrics>(
        &mut self,
        pos: usize,
        pat: &[u8],
        m: &mut M,
    ) -> Result<bool, CoreError>;

    /// Start a raw-copy range at absolute position `start`.
    fn copy_on(&mut self, start: usize);

    /// Is a raw-copy range active?
    fn copy_active(&self) -> bool;

    /// End the raw-copy range, emitting everything up to `end` (exclusive).
    fn copy_off(&mut self, end: usize) -> Result<(), CoreError>;

    /// Emit the raw input range `[a, b)` (a just-scanned tag, guaranteed to
    /// still be resident).
    fn emit_range(&mut self, a: usize, b: usize) -> Result<(), CoreError>;

    /// Emit constructed bytes.
    fn emit_bytes(&mut self, bytes: &[u8]) -> Result<(), CoreError>;

    /// The cursor has moved past `pos`: earlier bytes (minus the lookback
    /// margin) may be discarded.
    fn advance(&mut self, pos: usize);

    /// Total bytes emitted.
    fn emitted(&self) -> u64;
}

/// Whole-document input writing to a `Vec<u8>`.
pub(crate) struct SliceInput<'a> {
    doc: &'a [u8],
    out: Vec<u8>,
    copy_from: Option<usize>,
}

impl<'a> SliceInput<'a> {
    pub fn new(doc: &'a [u8]) -> Self {
        SliceInput { doc, out: Vec::new(), copy_from: None }
    }

    pub fn into_output(self) -> Vec<u8> {
        self.out
    }
}

impl<'a> Input for SliceInput<'a> {
    fn find<S: Searcher, M: Metrics>(
        &mut self,
        matcher: &S,
        from: usize,
        m: &mut M,
    ) -> Result<Option<(usize, usize)>, CoreError> {
        Ok(matcher.search_in(self.doc, from, m))
    }

    fn byte(&mut self, pos: usize) -> Result<Option<u8>, CoreError> {
        Ok(self.doc.get(pos).copied())
    }

    fn window(&mut self, pos: usize) -> Result<Option<&[u8]>, CoreError> {
        Ok(self.doc.get(pos..).filter(|w| !w.is_empty()))
    }

    fn matches_at<M: Metrics>(
        &mut self,
        pos: usize,
        pat: &[u8],
        m: &mut M,
    ) -> Result<bool, CoreError> {
        if pos + pat.len() > self.doc.len() {
            return Ok(false);
        }
        for (i, &b) in pat.iter().enumerate() {
            m.cmp(1);
            if self.doc[pos + i] != b {
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn copy_on(&mut self, start: usize) {
        if self.copy_from.is_none() {
            self.copy_from = Some(start);
        }
    }

    fn copy_active(&self) -> bool {
        self.copy_from.is_some()
    }

    fn copy_off(&mut self, end: usize) -> Result<(), CoreError> {
        if let Some(start) = self.copy_from.take() {
            self.out.extend_from_slice(&self.doc[start..end.min(self.doc.len())]);
        }
        Ok(())
    }

    fn emit_range(&mut self, a: usize, b: usize) -> Result<(), CoreError> {
        self.out.extend_from_slice(&self.doc[a..b.min(self.doc.len())]);
        Ok(())
    }

    fn emit_bytes(&mut self, bytes: &[u8]) -> Result<(), CoreError> {
        self.out.extend_from_slice(bytes);
        Ok(())
    }

    fn advance(&mut self, _pos: usize) {}

    fn emitted(&self) -> u64 {
        self.out.len() as u64
    }
}

/// Streaming input over a `Read`, writing to a `Write`, with a bounded
/// window.
pub(crate) struct StreamInput<R: Read, W: Write> {
    reader: R,
    writer: W,
    /// Window bytes `[base, base + buf.len())` of the stream.
    buf: Vec<u8>,
    /// Absolute offset of `buf\[0\]`.
    base: usize,
    eof: bool,
    chunk: usize,
    /// Bytes before `guard` may be discarded (cursor minus lookback).
    guard: usize,
    /// Unflushed start of the active copy range.
    copy_from: Option<usize>,
    written: u64,
    /// Peak window capacity (memory reporting).
    pub peak_window: usize,
}

impl<R: Read, W: Write> StreamInput<R, W> {
    pub fn new(reader: R, writer: W, chunk: usize) -> Self {
        StreamInput {
            reader,
            writer,
            buf: Vec::with_capacity(chunk * 2),
            base: 0,
            eof: false,
            // Tiny chunks (down to a single byte) are honored: the refill
            // and overlap logic is chunk-size-independent, and the
            // differential chunk-boundary suite sweeps 1/2/lane±1 to
            // exercise every window() split.
            chunk: chunk.max(1),
            guard: 0,
            copy_from: None,
            written: 0,
            peak_window: 0,
        }
    }

    pub fn finish(mut self) -> Result<(u64, usize), CoreError> {
        self.writer.flush()?;
        Ok((self.written, self.peak_window))
    }

    fn window_end(&self) -> usize {
        self.base + self.buf.len()
    }

    /// Make `pos` resident (or learn that it is beyond EOF).
    fn ensure(&mut self, pos: usize) -> Result<bool, CoreError> {
        while pos >= self.window_end() {
            if self.eof {
                return Ok(false);
            }
            self.refill()?;
        }
        Ok(true)
    }

    /// Read one more chunk, compacting the window first.
    fn refill(&mut self) -> Result<(), CoreError> {
        // Flush copy bytes that are about to leave the window's keep-range.
        let keep_from = self.guard.min(self.window_end()).max(self.base);
        if let Some(cf) = self.copy_from {
            if cf < keep_from {
                let a = cf - self.base;
                let b = keep_from - self.base;
                self.writer.write_all(&self.buf[a..b])?;
                self.written += (b - a) as u64;
                self.copy_from = Some(keep_from);
            }
        }
        // Compact.
        let drop = keep_from - self.base;
        if drop > 0 {
            self.buf.drain(..drop);
            self.base += drop;
        }
        // Read a chunk.
        let old_len = self.buf.len();
        self.buf.resize(old_len + self.chunk, 0);
        let n = read_full(&mut self.reader, &mut self.buf[old_len..])?;
        self.buf.truncate(old_len + n);
        if n == 0 {
            self.eof = true;
        }
        self.peak_window = self.peak_window.max(self.buf.capacity());
        Ok(())
    }
}

fn read_full<R: Read>(r: &mut R, mut buf: &mut [u8]) -> Result<usize, CoreError> {
    let mut total = 0;
    while !buf.is_empty() {
        match r.read(buf) {
            Ok(0) => break,
            Ok(n) => {
                total += n;
                buf = &mut std::mem::take(&mut buf)[n..];
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(CoreError::Io(e)),
        }
    }
    Ok(total)
}

impl<R: Read, W: Write> Input for StreamInput<R, W> {
    fn find<S: Searcher, M: Metrics>(
        &mut self,
        matcher: &S,
        from: usize,
        m: &mut M,
    ) -> Result<Option<(usize, usize)>, CoreError> {
        let overlap = matcher.longest().max(1);
        let mut search_from = from.max(self.base);
        loop {
            self.ensure(search_from)?;
            let rel_from = search_from.saturating_sub(self.base);
            if rel_from < self.buf.len() {
                if let Some((kw, rel_start)) = matcher.search_in(&self.buf, rel_from, m) {
                    return Ok(Some((kw, self.base + rel_start)));
                }
            }
            if self.eof {
                return Ok(None);
            }
            // No match in the current window: extend it and retry from the
            // boundary overlap (a match may span the old window end).
            let end = self.window_end();
            self.refill()?;
            search_from = end.saturating_sub(overlap.saturating_sub(1)).max(search_from);
        }
    }

    fn byte(&mut self, pos: usize) -> Result<Option<u8>, CoreError> {
        if !self.ensure(pos)? {
            return Ok(None);
        }
        Ok(Some(self.buf[pos - self.base]))
    }

    fn window(&mut self, pos: usize) -> Result<Option<&[u8]>, CoreError> {
        if !self.ensure(pos)? {
            return Ok(None);
        }
        debug_assert!(pos >= self.base, "window request before the discard guard");
        Ok(Some(&self.buf[pos - self.base..]))
    }

    fn matches_at<M: Metrics>(
        &mut self,
        pos: usize,
        pat: &[u8],
        m: &mut M,
    ) -> Result<bool, CoreError> {
        for (i, &b) in pat.iter().enumerate() {
            match self.byte(pos + i)? {
                Some(c) => {
                    m.cmp(1);
                    if c != b {
                        return Ok(false);
                    }
                }
                None => return Ok(false),
            }
        }
        Ok(true)
    }

    fn copy_on(&mut self, start: usize) {
        if self.copy_from.is_none() {
            self.copy_from = Some(start);
        }
    }

    fn copy_active(&self) -> bool {
        self.copy_from.is_some()
    }

    fn copy_off(&mut self, end: usize) -> Result<(), CoreError> {
        if let Some(cf) = self.copy_from.take() {
            if cf < end {
                // Everything in [cf, end) is still resident: the guard only
                // moves with the cursor, which never passes the scan point.
                let a = cf.max(self.base) - self.base;
                let b = (end - self.base).min(self.buf.len());
                if a < b {
                    self.writer.write_all(&self.buf[a..b])?;
                    self.written += (b - a) as u64;
                }
            }
        }
        Ok(())
    }

    fn emit_range(&mut self, a: usize, b: usize) -> Result<(), CoreError> {
        debug_assert!(a >= self.base, "emit_range before window start");
        let ra = a - self.base;
        let rb = (b - self.base).min(self.buf.len());
        if ra < rb {
            self.writer.write_all(&self.buf[ra..rb])?;
            self.written += (rb - ra) as u64;
        }
        Ok(())
    }

    fn emit_bytes(&mut self, bytes: &[u8]) -> Result<(), CoreError> {
        self.writer.write_all(bytes)?;
        self.written += bytes.len() as u64;
        Ok(())
    }

    fn advance(&mut self, pos: usize) {
        self.guard = self.guard.max(pos);
    }

    fn emitted(&self) -> u64 {
        self.written
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smpx_stringmatch::{BoyerMoore, NoMetrics};

    fn bm(pat: &[u8]) -> StateMatcher {
        StateMatcher::Bm(Box::new(BoyerMoore::new(pat)))
    }

    #[test]
    fn slice_find_and_emit() {
        let doc = b"xx<item>yy</item>";
        let mut s = SliceInput::new(doc);
        let hit = s.find(&bm(b"<item"), 0, &mut NoMetrics).unwrap();
        assert_eq!(hit, Some((0, 2)));
        s.emit_range(2, 8).unwrap();
        s.emit_bytes(b"!").unwrap();
        assert_eq!(s.emitted(), 7);
        assert_eq!(s.into_output(), b"<item>!".to_vec());
    }

    #[test]
    fn slice_copy_range() {
        let doc = b"ab<k>x</k>cd";
        let mut s = SliceInput::new(doc);
        s.copy_on(2);
        assert!(s.copy_active());
        s.copy_off(10).unwrap();
        assert!(!s.copy_active());
        assert_eq!(s.into_output(), b"<k>x</k>".to_vec());
    }

    #[test]
    fn stream_find_across_chunk_boundaries() {
        // Chunk size 8 forces the keyword to straddle a refill.
        let doc = b"0123456<item attr='1'>xyz";
        let mut out = Vec::new();
        let mut s = StreamInput::new(&doc[..], &mut out, 8);
        let hit = s.find(&bm(b"<item"), 0, &mut NoMetrics).unwrap();
        assert_eq!(hit, Some((0, 7)));
    }

    #[test]
    fn stream_byte_and_eof() {
        let doc = b"abc";
        let mut out = Vec::new();
        let mut s = StreamInput::new(&doc[..], &mut out, 2);
        assert_eq!(s.byte(0).unwrap(), Some(b'a'));
        assert_eq!(s.byte(2).unwrap(), Some(b'c'));
        assert_eq!(s.byte(3).unwrap(), None);
        assert_eq!(s.byte(100).unwrap(), None);
    }

    #[test]
    fn stream_copy_range_flushes_incrementally() {
        // Copy range longer than the window: bytes must flush on refill.
        let body = "y".repeat(100);
        let doc = format!("<k>{body}</k>");
        let mut out = Vec::new();
        {
            let mut s = StreamInput::new(doc.as_bytes(), &mut out, 16);
            s.copy_on(0);
            // Walk a cursor through the document as the runtime would.
            for pos in 0..doc.len() {
                s.advance(pos.saturating_sub(8));
                let _ = s.byte(pos).unwrap();
            }
            s.copy_off(doc.len()).unwrap();
            let (written, _) = s.finish().unwrap();
            assert_eq!(written as usize, doc.len());
        }
        assert_eq!(out, doc.as_bytes());
    }

    #[test]
    fn slice_window_views_rest_of_document() {
        let doc = b"<a><b>x</b></a>";
        let mut s = SliceInput::new(doc);
        assert_eq!(s.window(0).unwrap(), Some(&doc[..]));
        assert_eq!(s.window(4).unwrap(), Some(&doc[4..]));
        assert_eq!(s.window(doc.len()).unwrap(), None);
        assert_eq!(s.window(doc.len() + 5).unwrap(), None);
    }

    #[test]
    fn stream_window_advances_with_refills() {
        let doc = b"0123456789abcdef";
        let mut out = Vec::new();
        let mut s = StreamInput::new(&doc[..], &mut out, 4);
        // First request makes the position resident; the view ends at the
        // current chunk window, not at EOF.
        let w0 = s.window(0).unwrap().unwrap().to_vec();
        assert!(w0.len() >= 4 && w0.len() <= doc.len());
        assert_eq!(&doc[..w0.len()], &w0[..]);
        // Requesting the old window's end refills and continues.
        let w1 = s.window(w0.len()).unwrap().unwrap().to_vec();
        assert_eq!(&doc[w0.len()..w0.len() + w1.len()], &w1[..]);
        // Past EOF: None, never an empty slice.
        assert_eq!(s.window(doc.len()).unwrap(), None);
        assert_eq!(s.window(100).unwrap(), None);
    }

    #[test]
    fn stream_matches_at_handles_boundaries() {
        let doc = b"abcdefgh<key>";
        let mut out = Vec::new();
        let mut s = StreamInput::new(&doc[..], &mut out, 4);
        assert!(s.matches_at(8, b"<key", &mut NoMetrics).unwrap());
        assert!(!s.matches_at(8, b"<kez", &mut NoMetrics).unwrap());
        assert!(!s.matches_at(11, b"<key", &mut NoMetrics).unwrap());
    }
}
