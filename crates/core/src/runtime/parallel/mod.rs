//! Parallel prefiltering: a work-stealing batch executor over one shared
//! automaton.
//!
//! Prefiltering a corpus is embarrassingly parallel at the document
//! level, and everything the documents need to share — the compiled
//! `A`/`V`/`J`/`T` tables — is read-only after construction. This module
//! splits the [`Prefilter`] accordingly:
//!
//! * [`FrozenPrefilter`] holds the compiled tables behind an `Arc` and is
//!   `Sync`: one frozen handle serves any number of threads.
//! * [`FrozenPrefilter::worker`] mints a per-worker [`Prefilter`] that
//!   *shares* the tables but *owns* its matcher caches (the lazily built
//!   Boyer–Moore / Commentz–Walter structures) and scratch buffers, so
//!   workers never synchronize on the hot path — the paper's lazy
//!   matcher construction simply happens once per worker instead of once
//!   per process, and stays warm across every document that worker
//!   draws.
//! * [`Pool`] schedules the documents: per-worker deques with LIFO-local
//!   / FIFO-steal discipline fed from a shared injector, first-error
//!   cancellation with a clean drain, results pinned to input order.
//!
//! Equivalence with the sequential [`Prefilter::run_batch`] is exact:
//! each document is processed by the same single-threaded Fig. 4 loop
//! against the same tables, so per-document output bytes and `RunStats`
//! are byte-identical whatever the thread count, and accumulated totals
//! are identical because [`RunStats::accumulate`] is commutative in every
//! counter (sums and a max). The integration suite pins this across
//! thread counts, backends and SIMD/scalar modes.

mod deque;
mod pool;
pub(crate) mod shard;
pub(crate) mod split;

pub use pool::Pool;

use super::source::DocSource;
use super::Prefilter;
use crate::compile::CompiledTables;
use crate::error::CoreError;
use crate::stats::{MultiVerdict, RunStats};
use std::io::Write;
use std::sync::Arc;

/// An immutably shared compiled automaton, ready to serve many workers.
///
/// Create one with [`Prefilter::freeze`]. Cloning is cheap (one `Arc`
/// bump); every clone and every [`worker`](Self::worker) reads the same
/// tables.
#[derive(Clone)]
pub struct FrozenPrefilter {
    tables: Arc<CompiledTables>,
}

impl FrozenPrefilter {
    pub(crate) fn new(tables: Arc<CompiledTables>) -> FrozenPrefilter {
        FrozenPrefilter { tables }
    }

    /// The shared compiled tables.
    pub fn tables(&self) -> &CompiledTables {
        &self.tables
    }

    /// A worker prefilter: shares this automaton, owns its matcher
    /// caches. Building one allocates only the empty cache vectors; the
    /// matchers themselves warm lazily as states are first entered.
    pub fn worker(&self) -> Prefilter {
        Prefilter::from_shared(self.tables.clone())
    }

    /// Prefilter many documents concurrently through `threads` workers
    /// (`0` = available parallelism), returning each document's
    /// `(sink, stats)` pair **in input order** regardless of completion
    /// order.
    ///
    /// The batch is collected up front (sources are typically cheap
    /// handles — open the expensive ones lazily inside a custom
    /// [`Pool::run`] job if fd pressure matters, as the CLI does). On the
    /// first failing document the pool cancels: in-flight documents drain
    /// cleanly, queued ones are abandoned, and the returned
    /// [`BatchError`] names the failing input by its batch index with the
    /// underlying [`CoreError`]. Nothing is poisoned — the frozen handle
    /// can run further batches immediately.
    /// A batch of exactly one large document would otherwise clamp the
    /// pool to width 1 and spawn nothing; instead it routes through the
    /// intra-document shard path ([`shard`]) whenever the document's
    /// size hint reaches the auto-shard threshold —
    /// [`DEFAULT_AUTO_SHARD_BYTES`], overridable via the
    /// `SMPX_SHARD_AUTO_MB` environment variable (`0` disables the
    /// heuristic). The returned stats record the effective split in
    /// [`RunStats::shards`].
    pub fn run_batch_parallel<S, W, I>(
        &self,
        batch: I,
        threads: usize,
    ) -> Result<Vec<(W, RunStats)>, BatchError>
    where
        S: DocSource + Send,
        W: Write + Send,
        I: IntoIterator<Item = (S, W)>,
    {
        let mut tasks: Vec<(S, W)> = batch.into_iter().collect();
        if should_auto_shard(&tasks, threads) {
            let (src, sink) = tasks.pop().expect("one task");
            let (out, stats) = self
                .worker()
                .run_sharded(src, sink, threads, 0)
                .map_err(|error| BatchError { index: 0, error })?;
            return Ok(vec![(out, stats)]);
        }
        Pool::new(threads)
            .run(tasks, |_| self.worker(), |pf, (src, sink)| pf.filter_one(src, sink))
            .map_err(|(index, error)| BatchError { index, error })
    }

    /// [`run_batch_parallel`](Self::run_batch_parallel) for multi-query
    /// (registry) automatons: each document's result additionally carries
    /// its [`MultiVerdict`] — which registered queries might match it —
    /// still **in input order**. The verdict is extracted from the worker
    /// that ran the document before it draws the next one, so worker
    /// reuse never mixes documents' hits. Execution and error semantics
    /// are identical to the plain batch entry.
    pub fn run_multi_batch_parallel<S, W, I>(
        &self,
        batch: I,
        threads: usize,
    ) -> Result<Vec<(W, MultiVerdict, RunStats)>, BatchError>
    where
        S: DocSource + Send,
        W: Write + Send,
        I: IntoIterator<Item = (S, W)>,
    {
        let mut tasks: Vec<(S, W)> = batch.into_iter().collect();
        if should_auto_shard(&tasks, threads) {
            let (src, sink) = tasks.pop().expect("one task");
            let (out, verdict, stats) = self
                .worker()
                .run_sharded_multi(src, sink, threads, 0)
                .map_err(|error| BatchError { index: 0, error })?;
            return Ok(vec![(out, verdict, stats)]);
        }
        Pool::new(threads)
            .run(
                tasks,
                |_| self.worker(),
                |pf, (src, sink)| {
                    let (out, stats) = pf.filter_one(src, sink)?;
                    let verdict = pf.take_verdict(&stats);
                    Ok((out, verdict, stats))
                },
            )
            .map_err(|(index, error)| BatchError { index, error })
    }

    /// Shard one document across `threads` workers and stitch the result
    /// — byte-identical to the sequential run; see [`shard`] for the
    /// speculation/confirmation protocol. `shard_bytes == 0` sizes
    /// shards automatically. Shorthand for minting a
    /// [`worker`](Self::worker) and calling [`Prefilter::run_sharded`].
    pub fn run_sharded<S, W>(
        &self,
        src: S,
        writer: W,
        threads: usize,
        shard_bytes: usize,
    ) -> Result<(W, RunStats), CoreError>
    where
        S: DocSource,
        W: Write,
    {
        self.worker().run_sharded(src, writer, threads, shard_bytes)
    }

    /// [`run_sharded`](Self::run_sharded) for multi-query (registry)
    /// automatons: additionally returns the document's [`MultiVerdict`],
    /// the OR of the stitched segments' per-query hits.
    pub fn run_sharded_multi<S, W>(
        &self,
        src: S,
        writer: W,
        threads: usize,
        shard_bytes: usize,
    ) -> Result<(W, MultiVerdict, RunStats), CoreError>
    where
        S: DocSource,
        W: Write,
    {
        self.worker().run_sharded_multi(src, writer, threads, shard_bytes)
    }
}

/// Default auto-shard threshold for one-document batches: documents at
/// least this large route through the intra-document shard path when
/// the pool has more than one worker (8 MiB; `SMPX_SHARD_AUTO_MB`
/// overrides, `0` disables).
pub const DEFAULT_AUTO_SHARD_BYTES: u64 = 8 << 20;

/// The auto-shard threshold currently in effect — the
/// `SMPX_SHARD_AUTO_MB` override when set (`0` disables and yields
/// `None`), [`DEFAULT_AUTO_SHARD_BYTES`] otherwise. Exposed so callers
/// that hand-roll their own one-document pool runs (the bench runners)
/// can mirror [`run_batch_parallel`](FrozenPrefilter::run_batch_parallel)'s
/// routing decision exactly.
pub fn auto_shard_threshold() -> Option<u64> {
    match std::env::var("SMPX_SHARD_AUTO_MB") {
        Ok(v) => parse_auto_shard_mb(&v).unwrap_or_else(|()| {
            // An operator typo ("8MB", "eight") must not silently become
            // the default: warn once per process, then keep the default so
            // a long-lived server still serves.
            static WARN: std::sync::Once = std::sync::Once::new();
            WARN.call_once(|| {
                eprintln!(
                    "smpx: warning: SMPX_SHARD_AUTO_MB={v:?} is not a number of MiB; \
                     using the default ({} MiB)",
                    DEFAULT_AUTO_SHARD_BYTES >> 20
                );
            });
            Some(DEFAULT_AUTO_SHARD_BYTES)
        }),
        Err(_) => Some(DEFAULT_AUTO_SHARD_BYTES),
    }
}

/// Parse an `SMPX_SHARD_AUTO_MB` value: `0` disables (`None`), any other
/// number of MiB converts to bytes **saturating** at `u64::MAX` (a value
/// like `2^50` used to wrap `mb << 20` into a tiny threshold that silently
/// sharded everything), and non-numeric input is an error for the caller
/// to surface rather than mask.
pub(crate) fn parse_auto_shard_mb(raw: &str) -> Result<Option<u64>, ()> {
    match raw.trim().parse::<u64>() {
        Ok(0) => Ok(None),
        Ok(mb) => Ok(Some(mb.saturating_mul(1 << 20))),
        Err(_) => Err(()),
    }
}

/// One-document batch, a pool wider than one, and a size hint at or
/// above the threshold? (Hint-less sources — pipes — never auto-shard:
/// the batch path will not buffer an unbounded stream unasked.)
/// `pub(crate)` so the lifecycle batch entry mirrors this routing
/// decision exactly.
pub(crate) fn should_auto_shard<S: DocSource, W>(tasks: &[(S, W)], threads: usize) -> bool {
    tasks.len() == 1
        && Pool::new(threads).threads() > 1
        && auto_shard_threshold()
            .is_some_and(|thr| tasks[0].0.len_hint().is_some_and(|len| len >= thr))
}

/// A batch failure: which input failed, and how.
///
/// `index` is the 0-based position in the submitted batch — callers that
/// know their inputs' names (the CLI's file list) use it to name the
/// failing document. With several failing documents the reported one is
/// the lowest-indexed error *observed* before cancellation took effect
/// (deterministic when a single input is at fault).
#[derive(Debug)]
pub struct BatchError {
    /// 0-based index of the failing input in the batch.
    pub index: usize,
    /// What went wrong with that input.
    pub error: CoreError,
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "batch input #{}: {}", self.index, self.error)
    }
}

impl std::error::Error for BatchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::source::SliceSource;
    use smpx_dtd::Dtd;
    use smpx_paths::PathSet;

    const EX2: &[u8] =
        br#"<!DOCTYPE a [ <!ELEMENT a (b|c)*> <!ELEMENT b (#PCDATA)> <!ELEMENT c (b,b?)> ]>"#;

    fn pf() -> Prefilter {
        let dtd = Dtd::parse(EX2).unwrap();
        let paths = PathSet::parse(&["/*", "/a/b#"]).unwrap();
        Prefilter::compile(&dtd, &paths).unwrap()
    }

    fn docs() -> Vec<Vec<u8>> {
        (0..12)
            .map(|i| {
                let mut d = b"<a>".to_vec();
                for j in 0..=i {
                    d.extend_from_slice(format!("<c><b>x{j}</b></c><b>keep{i}-{j}</b>").as_bytes());
                }
                d.extend_from_slice(b"</a>");
                d
            })
            .collect()
    }

    #[test]
    fn parallel_batch_matches_sequential_in_order() {
        let docs = docs();
        let mut seq = pf();
        let want: Vec<(Vec<u8>, RunStats)> =
            docs.iter().map(|d| seq.filter_to_vec(d).unwrap()).collect();
        for threads in [0usize, 1, 2, 8] {
            let got = pf()
                .run_batch_parallel(docs.iter().map(|d| (SliceSource::new(d), Vec::new())), threads)
                .unwrap();
            assert_eq!(got.len(), want.len());
            for (i, ((go, gs), (wo, ws))) in got.iter().zip(&want).enumerate() {
                assert_eq!(go, wo, "threads={threads} doc={i}: output diverged");
                assert_eq!(gs, ws, "threads={threads} doc={i}: stats diverged");
            }
        }
    }

    #[test]
    fn frozen_handle_is_reusable_and_shares_tables() {
        let base = pf();
        let frozen = base.freeze();
        assert_eq!(frozen.tables().state_count(), base.tables().state_count());
        let docs = docs();
        for _ in 0..2 {
            let out = frozen
                .run_batch_parallel(docs.iter().map(|d| (SliceSource::new(d), Vec::new())), 2)
                .unwrap();
            assert_eq!(out.len(), docs.len());
        }
        // Worker prefilters start with cold caches and warm independently.
        let mut w = frozen.worker();
        let (out, _) = w.filter_to_vec(b"<a><b>k</b></a>").unwrap();
        assert_eq!(out, b"<a><b>k</b></a>".to_vec());
    }

    #[test]
    fn parse_auto_shard_mb_handles_zero_huge_garbage_whitespace() {
        // 0 disables the heuristic.
        assert_eq!(parse_auto_shard_mb("0"), Ok(None));
        assert_eq!(parse_auto_shard_mb(" 0\n"), Ok(None));
        // Ordinary values convert MiB -> bytes.
        assert_eq!(parse_auto_shard_mb("8"), Ok(Some(8 << 20)));
        assert_eq!(parse_auto_shard_mb("  16\t"), Ok(Some(16 << 20)));
        // Huge values saturate instead of wrapping to a tiny threshold.
        assert_eq!(parse_auto_shard_mb(&(1u64 << 50).to_string()), Ok(Some(u64::MAX)));
        assert_eq!(parse_auto_shard_mb(&u64::MAX.to_string()), Ok(Some(u64::MAX)));
        // The old `mb << 20` wrapped this exact value to 0.
        assert_eq!(parse_auto_shard_mb(&(1u64 << 44).to_string()), Ok(Some(u64::MAX)));
        // Garbage and empty input are errors, not the silent default.
        assert_eq!(parse_auto_shard_mb("8MB"), Err(()));
        assert_eq!(parse_auto_shard_mb("eight"), Err(()));
        assert_eq!(parse_auto_shard_mb(""), Err(()));
        assert_eq!(parse_auto_shard_mb("   "), Err(()));
        assert_eq!(parse_auto_shard_mb("-4"), Err(()));
    }

    #[test]
    fn batch_error_names_the_failing_input() {
        let docs = docs();
        let mut batch: Vec<Vec<u8>> = docs.clone();
        batch[5] = b"<a><b>never closed".to_vec();
        let err = pf()
            .run_batch_parallel(batch.iter().map(|d| (SliceSource::new(d), Vec::new())), 4)
            .expect_err("doc 5 is truncated");
        assert_eq!(err.index, 5);
        assert!(matches!(err.error, CoreError::UnexpectedEof { .. }));
        assert!(err.to_string().contains("#5"), "display: {err}");
    }
}
