//! The pool's work queues: a per-worker deque with LIFO-local /
//! FIFO-steal discipline, plus the same structure used FIFO-only as the
//! shared injector.
//!
//! Hand-rolled on `Mutex<VecDeque>` rather than a lock-free Chase–Lev
//! deque: the workspace builds offline (no `crossbeam`), `smpx_core` is
//! `deny(unsafe_code)`, and the tasks the pool schedules are whole
//! documents — microseconds to seconds each — so an uncontended lock
//! (tens of nanoseconds) never shows up next to the work it guards. The
//! *discipline* is the classic one regardless of the lock: the owner
//! pushes and pops at the back (LIFO keeps its most recently acquired
//! work hot), thieves take from the front (FIFO takes the oldest work,
//! the least likely to be in any cache).

use std::collections::VecDeque;
use std::sync::Mutex;

/// One work queue. Owned ends: back (owner), front (thieves/injector).
pub(crate) struct WorkDeque<T> {
    q: Mutex<VecDeque<T>>,
}

impl<T> WorkDeque<T> {
    pub fn new() -> WorkDeque<T> {
        WorkDeque { q: Mutex::new(VecDeque::new()) }
    }

    /// Owner side: queue a run of tasks at the back (in iteration order).
    pub fn push_chunk(&self, items: impl IntoIterator<Item = T>) {
        let mut q = self.q.lock().expect("pool queue lock");
        q.extend(items);
    }

    /// Owner side: most recently pushed task (LIFO).
    pub fn pop_local(&self) -> Option<T> {
        self.q.lock().expect("pool queue lock").pop_back()
    }

    /// Injector side: up to `n` tasks from the front (FIFO), preserving
    /// submission order.
    pub fn take_front(&self, n: usize) -> Vec<T> {
        let mut q = self.q.lock().expect("pool queue lock");
        let k = n.min(q.len());
        q.drain(..k).collect()
    }

    /// Thief side: about half of the queued tasks from the front (FIFO);
    /// empty when there is nothing to steal.
    pub fn steal_half(&self) -> Vec<T> {
        let mut q = self.q.lock().expect("pool queue lock");
        let k = q.len().div_ceil(2);
        q.drain(..k).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_local_fifo_steal() {
        let d = WorkDeque::new();
        d.push_chunk([1, 2, 3, 4]);
        // Owner sees the newest first…
        assert_eq!(d.pop_local(), Some(4));
        // …thieves the oldest (half of the remaining 3 = 2 tasks).
        assert_eq!(d.steal_half(), vec![1, 2]);
        assert_eq!(d.pop_local(), Some(3));
        assert_eq!(d.pop_local(), None);
        assert!(d.steal_half().is_empty());
    }

    #[test]
    fn take_front_preserves_submission_order() {
        let d = WorkDeque::new();
        d.push_chunk(0..10);
        assert_eq!(d.take_front(3), vec![0, 1, 2]);
        assert_eq!(d.take_front(100), (3..10).collect::<Vec<_>>());
        assert!(d.take_front(1).is_empty());
    }
}
