//! The work-stealing batch executor.
//!
//! A [`Pool`] runs a closed set of independent tasks across `threads`
//! workers. Tasks enter a shared FIFO *injector*; each worker owns a
//! deque it refills from the injector in small chunks and drains LIFO;
//! an empty-handed worker steals the FIFO half of a sibling's deque
//! (see [`deque`](super::deque) for the discipline). The caller's thread
//! is worker 0, so `threads == 1` degenerates to a plain sequential loop
//! with no thread ever spawned.
//!
//! Two properties the prefilter batch driver builds on:
//!
//! * **Input-order results.** Every task carries its submission index and
//!   writes its result into that slot; the returned vector is in input
//!   order no matter which worker finished what when.
//! * **First-error cancellation, clean drain.** The first task error
//!   raises a cancellation flag; workers finish the task they are on
//!   (nothing is interrupted mid-document), abandon everything still
//!   queued, and the lowest-indexed *observed* error is returned. The
//!   pool holds no lock while a task runs, so an error poisons nothing;
//!   a *panicking* task trips an unwind guard that cancels the batch and
//!   wakes parked siblings, so they drain and exit, the scope joins, and
//!   the panic propagates to the caller instead of hanging the pool.
//!
//! Termination: the task set is closed at submission (tasks never spawn
//! tasks), but "injector and every sibling deque look empty" does not
//! mean the batch is done — tasks can be *in transit* (a sibling popped a
//! refill/steal chunk and has not requeued it yet) or still running. A
//! worker that comes up empty therefore parks on a `Condvar` while the
//! outstanding-task count is non-zero, and is woken when tasks become
//! visible again (a sibling requeued a chunk it can steal from), when the
//! count hits zero, or on cancellation; a short timed wait bounds any
//! missed wakeup. Exiting instead of parking would silently serialize the
//! batch tail on fewer workers. The implicit join of `std::thread::scope`
//! is the final blocking point, and what drains in-flight work on
//! cancellation.

use super::deque::WorkDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// A work-stealing executor of a fixed width.
///
/// The pool itself is just the configuration; queues and workers live for
/// one [`run`](Pool::run) call (scoped threads, so tasks may borrow from
/// the caller's stack). Spawning a handful of OS threads per batch is
/// noise next to prefiltering even one document.
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool of `threads` workers; `0` means the machine's available
    /// parallelism (and at least one worker always).
    pub fn new(threads: usize) -> Pool {
        let threads = match threads {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        };
        Pool { threads }
    }

    /// The worker count this pool runs with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run every task, returning the results in input order, or the
    /// lowest-indexed observed error after a clean drain (module docs).
    ///
    /// `make_worker` builds each worker's owned state once (worker ids
    /// are `0..n` where `n` is the pool width clamped to the task count —
    /// a worker that could never receive a task is neither spawned nor
    /// given state); `job` processes one task against that state. Tasks
    /// are independent by construction — nothing is shared between them
    /// except what `job` captures, which must therefore be `Sync`.
    pub fn run<T, R, E, Wk, MW, F>(
        &self,
        tasks: Vec<T>,
        make_worker: MW,
        job: F,
    ) -> Result<Vec<R>, (usize, E)>
    where
        T: Send,
        R: Send,
        E: Send,
        MW: Fn(usize) -> Wk + Sync,
        F: Fn(&mut Wk, T) -> Result<R, E> + Sync,
    {
        let total = tasks.len();
        if total == 0 {
            return Ok(Vec::new());
        }
        let n = self.threads.min(total);
        crate::obs::gauge_set(crate::obs::GaugeId::PoolWorkers, n as u64);
        crate::obs::gauge_max(crate::obs::GaugeId::PoolQueueDepthPeak, total as u64);
        let shared: Shared<T, R, E> = Shared {
            injector: WorkDeque::new(),
            locals: (0..n).map(|_| WorkDeque::new()).collect(),
            cancel: AtomicBool::new(false),
            remaining: AtomicUsize::new(total),
            idle: Mutex::new(()),
            wake: Condvar::new(),
            error: Mutex::new(None),
            results: Mutex::new((0..total).map(|_| None).collect()),
        };
        shared.injector.push_chunk(tasks.into_iter().enumerate());
        // Injector refill chunk: big enough to amortize the injector lock,
        // small enough that the tail imbalance stays stealable.
        let grab = (total / (2 * n)).clamp(1, 64);
        std::thread::scope(|scope| {
            for id in 1..n {
                let shared = &shared;
                let make_worker = &make_worker;
                let job = &job;
                scope.spawn(move || worker_loop(id, grab, shared, make_worker, job));
            }
            worker_loop(0, grab, &shared, &make_worker, &job);
        });
        if let Some(err) = shared.error.into_inner().expect("pool error lock") {
            return Err(err);
        }
        let results = shared.results.into_inner().expect("pool results lock");
        Ok(results
            .into_iter()
            .map(|r| r.expect("no error was recorded, so every task completed"))
            .collect())
    }
}

/// State shared by the workers of one `run` call.
struct Shared<T, R, E> {
    injector: WorkDeque<(usize, T)>,
    locals: Vec<WorkDeque<(usize, T)>>,
    cancel: AtomicBool,
    /// Tasks not yet completed (running and in-transit tasks included) —
    /// the termination condition, as queue emptiness alone is not one.
    remaining: AtomicUsize,
    /// Parking lot for empty-handed workers while `remaining > 0`.
    idle: Mutex<()>,
    wake: Condvar,
    error: Mutex<Option<(usize, E)>>,
    results: Mutex<Vec<Option<R>>>,
}

impl<T, R, E> Shared<T, R, E> {
    fn record_error(&self, idx: usize, e: E) {
        let mut slot = self.error.lock().expect("pool error lock");
        match &*slot {
            Some((i, _)) if *i <= idx => {}
            _ => *slot = Some((idx, e)),
        }
        drop(slot);
        self.cancel.store(true, Ordering::Release);
        self.wake.notify_all();
    }

    /// One task finished (successfully or not): count it down and, when
    /// it was the last, wake parked workers so they can exit.
    fn task_done(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.wake.notify_all();
        }
    }
}

fn worker_loop<T, R, E, Wk>(
    id: usize,
    grab: usize,
    shared: &Shared<T, R, E>,
    make_worker: &(impl Fn(usize) -> Wk + Sync),
    job: &(impl Fn(&mut Wk, T) -> Result<R, E> + Sync),
) {
    /// Armed across a `job` call: a panicking job unwinds without ever
    /// reaching `task_done`, so `remaining` would never hit zero and the
    /// sibling workers would park forever while the scope waits to join
    /// the dead thread. The guard turns that unwind into a cancellation
    /// (plus a wakeup), so siblings drain and exit, the scope joins, and
    /// the panic propagates to the caller.
    struct PanicGuard<'a, T, R, E> {
        shared: &'a Shared<T, R, E>,
        armed: bool,
    }
    impl<T, R, E> Drop for PanicGuard<'_, T, R, E> {
        fn drop(&mut self) {
            if self.armed {
                self.shared.cancel.store(true, Ordering::Release);
                self.shared.wake.notify_all();
            }
        }
    }

    let mut wk = make_worker(id);
    loop {
        if shared.cancel.load(Ordering::Acquire) {
            return;
        }
        match next_task(id, grab, shared) {
            Some((idx, task)) => {
                let mut guard = PanicGuard { shared, armed: true };
                // Clock reads only when observability is on; the counter
                // bumps below self-gate.
                let busy = crate::obs::enabled().then(std::time::Instant::now);
                let res = job(&mut wk, task);
                guard.armed = false;
                if let Some(t0) = busy {
                    crate::obs::add_nanos(
                        crate::obs::CounterId::PoolBusyNanos,
                        t0.elapsed().as_nanos(),
                    );
                }
                crate::obs::add(crate::obs::CounterId::PoolTasks, 1);
                match res {
                    Ok(r) => shared.results.lock().expect("pool results lock")[idx] = Some(r),
                    Err(e) => shared.record_error(idx, e),
                }
                shared.task_done();
            }
            None => {
                if shared.remaining.load(Ordering::Acquire) == 0 {
                    return; // batch complete
                }
                // Outstanding tasks exist but none are visible: they are
                // running on siblings or in transit between queues. Park
                // until something becomes stealable, the batch completes,
                // or cancellation — the timed wait bounds a missed wakeup.
                crate::obs::add(crate::obs::CounterId::PoolParks, 1);
                let guard = shared.idle.lock().expect("pool idle lock");
                drop(
                    shared
                        .wake
                        .wait_timeout(guard, Duration::from_millis(1))
                        .expect("pool idle lock"),
                );
            }
        }
    }
}

/// Local pop, else an injector refill, else a steal sweep over siblings.
/// Whenever a chunk is requeued locally (and thereby becomes stealable),
/// parked siblings are woken.
fn next_task<T, R, E>(id: usize, grab: usize, shared: &Shared<T, R, E>) -> Option<(usize, T)> {
    if let Some(t) = shared.locals[id].pop_local() {
        return Some(t);
    }
    let chunk = shared.injector.take_front(grab);
    if !chunk.is_empty() {
        let mut it = chunk.into_iter();
        let first = it.next();
        shared.locals[id].push_chunk(it);
        crate::obs::add(crate::obs::CounterId::PoolWakes, 1);
        shared.wake.notify_all();
        return first;
    }
    let n = shared.locals.len();
    for off in 1..n {
        let mut got = shared.locals[(id + off) % n].steal_half();
        if !got.is_empty() {
            let first = got.remove(0);
            shared.locals[id].push_chunk(got);
            crate::obs::add(crate::obs::CounterId::PoolSteals, 1);
            crate::obs::add(crate::obs::CounterId::PoolWakes, 1);
            shared.wake.notify_all();
            return Some(first);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_input_order() {
        for threads in [1, 2, 3, 8] {
            let pool = Pool::new(threads);
            assert_eq!(pool.threads(), threads);
            let tasks: Vec<u64> = (0..100).collect();
            let out: Vec<u64> =
                pool.run(tasks, |_| (), |(), t| Ok::<_, ()>(t * t)).expect("no task fails");
            assert_eq!(out, (0..100).map(|t| t * t).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        let pool = Pool::new(0);
        assert!(pool.threads() >= 1);
        let out = pool.run(vec![7usize], |_| (), |(), t| Ok::<_, ()>(t + 1)).unwrap();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn empty_batch_is_ok_and_spawns_nothing() {
        let built = AtomicUsize::new(0);
        let out: Vec<u8> = Pool::new(4)
            .run(Vec::<u8>::new(), |_| built.fetch_add(1, Ordering::Relaxed), |_, t| Ok::<_, ()>(t))
            .unwrap();
        assert!(out.is_empty());
        assert_eq!(built.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn worker_state_is_built_per_worker_and_reused() {
        // Each worker counts the tasks it ran; the counts must sum to the
        // task count (every task exactly once) across any distribution.
        for threads in [1, 2, 8] {
            let ran = AtomicUsize::new(0);
            let pool = Pool::new(threads);
            let out = pool
                .run(
                    (0..50u32).collect(),
                    |id| (id, 0u32),
                    |(_, mine), t| {
                        *mine += 1;
                        ran.fetch_add(1, Ordering::Relaxed);
                        Ok::<_, ()>(t)
                    },
                )
                .unwrap();
            assert_eq!(out.len(), 50);
            assert_eq!(ran.load(Ordering::Relaxed), 50, "threads={threads}");
        }
    }

    #[test]
    fn first_error_cancels_and_reports_lowest_observed_index() {
        for threads in [1, 2, 8] {
            let pool = Pool::new(threads);
            let tasks: Vec<usize> = (0..64).collect();
            let err = pool
                .run(tasks, |_| (), |(), t| if t == 13 { Err(format!("boom {t}")) } else { Ok(t) })
                .expect_err("task 13 fails");
            // With one failing task the report is deterministic; queued
            // tasks after the cancellation are abandoned, never reported.
            assert_eq!(err, (13, "boom 13".to_string()), "threads={threads}");
        }
    }

    #[test]
    fn pool_survives_an_erroring_run() {
        // "Poisons nothing": the same pool (and the caller) can run again
        // right after a cancelled batch.
        let pool = Pool::new(4);
        let _ = pool
            .run((0..8usize).collect(), |_| (), |(), t| if t % 2 == 0 { Err(t) } else { Ok(t) })
            .expect_err("half the tasks fail");
        let out = pool.run((0..8usize).collect(), |_| (), |(), t| Ok::<_, ()>(t)).unwrap();
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn parked_workers_exit_when_the_last_running_task_completes() {
        // The fast workers drain everything visible while task 0 is still
        // running on a sibling; they must park (not exit) and then leave
        // cleanly once the straggler completes and the count hits zero.
        let pool = Pool::new(4);
        let out = pool
            .run(
                (0..4u64).collect(),
                |_| (),
                |(), t| {
                    if t == 0 {
                        std::thread::sleep(Duration::from_millis(30));
                    }
                    Ok::<_, ()>(t)
                },
            )
            .unwrap();
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn many_more_tasks_than_workers_all_complete() {
        let pool = Pool::new(3);
        let out = pool.run((0..1000u32).collect(), |_| (), |(), t| Ok::<_, ()>(t)).unwrap();
        assert_eq!(out, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn panicking_task_propagates_instead_of_hanging() {
        // The unwind guard must cancel the batch so parked siblings exit,
        // the scope joins, and the panic reaches the caller — this test
        // *completing* (rather than parking forever) is the point.
        let res = std::panic::catch_unwind(|| {
            Pool::new(4).run(
                (0..16usize).collect(),
                |_| (),
                |(), t| {
                    if t == 7 {
                        panic!("task panic");
                    }
                    Ok::<_, ()>(t)
                },
            )
        });
        assert!(res.is_err(), "the task panic must propagate out of run()");
    }
}
