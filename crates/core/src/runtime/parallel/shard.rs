//! Intra-document parallelism: speculative sharding of one document
//! across the work-stealing pool.
//!
//! The pool parallelizes across documents; this module splits *one*
//! document. The protocol keeps the one-sided-error contract and makes
//! the stitched output byte-identical to the sequential run:
//!
//! 1. **Calibration** (main thread). Run the ordinary Fig. 4 loop from
//!    the document start, watching for *record crossings*: a found (not
//!    yet consumed) element-open token ([`split::open_masks`]) with no
//!    copy range active. The run stops at the first crossing whose state
//!    repeats an earlier crossing's state — that state `q_rec` is the
//!    record-loop state (at whatever depth the document's repeating
//!    records sit: XMark's `<item>` lists are three levels down), and
//!    the stop position is a *confirmed* configuration `(pos, q_rec,
//!    copy off)`. A document that never repeats a crossing state (one
//!    giant record, no repetition at all) simply runs to completion: the
//!    fallback *is* the sequential run, byte for byte.
//! 2. **Speculation** (pool). Shard entries are textual candidates — the
//!    next record-open pattern at or after each `shard_bytes` step
//!    ([`split::plan_entries`]). Each shard runs the same loop from
//!    `(entry, q_rec)` with the first initial jump suppressed, verifies
//!    that its first found token really is a record crossing at exactly
//!    its entry (else it aborts immediately — the candidate was inside a
//!    quoted value, a comment lookalike, or a nested record), and stops
//!    at its first crossing at or after the next shard's entry, again
//!    *before* consuming that token.
//! 3. **Stitching** (main thread). Walk the shards in input order with
//!    the confirmed frontier `p` (initially the calibration stop). A
//!    shard is spliced iff its entry equals `p` exactly: two runs at the
//!    same `(position, state, copy-off)` configuration behave
//!    identically from there on, so the shard's whole output, hit set
//!    and token counters are the sequential run's own. On a miss (the
//!    entry was a lookalike, or the previous segment overran it) the
//!    main thread *repairs*: it re-runs sequentially from `p` to the
//!    next spliceable entry and tries again. A shard that errored is
//!    never spliced — the repair run reproduces a real error exactly,
//!    and silently absorbs a speculative one (e.g. a garbage prefix
//!    running off EOF).
//!
//! Output bytes, match verdicts, `tokens_matched` / `match_events` are
//! exact under this protocol — the segments partition the sequential
//! run's token sequence. Search-effort counters (`chars_compared`,
//! `bytes_scanned`, `shifts`, `initial_jump_chars`) are approximate at
//! segment boundaries (each segment restarts its search at its entry
//! instead of arriving with the predecessor's shift state), the same
//! way `ReaderSource` stats are chunk-size-dependent.

use super::split;
use super::Pool;
use crate::error::CoreError;
use crate::idset::QueryIdSet;
use crate::runtime::source::{DocSource, SliceSource};
use crate::runtime::{Prefilter, RunEntry};
use crate::stats::{MultiVerdict, RunStats};
use std::io::Write;
use std::ops::ControlFlow;
use std::sync::Arc;

/// Observer the Fig. 4 loop reports every found-but-unconsumed token to
/// (see `Prefilter::run`). Decides when a calibration or shard run
/// stops, leaving the stop position's token for the successor segment.
pub(crate) struct ShardTrace {
    /// Per-state open-keyword bitmasks ([`split::open_masks`]).
    masks: Arc<Vec<u64>>,
    mode: Mode,
    /// Set when the run stopped at a crossing: position and state of the
    /// first *unconsumed* token. `None` = ran to natural completion.
    pub(crate) stopped: Option<(usize, u32)>,
    /// Speculation only: the entry token failed to verify as a record
    /// crossing — the candidate was not what it looked like.
    pub(crate) entry_failed: bool,
}

enum Mode {
    /// Find the record-loop state: stop at the first crossing whose
    /// state was already crossed in.
    Calibrate { seen: Vec<u32> },
    /// Speculative shard / repair run: entered at `entry` in
    /// `loop_state`; stop at the first `loop_state` crossing at or after
    /// `stop_at`. `pending_entry` validates the entry token first.
    Speculate { loop_state: u32, entry: usize, stop_at: usize, pending_entry: bool },
}

impl ShardTrace {
    pub(crate) fn calibrate(masks: Arc<Vec<u64>>) -> ShardTrace {
        ShardTrace {
            masks,
            mode: Mode::Calibrate { seen: Vec::new() },
            stopped: None,
            entry_failed: false,
        }
    }

    pub(crate) fn speculate(
        masks: Arc<Vec<u64>>,
        loop_state: u32,
        entry: usize,
        stop_at: usize,
        check_entry: bool,
    ) -> ShardTrace {
        ShardTrace {
            masks,
            mode: Mode::Speculate { loop_state, entry, stop_at, pending_entry: check_entry },
            stopped: None,
            entry_failed: false,
        }
    }

    /// Observe the token found (not yet consumed) at `start` in state
    /// `q`. `clean` = no copy range active and zero multi-mode copy
    /// depth — only clean configurations are legal splice points.
    /// `Break` stops the run with the token unconsumed.
    #[inline]
    pub(crate) fn on_token(
        &mut self,
        q: u32,
        kw_idx: usize,
        start: usize,
        clean: bool,
    ) -> ControlFlow<()> {
        let record = clean && kw_idx < 64 && self.masks[q as usize] & (1u64 << kw_idx) != 0;
        match &mut self.mode {
            Mode::Calibrate { seen } => {
                if record {
                    if seen.contains(&q) {
                        self.stopped = Some((start, q));
                        return ControlFlow::Break(());
                    }
                    seen.push(q);
                }
                ControlFlow::Continue(())
            }
            Mode::Speculate { loop_state, entry, stop_at, pending_entry } => {
                let crossing = record && q == *loop_state;
                if *pending_entry {
                    *pending_entry = false;
                    if !crossing || start != *entry {
                        self.entry_failed = true;
                        return ControlFlow::Break(());
                    }
                    return ControlFlow::Continue(());
                }
                if crossing && start >= *stop_at {
                    self.stopped = Some((start, q));
                    return ControlFlow::Break(());
                }
                ControlFlow::Continue(())
            }
        }
    }
}

/// One pool shard's assignment.
struct Task {
    entry: usize,
    stop_at: usize,
    check_entry: bool,
}

/// One segment's result, speculative until stitched.
struct ShardOut {
    entry: usize,
    out: Vec<u8>,
    stats: RunStats,
    hits: QueryIdSet,
    stopped: Option<usize>,
    entry_failed: bool,
    err: Option<CoreError>,
}

/// The sharded run: materialize, calibrate, speculate, stitch. Returns
/// the writer, the (multi-)verdict and the stitched stats; single-query
/// callers drop the verdict.
pub(crate) fn run_sharded_impl<S: DocSource, W: Write>(
    pf: &mut Prefilter,
    mut src: S,
    mut writer: W,
    threads: usize,
    shard_bytes: usize,
) -> Result<(W, MultiVerdict, RunStats), CoreError> {
    let pool = Pool::new(threads);
    let masks = split::open_masks(&pf.tables);
    if pool.threads() <= 1 || !split::any_candidates(&masks) {
        // No parallelism to win, or nothing to split at: the plain
        // sequential path, streaming semantics and all. (`filter_one`
        // folds the run into the process counters itself.)
        crate::obs::add(crate::obs::CounterId::ShardFallbacks, 1);
        let (w, stats) = pf.filter_one(src, writer)?;
        let verdict = pf.take_verdict(&stats);
        return Ok((w, verdict, stats));
    }
    // Random access over the whole document: zero-copy for slice/mmap
    // (already fully resident), a grow-to-EOF slurp for readers (the
    // window cost is reported honestly in `io_window_bytes`).
    while src.grow()? {}
    debug_assert_eq!(src.base(), 0, "no guard was raised: nothing may have been dropped");
    let doc: &[u8] = src.resident();
    let masks = Arc::new(masks);

    // Phase 1: calibration — sequential until the record loop is found.
    let mut trace = ShardTrace::calibrate(masks.clone());
    let (cal_out, cal_stats) = pf.filter_one_traced(
        SliceSource::new(doc),
        Vec::new(),
        RunEntry::default(),
        Some(&mut trace),
    )?;
    let cal_hits = std::mem::take(&mut pf.hits);
    let Some((p0, q_rec)) = trace.stopped else {
        // No safe split found: the calibration run already was the full
        // sequential run. It went through `filter_one_traced`, so fold it
        // into the process counters here.
        writer.write_all(&cal_out)?;
        let mut stats = cal_stats;
        stats.io_window_bytes = stats.io_window_bytes.max(src.peak_io_bytes() as u64);
        crate::obs::add(crate::obs::CounterId::ShardFallbacks, 1);
        crate::obs::record_run(&stats);
        pf.hits = cal_hits;
        let verdict = pf.take_verdict(&stats);
        return Ok((writer, verdict, stats));
    };

    // Phase 2: speculative shards through the pool.
    let patterns = split::entry_patterns(&pf.tables, &masks, q_rec);
    let entries = split::plan_entries(doc, p0, shard_bytes, pool.threads(), &patterns);
    let tasks: Vec<Task> = entries
        .iter()
        .enumerate()
        .map(|(i, &entry)| Task {
            entry,
            stop_at: entries.get(i + 1).copied().unwrap_or(usize::MAX),
            // Shard 0 continues from the calibration stop — a confirmed
            // configuration, no speculation to validate.
            check_entry: i > 0,
        })
        .collect();
    let frozen = pf.freeze();
    let run_one = |wk: &mut Prefilter, task: Task| -> Result<ShardOut, CoreError> {
        let mut tr =
            ShardTrace::speculate(masks.clone(), q_rec, task.entry, task.stop_at, task.check_entry);
        let entry = RunEntry { state: q_rec, cursor: task.entry, suppress_jump: true };
        let res = wk.filter_one_traced(SliceSource::new(doc), Vec::new(), entry, Some(&mut tr));
        let (out, stats, err) = match res {
            Ok((out, stats)) => (out, stats, None),
            // A speculative error is not (yet) a document error: it is
            // only real if the stitcher confirms this shard's entry, and
            // then the repair run reproduces it exactly.
            Err(e) => (Vec::new(), RunStats::default(), Some(e)),
        };
        Ok(ShardOut {
            entry: task.entry,
            out,
            stats,
            hits: std::mem::take(&mut wk.hits),
            stopped: tr.stopped.map(|(pos, _)| pos),
            entry_failed: tr.entry_failed,
            err,
        })
    };
    let mut results: Vec<ShardOut> = match pool.run(tasks, |_| frozen.worker(), run_one) {
        Ok(r) => r,
        Err((_, e)) => return Err(e), // unreachable: jobs capture their errors
    };

    // Phase 3: stitch — splice confirmed shards, repair around misses.
    let stitch_span = crate::obs::stage(crate::obs::StageId::Stitch);
    let mut segs: Vec<(Vec<u8>, RunStats, QueryIdSet)> = vec![(cal_out, cal_stats, cal_hits)];
    let mut p = p0;
    let mut idx = 0;
    let mut done = false;
    while !done {
        while idx < results.len() && results[idx].entry < p {
            idx += 1; // overrun entries: provably not sequential crossings
        }
        if idx < results.len() && results[idx].entry == p {
            let sh = &mut results[idx];
            idx += 1;
            if !sh.entry_failed && sh.err.is_none() {
                crate::obs::add(crate::obs::CounterId::ShardSpeculationHits, 1);
                segs.push((std::mem::take(&mut sh.out), sh.stats, std::mem::take(&mut sh.hits)));
                match sh.stopped {
                    Some(s) => p = s,
                    None => done = true,
                }
                continue;
            }
        }
        // Repair: sequential from the confirmed frontier up to the next
        // entry that could still be spliced. A real document error
        // surfaces here, attributed exactly as the sequential run would.
        let target = results[idx..].iter().map(|r| r.entry).find(|&e| e > p).unwrap_or(usize::MAX);
        let mut tr = ShardTrace::speculate(masks.clone(), q_rec, p, target, false);
        let entry = RunEntry { state: q_rec, cursor: p, suppress_jump: true };
        crate::obs::add(crate::obs::CounterId::ShardRepairs, 1);
        let repair_span = crate::obs::stage(crate::obs::StageId::Repair);
        let (out, stats) =
            pf.filter_one_traced(SliceSource::new(doc), Vec::new(), entry, Some(&mut tr))?;
        drop(repair_span);
        let hits = std::mem::take(&mut pf.hits);
        segs.push((out, stats, hits));
        match tr.stopped {
            Some((s, _)) => p = s,
            None => done = true,
        }
    }

    // Finalize: concatenate in order; exact counters sum, per-document
    // quantities are set from the document itself.
    let mut total = RunStats::default();
    let mut union = QueryIdSet::new();
    let n_segs = segs.len() as u64;
    for (out, mut stats, hits) in segs {
        writer.write_all(&out)?;
        stats.input_bytes = 0;
        stats.io_window_bytes = 0;
        total.accumulate(&stats);
        union.union_with(&hits);
    }
    total.input_bytes = doc.len() as u64;
    total.io_window_bytes = src.peak_io_bytes() as u64;
    total.shards = n_segs;
    drop(stitch_span);
    crate::obs::add(crate::obs::CounterId::ShardRuns, 1);
    crate::obs::observe(crate::obs::HistId::ShardSegments, n_segs);
    crate::obs::record_run(&total);
    pf.hits = union;
    let verdict = pf.take_verdict(&total);
    Ok((writer, verdict, total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use smpx_dtd::Dtd;
    use smpx_paths::PathSet;

    const EX2: &[u8] =
        br#"<!DOCTYPE a [ <!ELEMENT a (b|c)*> <!ELEMENT b (#PCDATA)> <!ELEMENT c (b,b?)> ]>"#;

    fn pf() -> Prefilter {
        let dtd = Dtd::parse(EX2).unwrap();
        let paths = PathSet::parse(&["/*", "/a/b#"]).unwrap();
        Prefilter::compile(&dtd, &paths).unwrap()
    }

    fn record_doc(n: usize) -> Vec<u8> {
        let mut d = b"<a>".to_vec();
        for j in 0..n {
            d.extend_from_slice(format!("<c><b>x{j}</b></c><b>keep-{j}</b>").as_bytes());
        }
        d.extend_from_slice(b"</a>");
        d
    }

    #[test]
    fn sharded_matches_sequential_across_sizes_and_threads() {
        let doc = record_doc(40);
        let (want_out, want_stats) = pf().filter_to_vec(&doc).unwrap();
        for threads in [1usize, 2, 3, 8] {
            for shard_bytes in [0usize, 48, 131, 400] {
                let mut p = pf();
                let (out, stats) = p
                    .run_sharded(SliceSource::new(&doc), Vec::new(), threads, shard_bytes)
                    .unwrap();
                assert_eq!(
                    out, want_out,
                    "threads={threads} shard_bytes={shard_bytes}: output diverged"
                );
                assert_eq!(stats.output_bytes, want_stats.output_bytes);
                assert_eq!(stats.input_bytes, want_stats.input_bytes);
                assert_eq!(stats.match_events, want_stats.match_events);
                assert_eq!(stats.tokens_matched, want_stats.tokens_matched);
                if threads > 1 && shard_bytes != 0 {
                    assert!(stats.shards >= 2, "threads={threads} sb={shard_bytes}: {stats:?}");
                }
            }
        }
    }

    #[test]
    fn single_thread_falls_back_sequential() {
        let doc = record_doc(10);
        let (want, ws) = pf().filter_to_vec(&doc).unwrap();
        let (out, stats) = pf().run_sharded(SliceSource::new(&doc), Vec::new(), 1, 64).unwrap();
        assert_eq!(out, want);
        assert_eq!(stats, ws, "fallback must be the plain sequential run");
        assert_eq!(stats.shards, 0);
    }

    #[test]
    fn no_repeating_record_state_falls_back() {
        // One giant <b> record: the crossing state never repeats, so
        // calibration runs the document to completion.
        let mut doc = b"<a><b>".to_vec();
        doc.extend_from_slice(&vec![b'x'; 4096]);
        doc.extend_from_slice(b"</b></a>");
        let (want, _) = pf().filter_to_vec(&doc).unwrap();
        let (out, stats) = pf().run_sharded(SliceSource::new(&doc), Vec::new(), 4, 64).unwrap();
        assert_eq!(out, want);
        assert_eq!(stats.shards, 0, "no safe split: ran unsplit");
    }

    #[test]
    fn lookalike_candidates_are_repaired() {
        // Record-open lookalikes inside quoted attribute values: textual
        // candidates that the sequential frontier never crosses.
        let mut doc = b"<a>".to_vec();
        for j in 0..24 {
            doc.extend_from_slice(
                format!("<b id=\"<b>fake{j}</b><c>\">real-{j}</b><c><b>y{j}</b></c>").as_bytes(),
            );
        }
        doc.extend_from_slice(b"</a>");
        let (want, _) = pf().filter_to_vec(&doc).unwrap();
        for shard_bytes in [16usize, 33, 64, 100] {
            let (out, _) =
                pf().run_sharded(SliceSource::new(&doc), Vec::new(), 4, shard_bytes).unwrap();
            assert_eq!(out, want, "shard_bytes={shard_bytes}");
        }
    }

    #[test]
    fn truncated_document_reports_the_real_error() {
        let mut doc = record_doc(30);
        doc.truncate(doc.len() - 10); // cut inside the last records
        let want = pf().filter_to_vec(&doc).expect_err("truncated");
        let got =
            pf().run_sharded(SliceSource::new(&doc), Vec::new(), 4, 64).expect_err("truncated");
        assert_eq!(format!("{got}"), format!("{want}"));
    }
}
