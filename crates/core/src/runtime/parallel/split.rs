//! Split-point discovery for intra-document sharding.
//!
//! A *safe* split point for speculative execution is a byte position
//! where the sequential run will (probably) pass through a known
//! configuration: cursor at the start of a record tag, in the
//! record-loop state, with no copy range open. This module provides the
//! static half of that bet:
//!
//! * [`open_masks`] flags every *open* keyword of every state as a
//!   potential record crossing, as per-state keyword bitmasks the
//!   runtime loop tests with one AND. No static guess about which
//!   nesting level is "the record level" is needed — the calibration
//!   run discovers it dynamically by stopping at the first crossing
//!   whose **state repeats** (XMark's `<item>` lists sit at depth 3,
//!   MEDLINE's citations at depth 2; both just fall out). A flagged
//!   token that is not really a loop crossing costs speculation wasted
//!   work, never soundness: every shard is confirmed against the
//!   sequential frontier before its output is used (see
//!   [`super::shard`]).
//! * [`next_candidate`] finds the next byte position that *looks like*
//!   a record-open tag (pattern bytes + tag-name boundary), hopping
//!   with the SIMD scanner ([`memscan::find_byte`]); positions inside
//!   quoted attribute values or CDATA lookalikes are fine — they fail
//!   confirmation, they do not break correctness.
//! * [`plan_entries`] picks the shard entry positions: the next
//!   candidate at or after each `shard_bytes` boundary.

use crate::compile::CompiledTables;
use crate::runtime::is_tag_name_end;
use smpx_stringmatch::memscan;

/// Upper bound on planned shards per document: a runaway-split backstop
/// (the pool queues excess shards anyway; far more than any sane split).
pub(crate) const MAX_SHARDS: usize = 256;

/// Smallest auto-planned shard: below this, per-shard speculation and
/// stitching overhead dwarfs the scan work.
pub(crate) const MIN_AUTO_SHARD_BYTES: usize = 256 * 1024;

/// Per-state bitmask of keyword indices that are crossing candidates
/// (bit `i` set ⇔ `keywords[i]` opens an element). Which of these are
/// *real* record-loop crossings is decided dynamically: calibration
/// stops at the first crossing whose state repeats, whatever depth that
/// loop sits at. Indices ≥ 64 are left unset — a conservative miss only
/// loses a split candidate.
pub(crate) fn open_masks(tables: &CompiledTables) -> Vec<u64> {
    tables
        .states
        .iter()
        .map(|s| {
            let mut mask = 0u64;
            for (i, kw) in s.keywords.iter().enumerate().take(64) {
                if !kw.close {
                    mask |= 1 << i;
                }
            }
            mask
        })
        .collect()
}

/// Does any state carry a crossing candidate at all? (A keyword-free
/// automaton has nothing to split at; sharding falls back.)
pub(crate) fn any_candidates(masks: &[u64]) -> bool {
    masks.iter().any(|&m| m != 0)
}

/// The byte patterns (`<name`, no trailing bracket) of the record-open
/// keywords of state `q` — what [`next_candidate`] scans for once the
/// record-loop state is known.
pub(crate) fn entry_patterns(tables: &CompiledTables, masks: &[u64], q: u32) -> Vec<Vec<u8>> {
    let state = &tables.states[q as usize];
    state
        .keywords
        .iter()
        .enumerate()
        .filter(|(i, _)| *i < 64 && masks[q as usize] & (1 << i) != 0)
        .map(|(_, kw)| kw.bytes.clone())
        .collect()
}

/// The next position `>= from` where some record-open pattern occurs with
/// a valid tag-name boundary after it. Purely textual: the position may
/// still sit inside a quoted attribute value, a comment, or a nested
/// record — speculation sorts that out.
pub(crate) fn next_candidate(doc: &[u8], from: usize, patterns: &[Vec<u8>]) -> Option<usize> {
    let mut at = from;
    while at < doc.len() {
        let lt = memscan::find_byte(doc, at, b'<')?;
        for pat in patterns {
            let end = lt + pat.len();
            if end < doc.len() && doc[lt..end] == pat[..] && is_tag_name_end(doc[end]) {
                return Some(lt);
            }
        }
        at = lt + 1;
    }
    None
}

/// Plan the shard entry positions over `doc[start..]`: `start` itself
/// (the confirmed resynchronization point calibration stopped at), then
/// the next candidate at or after each `shard_bytes` step. `shard_bytes
/// == 0` sizes shards to spread the remainder over `width` workers,
/// floored at [`MIN_AUTO_SHARD_BYTES`]. Entries are strictly increasing;
/// a document whose tail has no further candidates simply plans fewer
/// shards.
pub(crate) fn plan_entries(
    doc: &[u8],
    start: usize,
    shard_bytes: usize,
    width: usize,
    patterns: &[Vec<u8>],
) -> Vec<usize> {
    let remaining = doc.len().saturating_sub(start);
    let size = if shard_bytes == 0 {
        (remaining / width.max(1)).max(MIN_AUTO_SHARD_BYTES)
    } else {
        shard_bytes.max(1)
    };
    let mut entries = vec![start];
    let mut target = start.saturating_add(size);
    while target < doc.len() && entries.len() < MAX_SHARDS {
        match next_candidate(doc, target, patterns) {
            // `target > entries.last()` throughout, so candidates are
            // strictly increasing by construction.
            Some(c) => {
                entries.push(c);
                target = c.saturating_add(size);
            }
            None => break,
        }
    }
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Prefilter;
    use smpx_dtd::Dtd;
    use smpx_paths::PathSet;

    const EX2: &[u8] =
        br#"<!DOCTYPE a [ <!ELEMENT a (b|c)*> <!ELEMENT b (#PCDATA)> <!ELEMENT c (b,b?)> ]>"#;

    fn tables() -> std::sync::Arc<CompiledTables> {
        let dtd = Dtd::parse(EX2).unwrap();
        let paths = PathSet::parse(&["/*", "/a/b#"]).unwrap();
        std::sync::Arc::new(Prefilter::compile(&dtd, &paths).unwrap().tables().clone())
    }

    #[test]
    fn masks_flag_exactly_the_open_keywords() {
        let t = tables();
        let masks = open_masks(&t);
        assert!(any_candidates(&masks), "EX2 has open keywords to split at");
        for (s, &mask) in t.states.iter().zip(&masks) {
            for (i, kw) in s.keywords.iter().enumerate().take(64) {
                let flagged = mask & (1 << i) != 0;
                assert_eq!(flagged, !kw.close, "state kw {:?}", kw.bytes);
            }
        }
    }

    #[test]
    fn candidates_require_tag_boundary() {
        let pats: Vec<Vec<u8>> = vec![b"<b".to_vec()];
        let doc = b"<a><brand>x</brand><b>y</b></a>";
        // "<brand" shares the "<b" prefix but fails the boundary check.
        assert_eq!(next_candidate(doc, 0, &pats), Some(19));
        assert_eq!(next_candidate(doc, 20, &pats), None);
    }

    #[test]
    fn plan_entries_steps_by_shard_size() {
        let mut doc = b"<a>".to_vec();
        for i in 0..40 {
            doc.extend_from_slice(format!("<b>record {i:04}</b>").as_bytes());
        }
        doc.extend_from_slice(b"</a>");
        let pats: Vec<Vec<u8>> = vec![b"<b".to_vec()];
        let entries = plan_entries(&doc, 3, 100, 4, &pats);
        assert!(entries.len() > 2, "entries: {entries:?}");
        assert_eq!(entries[0], 3);
        for w in entries.windows(2) {
            assert!(w[1] > w[0], "strictly increasing: {entries:?}");
            assert!(w[1] - w[0] >= 100, "at least shard_bytes apart: {entries:?}");
        }
        for &e in &entries[1..] {
            assert_eq!(&doc[e..e + 2], b"<b", "entry at a record open: {entries:?}");
        }
    }

    #[test]
    fn zero_shard_bytes_spreads_over_width() {
        let doc = vec![b'x'; 4 * MIN_AUTO_SHARD_BYTES];
        // No candidates in a pattern-free doc: only the start entry.
        let entries = plan_entries(&doc, 0, 0, 4, &[b"<b".to_vec()]);
        assert_eq!(entries, vec![0]);
    }
}
