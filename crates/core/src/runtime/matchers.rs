//! Per-state search engines, built lazily.
//!
//! The paper (Sec. V): "The data structures for string search are computed
//! lazily, when an automaton-state is first entered." A state with one
//! keyword gets Boyer–Moore, with several Commentz–Walter (Fig. 4's
//! `(BM)`/`(CW)` branches); the `ablations` bench compares this laziness
//! against eager construction.

use crate::compile::{CompiledTables, RtState};
use crate::idset::QueryIdSet;
use crate::stats::RunStats;
use smpx_stringmatch::{BoyerMoore, CommentzWalter, Metrics};

/// Attribute one runtime state entry, right where a verified keyword hit
/// fires its transition: count the match event if the entered state's
/// action indicates one, and for registry-compiled automatons OR the
/// state's query-id set into the run's hit accumulator. Single-query
/// tables carry no attribution, so their runs pay one branch here.
#[inline]
pub(crate) fn attribute_entry(
    tables: &CompiledTables,
    state: u32,
    hits: &mut QueryIdSet,
    stats: &mut RunStats,
) {
    if tables.states[state as usize].action.indicates_match() {
        stats.match_events += 1;
    }
    if let Some(att) = &tables.attribution {
        hits.union_with(&att.state_hits[state as usize]);
    }
}

/// Anything the input layer can drive a windowed search with.
pub(crate) trait Searcher {
    /// First occurrence in `hay` at or after `from`: (keyword index, start).
    fn search_in<M: Metrics>(&self, hay: &[u8], from: usize, m: &mut M) -> Option<(usize, usize)>;
    /// Longest pattern length (stream-refill overlap).
    fn longest(&self) -> usize;
}

impl Searcher for CommentzWalter {
    fn search_in<M: Metrics>(&self, hay: &[u8], from: usize, m: &mut M) -> Option<(usize, usize)> {
        self.find_at(hay, from, m).map(|mm| (mm.pattern, mm.start))
    }

    fn longest(&self) -> usize {
        self.patterns().iter().map(Vec::len).max().unwrap_or(1)
    }
}

impl Searcher for StateMatcher {
    fn search_in<M: Metrics>(&self, hay: &[u8], from: usize, m: &mut M) -> Option<(usize, usize)> {
        self.find_in(hay, from, m)
    }

    fn longest(&self) -> usize {
        self.max_len()
    }
}

/// The search engine of one runtime state.
#[derive(Debug, Clone)]
pub(crate) enum StateMatcher {
    /// No keywords (final states): nothing to search.
    Empty,
    /// Unary frontier vocabulary → Boyer–Moore (boxed: the shift tables
    /// are ~2 KiB and live per state).
    Bm(Box<BoyerMoore>),
    /// Multi-keyword frontier vocabulary → Commentz–Walter.
    Cw(Box<CommentzWalter>),
}

impl StateMatcher {
    /// Build the matcher for a state's keyword list.
    pub fn build(state: &RtState) -> StateMatcher {
        match state.keywords.len() {
            0 => StateMatcher::Empty,
            1 => StateMatcher::Bm(Box::new(BoyerMoore::new(&state.keywords[0].bytes))),
            _ => {
                let pats: Vec<&[u8]> = state.keywords.iter().map(|k| k.bytes.as_slice()).collect();
                StateMatcher::Cw(Box::new(CommentzWalter::new(&pats)))
            }
        }
    }

    /// First keyword occurrence in `hay` starting at or after `from`:
    /// `(keyword index, start offset)`.
    pub fn find_in<M: Metrics>(
        &self,
        hay: &[u8],
        from: usize,
        m: &mut M,
    ) -> Option<(usize, usize)> {
        match self {
            StateMatcher::Empty => None,
            StateMatcher::Bm(bm) => bm.find_at(hay, from, m).map(|s| (0, s)),
            StateMatcher::Cw(cw) => cw.find_at(hay, from, m).map(|mm| (mm.pattern, mm.start)),
        }
    }

    /// Shortest keyword length (the Commentz–Walter sliding-window size).
    #[allow(dead_code)] // part of the matcher API surface; used in tests
    pub fn min_len(&self) -> usize {
        match self {
            StateMatcher::Empty => 1,
            StateMatcher::Bm(bm) => bm.pattern().len(),
            StateMatcher::Cw(cw) => cw.min_len(),
        }
    }

    /// Longest keyword length. The streaming window must re-scan this many
    /// minus one bytes of overlap after a refill, or a long keyword
    /// straddling the old window end is lost.
    pub fn max_len(&self) -> usize {
        match self {
            StateMatcher::Empty => 1,
            StateMatcher::Bm(bm) => bm.pattern().len(),
            StateMatcher::Cw(cw) => cw.patterns().iter().map(Vec::len).max().unwrap_or(1),
        }
    }

    /// Heap size of the lookup tables (the paper's `Mem` column counts
    /// these): the boxed searcher struct (shift/`d1` tables are inline
    /// arrays) plus the exact heap allocations it owns — no estimates, so
    /// the number tracks the real `Node`/table layout as it evolves.
    pub fn memory_bytes(&self) -> usize {
        match self {
            StateMatcher::Empty => 0,
            StateMatcher::Bm(bm) => std::mem::size_of::<BoyerMoore>() + bm.heap_bytes(),
            StateMatcher::Cw(cw) => std::mem::size_of::<CommentzWalter>() + cw.heap_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{Action, Keyword, RtState};
    use smpx_stringmatch::NoMetrics;

    fn state(kws: &[&str]) -> RtState {
        RtState {
            label: None,
            keywords: kws
                .iter()
                .enumerate()
                .map(|(i, k)| Keyword {
                    bytes: k.as_bytes().to_vec(),
                    name: k.trim_start_matches(['<', '/']).to_string(),
                    close: k.starts_with("</"),
                    target: i as u32,
                })
                .collect(),
            jump: 0,
            action: Action::Nop,
            is_final: false,
            balanced: false,
        }
    }

    #[test]
    fn empty_state_never_matches() {
        let m = StateMatcher::build(&state(&[]));
        assert!(m.find_in(b"<a><b>", 0, &mut NoMetrics).is_none());
    }

    #[test]
    fn single_keyword_uses_bm() {
        let m = StateMatcher::build(&state(&["<item"]));
        assert!(matches!(m, StateMatcher::Bm(_)));
        assert_eq!(m.find_in(b"xx<item y>", 0, &mut NoMetrics), Some((0, 2)));
        assert_eq!(m.find_in(b"xx<item y>", 3, &mut NoMetrics), None);
    }

    #[test]
    fn multi_keyword_uses_cw_with_stable_indices() {
        let m = StateMatcher::build(&state(&["</a", "<b", "<c"]));
        assert!(matches!(m, StateMatcher::Cw(_)));
        assert_eq!(m.find_in(b"..<c>..</a>", 0, &mut NoMetrics), Some((2, 2)));
        assert_eq!(m.find_in(b"..<c>..</a>", 3, &mut NoMetrics), Some((0, 7)));
    }

    #[test]
    fn min_and_max_len() {
        let m = StateMatcher::build(&state(&["</a", "<longkeyword"]));
        assert_eq!(m.min_len(), 3);
        assert_eq!(m.max_len(), 12);
        let b = StateMatcher::build(&state(&["<item"]));
        assert_eq!(b.min_len(), 5);
        assert_eq!(b.max_len(), 5);
        assert_eq!(StateMatcher::build(&state(&[])).max_len(), 1);
    }

    #[test]
    fn memory_estimates_positive() {
        assert!(StateMatcher::build(&state(&["<item"])).memory_bytes() > 256);
        assert!(StateMatcher::build(&state(&["<a", "</a"])).memory_bytes() > 1024);
        assert_eq!(StateMatcher::build(&state(&[])).memory_bytes(), 0);
    }

    #[test]
    fn memory_tracks_real_layout() {
        // Computed from the live struct layout, not a per-node constant:
        // a bigger vocabulary must cost measurably more, and every matcher
        // costs at least its boxed struct.
        let small = StateMatcher::build(&state(&["<a", "</a"]));
        let big = StateMatcher::build(&state(&["<alpha", "</alpha", "<beta", "</beta"]));
        assert!(big.memory_bytes() > small.memory_bytes());
        assert!(small.memory_bytes() >= std::mem::size_of::<CommentzWalter>());
        let bm = StateMatcher::build(&state(&["<item"]));
        assert!(bm.memory_bytes() >= std::mem::size_of::<BoyerMoore>());
    }
}
