//! The SMP runtime algorithm (paper Fig. 4).
//!
//! ```text
//! q := q0; c := 0;
//! while c ≤ end-of-file and q is not final do
//!     c := c + J[q];                        // initial jump offset
//!     search for the closest token in V[q]  // BM or CW
//!     shift c right until '>' or '/>'       // (†) prefix-tag check here
//!     q := A[q, token]; perform T[q];       // bachelor tags: open + close
//! ```
//!
//! The only addition over the paper's pseudocode is the explicit
//! *verification* step around keyword hits: a match `<name` is a real tag
//! only if the next byte ends the tag name (`>`, `/` or whitespace) — this
//! is the paper's `Abstract` vs `AbstractText` special case (†). On a
//! false hit the runtime re-checks the remaining keywords at the same
//! position (prefix keywords may overlap) and otherwise resumes the scan
//! one byte further.

mod matchers;
pub mod parallel;
pub mod source;

use crate::compile::{compile, compile_multi, Action, CompiledTables};
use crate::error::CoreError;
use crate::idset::QueryIdSet;
use crate::stats::{MultiVerdict, RunStats};
use matchers::StateMatcher;
use smpx_dtd::Dtd;
use smpx_paths::PathSet;
use smpx_stringmatch::{memscan, Counters, Metrics};
use source::{DocSource, ReaderSource, SliceSource, SourceInput};
use std::io::{Read, Write};
use std::sync::Arc;

/// Default streaming chunk: eight times a 4 KiB page, as in the paper's
/// prototype ("a pre-allocated buffer … in fixed-size chunks, which we set
/// to eight times the system page size", Sec. V).
pub const DEFAULT_CHUNK: usize = 8 * 4096;

/// Where a Fig. 4 run begins: the paper's `q := q0; c := 0` by default,
/// or a mid-document `(state, cursor)` configuration for shard and
/// repair runs ([`parallel::shard`]). `suppress_jump` skips the first
/// initial-jump application so the entry token itself is not hopped
/// over.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct RunEntry {
    /// Start state (`0` = the automaton's start state).
    pub state: u32,
    /// Absolute byte position to start scanning from.
    pub cursor: usize,
    /// Do not apply `J[state]` before the first search.
    pub suppress_jump: bool,
}

/// A compiled, reusable XML prefilter.
///
/// The compiled tables are held behind an [`Arc`] and are immutable after
/// construction; only the lazily built matcher caches are per-instance
/// mutable state. [`freeze`](Self::freeze) hands the shared tables to the
/// [`parallel`] executor, where every worker owns its own caches.
pub struct Prefilter {
    tables: Arc<CompiledTables>,
    matchers: Vec<Option<StateMatcher>>,
    /// Lazily built `{<e, </e}` searchers for balanced (recursive-element)
    /// states, indexed like `matchers`.
    balanced_matchers: Vec<Option<smpx_stringmatch::CommentzWalter>>,
    matchers_built: usize,
    /// Registry automaton (`tables.attribution` present)? Cached off the
    /// hot path so the single-query runtime stays byte-identical.
    multi: bool,
    /// Per-run scratch: ids of the queries attributed so far (registry
    /// runs only; reset per document).
    hits: QueryIdSet,
    /// Per-run scratch: nesting depth of active copy-on instances
    /// (registry runs only — the forced hit states let copy-on regions
    /// nest, which the single-query automaton never sees).
    copy_depth: usize,
}

impl Prefilter {
    /// Run the static analysis and wrap the tables in a runtime.
    pub fn compile(dtd: &Dtd, paths: &PathSet) -> Result<Prefilter, CoreError> {
        let _span = crate::obs::stage(crate::obs::StageId::Compile);
        Ok(Prefilter::from_tables(compile(dtd, paths)?))
    }

    /// Compile a whole query workload — one path set per query — into a
    /// single shared automaton whose runs additionally answer *which*
    /// queries might match each document ([`run_multi`](Self::run_multi)).
    /// The projection it emits is the union projection of the workload;
    /// the higher-level registry front door is
    /// [`QueryRegistry`](crate::QueryRegistry).
    pub fn compile_multi(dtd: &Dtd, queries: &[PathSet]) -> Result<Prefilter, CoreError> {
        let _span = crate::obs::stage(crate::obs::StageId::Compile);
        Ok(Prefilter::from_tables(compile_multi(dtd, queries)?))
    }

    /// [`compile_multi`](Self::compile_multi), lifecycle-capable: the
    /// workload becomes generation 0 of a
    /// [`SharedPrefilter`](crate::lifecycle::SharedPrefilter) whose query
    /// set stays mutable while documents are served — `add_query` /
    /// `remove_query` recompile off the hot path and publish atomically.
    /// See [`crate::lifecycle`] for the generation contract.
    pub fn compile_multi_lifecycle(
        dtd: &Dtd,
        queries: &[PathSet],
    ) -> Result<crate::lifecycle::SharedPrefilter, CoreError> {
        crate::lifecycle::SharedPrefilter::new(dtd.clone(), queries.to_vec())
    }

    /// Wrap precompiled tables.
    pub fn from_tables(tables: CompiledTables) -> Prefilter {
        Prefilter::from_shared(Arc::new(tables))
    }

    /// Wrap tables already shared with other prefilter instances (the
    /// [`parallel::FrozenPrefilter`] worker path): the automaton is common,
    /// the matcher caches are this instance's own.
    pub(crate) fn from_shared(tables: Arc<CompiledTables>) -> Prefilter {
        let n = tables.states.len();
        let multi = tables.attribution.is_some();
        Prefilter {
            tables,
            matchers: vec![None; n],
            balanced_matchers: vec![None; n],
            matchers_built: 0,
            multi,
            hits: QueryIdSet::new(),
            copy_depth: 0,
        }
    }

    /// Share the compiled automaton immutably for parallel execution.
    ///
    /// The frozen handle can mint any number of worker prefilters, each
    /// with its own (lazily warmed) matcher caches and scratch state, all
    /// reading the same tables — see [`parallel`].
    pub fn freeze(&self) -> parallel::FrozenPrefilter {
        parallel::FrozenPrefilter::new(self.tables.clone())
    }

    /// Prefilter many documents concurrently through `threads` workers
    /// sharing this compiled automaton, returning each document's
    /// `(sink, stats)` pair **in input order** regardless of completion
    /// order. `threads == 0` uses the machine's available parallelism.
    /// Shorthand for [`freeze`](Self::freeze) +
    /// [`FrozenPrefilter::run_batch_parallel`]
    /// (`parallel::FrozenPrefilter::run_batch_parallel`), which documents
    /// the execution and error semantics.
    pub fn run_batch_parallel<S, W, I>(
        &self,
        batch: I,
        threads: usize,
    ) -> Result<Vec<(W, RunStats)>, parallel::BatchError>
    where
        S: DocSource + Send,
        W: Write + Send,
        I: IntoIterator<Item = (S, W)>,
    {
        self.freeze().run_batch_parallel(batch, threads)
    }

    /// Multi-query batch: like
    /// [`run_batch_parallel`](Self::run_batch_parallel), with each
    /// document's per-query [`MultiVerdict`] alongside its sink and
    /// stats, in input order. Shorthand for [`freeze`](Self::freeze) +
    /// [`FrozenPrefilter::run_multi_batch_parallel`]
    /// (`parallel::FrozenPrefilter::run_multi_batch_parallel`).
    pub fn run_multi_batch_parallel<S, W, I>(
        &self,
        batch: I,
        threads: usize,
    ) -> Result<Vec<(W, MultiVerdict, RunStats)>, parallel::BatchError>
    where
        S: DocSource + Send,
        W: Write + Send,
        I: IntoIterator<Item = (S, W)>,
    {
        self.freeze().run_multi_batch_parallel(batch, threads)
    }

    /// Prefilter **one** document by splitting it at top-level record
    /// boundaries and running the shards speculatively across `threads`
    /// pool workers (`0` = available parallelism), stitching the
    /// results in input order.
    ///
    /// The stitched projection is **byte-identical** to the sequential
    /// run, and so are the match verdict and the token/match-event
    /// counters: every speculative shard is confirmed against the
    /// sequentially-reached frontier before its output is used, and
    /// misses are repaired by sequential re-runs (see
    /// [`parallel::shard`] for the protocol). Documents with no safe
    /// split — no repeating record level — fall back to the sequential
    /// path byte for byte. Search-effort counters are approximate at
    /// segment boundaries; [`RunStats::shards`] records the number of
    /// stitched segments (`0` = ran unsplit).
    ///
    /// `shard_bytes` is the target shard size in bytes; `0` spreads the
    /// document evenly over the pool (the CLI's `--shard-mb 0` = auto).
    /// Sources that are not fully resident (readers/pipes) are slurped
    /// into their window first — the cost shows in `io_window_bytes`.
    pub fn run_sharded<S: DocSource, W: Write>(
        &mut self,
        src: S,
        writer: W,
        threads: usize,
        shard_bytes: usize,
    ) -> Result<(W, RunStats), CoreError> {
        let (w, _, stats) =
            parallel::shard::run_sharded_impl(self, src, writer, threads, shard_bytes)?;
        Ok((w, stats))
    }

    /// [`run_sharded`](Self::run_sharded) for multi-query (registry)
    /// automatons: additionally returns the per-document
    /// [`MultiVerdict`] — the OR of the stitched segments' hit sets,
    /// which equals the sequential run's verdict.
    pub fn run_sharded_multi<S: DocSource, W: Write>(
        &mut self,
        src: S,
        writer: W,
        threads: usize,
        shard_bytes: usize,
    ) -> Result<(W, MultiVerdict, RunStats), CoreError> {
        parallel::shard::run_sharded_impl(self, src, writer, threads, shard_bytes)
    }

    /// The compiled tables.
    pub fn tables(&self) -> &CompiledTables {
        &self.tables
    }

    /// Build every matcher now instead of lazily (ablation switch).
    pub fn precompile_matchers(&mut self) {
        for (i, slot) in self.matchers.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(StateMatcher::build(&self.tables.states[i]));
                self.matchers_built += 1;
            }
        }
    }

    /// Approximate heap bytes of tables plus all matchers built so far
    /// (the paper's `Mem` column, minus the I/O window).
    pub fn memory_bytes(&self) -> usize {
        self.tables.table_bytes()
            + self.matchers.iter().flatten().map(StateMatcher::memory_bytes).sum::<usize>()
    }

    /// Prefilter an in-memory document, returning the projected bytes and
    /// the run statistics.
    pub fn filter_to_vec(&mut self, doc: &[u8]) -> Result<(Vec<u8>, RunStats), CoreError> {
        self.filter_one(SliceSource::new(doc), Vec::new())
    }

    /// One multi-query pass: prefilter the document into `writer` (the
    /// union projection) and report the per-document verdict — which of
    /// the registered queries might match. On a single-query automaton
    /// the verdict is over one query, served by the `match_events`
    /// counter.
    pub fn run_multi<S: DocSource, W: Write>(
        &mut self,
        src: S,
        writer: W,
    ) -> Result<(W, MultiVerdict, RunStats), CoreError> {
        let (out, stats) = self.filter_one(src, writer)?;
        Ok((out, self.take_verdict(&stats), stats))
    }

    /// The verdict of the run that produced `stats`, consuming the hit
    /// accumulator. For single-query tables (no attribution) the one
    /// query's id is 0 and its verdict is `match_events > 0`.
    pub(crate) fn take_verdict(&mut self, stats: &RunStats) -> MultiVerdict {
        match self.tables.attribution.as_ref() {
            Some(att) => {
                MultiVerdict { matched: std::mem::take(&mut self.hits), n_queries: att.n_queries }
            }
            None => {
                let mut matched = QueryIdSet::new();
                if stats.match_events > 0 {
                    matched.insert(crate::idset::QueryId(0));
                }
                MultiVerdict { matched, n_queries: 1 }
            }
        }
    }

    /// Prefilter a stream in a single pass with a bounded window.
    pub fn filter_stream<R: Read, W: Write>(
        &mut self,
        reader: R,
        writer: W,
        chunk: usize,
    ) -> Result<RunStats, CoreError> {
        self.filter_source(ReaderSource::new(reader, chunk), writer)
    }

    /// Prefilter one document delivered by any [`DocSource`] backend into
    /// `writer` — the general entry point [`filter_to_vec`] and
    /// [`filter_stream`] are shorthands for.
    ///
    /// [`filter_to_vec`]: Self::filter_to_vec
    /// [`filter_stream`]: Self::filter_stream
    pub fn filter_source<S: DocSource, W: Write>(
        &mut self,
        src: S,
        writer: W,
    ) -> Result<RunStats, CoreError> {
        let (_, stats) = self.filter_one(src, writer)?;
        Ok(stats)
    }

    /// Prefilter many documents through this one compiled automaton,
    /// returning each document's (sink, stats) pair in input order.
    ///
    /// The per-state matchers are built lazily on the first document and
    /// reused for every following one — batching over one `Prefilter`
    /// amortizes the whole static analysis and matcher construction
    /// across the corpus, where a per-document
    /// [`compile`](Self::compile) would pay both every time. Processing
    /// stops at the first document that fails.
    pub fn run_batch<S, W, I>(&mut self, batch: I) -> Result<Vec<(W, RunStats)>, CoreError>
    where
        S: DocSource,
        W: Write,
        I: IntoIterator<Item = (S, W)>,
    {
        let mut results = Vec::new();
        for (src, writer) in batch {
            results.push(self.filter_one(src, writer)?);
        }
        Ok(results)
    }

    /// One full Fig. 4 run over `src`, wiring the counters into the
    /// returned stats.
    fn filter_one<S: DocSource, W: Write>(
        &mut self,
        src: S,
        writer: W,
    ) -> Result<(W, RunStats), CoreError> {
        let span = crate::obs::stage(crate::obs::StageId::Scan);
        let res = self.filter_one_traced(src, writer, RunEntry::default(), None);
        drop(span);
        if let Ok((_, stats)) = &res {
            crate::obs::record_run(stats);
        }
        res
    }

    /// [`filter_one`](Self::filter_one) from an explicit entry
    /// configuration, optionally observed by a shard trace — the
    /// intra-document sharding entry point ([`parallel::shard`]). With
    /// the default entry and no trace this *is* `filter_one`, byte for
    /// byte.
    pub(crate) fn filter_one_traced<S: DocSource, W: Write>(
        &mut self,
        src: S,
        writer: W,
        entry: RunEntry,
        trace: Option<&mut parallel::shard::ShardTrace>,
    ) -> Result<(W, RunStats), CoreError> {
        let mut counters = Counters::default();
        let mut stats =
            RunStats { input_bytes: src.len_hint().unwrap_or(0), ..RunStats::default() };
        self.hits.clear();
        self.copy_depth = 0;
        let mut input = SourceInput::new(src, writer);
        self.run(&mut input, &mut counters, &mut stats, entry, trace)?;
        stats.chars_compared += counters.comparisons;
        stats.bytes_scanned = counters.scanned;
        stats.shifts = counters.shifts;
        stats.shift_total = counters.shift_total;
        stats.output_bytes = input.emitted();
        let (src, out, _) = input.finish()?;
        stats.io_window_bytes = src.peak_io_bytes() as u64;
        Ok((out, stats))
    }

    fn matcher(&mut self, q: u32) -> &StateMatcher {
        let slot = &mut self.matchers[q as usize];
        if slot.is_none() {
            *slot = Some(StateMatcher::build(&self.tables.states[q as usize]));
            self.matchers_built += 1;
        }
        slot.as_ref().expect("just built")
    }

    /// The Fig. 4 loop, from an arbitrary entry configuration.
    ///
    /// The default [`RunEntry`] is the paper's `q := q0; c := 0`. A shard
    /// entry additionally suppresses the first initial jump: the cursor
    /// already points *at* the record token the shard is speculated to
    /// start on — a jump could hop over it, where the sequential run
    /// (whose search reached this token from an earlier cursor) does not.
    fn run<S: DocSource, W: Write, M: Metrics>(
        &mut self,
        input: &mut SourceInput<S, W>,
        m: &mut M,
        stats: &mut RunStats,
        entry: RunEntry,
        mut trace: Option<&mut parallel::shard::ShardTrace>,
    ) -> Result<(), CoreError> {
        let lookback = self.tables.max_kw_len + 8;
        let mut q: u32 = entry.state;
        let mut cursor: usize = entry.cursor;
        let mut suppress_jump = entry.suppress_jump;
        loop {
            let state = &self.tables.states[q as usize];
            if state.keywords.is_empty() {
                break; // final state: nothing further to scan for
            }
            // Initial jump offset J[q].
            let jump = state.jump as usize;
            if jump > 0 && !suppress_jump {
                cursor += jump;
                stats.initial_jump_chars += jump as u64;
            }
            suppress_jump = false;
            // Search for the closest verified token of V[q].
            let Some((kw_idx, start)) = self.find_token(q, input, cursor, m, stats)? else {
                break; // input exhausted: remaining tokens are irrelevant
            };
            // Shard-trace observation point: the token is identified but
            // not yet consumed, so a run stopped here hands its successor
            // the exact configuration a fresh shard enters with.
            if let Some(t) = trace.as_deref_mut() {
                let clean = !input.copy_active() && self.copy_depth == 0;
                if t.on_token(q, kw_idx, start, clean).is_break() {
                    return Ok(());
                }
            }
            let (name_len, close, target) = {
                let kw = &self.tables.states[q as usize].keywords[kw_idx];
                (kw.bytes.len(), kw.close, kw.target)
            };
            // Scan right for the end of the tag.
            let (end, bachelor) = scan_tag_end(input, start + name_len, m)?;
            stats.tokens_matched += 1;

            if bachelor && !close {
                // Bachelor tag: perform the opening and the closing
                // transition one after the other (paper Fig. 4).
                let open_target = target;
                let close_target = {
                    let open_state = &self.tables.states[open_target as usize];
                    let open_label = open_state.label.clone().expect("labeled state");
                    open_state
                        .keywords
                        .iter()
                        .find(|k| k.close && k.name == open_label.0)
                        .map(|k| k.target)
                        .ok_or(CoreError::UnexpectedToken {
                            name: open_label.0.clone(),
                            close: true,
                            pos: start,
                        })?
                };
                matchers::attribute_entry(&self.tables, open_target, &mut self.hits, stats);
                matchers::attribute_entry(&self.tables, close_target, &mut self.hits, stats);
                if self.multi {
                    self.apply_bachelor_multi(input, open_target, close_target, start, end)?;
                } else {
                    self.apply_bachelor(input, open_target, close_target, start, end)?;
                }
                q = close_target;
                cursor = end;
            } else if !close && self.tables.states[target as usize].balanced {
                // Recursion extension: cross the opaque subtree with a
                // balanced depth-counting scan for <e / </e.
                matchers::attribute_entry(&self.tables, target, &mut self.hits, stats);
                if self.multi {
                    self.apply_action_multi(input, target, start, end, false)?;
                } else {
                    self.apply_action(input, target, start, end, false)?;
                }
                let (close_start, close_end) = self.balanced_scan(target, input, end, m, stats)?;
                let close_target = {
                    let open_state = &self.tables.states[target as usize];
                    let open_label = open_state.label.clone().expect("labeled state");
                    open_state
                        .keywords
                        .iter()
                        .find(|k| k.close && k.name == open_label.0)
                        .map(|k| k.target)
                        .ok_or(CoreError::UnexpectedToken {
                            name: open_label.0.clone(),
                            close: true,
                            pos: close_start,
                        })?
                };
                matchers::attribute_entry(&self.tables, close_target, &mut self.hits, stats);
                if self.multi {
                    self.apply_action_multi(input, close_target, close_start, close_end, true)?;
                } else {
                    self.apply_action(input, close_target, close_start, close_end, true)?;
                }
                q = close_target;
                cursor = close_end;
            } else {
                matchers::attribute_entry(&self.tables, target, &mut self.hits, stats);
                if self.multi {
                    self.apply_action_multi(input, target, start, end, close)?;
                } else {
                    self.apply_action(input, target, start, end, close)?;
                }
                q = target;
                cursor = end;
            }
            input.advance(cursor.saturating_sub(lookback))?;
        }
        if input.copy_active() {
            return Err(CoreError::UnexpectedEof { context: "copying a subtree" });
        }
        Ok(())
    }

    /// Balanced depth-counting scan across an opaque (recursive-element)
    /// subtree: starting just past the opening tag (depth 1), find
    /// verified `<e` / `</e` tokens, counting depth up and down, until the
    /// matching close tag; returns its (start, end).
    ///
    /// Accelerated mode hops the subtree with [`memscan::find_byte2`]
    /// over `SourceInput::window` views; `SMPX_NO_SIMD=1` keeps the classic
    /// Commentz–Walter-driven loop. Both find the identical token
    /// sequence, and both route scan-consumed bytes through
    /// [`Metrics::scanned`].
    fn balanced_scan<S: DocSource, W: Write, M: Metrics>(
        &mut self,
        open_state: u32,
        input: &mut SourceInput<S, W>,
        from: usize,
        m: &mut M,
        stats: &mut RunStats,
    ) -> Result<(usize, usize), CoreError> {
        let name = self.tables.states[open_state as usize]
            .label
            .as_ref()
            .expect("balanced states are labeled")
            .0
            .clone();
        let lookback = self.tables.max_kw_len.max(name.len() + 2) + 8;
        if memscan::accel_enabled() {
            return balanced_scan_windowed(&name, lookback, input, from, m, stats);
        }
        if self.balanced_matchers[open_state as usize].is_none() {
            let open_pat = format!("<{name}").into_bytes();
            let close_pat = format!("</{name}").into_bytes();
            self.balanced_matchers[open_state as usize] =
                Some(smpx_stringmatch::CommentzWalter::new(&[open_pat, close_pat]));
        }
        let mut cursor = from;
        let mut depth = 1u32;
        loop {
            let hit = {
                let cw = self.balanced_matchers[open_state as usize].as_ref().expect("just built");
                input.find(cw, cursor, m)?
            };
            let Some((kw, start)) = hit else {
                return Err(CoreError::UnexpectedEof {
                    context: "balanced scan for a recursive element",
                });
            };
            let plen = if kw == 0 { name.len() + 1 } else { name.len() + 2 };
            m.cmp(1);
            match input.byte(start + plen)? {
                Some(c) if is_tag_name_end(c) => {
                    let (end, bachelor) = scan_tag_end(input, start + plen, m)?;
                    stats.tokens_matched += 1;
                    if kw == 1 {
                        depth -= 1;
                        if depth == 0 {
                            return Ok((start, end));
                        }
                    } else if !bachelor {
                        depth += 1;
                    }
                    cursor = end;
                }
                _ => {
                    stats.false_matches += 1;
                    cursor = start + 1;
                }
            }
            input.advance(cursor.saturating_sub(lookback))?;
        }
    }

    /// Search from `from` for the closest keyword occurrence that is a real
    /// tag token (boundary-verified); handles prefix-keyword overlaps.
    fn find_token<S: DocSource, W: Write, M: Metrics>(
        &mut self,
        q: u32,
        input: &mut SourceInput<S, W>,
        from: usize,
        m: &mut M,
        stats: &mut RunStats,
    ) -> Result<Option<(usize, usize)>, CoreError> {
        let mut from = from;
        loop {
            let hit = {
                let matcher = self.matcher(q);
                // Split borrow: matcher borrows self.matchers, input is
                // independent.
                input.find(matcher, from, m)?
            };
            let Some((kw_idx, start)) = hit else {
                return Ok(None);
            };
            let kw_len = self.tables.states[q as usize].keywords[kw_idx].bytes.len();
            m.cmp(1);
            match input.byte(start + kw_len)? {
                Some(c) if is_tag_name_end(c) => return Ok(Some((kw_idx, start))),
                _ => {
                    stats.false_matches += 1;
                    // Another (longer) keyword may still match here, e.g.
                    // "<AbstractText" when "<Abstract" just failed.
                    if let Some(other) = self.keyword_at(q, input, start, kw_idx, m)? {
                        return Ok(Some((other, start)));
                    }
                    from = start + 1;
                }
            }
        }
    }

    /// Check the remaining keywords of `V[q]` directly at `start` (longest
    /// first), with boundary verification.
    fn keyword_at<S: DocSource, W: Write, M: Metrics>(
        &self,
        q: u32,
        input: &mut SourceInput<S, W>,
        start: usize,
        except: usize,
        m: &mut M,
    ) -> Result<Option<usize>, CoreError> {
        let kws = &self.tables.states[q as usize].keywords;
        let mut order: Vec<usize> = (0..kws.len()).filter(|&i| i != except).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(kws[i].bytes.len()));
        for i in order {
            if input.matches_at(start, &kws[i].bytes, m)? {
                m.cmp(1);
                if let Some(c) = input.byte(start + kws[i].bytes.len())? {
                    if is_tag_name_end(c) {
                        return Ok(Some(i));
                    }
                }
            }
        }
        Ok(None)
    }

    /// Execute `T[target]` for a non-bachelor token spanning `[start, end)`.
    fn apply_action<S: DocSource, W: Write>(
        &self,
        input: &mut SourceInput<S, W>,
        target: u32,
        start: usize,
        end: usize,
        close: bool,
    ) -> Result<(), CoreError> {
        let state = &self.tables.states[target as usize];
        // Inside an active copy range every byte is already covered by the
        // raw copy; only copy-off has work to do.
        if input.copy_active() {
            if state.action == Action::CopyOff {
                input.copy_off(end)?;
            }
            return Ok(());
        }
        match state.action {
            Action::Nop => {}
            Action::CopyOn => input.copy_on(start),
            Action::CopyOff => {
                // No active range (merged-state conservatism): fall back to
                // emitting the closing tag.
                input.emit_range(start, end)?;
            }
            Action::CopyTag { with_atts } => {
                if with_atts {
                    input.emit_range(start, end)?;
                } else {
                    let name = &state.label.as_ref().expect("labeled").0;
                    let mut buf = Vec::with_capacity(name.len() + 3);
                    buf.push(b'<');
                    if close {
                        buf.push(b'/');
                    }
                    buf.extend_from_slice(name.as_bytes());
                    buf.push(b'>');
                    input.emit_bytes(&buf)?;
                }
            }
        }
        Ok(())
    }

    /// Execute the open + close actions of a bachelor tag `<name …/>`.
    fn apply_bachelor<S: DocSource, W: Write>(
        &self,
        input: &mut SourceInput<S, W>,
        open_target: u32,
        close_target: u32,
        start: usize,
        end: usize,
    ) -> Result<(), CoreError> {
        let open_act = self.tables.states[open_target as usize].action;
        let close_act = self.tables.states[close_target as usize].action;
        if input.copy_active() {
            // Covered by the enclosing raw copy. A copy-off cannot occur
            // here: bachelor close actions pair with their own copy-on.
            if close_act == Action::CopyOff && open_act != Action::CopyOn {
                input.copy_off(end)?;
            }
            return Ok(());
        }
        let raw = matches!(open_act, Action::CopyOn)
            || matches!(close_act, Action::CopyOff)
            || matches!(open_act, Action::CopyTag { with_atts: true });
        if raw {
            input.emit_range(start, end)?;
            return Ok(());
        }
        if matches!(open_act, Action::CopyTag { .. }) || matches!(close_act, Action::CopyTag { .. })
        {
            let name = &self.tables.states[open_target as usize].label.as_ref().expect("labeled").0;
            let mut buf = Vec::with_capacity(name.len() + 3);
            buf.push(b'<');
            buf.extend_from_slice(name.as_bytes());
            buf.extend_from_slice(b"/>");
            input.emit_bytes(&buf)?;
        }
        Ok(())
    }

    /// [`apply_action`](Self::apply_action) for registry automatons,
    /// where copy-on instances can nest: the multi-query selection keeps
    /// one query's hit states alive inside another query's raw-copied
    /// instance, so an inner `copy on`/`copy off` pair can fire while a
    /// copy range is already active. The nesting depth makes those inner
    /// pairs output-neutral — only the 0→1 edge opens the range and only
    /// the 1→0 edge flushes it, which is exactly what the single-query
    /// union automaton (with the interior pruned) emits.
    fn apply_action_multi<S: DocSource, W: Write>(
        &mut self,
        input: &mut SourceInput<S, W>,
        target: u32,
        start: usize,
        end: usize,
        close: bool,
    ) -> Result<(), CoreError> {
        let action = self.tables.states[target as usize].action;
        if self.copy_depth > 0 {
            match action {
                Action::CopyOn => self.copy_depth += 1,
                Action::CopyOff => {
                    self.copy_depth -= 1;
                    if self.copy_depth == 0 {
                        input.copy_off(end)?;
                    }
                }
                // Tags inside the active range are covered by the raw copy.
                Action::Nop | Action::CopyTag { .. } => {}
            }
            return Ok(());
        }
        if action == Action::CopyOn {
            self.copy_depth = 1;
        }
        self.apply_action(input, target, start, end, close)
    }

    /// [`apply_bachelor`](Self::apply_bachelor) for registry automatons.
    /// A bachelor instance opens and closes within one token, so its net
    /// depth change is zero; the one depth-relevant case is the merged
    /// close-side `copy off` that belongs to an *enclosing* instance
    /// (`close_act == CopyOff` without the paired `CopyOn`), which steps
    /// the nesting down like the non-bachelor close does.
    fn apply_bachelor_multi<S: DocSource, W: Write>(
        &mut self,
        input: &mut SourceInput<S, W>,
        open_target: u32,
        close_target: u32,
        start: usize,
        end: usize,
    ) -> Result<(), CoreError> {
        if self.copy_depth > 0 {
            let open_act = self.tables.states[open_target as usize].action;
            let close_act = self.tables.states[close_target as usize].action;
            if close_act == Action::CopyOff && open_act != Action::CopyOn {
                self.copy_depth -= 1;
                if self.copy_depth == 0 {
                    input.copy_off(end)?;
                }
            }
            return Ok(());
        }
        self.apply_bachelor(input, open_target, close_target, start, end)
    }
}

/// Outcome of one windowed hop of the accelerated balanced scan.
enum BalancedHop {
    /// `win[second - 1] == '<'` and `win[second]` is the element name's
    /// first byte or `/`: a candidate `<e` / `</e` token starting at
    /// absolute position `second - 1`.
    Candidate { second: usize, byte: u8 },
    /// No candidate left in the window; the next possible candidate
    /// second byte is `resume`.
    Exhausted { resume: usize },
}

/// The vectorized balanced depth scan: hop the opaque subtree with a
/// two-needle [`memscan::find_byte2`] scan for the element name's first
/// byte and `/` at candidate *second*-byte positions (their `<` is checked
/// with one load), verify the name and the tag-name boundary only at
/// stops, and cross each verified tag with the windowed
/// [`scan_tag_end`]. Token-for-token equivalent to the Commentz–Walter
/// loop in [`Prefilter::balanced_scan`]; hop-consumed bytes are reported
/// as [`Metrics::scanned`], keyed to absolute offsets so the counts are
/// independent of the streaming chunk size.
fn balanced_scan_windowed<S: DocSource, W: Write, M: Metrics>(
    name: &str,
    lookback: usize,
    input: &mut SourceInput<S, W>,
    from: usize,
    m: &mut M,
    stats: &mut RunStats,
) -> Result<(usize, usize), CoreError> {
    let nb = name.as_bytes();
    debug_assert!(!nb.is_empty() && nb[0] != b'/', "element names never start with '/'");
    let first = nb[0];
    let mut depth = 1u32;
    // Absolute position of the next candidate second byte, and the
    // accounting watermark: every byte below `acc` has been attributed to
    // a metrics counter already.
    let mut scan_at = from + 1;
    let mut acc = from;
    loop {
        let hop = {
            let base = scan_at - 1;
            let Some(win) = input.window(base)? else {
                // The candidate position is at/past EOF: never closed.
                m.scanned(base.saturating_sub(acc) as u64);
                return Err(CoreError::UnexpectedEof {
                    context: "balanced scan for a recursive element",
                });
            };
            let mut rel = scan_at - base;
            loop {
                match memscan::peek_find2(win, rel, first, b'/') {
                    Some(j) => {
                        m.scanned((base + j + 1 - acc) as u64);
                        acc = base + j + 1;
                        m.cmp(1);
                        if win[j - 1] == b'<' {
                            break BalancedHop::Candidate { second: base + j, byte: win[j] };
                        }
                        rel = j + 1;
                    }
                    None => break BalancedHop::Exhausted { resume: base + win.len() },
                }
            }
        };
        match hop {
            BalancedHop::Exhausted { resume } => {
                // Probe one byte past the window: refills the stream (the
                // next window request reaches further) or confirms EOF.
                if input.byte(resume)?.is_none() {
                    m.scanned(resume.saturating_sub(acc) as u64);
                    return Err(CoreError::UnexpectedEof {
                        context: "balanced scan for a recursive element",
                    });
                }
                scan_at = resume.max(scan_at);
            }
            BalancedHop::Candidate { second, byte } => {
                let s = second - 1;
                let is_close = byte == b'/';
                // The hop confirmed `<` and the second byte; compare the
                // remaining name bytes only.
                let verified = if is_close {
                    input.matches_at(second + 1, nb, m)?
                } else {
                    input.matches_at(second + 1, &nb[1..], m)?
                };
                if !verified {
                    // Not a `<e` / `</e` occurrence at all (the windowed
                    // CW loop would not have stopped): no false match.
                    scan_at = second + 1;
                    continue;
                }
                let plen = nb.len() + if is_close { 2 } else { 1 };
                m.cmp(1);
                match input.byte(s + plen)? {
                    Some(c) if is_tag_name_end(c) => {
                        let (end, bachelor) = scan_tag_end(input, s + plen, m)?;
                        stats.tokens_matched += 1;
                        if is_close {
                            depth -= 1;
                            if depth == 0 {
                                return Ok((s, end));
                            }
                        } else if !bachelor {
                            depth += 1;
                        }
                        acc = acc.max(end);
                        scan_at = end + 1;
                        input.advance(end.saturating_sub(lookback))?;
                    }
                    _ => {
                        stats.false_matches += 1;
                        scan_at = second + 1;
                        input.advance((s + 1).saturating_sub(lookback))?;
                    }
                }
            }
        }
    }
}

/// May `c` follow a tag name inside a tag?
#[inline]
pub(crate) fn is_tag_name_end(c: u8) -> bool {
    matches!(c, b'>' | b'/' | b' ' | b'\t' | b'\r' | b'\n')
}

/// Scan right from `pos` for the closing `>` of a tag, respecting quoted
/// attribute values (which may contain `>`). Returns (position one past
/// `>`, bachelor?).
///
/// Every byte the scan consumes is routed through [`Metrics::scanned`]
/// (never `cmp`), in the vectorized *and* the scalar mode, so the paper's
/// `Char Comp.` column counts only genuine pattern comparisons and the
/// `Scan%` column owns the tag traversal — identically in both modes.
fn scan_tag_end<S: DocSource, W: Write, M: Metrics>(
    input: &mut SourceInput<S, W>,
    pos: usize,
    m: &mut M,
) -> Result<(usize, bool), CoreError> {
    if memscan::accel_enabled() {
        scan_tag_end_windowed(input, pos, m)
    } else {
        scan_tag_end_scalar(input, pos, m)
    }
}

/// Vectorized tag-end scan: hop `>`-to-`>` and quote-to-quote over
/// `SourceInput::window` views with [`memscan::scan_tag_end_window`],
/// instead of one `SourceInput::byte` call per character. The resumable
/// [`memscan::TagScan`] state carries open quotes across window refills.
fn scan_tag_end_windowed<S: DocSource, W: Write, M: Metrics>(
    input: &mut SourceInput<S, W>,
    pos: usize,
    m: &mut M,
) -> Result<(usize, bool), CoreError> {
    let mut st = memscan::TagScan::new();
    let mut abs = pos;
    loop {
        let consumed = {
            let Some(win) = input.window(abs)? else {
                m.scanned((abs - pos) as u64);
                return Err(CoreError::UnexpectedEof {
                    context: if st.in_quote() {
                        "scanning a quoted attribute value"
                    } else {
                        "scanning for tag end"
                    },
                });
            };
            if let Some((rel_end, bachelor)) = memscan::scan_tag_end_window(win, 0, &mut st) {
                let end = abs + rel_end;
                m.scanned((end - pos) as u64);
                return Ok((end, bachelor));
            }
            win.len()
        };
        abs += consumed;
    }
}

/// The classic per-byte tag-end loop: the reference oracle the windowed
/// scan is pinned against (tokenizer edge-case tests), and the
/// `SMPX_NO_SIMD=1` runtime path.
fn scan_tag_end_scalar<S: DocSource, W: Write, M: Metrics>(
    input: &mut SourceInput<S, W>,
    pos: usize,
    m: &mut M,
) -> Result<(usize, bool), CoreError> {
    let mut i = pos;
    let mut prev = 0u8;
    loop {
        match input.byte(i)? {
            None => {
                m.scanned((i - pos) as u64);
                return Err(CoreError::UnexpectedEof { context: "scanning for tag end" });
            }
            Some(b'>') => {
                m.scanned((i + 1 - pos) as u64);
                return Ok((i + 1, prev == b'/'));
            }
            Some(q @ (b'"' | b'\'')) => {
                // Skip the quoted attribute value.
                i += 1;
                loop {
                    match input.byte(i)? {
                        None => {
                            m.scanned((i - pos) as u64);
                            return Err(CoreError::UnexpectedEof {
                                context: "scanning a quoted attribute value",
                            });
                        }
                        Some(c) if c == q => break,
                        Some(_) => i += 1,
                    }
                }
                prev = q;
                i += 1;
            }
            Some(c) => {
                prev = c;
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EX2: &[u8] =
        br#"<!DOCTYPE a [ <!ELEMENT a (b|c)*> <!ELEMENT b (#PCDATA)> <!ELEMENT c (b,b?)> ]>"#;

    fn pf(dtd: &[u8], paths: &[&str]) -> Prefilter {
        let dtd = Dtd::parse(dtd).unwrap();
        let paths = PathSet::parse(paths).unwrap();
        Prefilter::compile(&dtd, &paths).unwrap()
    }

    #[test]
    fn example2_end_to_end() {
        let mut p = pf(EX2, &["/*", "/a/b#"]);
        let doc = b"<a><c><b>x</b></c><b>keep</b><c><b>y</b><b>z</b></c></a>";
        let (out, stats) = p.filter_to_vec(doc).unwrap();
        assert_eq!(out, b"<a><b>keep</b></a>".to_vec());
        assert!(stats.tokens_matched >= 6);
        assert_eq!(stats.output_bytes, 18);
    }

    #[test]
    fn copy_on_off_preserves_subtrees_raw() {
        let mut p = pf(EX2, &["/*", "//c#"]);
        let doc = b"<a><b>drop</b><c><b>in c</b></c><b>drop2</b><c><b>q</b><b>r</b></c></a>";
        let (out, _) = p.filter_to_vec(doc).unwrap();
        assert_eq!(out, b"<a><c><b>in c</b></c><c><b>q</b><b>r</b></c></a>".to_vec());
    }

    #[test]
    fn attributes_and_whitespace_in_tags() {
        let mut p = pf(EX2, &["/*", "/a/b#"]);
        // The paper: "<t >" is valid; attributes may contain '>'.
        let doc = b"<a ><c><b>n</b></c><b  id=\"x>y\" >keep</b></a>";
        let (out, _) = p.filter_to_vec(doc).unwrap();
        assert_eq!(out, b"<a><b  id=\"x>y\" >keep</b></a>".to_vec());
    }

    #[test]
    fn bachelor_tags_fire_both_transitions() {
        let mut p = pf(EX2, &["/*", "/a/b#"]);
        let doc = b"<a><b/><c><b/></c><b>t</b></a>";
        let (out, _) = p.filter_to_vec(doc).unwrap();
        assert_eq!(out, b"<a><b/><b>t</b></a>".to_vec());
    }

    #[test]
    fn empty_document_root_only() {
        let mut p = pf(EX2, &["/*", "/a/b#"]);
        let (out, _) = p.filter_to_vec(b"<a></a>").unwrap();
        assert_eq!(out, b"<a></a>".to_vec());
        let (out, _) = p.filter_to_vec(b"<a/>").unwrap();
        assert_eq!(out, b"<a/>".to_vec());
    }

    #[test]
    fn prolog_is_skipped() {
        let mut p = pf(EX2, &["/*", "/a/b#"]);
        let doc = b"<?xml version=\"1.0\"?>\n<a><b>k</b></a>";
        let (out, _) = p.filter_to_vec(doc).unwrap();
        assert_eq!(out, b"<a><b>k</b></a>".to_vec());
    }

    #[test]
    fn stats_reflect_skipping() {
        let mut p = pf(EX2, &["/*", "/a/b#"]);
        // Long text inside b-subtrees is raw-copied without inspection
        // beyond the search; text in c-subtrees is skipped.
        let filler = "ccccccccccccccccccccccccccccccccccccccc";
        let doc = format!("<a><c><b>{filler}{filler}</b></c><b>k</b></a>");
        let (_, stats) = p.filter_to_vec(doc.as_bytes()).unwrap();
        assert!(stats.chars_compared < doc.len() as u64);
        assert!(stats.avg_shift() > 1.0);
    }

    #[test]
    fn stream_equals_slice_for_all_chunk_sizes() {
        let doc = b"<a><c><b>x</b><b>y</b></c><b id=\"1\">keep me</b><c><b>zz</b></c></a>";
        let mut p = pf(EX2, &["/*", "/a/b#"]);
        let (slice_out, _) = p.filter_to_vec(doc).unwrap();
        for chunk in [1usize, 2, 3, 5, 8, 16, 64, 4096] {
            let mut out = Vec::new();
            let stats = p.filter_stream(&doc[..], &mut out, chunk).unwrap();
            assert_eq!(out, slice_out, "chunk={chunk}");
            assert_eq!(stats.output_bytes as usize, slice_out.len());
        }
    }

    #[test]
    fn prefix_tagnames_disambiguated() {
        // Abstract vs AbstractText (the paper's Medline case).
        let dtd = br#"<!DOCTYPE r [
            <!ELEMENT r (AbstractText | Abstract)*>
            <!ELEMENT Abstract (#PCDATA)>
            <!ELEMENT AbstractText (#PCDATA)>
        ]>"#;
        let mut p = pf(dtd, &["/*", "/r/Abstract#"]);
        let doc = b"<r><AbstractText>no</AbstractText><Abstract>yes</Abstract></r>";
        let (out, stats) = p.filter_to_vec(doc).unwrap();
        assert_eq!(out, b"<r><Abstract>yes</Abstract></r>".to_vec());
        assert!(stats.false_matches > 0, "must have rejected <AbstractText");
    }

    #[test]
    fn prefix_tagnames_other_direction() {
        let dtd = br#"<!DOCTYPE r [
            <!ELEMENT r (AbstractText | Abstract)*>
            <!ELEMENT Abstract (#PCDATA)>
            <!ELEMENT AbstractText (#PCDATA)>
        ]>"#;
        let mut p = pf(dtd, &["/*", "/r/AbstractText#"]);
        let doc = b"<r><Abstract>no</Abstract><AbstractText>yes</AbstractText></r>";
        let (out, _) = p.filter_to_vec(doc).unwrap();
        assert_eq!(out, b"<r><AbstractText>yes</AbstractText></r>".to_vec());
    }

    #[test]
    fn keyword_inside_text_is_rejected() {
        // Text containing "<b"-lookalikes cannot occur in valid XML (must
        // be escaped), but "<brand" shares the "<b" prefix — the boundary
        // check must reject it.
        let dtd = br#"<!DOCTYPE a [
            <!ELEMENT a (brand | b)*>
            <!ELEMENT brand (#PCDATA)>
            <!ELEMENT b (#PCDATA)>
        ]>"#;
        let mut p = pf(dtd, &["/*", "/a/b#"]);
        let doc = b"<a><brand>n</brand><b>y</b></a>";
        let (out, _) = p.filter_to_vec(doc).unwrap();
        assert_eq!(out, b"<a><b>y</b></a>".to_vec());
    }

    #[test]
    fn initial_jumps_are_applied_and_safe() {
        // Example 3: inside c we jump 4 before scanning for </c>.
        let mut p = pf(EX2, &["/*", "/a/b#"]);
        let doc = b"<a><c><b>x</b></c><b>k</b></a>";
        let (out, stats) = p.filter_to_vec(doc).unwrap();
        assert_eq!(out, b"<a><b>k</b></a>".to_vec());
        assert!(stats.initial_jump_chars >= 4);
    }

    #[test]
    fn memory_accounting_grows_with_lazy_matchers() {
        let mut p = pf(EX2, &["/*", "/a/b#"]);
        let before = p.memory_bytes();
        let _ = p.filter_to_vec(b"<a><b>k</b></a>").unwrap();
        let after_run = p.memory_bytes();
        assert!(after_run > before, "lazy matchers must add memory");
        let mut q = pf(EX2, &["/*", "/a/b#"]);
        q.precompile_matchers();
        assert!(q.memory_bytes() >= after_run);
    }

    #[test]
    fn invalid_document_reports_unexpected_eof() {
        let mut p = pf(EX2, &["/*", "//b#"]);
        // Opening <b> without a closing tag: copy range never ends.
        let res = p.filter_to_vec(b"<a><b>never closed");
        assert!(matches!(res, Err(CoreError::UnexpectedEof { .. })));
    }

    /// Tokenizer edge cases: the windowed tag-end scan pinned against the
    /// scalar per-byte loop as the reference oracle, over whole slices and
    /// over streams split at every lane-relevant chunk size.
    mod tag_scan_oracle {
        use super::super::{scan_tag_end_scalar, scan_tag_end_windowed};
        use super::*;
        use crate::runtime::source::{ReaderSource, SliceSource, SourceInput};
        use smpx_stringmatch::Counters;

        /// Scan documents that start mid-tag at `pos = 0`, exactly as the
        /// runtime scans from just past a keyword.
        const EDGE_TAGS: &[&str] = &[
            // Quoted '>' inside double- and single-quoted attribute values.
            " a=\"x>y\">after",
            " a='x>y'>after",
            " a=\"x>y\" b='p>q' c=\"r//>s\">t",
            // Quote character of the other kind inside a value.
            " a=\"it's>fine\">x",
            " a='she said \"go>\"'>x",
            // Comment- and CDATA-lookalike bytes inside the tag (the scan
            // has no comment syntax: the first unquoted '>' ends it).
            "!-- a > b </x -->after",
            "![CDATA[ x</y> ]]>after",
            // Bachelor corpus.
            "/>",
            " />",
            " a=\"1\"/>after",
            " a='1' />x",
            " //>x",
            // Not bachelors: '/' not directly before '>'.
            " a='/'>x",
            "/ >x",
            // Degenerate: '>' first, empty remainder after.
            ">",
            ">x",
        ];

        /// Unterminated inputs: both scans must report EOF.
        const EOF_TAGS: &[&str] =
            &[" a=\"never closed", " a='also open", " no gt at all", "", "/", " a=\"x>y\" trail"];

        fn windowed_on_slice(doc: &[u8]) -> (Result<(usize, bool), CoreError>, Counters) {
            let mut c = Counters::default();
            let mut input = SourceInput::new(SliceSource::new(doc), Vec::new());
            (scan_tag_end_windowed(&mut input, 0, &mut c), c)
        }

        fn scalar_on_slice(doc: &[u8]) -> (Result<(usize, bool), CoreError>, Counters) {
            let mut c = Counters::default();
            let mut input = SourceInput::new(SliceSource::new(doc), Vec::new());
            (scan_tag_end_scalar(&mut input, 0, &mut c), c)
        }

        #[test]
        fn windowed_matches_scalar_oracle_on_slices() {
            for tag in EDGE_TAGS {
                let (got, gc) = windowed_on_slice(tag.as_bytes());
                let (want, wc) = scalar_on_slice(tag.as_bytes());
                let got = got.unwrap_or_else(|e| panic!("windowed failed on {tag:?}: {e}"));
                let want = want.unwrap_or_else(|e| panic!("scalar failed on {tag:?}: {e}"));
                assert_eq!(got, want, "tag={tag:?}");
                // Both modes attribute exactly the consumed bytes to the
                // scan counter and none to Char Comp.
                assert_eq!(gc.scanned, got.0 as u64, "windowed scanned, tag={tag:?}");
                assert_eq!(wc.scanned, got.0 as u64, "scalar scanned, tag={tag:?}");
                assert_eq!(gc.comparisons, 0, "tag={tag:?}");
                assert_eq!(wc.comparisons, 0, "tag={tag:?}");
            }
        }

        #[test]
        fn windowed_matches_scalar_oracle_on_eof() {
            for tag in EOF_TAGS {
                let (got, gc) = windowed_on_slice(tag.as_bytes());
                let (want, wc) = scalar_on_slice(tag.as_bytes());
                assert!(
                    matches!(got, Err(CoreError::UnexpectedEof { .. })),
                    "windowed must EOF on {tag:?}"
                );
                assert!(
                    matches!(want, Err(CoreError::UnexpectedEof { .. })),
                    "scalar must EOF on {tag:?}"
                );
                // Both consumed the whole input as scan bytes.
                assert_eq!(gc.scanned, tag.len() as u64, "tag={tag:?}");
                assert_eq!(wc.scanned, tag.len() as u64, "tag={tag:?}");
            }
        }

        #[test]
        fn windowed_scan_is_chunk_size_independent() {
            // Lane-relevant chunk sizes: 1, 2, SWAR word ±1, SSE lane ±1,
            // AVX lane ±1, and a page-like chunk.
            let chunks = [1usize, 2, 7, 8, 9, 15, 16, 17, 31, 32, 33, 4096];
            for tag in EDGE_TAGS {
                let (want, wc) = scalar_on_slice(tag.as_bytes());
                let want = want.unwrap();
                for chunk in chunks {
                    let mut c = Counters::default();
                    let mut out = Vec::new();
                    let mut input =
                        SourceInput::new(ReaderSource::new(tag.as_bytes(), chunk), &mut out);
                    let got = scan_tag_end_windowed(&mut input, 0, &mut c)
                        .unwrap_or_else(|e| panic!("tag={tag:?} chunk={chunk}: {e}"));
                    assert_eq!(got, want, "tag={tag:?} chunk={chunk}");
                    assert_eq!(c.scanned, wc.scanned, "tag={tag:?} chunk={chunk}");
                    assert_eq!(c.comparisons, 0, "tag={tag:?} chunk={chunk}");
                }
            }
            for tag in EOF_TAGS {
                for chunk in chunks {
                    let mut c = Counters::default();
                    let mut out = Vec::new();
                    let mut input =
                        SourceInput::new(ReaderSource::new(tag.as_bytes(), chunk), &mut out);
                    let got = scan_tag_end_windowed(&mut input, 0, &mut c);
                    assert!(
                        matches!(got, Err(CoreError::UnexpectedEof { .. })),
                        "tag={tag:?} chunk={chunk}"
                    );
                    assert_eq!(c.scanned, tag.len() as u64, "tag={tag:?} chunk={chunk}");
                }
            }
        }

        #[test]
        fn scan_positions_mid_document() {
            // Non-zero `pos`: the scan starts after a keyword, offsets are
            // absolute.
            let doc = b"<a><b  id=\"x>y\" >keep</b></a>";
            for pos in [2usize, 6, 7] {
                let mut cw = Counters::default();
                let mut iw = SourceInput::new(SliceSource::new(doc), Vec::new());
                let got = scan_tag_end_windowed(&mut iw, pos, &mut cw).unwrap();
                let mut cs = Counters::default();
                let mut is = SourceInput::new(SliceSource::new(doc), Vec::new());
                let want = scan_tag_end_scalar(&mut is, pos, &mut cs).unwrap();
                assert_eq!(got, want, "pos={pos}");
                assert_eq!(cw.scanned, (got.0 - pos) as u64);
                assert_eq!(cs.scanned, (got.0 - pos) as u64);
            }
        }
    }
}
