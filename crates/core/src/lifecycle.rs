//! Dynamic query lifecycle: a registry that stays mutable under traffic.
//!
//! [`QueryRegistry`](crate::QueryRegistry) (PR 6) is build-then-compile:
//! changing the standing query set means recompiling and handing every
//! caller a new automaton. The paper's prefilter, however, is meant to
//! sit in front of *long-lived* query workloads — publish/subscribe
//! filtering where thousands of profiles churn while documents keep
//! arriving. This module supplies the serving-side half:
//!
//! * [`SharedPrefilter`] owns a **generation-swapped**
//!   `Arc<`[`Generation`]`>`. Every document run resolves the current
//!   generation once, up front, and runs to completion on that immutable
//!   snapshot — an in-flight document (or pooled batch task) is never
//!   migrated, so its output is byte-identical to a run against a freshly
//!   compiled registry of that generation's query set.
//! * [`add_query`](SharedPrefilter::add_query) /
//!   [`remove_query`](SharedPrefilter::remove_query) mutate the *live
//!   set* and enqueue a recompile. The recompile runs on a dedicated
//!   compiler thread — **off the hot path**: document workers never wait
//!   on compilation, they simply keep reading the published generation
//!   until the next one lands. Bursts of edits coalesce into one
//!   recompile of the final set.
//! * Query-id attribution is **stable across generations**: external
//!   [`QueryId`]s are allocated once, never reused, and verdicts are
//!   always reported in external-id space ([`Generation::id_width`]
//!   wide). A removed query's id simply reports unmatched from the first
//!   generation that excludes it — the tombstone semantics; it is an
//!   error to re-remove it.
//!
//! Failure containment: a query is validated (parsed and compiled
//! single-query against the DTD) *synchronously* inside `add_query`, so
//! the caller that submitted a bad query gets the error and the shared
//! automaton is never poisoned. Should a workload recompile fail anyway,
//! the previous generation keeps serving and the error surfaces on the
//! next [`settle`](SharedPrefilter::settle).

use crate::error::CoreError;
use crate::idset::{QueryId, QueryIdSet};
use crate::runtime::parallel::{self, BatchError, FrozenPrefilter, Pool};
use crate::runtime::source::DocSource;
use crate::runtime::Prefilter;
use crate::stats::{MultiVerdict, RunStats};
use smpx_dtd::Dtd;
use smpx_paths::extract::extract_from_text;
use smpx_paths::PathSet;
use std::io::Write;
use std::sync::{Arc, Condvar, Mutex, RwLock};

/// One published compilation of the live query set — an immutable
/// snapshot a document run holds onto from first byte to last.
///
/// Internally the automaton is an ordinary multi-query compile of the
/// live path sets in ascending external-id order; the generation carries
/// the map from those dense *compiled* ids back to the stable *external*
/// ids, so verdicts keep meaning the same thing while the set churns.
pub struct Generation {
    gen_no: u64,
    frozen: FrozenPrefilter,
    /// Compiled (dense) id → external (stable) id, ascending.
    extern_of: Vec<QueryId>,
    /// Width of the external id space: every id ever allocated, removed
    /// ones included. Verdicts are reported over this width.
    id_width: u32,
}

impl Generation {
    /// The generation number: `0` for the initial compile, incremented by
    /// every published recompile. Strictly increasing, never reused.
    pub fn gen_no(&self) -> u64 {
        self.gen_no
    }

    /// The generation's frozen automaton (for workers, memory accounting,
    /// or hand-rolled pool runs).
    pub fn frozen(&self) -> &FrozenPrefilter {
        &self.frozen
    }

    /// Number of live queries this generation answers for.
    pub fn live_queries(&self) -> usize {
        self.extern_of.len()
    }

    /// Width of the external id space (live + tombstoned ids). Equals
    /// `n_queries` of every verdict this generation produces.
    pub fn id_width(&self) -> u32 {
        self.id_width
    }

    /// The stable external id of the generation's `compiled`-th query
    /// (`None` past the live count).
    pub fn external_id(&self, compiled: QueryId) -> Option<QueryId> {
        self.extern_of.get(compiled.0 as usize).copied()
    }

    /// Translate a verdict from the compiled automaton's dense id space
    /// into stable external ids over the full allocated width. Removed
    /// ids are never inserted, so they report unmatched.
    pub fn remap_verdict(&self, compiled: &MultiVerdict) -> MultiVerdict {
        debug_assert_eq!(compiled.n_queries as usize, self.extern_of.len());
        let mut matched = QueryIdSet::new();
        for q in compiled.matched.iter() {
            matched.insert(self.extern_of[q.0 as usize]);
        }
        MultiVerdict { matched, n_queries: self.id_width }
    }

    /// One pass over a document on *this* generation: union projection
    /// into `writer`, verdict in stable external ids, run statistics.
    /// Mints a fresh worker; callers processing many documents on one
    /// generation should mint a [`worker`](FrozenPrefilter::worker) once
    /// and remap verdicts themselves, as the pooled entry does.
    pub fn run_multi<S: DocSource, W: Write>(
        &self,
        src: S,
        writer: W,
    ) -> Result<(W, MultiVerdict, RunStats), CoreError> {
        let mut pf = self.frozen.worker();
        let (out, verdict, stats) = pf.run_multi(src, writer)?;
        Ok((out, self.remap_verdict(&verdict), stats))
    }
}

/// The mutable half: the live query table plus compiler bookkeeping.
struct LifecycleState {
    /// Slot per allocated external id: `Some` = live, `None` = removed
    /// (tombstone — ids are never reused).
    slots: Vec<Option<PathSet>>,
    /// Edits published into `slots` but not yet compiled.
    dirty: bool,
    /// Edits accumulated since the compiler last snapshotted — the
    /// coalesced-burst size the observability layer reports.
    pending_edits: usize,
    /// A recompile is running off-lock right now.
    compiling: bool,
    /// Tells the compiler thread to exit (set on handle drop).
    shutdown: bool,
    /// Number the *next* published generation will carry.
    next_gen: u64,
    /// Error of the most recent failed recompile; the previous generation
    /// keeps serving. Taken (and cleared) by `settle`.
    last_error: Option<CoreError>,
}

impl LifecycleState {
    fn live(&self) -> usize {
        self.slots.iter().flatten().count()
    }
}

/// Everything the handle and the compiler thread share.
struct Inner {
    dtd: Dtd,
    state: Mutex<LifecycleState>,
    /// Wakes the compiler on edits/shutdown and `settle` waiters on
    /// publish — one condvar, both directions re-check their predicates.
    signal: Condvar,
    /// The published generation. Readers clone the `Arc` (one read-lock
    /// bump per document); the compiler swaps in a new one atomically.
    current: RwLock<Arc<Generation>>,
}

/// A multi-query prefilter whose query set is mutable **while documents
/// are being served** — the router-style dynamic lifecycle (module docs).
///
/// The handle is `Sync`: share it by reference (or wrap it in an `Arc`)
/// between any number of submitting and document-processing threads. It
/// is deliberately not `Clone` — the owning handle joins the compiler
/// thread on drop.
pub struct SharedPrefilter {
    inner: Arc<Inner>,
    compiler: Option<std::thread::JoinHandle<()>>,
}

impl SharedPrefilter {
    /// Compile `initial` (one path set per query, external ids `0..n` in
    /// order) into generation 0 and start the lifecycle compiler thread.
    ///
    /// Errors exactly as [`Prefilter::compile_multi`] would: the registry
    /// must start non-empty — a prefilter with no queries has no
    /// automaton to run (and [`remove_query`](Self::remove_query) refuses
    /// to remove the last live query for the same reason).
    pub fn new(dtd: Dtd, initial: Vec<PathSet>) -> Result<SharedPrefilter, CoreError> {
        if initial.is_empty() {
            return Err(CoreError::NoPaths);
        }
        let pf = Prefilter::compile_multi(&dtd, &initial)?;
        let generation = Arc::new(Generation {
            gen_no: 0,
            frozen: pf.freeze(),
            extern_of: (0..initial.len() as u32).map(QueryId).collect(),
            id_width: initial.len() as u32,
        });
        let inner = Arc::new(Inner {
            dtd,
            state: Mutex::new(LifecycleState {
                slots: initial.into_iter().map(Some).collect(),
                dirty: false,
                pending_edits: 0,
                compiling: false,
                shutdown: false,
                next_gen: 1,
                last_error: None,
            }),
            signal: Condvar::new(),
            current: RwLock::new(generation),
        });
        let thread_inner = Arc::clone(&inner);
        let compiler = std::thread::Builder::new()
            .name("smpx-lifecycle".into())
            .spawn(move || compiler_loop(&thread_inner))
            .map_err(CoreError::Io)?;
        Ok(SharedPrefilter { inner, compiler: Some(compiler) })
    }

    /// The DTD every registered query is compiled against.
    pub fn dtd(&self) -> &Dtd {
        &self.inner.dtd
    }

    /// Register an XPath query. The id is allocated and returned
    /// immediately; the generation that *answers* for it publishes
    /// asynchronously (await it with [`settle`](Self::settle)).
    ///
    /// The query is validated here, synchronously — parse errors and
    /// compile errors against the DTD are the submitting caller's to
    /// handle, and a rejected query leaves the registry untouched.
    pub fn add_query(&self, text: &str) -> Result<QueryId, CoreError> {
        let paths = extract_from_text(text).map_err(CoreError::Query)?;
        self.add_paths(paths)
    }

    /// [`add_query`](Self::add_query) for a pre-extracted path set.
    pub fn add_paths(&self, paths: PathSet) -> Result<QueryId, CoreError> {
        // Single-query validation compile: proportional to one query, so
        // the control plane stays cheap while still catching DTD
        // mismatches before they could fail the whole workload recompile.
        Prefilter::compile(&self.inner.dtd, &paths)?;
        let mut st = self.inner.state.lock().expect("lifecycle state");
        let id = QueryId(st.slots.len() as u32);
        st.slots.push(Some(paths));
        st.dirty = true;
        st.pending_edits += 1;
        drop(st);
        self.inner.signal.notify_all();
        Ok(id)
    }

    /// Tombstone a live query: from the next published generation on,
    /// its id reports unmatched in every verdict (ids are never reused).
    /// Rejects ids that were never allocated or are already removed, and
    /// refuses to remove the last live query — an empty registry has no
    /// automaton to serve (start over with [`new`](Self::new) instead).
    pub fn remove_query(&self, id: QueryId) -> Result<(), CoreError> {
        let mut st = self.inner.state.lock().expect("lifecycle state");
        let live = st.live();
        let reason = match st.slots.get_mut(id.0 as usize) {
            None => "never registered",
            Some(None) => "already removed",
            Some(slot) => {
                if live == 1 {
                    "the last live query cannot be removed (the registry must stay non-empty)"
                } else {
                    *slot = None;
                    st.dirty = true;
                    st.pending_edits += 1;
                    drop(st);
                    self.inner.signal.notify_all();
                    return Ok(());
                }
            }
        };
        Err(CoreError::LifecycleEdit { id, reason })
    }

    /// The current published generation — the per-document resolve.
    /// Cheap (one `RwLock` read + `Arc` bump); hold the returned `Arc`
    /// for the whole document so the run cannot be migrated mid-flight.
    pub fn generation(&self) -> Arc<Generation> {
        Arc::clone(&self.inner.current.read().expect("lifecycle generation"))
    }

    /// Number of live (non-removed) queries in the *edit* state — may run
    /// ahead of [`generation`](Self::generation) until the compiler
    /// catches up.
    pub fn live_queries(&self) -> usize {
        self.inner.state.lock().expect("lifecycle state").live()
    }

    /// External ids allocated so far (live + tombstoned).
    pub fn id_width(&self) -> u32 {
        self.inner.state.lock().expect("lifecycle state").slots.len() as u32
    }

    /// Block until every enqueued edit has been compiled and published,
    /// then return the settled generation. If the latest recompile failed
    /// (the previous generation kept serving), the stored error is taken
    /// and returned instead. Never called on the document hot path — this
    /// is for control-plane callers (and tests) that need the
    /// edit-visible point.
    pub fn settle(&self) -> Result<Arc<Generation>, CoreError> {
        let mut st = self.inner.state.lock().expect("lifecycle state");
        while st.dirty || st.compiling {
            st = self.inner.signal.wait(st).expect("lifecycle state");
        }
        if let Some(e) = st.last_error.take() {
            return Err(e);
        }
        drop(st);
        Ok(self.generation())
    }

    /// Batch entry through the work-stealing pool, resolving the
    /// generation **once per document**: per-document `(sink, verdict,
    /// stats)` in input order, verdicts in stable external ids.
    ///
    /// A generation published mid-batch applies to documents that *start*
    /// after it; documents already running finish byte-identically on the
    /// generation they resolved (each task holds its generation's `Arc`).
    /// Workers keep their matcher caches warm while their generation is
    /// unchanged and re-mint on the first document after a swap. A batch
    /// of exactly one large document routes through the intra-document
    /// shard path on a single resolved generation, exactly like
    /// [`FrozenPrefilter::run_batch_parallel`]. Error semantics are the
    /// pool's: first failure cancels, [`BatchError`] names the input.
    pub fn run_multi_batch_parallel<S, W, I>(
        &self,
        batch: I,
        threads: usize,
    ) -> Result<Vec<(W, MultiVerdict, RunStats)>, BatchError>
    where
        S: DocSource + Send,
        W: Write + Send,
        I: IntoIterator<Item = (S, W)>,
    {
        let mut tasks: Vec<(S, W)> = batch.into_iter().collect();
        if parallel::should_auto_shard(&tasks, threads) {
            let generation = self.generation();
            let (src, sink) = tasks.pop().expect("one task");
            let (out, verdict, stats) = generation
                .frozen()
                .worker()
                .run_sharded_multi(src, sink, threads, 0)
                .map_err(|error| BatchError { index: 0, error })?;
            return Ok(vec![(out, generation.remap_verdict(&verdict), stats)]);
        }
        Pool::new(threads)
            .run(
                tasks,
                |_| None::<(Arc<Generation>, Prefilter)>,
                |cache, (src, sink)| {
                    let generation = self.generation();
                    if cache.as_ref().is_none_or(|(g, _)| g.gen_no != generation.gen_no) {
                        let worker = generation.frozen().worker();
                        *cache = Some((generation, worker));
                    }
                    let (generation, pf) = cache.as_mut().expect("cache just primed");
                    let (out, verdict, stats) = pf.run_multi(src, sink)?;
                    Ok((out, generation.remap_verdict(&verdict), stats))
                },
            )
            .map_err(|(index, error)| BatchError { index, error })
    }
}

impl Drop for SharedPrefilter {
    fn drop(&mut self) {
        if let Some(handle) = self.compiler.take() {
            self.inner.state.lock().expect("lifecycle state").shutdown = true;
            self.inner.signal.notify_all();
            let _ = handle.join();
        }
    }
}

/// The compiler thread: sleep until edits arrive, snapshot the live set,
/// compile **off-lock** (documents keep resolving the old generation the
/// whole time), publish, wake `settle` waiters. Edits arriving during a
/// compile re-mark `dirty` and trigger the next round — a burst of edits
/// costs one or two recompiles, not one each.
fn compiler_loop(inner: &Inner) {
    let mut st = inner.state.lock().expect("lifecycle state");
    loop {
        if st.shutdown {
            return;
        }
        if !st.dirty {
            st = inner.signal.wait(st).expect("lifecycle state");
            continue;
        }
        st.dirty = false;
        st.compiling = true;
        let burst = std::mem::take(&mut st.pending_edits) as u64;
        let id_width = st.slots.len() as u32;
        let mut extern_of = Vec::new();
        let mut sets = Vec::new();
        for (i, slot) in st.slots.iter().enumerate() {
            if let Some(paths) = slot {
                extern_of.push(QueryId(i as u32));
                sets.push(paths.clone());
            }
        }
        drop(st);
        crate::obs::add(crate::obs::CounterId::LifecycleBurstEdits, burst);
        crate::obs::observe(crate::obs::HistId::LifecycleBurstSize, burst);
        // The expensive part — no lock held, the hot path is untouched.
        let t0 = crate::obs::enabled().then(std::time::Instant::now);
        let compiled = Prefilter::compile_multi(&inner.dtd, &sets).map(|pf| pf.freeze());
        if let Some(t0) = t0 {
            let nanos = t0.elapsed().as_nanos();
            crate::obs::add_nanos(crate::obs::CounterId::LifecycleCompileNanos, nanos);
            crate::obs::observe(
                crate::obs::HistId::LifecycleCompileLatency,
                nanos.min(u64::MAX as u128) as u64,
            );
        }
        crate::obs::add(crate::obs::CounterId::LifecycleCompiles, 1);
        st = inner.state.lock().expect("lifecycle state");
        match compiled {
            Ok(frozen) => {
                let gen_no = st.next_gen;
                st.next_gen += 1;
                let generation = Arc::new(Generation { gen_no, frozen, extern_of, id_width });
                let swap_span = crate::obs::stage(crate::obs::StageId::Swap);
                *inner.current.write().expect("lifecycle generation") = generation;
                drop(swap_span);
                crate::obs::gauge_set(crate::obs::GaugeId::LifecycleGeneration, gen_no);
                st.last_error = None;
            }
            // Defense in depth: adds are validated up front, so a failing
            // workload recompile is unexpected — keep serving the old
            // generation and surface the error on the next settle().
            Err(e) => {
                crate::obs::add(crate::obs::CounterId::LifecycleFailedPublishes, 1);
                st.last_error = Some(e);
            }
        }
        st.compiling = false;
        inner.signal.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::QueryRegistry;

    const EX2: &[u8] =
        br#"<!DOCTYPE a [ <!ELEMENT a (b|c)*> <!ELEMENT b (#PCDATA)> <!ELEMENT c (b,b?)> ]>"#;

    fn shared() -> SharedPrefilter {
        let mut reg = QueryRegistry::new(Dtd::parse(EX2).unwrap());
        reg.add_query("/a/b").unwrap();
        reg.add_query("//c").unwrap();
        reg.compile_shared().unwrap()
    }

    #[test]
    fn starts_at_generation_zero_with_registered_ids() {
        let s = shared();
        let g = s.generation();
        assert_eq!(g.gen_no(), 0);
        assert_eq!(g.live_queries(), 2);
        assert_eq!(g.id_width(), 2);
        assert_eq!(g.external_id(QueryId(1)), Some(QueryId(1)));
        let (_, v, _) =
            g.run_multi(crate::SliceSource::new(b"<a><b>x</b></a>"), Vec::new()).unwrap();
        assert!(v.is_matched(QueryId(0)));
        assert!(!v.is_matched(QueryId(1)));
    }

    #[test]
    fn add_publishes_a_new_generation_and_keeps_old_ids() {
        let s = shared();
        let id = s.add_query("/a/c/b").unwrap();
        assert_eq!(id, QueryId(2));
        let g = s.settle().unwrap();
        assert!(g.gen_no() >= 1);
        assert_eq!((g.live_queries(), g.id_width()), (3, 3));
        let (_, v, _) =
            g.run_multi(crate::SliceSource::new(b"<a><c><b>y</b></c></a>"), Vec::new()).unwrap();
        assert!(v.is_matched(QueryId(1)), "//c still attributed");
        assert!(v.is_matched(id), "new query attributed");
        assert!(!v.is_matched(QueryId(0)), "/a/b unmatched under c");
    }

    #[test]
    fn removed_id_reports_unmatched_and_stays_tombstoned() {
        let s = shared();
        s.remove_query(QueryId(0)).unwrap();
        let g = s.settle().unwrap();
        assert_eq!((g.live_queries(), g.id_width()), (1, 2));
        let (_, v, _) =
            g.run_multi(crate::SliceSource::new(b"<a><b>x</b></a>"), Vec::new()).unwrap();
        assert_eq!(v.n_queries, 2, "verdict width covers tombstoned ids");
        assert!(!v.is_matched(QueryId(0)), "removed id reports unmatched");
        // The id is not reused by the next add.
        assert_eq!(s.add_query("/a/b").unwrap(), QueryId(2));
        let err = s.remove_query(QueryId(0)).unwrap_err();
        assert!(err.to_string().contains("already removed"), "got {err}");
    }

    #[test]
    fn edit_rejections_name_the_reason() {
        let s = shared();
        let err = s.remove_query(QueryId(9)).unwrap_err();
        assert!(err.to_string().contains("never registered"), "got {err}");
        s.remove_query(QueryId(1)).unwrap();
        let err = s.remove_query(QueryId(0)).unwrap_err();
        assert!(err.to_string().contains("last live query"), "got {err}");
        // Malformed XPath: rejected at add time, registry untouched.
        // (Unknown elements are *not* an error — as in single-query
        // compiles they yield a vacuously never-matching automaton.)
        assert!(matches!(s.add_query("/a["), Err(CoreError::Query(_))));
        assert_eq!(s.id_width(), 2);
        assert_eq!(s.settle().unwrap().live_queries(), 1);
    }

    #[test]
    fn empty_initial_set_is_refused() {
        let dtd = Dtd::parse(EX2).unwrap();
        assert!(matches!(SharedPrefilter::new(dtd, Vec::new()), Err(CoreError::NoPaths)));
    }

    #[test]
    fn burst_of_edits_coalesces_and_settles_once() {
        let s = shared();
        for _ in 0..8 {
            s.add_query("/a/c/b").unwrap();
        }
        s.remove_query(QueryId(0)).unwrap();
        let g = s.settle().unwrap();
        assert_eq!((g.live_queries(), g.id_width() as usize), (9, 10));
        // Far fewer generations than edits: the compiler drains bursts.
        assert!(g.gen_no() <= 9, "gen {} for 9 edits", g.gen_no());
    }
}
