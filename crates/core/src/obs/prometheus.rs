//! Prometheus text exposition (version 0.0.4) of a [`Snapshot`].
//!
//! Hand-rolled: the format is line-oriented and needs no escaping for
//! our static names/helps (enforced by the registry's naming tests).
//! Time series stored in nanoseconds are scaled to seconds here, and
//! histogram buckets are emitted cumulatively with `le` labels as the
//! format requires.

use super::registry::Unit;
use super::snapshot::{HistSample, Sample, Snapshot};
use std::fmt::Write;

fn scaled(unit: Unit, raw: u64) -> String {
    match unit {
        Unit::Count | Unit::Bytes => raw.to_string(),
        Unit::Nanos => format!("{}", unit.scale(raw)),
    }
}

fn write_scalar(out: &mut String, s: &Sample, kind: &str) {
    let _ = writeln!(out, "# HELP {} {}", s.def.name, s.def.help);
    let _ = writeln!(out, "# TYPE {} {}", s.def.name, kind);
    let _ = writeln!(out, "{} {}", s.def.name, scaled(s.def.unit, s.value));
}

fn write_histogram(out: &mut String, h: &HistSample) {
    let _ = writeln!(out, "# HELP {} {}", h.def.name, h.def.help);
    let _ = writeln!(out, "# TYPE {} histogram", h.def.name);
    let mut cumulative = 0u64;
    for (i, &bucket) in h.buckets.iter().enumerate() {
        cumulative += bucket;
        let le = match h.bounds.get(i) {
            Some(&b) => format!("{}", h.def.unit.scale(b)),
            None => "+Inf".to_string(),
        };
        let _ = writeln!(out, "{}_bucket{{le=\"{}\"}} {}", h.def.name, le, cumulative);
    }
    let _ = writeln!(out, "{}_sum {}", h.def.name, scaled(h.def.unit, h.sum));
    let _ = writeln!(out, "{}_count {}", h.def.name, cumulative);
}

/// Render a snapshot as Prometheus text exposition.
pub fn render(snap: &Snapshot) -> String {
    let mut out = String::new();
    for c in &snap.counters {
        write_scalar(&mut out, c, "counter");
    }
    for g in &snap.gauges {
        write_scalar(&mut out, g, "gauge");
    }
    for h in &snap.histograms {
        write_histogram(&mut out, h);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::registry::{CounterId, HistId, MetricsRegistry};
    use super::*;

    #[test]
    fn scalar_lines_scale_time_to_seconds() {
        let r = MetricsRegistry::new();
        r.add(CounterId::PoolBusyNanos, 2_500_000_000);
        let text = render(&r.snapshot());
        assert!(text.contains("smpx_pool_busy_seconds_total 2.5\n"), "{text}");
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_with_inf() {
        let r = MetricsRegistry::new();
        for v in [1, 1, 3, 500] {
            r.observe(HistId::ShardSegments, v);
        }
        let text = render(&r.snapshot());
        assert!(text.contains("smpx_shard_segments_bucket{le=\"1\"} 2\n"), "{text}");
        assert!(text.contains("smpx_shard_segments_bucket{le=\"4\"} 3\n"), "{text}");
        assert!(text.contains("smpx_shard_segments_bucket{le=\"+Inf\"} 4\n"), "{text}");
        assert!(text.contains("smpx_shard_segments_count 4\n"), "{text}");
        assert!(text.contains("smpx_shard_segments_sum 505\n"), "{text}");
    }
}
