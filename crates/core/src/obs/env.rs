//! `SMPX_METRICS` environment plumbing.
//!
//! `SMPX_METRICS=<path|->` enables process-wide recording and names the
//! exit-snapshot destination: `-` writes Prometheus text to stderr
//! (stdout stays reserved for projected documents), a path ending in
//! `.json`/`.jsonl` receives the JSON-lines snapshot, any other path the
//! Prometheus exposition. Explicit off-values (`0`, `off`, `false`,
//! `no`, empty) disable silently; bare on-values (`1`, `on`, `true`,
//! `yes`) name no destination and are **rejected with one stderr
//! warning** before falling back to disabled — the same
//! no-silent-drop policy `SMPX_SHARD_AUTO_MB` established.

use std::io::Write;

/// Where (and whether) the exit snapshot goes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricsTarget {
    /// Observability stays off.
    Disabled,
    /// Prometheus text to stderr.
    Stderr,
    /// Snapshot to a file; format chosen by extension.
    File(String),
}

/// Parse one `SMPX_METRICS` value. `Err(())` means the value looks like
/// a destination-less enable switch — the caller warns and disables.
/// The unit error is deliberate: there is exactly one failure mode and
/// the two callers attach their own (env-warn vs. flag-usage) wording.
#[allow(clippy::result_unit_err)]
pub fn parse_metrics_value(raw: &str) -> Result<MetricsTarget, ()> {
    match raw.trim() {
        "" | "0" | "off" | "false" | "no" => Ok(MetricsTarget::Disabled),
        "-" => Ok(MetricsTarget::Stderr),
        "1" | "on" | "true" | "yes" => Err(()),
        path => Ok(MetricsTarget::File(path.to_string())),
    }
}

/// Read `SMPX_METRICS`, warning once per process about a
/// destination-less value before treating it as disabled.
pub fn metrics_target_from_env() -> MetricsTarget {
    match std::env::var("SMPX_METRICS") {
        Ok(v) => parse_metrics_value(&v).unwrap_or_else(|()| {
            static WARN: std::sync::Once = std::sync::Once::new();
            WARN.call_once(|| {
                eprintln!(
                    "smpx: warning: SMPX_METRICS={v:?} names no destination; \
                     use a file path or `-` for stderr — metrics stay disabled"
                );
            });
            MetricsTarget::Disabled
        }),
        Err(_) => MetricsTarget::Disabled,
    }
}

/// [`metrics_target_from_env`], additionally flipping the process-wide
/// enable switch when a destination was named. Call once at startup;
/// pass the returned target to [`emit`] at exit.
pub fn init_from_env() -> MetricsTarget {
    let target = metrics_target_from_env();
    if target != MetricsTarget::Disabled {
        super::enable();
    }
    target
}

/// Snapshot the global registry and write it to `target` — Prometheus
/// text everywhere except paths ending in `.json`/`.jsonl`, which get
/// the JSON-lines snapshot. [`MetricsTarget::Disabled`] writes nothing.
pub fn emit(target: &MetricsTarget) -> std::io::Result<()> {
    let path = match target {
        MetricsTarget::Disabled => return Ok(()),
        MetricsTarget::Stderr => None,
        MetricsTarget::File(p) => Some(p.as_str()),
    };
    let snap = super::global().snapshot();
    let json = path.is_some_and(|p| p.ends_with(".json") || p.ends_with(".jsonl"));
    let text = if json { super::render_json(&snap) } else { super::render_prometheus(&snap) };
    match path {
        None => std::io::stderr().write_all(text.as_bytes()),
        Some(p) => std::fs::write(p, text),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_values_disable_silently() {
        for v in ["", "0", "off", "false", "no", "  off  "] {
            assert_eq!(parse_metrics_value(v), Ok(MetricsTarget::Disabled), "{v:?}");
        }
    }

    #[test]
    fn dash_means_stderr_and_paths_stay_paths() {
        assert_eq!(parse_metrics_value("-"), Ok(MetricsTarget::Stderr));
        assert_eq!(
            parse_metrics_value("/tmp/m.prom"),
            Ok(MetricsTarget::File("/tmp/m.prom".into()))
        );
        assert_eq!(
            parse_metrics_value("metrics.json"),
            Ok(MetricsTarget::File("metrics.json".into()))
        );
    }

    #[test]
    fn destination_less_switches_are_rejected_not_dropped() {
        for v in ["1", "on", "true", "yes"] {
            assert_eq!(parse_metrics_value(v), Err(()), "{v:?} must warn, not silently drop");
        }
    }
}
