//! Self-describing JSON-lines snapshot export.
//!
//! Mirrors the bench harness' `bench::json` shape: one compact JSON
//! object per line, keys in fixed order, no external serializer. Each
//! line describes one series — name, kind, unit, help, and the folded
//! value(s) — so a consumer needs no side-channel schema. Time series
//! are scaled to seconds (six decimals) like the Prometheus exposition.

use super::registry::Unit;
use super::snapshot::{HistSample, Sample, Snapshot};
use std::fmt::Write;

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn unit_name(unit: Unit) -> &'static str {
    match unit {
        Unit::Count => "count",
        Unit::Bytes => "bytes",
        Unit::Nanos => "seconds",
    }
}

fn value_json(unit: Unit, raw: u64) -> String {
    match unit {
        Unit::Count | Unit::Bytes => raw.to_string(),
        Unit::Nanos => format!("{:.6}", unit.scale(raw)),
    }
}

fn scalar_line(s: &Sample, kind: &str) -> String {
    format!(
        "{{\"metric\":\"{}\",\"type\":\"{}\",\"unit\":\"{}\",\"help\":\"{}\",\"value\":{}}}",
        s.def.name,
        kind,
        unit_name(s.def.unit),
        esc(s.def.help),
        value_json(s.def.unit, s.value)
    )
}

fn hist_line(h: &HistSample) -> String {
    let mut buckets = String::from("[");
    for (i, &count) in h.buckets.iter().enumerate() {
        if i > 0 {
            buckets.push(',');
        }
        let le = match h.bounds.get(i) {
            Some(&b) => match h.def.unit {
                Unit::Count | Unit::Bytes => b.to_string(),
                Unit::Nanos => format!("{:.6}", h.def.unit.scale(b)),
            },
            None => "\"+Inf\"".to_string(),
        };
        let _ = write!(buckets, "{{\"le\":{le},\"count\":{count}}}");
    }
    buckets.push(']');
    format!(
        "{{\"metric\":\"{}\",\"type\":\"histogram\",\"unit\":\"{}\",\"help\":\"{}\",\
         \"count\":{},\"sum\":{},\"buckets\":{}}}",
        h.def.name,
        unit_name(h.def.unit),
        esc(h.def.help),
        h.count(),
        value_json(h.def.unit, h.sum),
        buckets
    )
}

/// Render a snapshot as JSON-lines, one series per line.
pub fn render(snap: &Snapshot) -> String {
    let mut out = String::new();
    for c in &snap.counters {
        out.push_str(&scalar_line(c, "counter"));
        out.push('\n');
    }
    for g in &snap.gauges {
        out.push_str(&scalar_line(g, "gauge"));
        out.push('\n');
    }
    for h in &snap.histograms {
        out.push_str(&hist_line(h));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::registry::{CounterId, HistId, MetricsRegistry};
    use super::*;

    #[test]
    fn scalar_lines_are_compact_objects() {
        let r = MetricsRegistry::new();
        r.add(CounterId::PoolSteals, 11);
        let text = render(&r.snapshot());
        let line = text.lines().find(|l| l.contains("smpx_pool_steals_total")).unwrap();
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"type\":\"counter\""), "{line}");
        assert!(line.contains("\"unit\":\"count\""), "{line}");
        assert!(line.contains("\"value\":11"), "{line}");
    }

    #[test]
    fn histogram_line_carries_buckets_and_inf() {
        let r = MetricsRegistry::new();
        r.observe(HistId::ShardSegments, 3);
        let text = render(&r.snapshot());
        let line = text.lines().find(|l| l.contains("smpx_shard_segments")).unwrap();
        assert!(
            line.contains(
                "\"buckets\":[{\"le\":1,\"count\":0},{\"le\":2,\"count\":0},{\"le\":4,\"count\":1}"
            ),
            "{line}"
        );
        assert!(line.contains("{\"le\":\"+Inf\",\"count\":0}"), "{line}");
        assert!(line.contains("\"count\":1,\"sum\":3"), "{line}");
    }

    #[test]
    fn time_series_scale_to_seconds() {
        let r = MetricsRegistry::new();
        r.add(CounterId::StageCompileNanos, 1_500_000);
        let text = render(&r.snapshot());
        let line = text.lines().find(|l| l.contains("smpx_stage_compile_seconds_total")).unwrap();
        assert!(line.contains("\"value\":0.001500"), "{line}");
    }
}
