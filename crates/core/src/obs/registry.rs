//! The metric series tables and their lock-free storage.
//!
//! Every series the process exports is declared **statically** in the
//! [`CounterId`] / [`GaugeId`] / [`HistId`] tables below — no runtime
//! registration, no name hashing, no allocation. A record call indexes a
//! fixed array with the enum discriminant and lands on a relaxed atomic;
//! counters are additionally striped across [`N_SHARDS`] cache lines
//! ([`ShardedU64`]) so concurrent pool workers never contend on one
//! line. Folding the stripes back into a single number happens only at
//! snapshot time, off the hot path.
//!
//! Naming convention: `smpx_<subsystem>_<name>_<unit>`, with `_total`
//! suffixed to monotone counters (Prometheus style). Time series store
//! **nanoseconds** internally ([`Unit::Nanos`]) and export seconds.

use super::hist::Histogram;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Stripes per counter: enough that a machine-width pool rarely collides,
/// small enough that the whole registry stays a few KiB of statics.
pub const N_SHARDS: usize = 8;

/// One cache line worth of counter stripe (padded so two stripes never
/// false-share).
#[repr(align(64))]
struct Slot(AtomicU64);

/// A monotone `u64` counter striped across [`N_SHARDS`] cache lines.
///
/// `add` touches exactly one relaxed atomic on the caller's stripe;
/// `get` folds the stripes with relaxed loads. Successive `get`s are
/// monotone (each stripe is monotone and is re-read no earlier), which
/// is what the snapshot consistency tests pin.
pub struct ShardedU64 {
    slots: [Slot; N_SHARDS],
}

/// Round-robin stripe assignment: each thread picks its stripe once, on
/// first use, and keeps it for life.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);
thread_local! {
    static SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % N_SHARDS;
}

impl ShardedU64 {
    /// A zeroed counter (const so whole registries can live in statics).
    pub const fn new() -> ShardedU64 {
        // Const-init template for the array below, never read as a
        // shared constant — the interior-mutability lint does not apply.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: Slot = Slot(AtomicU64::new(0));
        ShardedU64 { slots: [ZERO; N_SHARDS] }
    }

    /// Bump this thread's stripe by `n` (relaxed; never blocks).
    #[inline]
    pub fn add(&self, n: u64) {
        let idx = SHARD.with(|s| *s);
        self.slots[idx].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Fold the stripes into the counter's current value.
    pub fn get(&self) -> u64 {
        self.slots.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

impl Default for ShardedU64 {
    fn default() -> Self {
        ShardedU64::new()
    }
}

/// The unit a series stores its raw `u64` in. Time series store
/// nanoseconds and are scaled to seconds at export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// A plain event or item count.
    Count,
    /// Bytes.
    Bytes,
    /// Nanoseconds (exported as seconds).
    Nanos,
}

impl Unit {
    /// Scale a raw stored value to the exported magnitude.
    pub fn scale(self, raw: u64) -> f64 {
        match self {
            Unit::Count | Unit::Bytes => raw as f64,
            Unit::Nanos => raw as f64 / 1e9,
        }
    }
}

/// The static definition of one exported series.
#[derive(Debug, Clone, Copy)]
pub struct SeriesDef {
    /// Exposition name (`smpx_<subsystem>_<name>_<unit>`).
    pub name: &'static str,
    /// Storage unit of the raw value.
    pub unit: Unit,
    /// One-line help string for the exposition `# HELP` comment.
    pub help: &'static str,
}

macro_rules! define_counters {
    ($( $variant:ident => $name:literal, $unit:ident, $help:literal; )+) => {
        /// Identifier of one process-wide **counter** series (monotone,
        /// fold rule: *sum*).
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub enum CounterId {
            $( #[doc = $help] $variant, )+
        }

        /// Every counter series, in exposition order.
        pub const ALL_COUNTERS: &[CounterId] = &[ $( CounterId::$variant, )+ ];

        impl CounterId {
            /// Number of registered counter series.
            pub const COUNT: usize = ALL_COUNTERS.len();

            /// The series' static definition.
            pub const fn def(self) -> SeriesDef {
                match self {
                    $( CounterId::$variant =>
                        SeriesDef { name: $name, unit: Unit::$unit, help: $help }, )+
                }
            }
        }
    };
}

macro_rules! define_gauges {
    ($( $variant:ident => $name:literal, $unit:ident, $help:literal; )+) => {
        /// Identifier of one process-wide **gauge** series (set or
        /// max-folded, never summed).
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub enum GaugeId {
            $( #[doc = $help] $variant, )+
        }

        /// Every gauge series, in exposition order.
        pub const ALL_GAUGES: &[GaugeId] = &[ $( GaugeId::$variant, )+ ];

        impl GaugeId {
            /// Number of registered gauge series.
            pub const COUNT: usize = ALL_GAUGES.len();

            /// The series' static definition.
            pub const fn def(self) -> SeriesDef {
                match self {
                    $( GaugeId::$variant =>
                        SeriesDef { name: $name, unit: Unit::$unit, help: $help }, )+
                }
            }
        }
    };
}

macro_rules! define_hists {
    ($( $variant:ident => $name:literal, $unit:ident, $bounds:expr, $help:literal; )+) => {
        /// Identifier of one process-wide **histogram** series
        /// (fixed-bucket; the `+Inf` bucket is implicit).
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub enum HistId {
            $( #[doc = $help] $variant, )+
        }

        /// Every histogram series, in exposition order.
        pub const ALL_HISTS: &[HistId] = &[ $( HistId::$variant, )+ ];

        impl HistId {
            /// Number of registered histogram series.
            pub const COUNT: usize = ALL_HISTS.len();

            /// The series' static definition.
            pub const fn def(self) -> SeriesDef {
                match self {
                    $( HistId::$variant =>
                        SeriesDef { name: $name, unit: Unit::$unit, help: $help }, )+
                }
            }

            /// The series' upper bucket bounds, in the storage unit,
            /// ascending; observations above the last bound land in the
            /// implicit `+Inf` bucket.
            pub const fn bounds(self) -> &'static [u64] {
                match self {
                    $( HistId::$variant => $bounds, )+
                }
            }
        }
    };
}

define_counters! {
    // -- per-run accounting (RunStats folded at end of run) ------------
    RunRuns => "smpx_run_runs_total", Count,
        "Prefilter runs completed (documents, shard fallbacks included).";
    RunInputBytes => "smpx_run_input_bytes_total", Bytes,
        "Input bytes across all runs.";
    RunOutputBytes => "smpx_run_output_bytes_total", Bytes,
        "Projected output bytes across all runs.";
    RunCharsCompared => "smpx_run_chars_compared_total", Count,
        "Characters inspected by genuine pattern comparisons.";
    RunBytesScanned => "smpx_run_bytes_scanned_total", Bytes,
        "Bytes consumed by skip-scans and tag/balanced traversal.";
    RunShifts => "smpx_run_shifts_total", Count,
        "Forward shifts performed by the matchers.";
    RunShiftChars => "smpx_run_shift_chars_total", Count,
        "Sum of shift sizes in characters.";
    RunInitialJumpChars => "smpx_run_initial_jump_chars_total", Count,
        "Characters skipped by initial jump offsets.";
    RunTokensMatched => "smpx_run_tokens_matched_total", Count,
        "Tokens matched and processed.";
    RunFalseMatches => "smpx_run_false_matches_total", Count,
        "Keyword matches rejected by the tag-name boundary check.";
    RunMatchEvents => "smpx_run_match_events_total", Count,
        "Transitions into potential-match states.";
    RunShardSegments => "smpx_run_shard_segments_total", Count,
        "Stitched segments of intra-document sharded runs.";
    // -- work-stealing pool --------------------------------------------
    PoolTasks => "smpx_pool_tasks_total", Count,
        "Tasks executed by pool workers.";
    PoolSteals => "smpx_pool_steals_total", Count,
        "Successful steals of a sibling deque's FIFO half.";
    PoolParks => "smpx_pool_parks_total", Count,
        "Times an empty-handed worker parked on the idle condvar.";
    PoolWakes => "smpx_pool_wakes_total", Count,
        "Work-available wake broadcasts after a local requeue or steal.";
    PoolBusyNanos => "smpx_pool_busy_seconds_total", Nanos,
        "Wall-clock time pool workers spent executing tasks.";
    // -- prefetching reader --------------------------------------------
    PrefetchChunks => "smpx_prefetch_chunks_total", Count,
        "Prefetched blocks handed from the smpx-io thread to a consumer.";
    PrefetchBytes => "smpx_prefetch_bytes_total", Bytes,
        "Bytes delivered through prefetched blocks.";
    PrefetchProducerStallNanos => "smpx_prefetch_producer_stall_seconds_total", Nanos,
        "Time the smpx-io thread parked waiting for a free buffer.";
    PrefetchConsumerWaitNanos => "smpx_prefetch_consumer_wait_seconds_total", Nanos,
        "Time consumers parked waiting for a prefetched block.";
    // -- other document sources ----------------------------------------
    SourceReadBytes => "smpx_source_read_bytes_total", Bytes,
        "Bytes delivered by the synchronous chunked reader.";
    SourceMmapBytes => "smpx_source_mmap_bytes_total", Bytes,
        "Bytes delivered by memory-mapped (or slurped) file sources.";
    // -- dynamic query lifecycle ---------------------------------------
    LifecycleCompiles => "smpx_lifecycle_compiles_total", Count,
        "Workload recompiles attempted by the lifecycle compiler thread.";
    LifecycleCompileNanos => "smpx_lifecycle_compile_seconds_total", Nanos,
        "Wall-clock time spent in lifecycle workload recompiles.";
    LifecycleBurstEdits => "smpx_lifecycle_burst_edits_total", Count,
        "Query edits drained by lifecycle recompiles (coalesced bursts).";
    LifecycleFailedPublishes => "smpx_lifecycle_failed_publishes_total", Count,
        "Lifecycle recompiles that failed (previous generation kept serving).";
    // -- intra-document sharding ---------------------------------------
    ShardRuns => "smpx_shard_runs_total", Count,
        "Sharded runs that found a record loop and actually split.";
    ShardFallbacks => "smpx_shard_fallbacks_total", Count,
        "Sharded runs that fell back to the sequential path.";
    ShardSpeculationHits => "smpx_shard_speculation_hits_total", Count,
        "Speculative shards spliced at the confirmed frontier.";
    ShardRepairs => "smpx_shard_repairs_total", Count,
        "Sequential repair runs around speculation misses.";
    // -- stage timers ---------------------------------------------------
    StageCompileNanos => "smpx_stage_compile_seconds_total", Nanos,
        "Wall-clock time spent compiling automatons.";
    StageCompileEvents => "smpx_stage_compile_events_total", Count,
        "Automaton compiles timed.";
    StageScanNanos => "smpx_stage_scan_seconds_total", Nanos,
        "Wall-clock time spent in sequential document scans.";
    StageScanEvents => "smpx_stage_scan_events_total", Count,
        "Sequential document scans timed.";
    StageIoWaitNanos => "smpx_stage_io_wait_seconds_total", Nanos,
        "Wall-clock time the scan thread blocked on synchronous reads.";
    StageIoWaitEvents => "smpx_stage_io_wait_events_total", Count,
        "Synchronous read waits timed.";
    StageStitchNanos => "smpx_stage_stitch_seconds_total", Nanos,
        "Wall-clock time spent stitching sharded-run segments.";
    StageStitchEvents => "smpx_stage_stitch_events_total", Count,
        "Sharded-run stitch phases timed.";
    StageRepairNanos => "smpx_stage_repair_seconds_total", Nanos,
        "Wall-clock time spent in sequential shard repair runs.";
    StageRepairEvents => "smpx_stage_repair_events_total", Count,
        "Shard repair runs timed.";
    StageSwapNanos => "smpx_stage_swap_seconds_total", Nanos,
        "Wall-clock time spent publishing lifecycle generations.";
    StageSwapEvents => "smpx_stage_swap_events_total", Count,
        "Lifecycle generation publishes timed.";
}

define_gauges! {
    RunIoWindowBytesPeak => "smpx_run_io_window_bytes_peak", Bytes,
        "Peak owned I/O-window bytes any single run allocated (max-folded).";
    PoolWorkers => "smpx_pool_workers", Count,
        "Worker width of the most recent pool run.";
    PoolQueueDepthPeak => "smpx_pool_queue_depth_peak", Count,
        "Peak injector queue depth at batch submission (max-folded).";
    LifecycleGeneration => "smpx_lifecycle_generation", Count,
        "Generation number of the currently published lifecycle automaton.";
}

define_hists! {
    LifecycleCompileLatency => "smpx_lifecycle_compile_latency_seconds", Nanos,
        // 1ms .. 4s, exponential.
        &[1_000_000, 4_000_000, 16_000_000, 64_000_000, 250_000_000,
          1_000_000_000, 4_000_000_000],
        "Latency distribution of lifecycle workload recompiles.";
    LifecycleBurstSize => "smpx_lifecycle_burst_edits", Count,
        &[1, 2, 4, 8, 16, 32, 64],
        "Edits coalesced into one lifecycle recompile.";
    ShardSegments => "smpx_shard_segments", Count,
        &[1, 2, 4, 8, 16, 32, 64, 128],
        "Stitched segments per intra-document sharded run.";
}

/// The process-wide metric store: one slot per declared series, all
/// const-constructible so the global registry is a zero-init static.
///
/// The registry itself is **always on** — whether a record call happens
/// at all is the caller's decision (the [`crate::obs`] free functions
/// gate on the process-wide enable flag; `smpxd` or tests may drive an
/// owned registry directly).
pub struct MetricsRegistry {
    counters: [ShardedU64; CounterId::COUNT],
    gauges: [AtomicU64; GaugeId::COUNT],
    histograms: [Histogram; HistId::COUNT],
}

impl MetricsRegistry {
    /// An all-zero registry.
    pub const fn new() -> MetricsRegistry {
        // Const-init templates for the arrays below, never read as
        // shared constants — the interior-mutability lint does not apply.
        #[allow(clippy::declare_interior_mutable_const)]
        const C: ShardedU64 = ShardedU64::new();
        #[allow(clippy::declare_interior_mutable_const)]
        const G: AtomicU64 = AtomicU64::new(0);
        #[allow(clippy::declare_interior_mutable_const)]
        const H: Histogram = Histogram::new();
        MetricsRegistry {
            counters: [C; CounterId::COUNT],
            gauges: [G; GaugeId::COUNT],
            histograms: [H; HistId::COUNT],
        }
    }

    /// Bump counter `id` by `n` (relaxed, striped; never blocks).
    #[inline]
    pub fn add(&self, id: CounterId, n: u64) {
        self.counters[id as usize].add(n);
    }

    /// The current folded value of counter `id`.
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters[id as usize].get()
    }

    /// Set gauge `id` to `v` (last write wins).
    #[inline]
    pub fn gauge_set(&self, id: GaugeId, v: u64) {
        self.gauges[id as usize].store(v, Ordering::Relaxed);
    }

    /// Raise gauge `id` to at least `v` (max fold).
    #[inline]
    pub fn gauge_max(&self, id: GaugeId, v: u64) {
        self.gauges[id as usize].fetch_max(v, Ordering::Relaxed);
    }

    /// The current value of gauge `id`.
    pub fn gauge(&self, id: GaugeId) -> u64 {
        self.gauges[id as usize].load(Ordering::Relaxed)
    }

    /// Record one observation `v` (in the series' storage unit) into
    /// histogram `id`.
    #[inline]
    pub fn observe(&self, id: HistId, v: u64) {
        self.histograms[id as usize].observe(id.bounds(), v);
    }

    /// Read access for snapshotting.
    pub(super) fn histogram(&self, id: HistId) -> &Histogram {
        &self.histograms[id as usize]
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::super::hist::MAX_BUCKETS;
    use super::*;

    #[test]
    fn sharded_counter_folds_across_threads() {
        let c = ShardedU64::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.add(1);
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn every_series_name_is_unique_and_conventional() {
        let mut names: Vec<&str> = ALL_COUNTERS
            .iter()
            .map(|c| c.def().name)
            .chain(ALL_GAUGES.iter().map(|g| g.def().name))
            .chain(ALL_HISTS.iter().map(|h| h.def().name))
            .collect();
        for n in &names {
            assert!(n.starts_with("smpx_"), "{n}: must carry the smpx_ prefix");
            assert!(
                n.bytes().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_'),
                "{n}: exposition names are snake_case ascii"
            );
        }
        for c in ALL_COUNTERS {
            let name = c.def().name;
            assert!(name.ends_with("_total"), "{name}: counters end in _total");
            if c.def().unit == Unit::Nanos {
                assert!(name.ends_with("_seconds_total"), "{name}: time counters export seconds");
            }
        }
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate series name");
    }

    #[test]
    fn histogram_bounds_are_ascending_and_fit() {
        for h in ALL_HISTS {
            let bounds = h.bounds();
            assert!(!bounds.is_empty());
            assert!(bounds.len() < MAX_BUCKETS, "{}: too many buckets", h.def().name);
            assert!(bounds.windows(2).all(|w| w[0] < w[1]), "{}: bounds ascend", h.def().name);
        }
    }

    #[test]
    fn gauge_set_and_max_fold() {
        let r = MetricsRegistry::new();
        r.gauge_set(GaugeId::PoolWorkers, 4);
        r.gauge_set(GaugeId::PoolWorkers, 2);
        assert_eq!(r.gauge(GaugeId::PoolWorkers), 2, "set is last-write-wins");
        r.gauge_max(GaugeId::RunIoWindowBytesPeak, 100);
        r.gauge_max(GaugeId::RunIoWindowBytesPeak, 50);
        assert_eq!(r.gauge(GaugeId::RunIoWindowBytesPeak), 100, "max fold never lowers");
    }

    #[test]
    fn unit_scaling() {
        assert_eq!(Unit::Count.scale(7), 7.0);
        assert_eq!(Unit::Bytes.scale(1024), 1024.0);
        assert!((Unit::Nanos.scale(1_500_000_000) - 1.5).abs() < 1e-12);
    }
}
