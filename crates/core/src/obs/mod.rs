//! Process-wide observability: metric registry, stage timers, and
//! snapshot/exposition surfaces.
//!
//! # Design
//!
//! Every series is declared statically ([`registry`]); the process
//! holds one const-initialized global [`MetricsRegistry`] plus an
//! `enabled` flag that is **off by default**. The free functions in
//! this module are the hot-path API: each checks the flag with one
//! relaxed load and branches away when observability is off, so the
//! disabled cost is a couple of instructions — no atomics written, no
//! clock reads, no allocation. When enabled, counters land on
//! per-thread cache-line stripes (folded only at snapshot time) and
//! stage timers read the monotonic clock exactly twice per span.
//!
//! [`MetricsRegistry`]'s *instance* methods are deliberately ungated:
//! an owned registry (unit tests, a future `smpxd` with per-listener
//! stores) always records. The global enable switch is one-way — flip
//! it on at startup via [`enable`], snapshot at exit via [`global`].
//!
//! # Fold rules
//!
//! Counters are monotone sums (across threads and across runs); gauges
//! are either last-write-wins ([`gauge_set`]) or running maxima
//! ([`gauge_max`]); histograms accumulate per-bucket counts. The fold
//! rule for each `RunStats` field mirrored into the registry matches
//! `RunStats::accumulate` — summed, except `io_window_bytes` which is
//! max-folded into [`GaugeId::RunIoWindowBytesPeak`].

mod env;
mod hist;
mod json;
mod prometheus;
mod registry;
mod snapshot;
mod timer;

pub use env::{emit, init_from_env, metrics_target_from_env, parse_metrics_value, MetricsTarget};
pub use registry::{
    CounterId, GaugeId, HistId, MetricsRegistry, SeriesDef, ShardedU64, Unit, ALL_COUNTERS,
    ALL_GAUGES, ALL_HISTS,
};
pub use snapshot::{HistSample, Sample, Snapshot};
pub use timer::{StageId, StageTimer};

use crate::stats::RunStats;
use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: MetricsRegistry = MetricsRegistry::new();

/// Turn on process-wide metric recording (one-way; idempotent).
pub fn enable() {
    ENABLED.store(true, Ordering::Release);
}

/// Whether process-wide recording is on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The process-wide registry. Always readable; only written through
/// the gated free functions below (or directly, if a caller wants to
/// record regardless of the enable flag).
pub fn global() -> &'static MetricsRegistry {
    &GLOBAL
}

/// Bump a global counter by `n` (no-op while disabled).
#[inline]
pub fn add(id: CounterId, n: u64) {
    if enabled() {
        GLOBAL.add(id, n);
    }
}

/// Add a duration to a nanosecond-unit global counter (no-op while
/// disabled).
#[inline]
pub fn add_nanos(id: CounterId, nanos: u128) {
    if enabled() {
        GLOBAL.add(id, nanos.min(u64::MAX as u128) as u64);
    }
}

/// Set a global gauge (no-op while disabled).
#[inline]
pub fn gauge_set(id: GaugeId, v: u64) {
    if enabled() {
        GLOBAL.gauge_set(id, v);
    }
}

/// Raise a global gauge to at least `v` (no-op while disabled).
#[inline]
pub fn gauge_max(id: GaugeId, v: u64) {
    if enabled() {
        GLOBAL.gauge_max(id, v);
    }
}

/// Record an observation into a global histogram (no-op while
/// disabled).
#[inline]
pub fn observe(id: HistId, v: u64) {
    if enabled() {
        GLOBAL.observe(id, v);
    }
}

/// Open a stage span; armed (clock read) only while enabled.
#[inline]
pub fn stage(id: StageId) -> StageTimer {
    if enabled() {
        StageTimer::armed(id)
    } else {
        StageTimer::disarmed(id)
    }
}

/// Fold one finished run's [`RunStats`] into the process counters.
///
/// Every field is summed except `io_window_bytes`, which max-folds into
/// [`GaugeId::RunIoWindowBytesPeak`] — the same fold rules as
/// `RunStats::accumulate`. The exhaustive destructuring makes adding a
/// `RunStats` field without stating its process-level fold rule a
/// compile error.
pub fn record_run(stats: &RunStats) {
    if !enabled() {
        return;
    }
    let RunStats {
        input_bytes,
        output_bytes,
        chars_compared,
        bytes_scanned,
        shifts,
        shift_total,
        initial_jump_chars,
        tokens_matched,
        false_matches,
        io_window_bytes,
        match_events,
        shards,
    } = *stats;
    GLOBAL.add(CounterId::RunRuns, 1);
    GLOBAL.add(CounterId::RunInputBytes, input_bytes);
    GLOBAL.add(CounterId::RunOutputBytes, output_bytes);
    GLOBAL.add(CounterId::RunCharsCompared, chars_compared);
    GLOBAL.add(CounterId::RunBytesScanned, bytes_scanned);
    GLOBAL.add(CounterId::RunShifts, shifts);
    GLOBAL.add(CounterId::RunShiftChars, shift_total);
    GLOBAL.add(CounterId::RunInitialJumpChars, initial_jump_chars);
    GLOBAL.add(CounterId::RunTokensMatched, tokens_matched);
    GLOBAL.add(CounterId::RunFalseMatches, false_matches);
    GLOBAL.add(CounterId::RunMatchEvents, match_events);
    GLOBAL.add(CounterId::RunShardSegments, shards);
    GLOBAL.gauge_max(GaugeId::RunIoWindowBytesPeak, io_window_bytes);
}

/// Render a snapshot as Prometheus text exposition.
pub fn render_prometheus(snap: &Snapshot) -> String {
    prometheus::render(snap)
}

/// Render a snapshot as self-describing JSON-lines.
pub fn render_json(snap: &Snapshot) -> String {
    json::render(snap)
}
