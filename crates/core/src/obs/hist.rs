//! Fixed-bucket histograms with lock-free observation.
//!
//! Buckets store **non-cumulative** per-bucket counts; the total
//! observation count is *derived* as the sum of the buckets at snapshot
//! time, so a snapshot can never show `count != Σ buckets` no matter how
//! it races with writers — coherence by construction rather than by
//! locking. Only the value `sum` is a separate atomic and may lag the
//! buckets by in-flight observations; exports treat it as approximate.

use std::sync::atomic::{AtomicU64, Ordering};

/// Hard cap on buckets per histogram (bounds + the implicit `+Inf`),
/// sized so a histogram stays two cache lines of statics.
pub const MAX_BUCKETS: usize = 16;

/// One fixed-bucket histogram. Bounds are *not* stored here — they are
/// static per series ([`super::registry::HistId::bounds`]) so the slot
/// itself is a flat block of atomics.
pub struct Histogram {
    /// Non-cumulative count per bucket; `buckets[bounds.len()]` is the
    /// implicit `+Inf` bucket, slots past that stay zero.
    buckets: [AtomicU64; MAX_BUCKETS],
    /// Sum of observed raw values (approximate under concurrency).
    sum: AtomicU64,
}

impl Histogram {
    /// An empty histogram (const so registries can live in statics).
    pub const fn new() -> Histogram {
        // Const-init template for the array below, never read as a
        // shared constant — the interior-mutability lint does not apply.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram { buckets: [ZERO; MAX_BUCKETS], sum: AtomicU64::new(0) }
    }

    /// Record one observation `v` against `bounds` (ascending upper
    /// bounds; `v` lands in the first bucket whose bound it does not
    /// exceed, else in the implicit overflow bucket).
    #[inline]
    pub fn observe(&self, bounds: &[u64], v: u64) {
        debug_assert!(bounds.len() < MAX_BUCKETS);
        let idx = bounds.iter().position(|&b| v <= b).unwrap_or(bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Read the non-cumulative bucket counts for `bounds` (length
    /// `bounds.len() + 1`, the last entry being the overflow bucket).
    pub fn bucket_counts(&self, bounds: &[u64]) -> Vec<u64> {
        self.buckets[..=bounds.len()].iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    /// The approximate sum of observed raw values.
    pub fn value_sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BOUNDS: &[u64] = &[10, 100, 1000];

    #[test]
    fn observations_land_in_the_first_fitting_bucket() {
        let h = Histogram::new();
        for v in [0, 10, 11, 100, 500, 5000] {
            h.observe(BOUNDS, v);
        }
        assert_eq!(h.bucket_counts(BOUNDS), vec![2, 2, 1, 1]);
        assert_eq!(h.value_sum(), 5621);
    }

    #[test]
    fn count_is_sum_of_buckets() {
        let h = Histogram::new();
        for v in 0..200 {
            h.observe(BOUNDS, v * 7);
        }
        let total: u64 = h.bucket_counts(BOUNDS).iter().sum();
        assert_eq!(total, 200);
    }
}
