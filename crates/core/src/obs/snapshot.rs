//! Point-in-time materialization of a [`MetricsRegistry`].
//!
//! A snapshot folds counter stripes, copies gauge values, and derives
//! histogram counts from their buckets. Taken under concurrent writes it
//! is *internally coherent* (every histogram satisfies
//! `count == Σ buckets` by construction) and *monotone*: a later
//! snapshot of the same registry never shows a smaller counter value.

use super::registry::{MetricsRegistry, SeriesDef, ALL_COUNTERS, ALL_GAUGES, ALL_HISTS};

/// One scalar series (counter or gauge) with its folded value.
#[derive(Debug, Clone)]
pub struct Sample {
    /// The series' static definition.
    pub def: SeriesDef,
    /// Raw value in the series' storage unit.
    pub value: u64,
}

/// One histogram series with its per-bucket counts.
#[derive(Debug, Clone)]
pub struct HistSample {
    /// The series' static definition.
    pub def: SeriesDef,
    /// Ascending upper bucket bounds (storage unit).
    pub bounds: &'static [u64],
    /// Non-cumulative bucket counts; last entry is the `+Inf` bucket,
    /// so `buckets.len() == bounds.len() + 1`.
    pub buckets: Vec<u64>,
    /// Approximate sum of observed raw values.
    pub sum: u64,
}

impl HistSample {
    /// Total observation count, derived from the buckets (coherent with
    /// them by construction).
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }
}

/// A materialized view of every series in a registry.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// All counter series, exposition order.
    pub counters: Vec<Sample>,
    /// All gauge series, exposition order.
    pub gauges: Vec<Sample>,
    /// All histogram series, exposition order.
    pub histograms: Vec<HistSample>,
}

impl Snapshot {
    /// Look up a scalar series (counter or gauge) by exposition name.
    pub fn scalar(&self, name: &str) -> Option<u64> {
        self.counters.iter().chain(self.gauges.iter()).find(|s| s.def.name == name).map(|s| s.value)
    }
}

impl MetricsRegistry {
    /// Materialize every series into a [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: ALL_COUNTERS
                .iter()
                .map(|&id| Sample { def: id.def(), value: self.counter(id) })
                .collect(),
            gauges: ALL_GAUGES
                .iter()
                .map(|&id| Sample { def: id.def(), value: self.gauge(id) })
                .collect(),
            histograms: ALL_HISTS
                .iter()
                .map(|&id| {
                    let h = self.histogram(id);
                    HistSample {
                        def: id.def(),
                        bounds: id.bounds(),
                        buckets: h.bucket_counts(id.bounds()),
                        sum: h.value_sum(),
                    }
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::registry::{CounterId, GaugeId, HistId};
    use super::*;

    #[test]
    fn snapshot_covers_every_series() {
        let snap = MetricsRegistry::new().snapshot();
        assert_eq!(snap.counters.len(), CounterId::COUNT);
        assert_eq!(snap.gauges.len(), GaugeId::COUNT);
        assert_eq!(snap.histograms.len(), HistId::COUNT);
    }

    #[test]
    fn scalar_lookup_by_name() {
        let r = MetricsRegistry::new();
        r.add(CounterId::PoolSteals, 3);
        r.gauge_set(GaugeId::PoolWorkers, 7);
        let snap = r.snapshot();
        assert_eq!(snap.scalar("smpx_pool_steals_total"), Some(3));
        assert_eq!(snap.scalar("smpx_pool_workers"), Some(7));
        assert_eq!(snap.scalar("smpx_no_such_series"), None);
    }

    #[test]
    fn histogram_count_matches_buckets() {
        let r = MetricsRegistry::new();
        for v in [1, 3, 9, 200] {
            r.observe(HistId::ShardSegments, v);
        }
        let snap = r.snapshot();
        let h = snap.histograms.iter().find(|h| h.def.name == "smpx_shard_segments").unwrap();
        assert_eq!(h.count(), 4);
        assert_eq!(h.buckets.len(), h.bounds.len() + 1);
        assert_eq!(h.sum, 213);
    }
}
