//! Stage timers: drop-guard spans that charge wall-clock time to a
//! fixed set of pipeline phases.
//!
//! A [`StageTimer`] is armed only when observability is enabled, so the
//! disabled hot path never calls [`Instant::now`] — the entire cost is
//! one relaxed load and a branch. On drop an armed timer folds its
//! elapsed nanoseconds into the stage's `_seconds_total` counter and
//! bumps the matching `_events_total` counter.

use super::registry::CounterId;
use std::time::Instant;

/// The pipeline phases the process accounts wall-clock time against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageId {
    /// Automaton compilation (`Prefilter::compile`, `compile_multi`).
    Compile,
    /// Sequential document scan (one `filter_one` run).
    Scan,
    /// Synchronous read waits in the chunked reader source.
    IoWait,
    /// Stitching phase of an intra-document sharded run.
    Stitch,
    /// Sequential repair run around a speculation miss.
    Repair,
    /// Lifecycle generation publish (write-lock swap).
    Swap,
}

impl StageId {
    /// The `(nanos, events)` counter pair this stage folds into.
    pub const fn counters(self) -> (CounterId, CounterId) {
        match self {
            StageId::Compile => (CounterId::StageCompileNanos, CounterId::StageCompileEvents),
            StageId::Scan => (CounterId::StageScanNanos, CounterId::StageScanEvents),
            StageId::IoWait => (CounterId::StageIoWaitNanos, CounterId::StageIoWaitEvents),
            StageId::Stitch => (CounterId::StageStitchNanos, CounterId::StageStitchEvents),
            StageId::Repair => (CounterId::StageRepairNanos, CounterId::StageRepairEvents),
            StageId::Swap => (CounterId::StageSwapNanos, CounterId::StageSwapEvents),
        }
    }
}

/// A drop-guard span charging its lifetime to one [`StageId`].
///
/// Construct through [`crate::obs::stage`]; when observability is
/// disabled the guard is unarmed (`start == None`) and drop is free.
#[must_use = "a stage timer measures until dropped"]
pub struct StageTimer {
    stage: StageId,
    start: Option<Instant>,
}

impl StageTimer {
    /// An armed timer: starts counting now.
    pub(super) fn armed(stage: StageId) -> StageTimer {
        StageTimer { stage, start: Some(Instant::now()) }
    }

    /// An unarmed timer: records nothing on drop.
    pub(super) fn disarmed(stage: StageId) -> StageTimer {
        StageTimer { stage, start: None }
    }

    /// Whether this timer will record on drop.
    pub fn is_armed(&self) -> bool {
        self.start.is_some()
    }
}

impl Drop for StageTimer {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            let (nanos, events) = self.stage.counters();
            let elapsed = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            super::add(nanos, elapsed);
            super::add(events, 1);
        }
    }
}
