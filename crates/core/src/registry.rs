//! The multi-query registry: N standing queries, one shared automaton,
//! per-document "which queries match" verdicts.
//!
//! The paper's introduction frames prefiltering for publish/subscribe —
//! many standing queries, every incoming document filtered once. A
//! [`QueryRegistry`] collects the workload (XPath text or pre-extracted
//! path sets, each receiving a dense [`QueryId`]), and
//! [`compile`](QueryRegistry::compile) builds **one** automaton for the
//! union of the extracted path sets whose states carry query-id
//! attribution ([`crate::compile::Attribution`]): a single SMP pass over
//! a document then yields the union projection *and* the per-query
//! verdict, where N independent [`Prefilter`]s would each rescan the
//! document.
//!
//! The verdict contract is per query exactly what the single-query
//! prefilter's `match_events` counter gives: one-sided error, never a
//! false negative. The equivalence suite (`tests/multi_query.rs`) pins
//! registry verdicts against N independently compiled single-query runs
//! across delivery backends, thread counts and SIMD/scalar modes.

use crate::error::CoreError;
use crate::idset::QueryId;
use crate::runtime::parallel::{BatchError, FrozenPrefilter};
use crate::runtime::source::DocSource;
use crate::runtime::Prefilter;
use crate::stats::{MultiVerdict, RunStats};
use smpx_dtd::Dtd;
use smpx_paths::extract::extract_from_text;
use smpx_paths::PathSet;
use std::io::Write;

/// A workload of standing queries against one DTD, prior to compilation.
#[derive(Debug, Clone)]
pub struct QueryRegistry {
    dtd: Dtd,
    queries: Vec<PathSet>,
}

impl QueryRegistry {
    /// An empty registry for documents valid w.r.t. `dtd`.
    pub fn new(dtd: Dtd) -> QueryRegistry {
        QueryRegistry { dtd, queries: Vec::new() }
    }

    /// Register an XPath query; its projection path set is extracted as
    /// for a single-query compile. Ids are handed out densely in
    /// registration order, starting at 0.
    pub fn add_query(&mut self, text: &str) -> Result<QueryId, CoreError> {
        let paths = extract_from_text(text).map_err(CoreError::Query)?;
        Ok(self.add_paths(paths))
    }

    /// Register a pre-extracted projection path set as one query.
    pub fn add_paths(&mut self, paths: PathSet) -> QueryId {
        self.queries.push(paths);
        QueryId(self.queries.len() as u32 - 1)
    }

    /// Number of registered queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// No queries registered yet?
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The registered path set of `q`.
    pub fn paths(&self, q: QueryId) -> Option<&PathSet> {
        self.queries.get(q.0 as usize)
    }

    /// Compile the whole workload into one shared attributed automaton.
    ///
    /// Errors if the registry is empty, if any query's path set is empty,
    /// or if the DTD fails automaton construction — the same conditions a
    /// single-query [`Prefilter::compile`] would report.
    pub fn compile(&self) -> Result<MultiPrefilter, CoreError> {
        let shared = Prefilter::compile_multi(&self.dtd, &self.queries)?;
        Ok(MultiPrefilter { shared, dtd: self.dtd.clone(), queries: self.queries.clone() })
    }

    /// Compile the workload into a [`SharedPrefilter`] — the dynamic
    /// lifecycle handle whose query set stays mutable under traffic. The
    /// registered queries become generation 0 with their registry ids as
    /// the stable external ids; see [`crate::lifecycle`] for the
    /// generation-swap contract. Errors as [`compile`](Self::compile)
    /// would (the registry must be non-empty).
    pub fn compile_shared(&self) -> Result<crate::lifecycle::SharedPrefilter, CoreError> {
        crate::lifecycle::SharedPrefilter::new(self.dtd.clone(), self.queries.clone())
    }
}

/// A compiled multi-query prefilter: one pass per document answers the
/// whole registered workload.
pub struct MultiPrefilter {
    shared: Prefilter,
    dtd: Dtd,
    queries: Vec<PathSet>,
}

impl MultiPrefilter {
    /// Number of queries this automaton answers for.
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// The shared attributed automaton (for memory/state accounting).
    pub fn prefilter(&self) -> &Prefilter {
        &self.shared
    }

    /// One pass over an in-memory document: the union projection, the
    /// per-query verdict, and the run statistics.
    pub fn filter_to_vec(
        &mut self,
        doc: &[u8],
    ) -> Result<(Vec<u8>, MultiVerdict, RunStats), CoreError> {
        self.shared.run_multi(crate::runtime::source::SliceSource::new(doc), Vec::new())
    }

    /// One pass over a document from any delivery backend into `writer`.
    pub fn run_multi<S: DocSource, W: Write>(
        &mut self,
        src: S,
        writer: W,
    ) -> Result<(W, MultiVerdict, RunStats), CoreError> {
        self.shared.run_multi(src, writer)
    }

    /// Freeze the shared automaton for parallel execution; the frozen
    /// handle's `run_multi_batch_parallel` returns per-document verdicts
    /// in input order.
    pub fn freeze(&self) -> FrozenPrefilter {
        self.shared.freeze()
    }

    /// Batch entry through the work-stealing pool: per-document
    /// `(sink, verdict, stats)` in input order; `threads == 0` uses the
    /// machine's available parallelism.
    pub fn run_batch_parallel<S, W, I>(
        &self,
        batch: I,
        threads: usize,
    ) -> Result<Vec<(W, MultiVerdict, RunStats)>, BatchError>
    where
        S: DocSource + Send,
        W: Write + Send,
        I: IntoIterator<Item = (S, W)>,
    {
        self.shared.run_multi_batch_parallel(batch, threads)
    }

    /// A single-query prefilter for one registered query, compiled from
    /// its own path set — identical, automaton and output bytes, to an
    /// independently compiled `Prefilter::compile(dtd, paths_q)`. Serves
    /// subscribers that want `q`'s exact projection rather than the union
    /// projection the shared pass emits. Compiled on demand: the registry
    /// pass itself never pays for N single-query compiles.
    pub fn project_query(&self, q: QueryId) -> Result<Prefilter, CoreError> {
        let paths = self.queries.get(q.0 as usize).ok_or(CoreError::NoPaths)?;
        Prefilter::compile(&self.dtd, paths)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EX2: &[u8] =
        br#"<!DOCTYPE a [ <!ELEMENT a (b|c)*> <!ELEMENT b (#PCDATA)> <!ELEMENT c (b,b?)> ]>"#;

    fn registry() -> QueryRegistry {
        QueryRegistry::new(Dtd::parse(EX2).unwrap())
    }

    #[test]
    fn ids_are_dense_registration_order() {
        let mut r = registry();
        assert!(r.is_empty());
        assert_eq!(r.add_query("/a/b").unwrap(), QueryId(0));
        assert_eq!(r.add_query("//c").unwrap(), QueryId(1));
        assert_eq!(r.len(), 2);
        assert!(r.paths(QueryId(1)).is_some());
        assert!(r.paths(QueryId(2)).is_none());
    }

    #[test]
    fn bad_query_reports_parse_error() {
        let mut r = registry();
        let err = r.add_query("/a[").unwrap_err();
        assert!(matches!(err, CoreError::Query(_)), "got {err}");
        assert!(err.to_string().contains("query error"));
    }

    #[test]
    fn empty_registry_refuses_to_compile() {
        let r = registry();
        assert!(matches!(r.compile(), Err(CoreError::NoPaths)));
    }

    #[test]
    fn one_pass_attributes_to_the_matching_queries() {
        let mut r = registry();
        let qb = r.add_query("/a/b").unwrap();
        let qc = r.add_query("//c").unwrap();
        let mut mpf = r.compile().unwrap();
        assert_eq!(mpf.query_count(), 2);

        let (_, verdict, _) = mpf.filter_to_vec(b"<a><b>x</b></a>").unwrap();
        assert!(verdict.is_matched(qb));
        assert!(!verdict.is_matched(qc));
        assert_eq!(verdict.n_queries, 2);

        let (_, verdict, _) = mpf.filter_to_vec(b"<a><c><b>y</b></c></a>").unwrap();
        assert!(verdict.is_matched(qc));
        assert_eq!(verdict.matched_ids(), vec![qc], "b-under-c is not /a/b");

        let (_, verdict, _) = mpf.filter_to_vec(b"<a></a>").unwrap();
        assert!(verdict.matched_ids().is_empty());
    }

    #[test]
    fn project_query_equals_independent_single_compile() {
        let mut r = registry();
        let qb = r.add_query("/a/b").unwrap();
        let mpf = r.compile().unwrap();
        let doc = b"<a><c><b>n</b></c><b>keep</b></a>";
        let (want, _) = Prefilter::compile(&Dtd::parse(EX2).unwrap(), r.paths(qb).unwrap())
            .unwrap()
            .filter_to_vec(doc)
            .unwrap();
        let (got, _) = mpf.project_query(qb).unwrap().filter_to_vec(doc).unwrap();
        assert_eq!(got, want);
    }
}
