//! Query identifiers and the hand-rolled id-set bitset.
//!
//! The multi-query registry attributes automaton hits to *sets* of
//! standing queries (the publish/subscribe scenario of the paper's
//! introduction). Those sets are dense small-integer sets — query ids are
//! handed out contiguously from zero — so a plain `u64`-block bitset is
//! the right representation: `O(n/64)` union on the hot path, one bit per
//! registered query, no dependencies. (The exemplar systems use roaring
//! bitmaps for the same job; crates.io is unavailable offline and dense
//! ids don't need the compressed representation anyway.)

/// Identifier of a registered query: its 0-based registration index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryId(pub u32);

impl std::fmt::Display for QueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// A set of [`QueryId`]s as a `u64`-block bitset.
///
/// Canonical form: the block vector never ends in a zero block, so the
/// derived `Eq`/`Hash` compare set contents, not allocation history.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct QueryIdSet {
    blocks: Vec<u64>,
}

impl QueryIdSet {
    /// The empty set.
    pub fn new() -> QueryIdSet {
        QueryIdSet::default()
    }

    #[inline]
    fn split(id: QueryId) -> (usize, u64) {
        ((id.0 / 64) as usize, 1u64 << (id.0 % 64))
    }

    /// Drop trailing zero blocks (the canonical-form invariant).
    fn trim(&mut self) {
        while self.blocks.last() == Some(&0) {
            self.blocks.pop();
        }
    }

    /// Insert `id`; returns whether it was newly added.
    pub fn insert(&mut self, id: QueryId) -> bool {
        let (block, bit) = Self::split(id);
        if block >= self.blocks.len() {
            self.blocks.resize(block + 1, 0);
        }
        let fresh = self.blocks[block] & bit == 0;
        self.blocks[block] |= bit;
        fresh
    }

    /// Remove `id`; returns whether it was present.
    pub fn remove(&mut self, id: QueryId) -> bool {
        let (block, bit) = Self::split(id);
        if block >= self.blocks.len() || self.blocks[block] & bit == 0 {
            return false;
        }
        self.blocks[block] &= !bit;
        self.trim();
        true
    }

    /// Is `id` in the set?
    pub fn contains(&self, id: QueryId) -> bool {
        let (block, bit) = Self::split(id);
        self.blocks.get(block).is_some_and(|b| b & bit != 0)
    }

    /// Add every id of `other` to `self` (the hot-path operation: one OR
    /// per 64 queries when a matcher hit is attributed).
    pub fn union_with(&mut self, other: &QueryIdSet) {
        if other.blocks.len() > self.blocks.len() {
            self.blocks.resize(other.blocks.len(), 0);
        }
        for (dst, src) in self.blocks.iter_mut().zip(&other.blocks) {
            *dst |= src;
        }
    }

    /// Do the two sets share an element?
    pub fn intersects(&self, other: &QueryIdSet) -> bool {
        self.blocks.iter().zip(&other.blocks).any(|(a, b)| a & b != 0)
    }

    /// Number of ids in the set.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Remove every id.
    pub fn clear(&mut self) {
        self.blocks.clear();
    }

    /// The ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = QueryId> + '_ {
        self.blocks.iter().enumerate().flat_map(|(i, &block)| {
            let base = i as u32 * 64;
            let mut rest = block;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let bit = rest.trailing_zeros();
                rest &= rest - 1;
                Some(QueryId(base + bit))
            })
        })
    }

    /// The ids as a sorted vector (the per-document verdict shape).
    pub fn to_vec(&self) -> Vec<QueryId> {
        self.iter().collect()
    }

    /// Approximate heap bytes (the `Mem` accounting of the tables).
    pub fn memory_bytes(&self) -> usize {
        self.blocks.capacity() * std::mem::size_of::<u64>()
    }
}

impl FromIterator<QueryId> for QueryIdSet {
    fn from_iter<I: IntoIterator<Item = QueryId>>(iter: I) -> QueryIdSet {
        let mut s = QueryIdSet::new();
        for id in iter {
            s.insert(id);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove_roundtrip() {
        let mut s = QueryIdSet::new();
        assert!(s.insert(QueryId(3)));
        assert!(!s.insert(QueryId(3)), "double insert reports not-fresh");
        assert!(s.insert(QueryId(64)));
        assert!(s.contains(QueryId(3)) && s.contains(QueryId(64)));
        assert!(!s.contains(QueryId(63)));
        assert_eq!(s.len(), 2);
        assert!(s.remove(QueryId(64)));
        assert!(!s.remove(QueryId(64)));
        assert_eq!(s.to_vec(), vec![QueryId(3)]);
    }

    #[test]
    fn canonical_form_makes_eq_content_based() {
        let mut a = QueryIdSet::new();
        a.insert(QueryId(200));
        a.insert(QueryId(1));
        a.remove(QueryId(200));
        let mut b = QueryIdSet::new();
        b.insert(QueryId(1));
        assert_eq!(a, b, "trailing zero blocks must be trimmed");
        a.clear();
        assert_eq!(a, QueryIdSet::new());
        assert!(a.is_empty());
    }

    #[test]
    fn union_and_intersects() {
        let a: QueryIdSet = [0u32, 63, 64].into_iter().map(QueryId).collect();
        let b: QueryIdSet = [64u32, 128].into_iter().map(QueryId).collect();
        assert!(a.intersects(&b));
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.to_vec(), [0u32, 63, 64, 128].map(QueryId).to_vec());
        let c: QueryIdSet = [1u32, 65].into_iter().map(QueryId).collect();
        assert!(!a.intersects(&c));
        assert!(u.memory_bytes() >= 3 * 8);
    }
}
