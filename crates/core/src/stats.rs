//! Per-run statistics matching the paper's Table I/II rows, plus the
//! per-document verdict of a multi-query run.

use crate::idset::{QueryId, QueryIdSet};

/// Statistics collected by an instrumented prefilter run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunStats {
    /// Input size in bytes.
    pub input_bytes: u64,
    /// Output (projected document) size in bytes.
    pub output_bytes: u64,
    /// Characters inspected by genuine pattern comparisons: matcher
    /// comparisons plus match verification (the paper's `Char Comp.`,
    /// reported as a percentage of the input).
    pub chars_compared: u64,
    /// Bytes consumed by scanning: the vectorized skip-scan (`memscan`)
    /// plus the tag-end and balanced-scan traversal — the latter in the
    /// `SMPX_NO_SIMD=1` mode too, so this split means the same thing in
    /// both modes. Counted separately from `chars_compared` so the
    /// paper's characters-inspected accounting stays honest: these bytes
    /// were inspected, but by a scan rather than pattern comparisons.
    pub bytes_scanned: u64,
    /// Number of forward shifts performed by the matchers.
    pub shifts: u64,
    /// Sum of shift sizes (`∅ Shift Size` = shift_total / shifts).
    pub shift_total: u64,
    /// Characters skipped by initial jump offsets alone (the paper's
    /// `Initial Jumps`, reported as a percentage of the input).
    pub initial_jump_chars: u64,
    /// Number of tokens matched and processed.
    pub tokens_matched: u64,
    /// Number of keyword matches rejected by the tag-name boundary check
    /// (the paper's prefix-tag special case, e.g. `<Abstract` vs
    /// `<AbstractText`).
    pub false_matches: u64,
    /// Peak owned I/O-buffer bytes the document source allocated (the
    /// paper's `Mem` window share): the window capacity for the reader
    /// backend, zero for zero-copy slice/mmap delivery.
    pub io_window_bytes: u64,
    /// Transitions into states whose action indicates a potential query
    /// match (`copy on`/`copy off`/`copy tag + atts`). Zero means the
    /// document provably selects nothing; non-zero is the single-query
    /// side of the prefilter verdict, with the same false-positive
    /// contract as the projection itself (conservative, never a false
    /// negative).
    pub match_events: u64,
    /// Number of stitched segments of an intra-document sharded run
    /// (`Prefilter::run_sharded`): the calibration prefix plus every
    /// spliced shard and repair segment. `0` = the document ran unsplit
    /// (sequential runs, and sharded runs that fell back). Accumulated
    /// batch totals sum the segments across documents.
    pub shards: u64,
}

impl RunStats {
    /// `Char Comp. [%]` of Table I/II.
    pub fn char_comp_pct(&self) -> f64 {
        pct(self.chars_compared, self.input_bytes)
    }

    /// `Initial Jumps [%]` of Table I/II.
    pub fn initial_jumps_pct(&self) -> f64 {
        pct(self.initial_jump_chars, self.input_bytes)
    }

    /// Vector-scanned bytes as a percentage of the input (the skip-scan
    /// companion column to [`char_comp_pct`](Self::char_comp_pct)).
    pub fn scanned_pct(&self) -> f64 {
        pct(self.bytes_scanned, self.input_bytes)
    }

    /// `∅ Shift Size [char]` of Table I/II.
    pub fn avg_shift(&self) -> f64 {
        if self.shifts == 0 {
            0.0
        } else {
            self.shift_total as f64 / self.shifts as f64
        }
    }

    /// Fold another run's counters into this one (a per-batch total row):
    /// counters add up; the I/O window takes the maximum, since batch
    /// documents are processed one at a time.
    pub fn accumulate(&mut self, other: &RunStats) {
        let RunStats {
            input_bytes,
            output_bytes,
            chars_compared,
            bytes_scanned,
            shifts,
            shift_total,
            initial_jump_chars,
            tokens_matched,
            false_matches,
            io_window_bytes,
            match_events,
            shards,
        } = *other;
        self.input_bytes += input_bytes;
        self.output_bytes += output_bytes;
        self.chars_compared += chars_compared;
        self.bytes_scanned += bytes_scanned;
        self.shifts += shifts;
        self.shift_total += shift_total;
        self.initial_jump_chars += initial_jump_chars;
        self.tokens_matched += tokens_matched;
        self.false_matches += false_matches;
        self.io_window_bytes = self.io_window_bytes.max(io_window_bytes);
        self.match_events += match_events;
        self.shards += shards;
    }

    /// Output size relative to input.
    pub fn projection_ratio(&self) -> f64 {
        if self.input_bytes == 0 {
            0.0
        } else {
            self.output_bytes as f64 / self.input_bytes as f64
        }
    }
}

/// The per-document answer of a multi-query run: *which* of the
/// registered queries might match this document.
///
/// The verdict inherits the prefilter's one-sided error: a listed query
/// may still evaluate to the empty answer on the document (false
/// positive, e.g. a value predicate the prefilter cannot check), but a
/// query missing from the verdict is *guaranteed* to have an empty
/// answer — exactly the contract of each query's own single-query
/// [`RunStats::match_events`] counter, query by query.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MultiVerdict {
    /// Ids of the queries with at least one match event this document.
    pub matched: QueryIdSet,
    /// How many queries the registry answered for (ids are `0..n_queries`).
    pub n_queries: u32,
}

impl MultiVerdict {
    /// Might query `q` match this document?
    pub fn is_matched(&self, q: QueryId) -> bool {
        self.matched.contains(q)
    }

    /// The matched query ids in ascending order.
    pub fn matched_ids(&self) -> Vec<QueryId> {
        self.matched.to_vec()
    }
}

fn pct(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentages() {
        let s = RunStats {
            input_bytes: 200,
            output_bytes: 50,
            chars_compared: 40,
            bytes_scanned: 100,
            shifts: 10,
            shift_total: 57,
            initial_jump_chars: 4,
            tokens_matched: 3,
            false_matches: 0,
            io_window_bytes: 0,
            match_events: 1,
            shards: 0,
        };
        assert!((s.char_comp_pct() - 20.0).abs() < 1e-9);
        assert!((s.scanned_pct() - 50.0).abs() < 1e-9);
        assert!((s.initial_jumps_pct() - 2.0).abs() < 1e-9);
        assert!((s.avg_shift() - 5.7).abs() < 1e-9);
        assert!((s.projection_ratio() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn accumulate_sums_counters_and_maxes_window() {
        let a = RunStats {
            input_bytes: 100,
            output_bytes: 10,
            chars_compared: 5,
            io_window_bytes: 64,
            ..RunStats::default()
        };
        let b = RunStats {
            input_bytes: 50,
            output_bytes: 20,
            chars_compared: 7,
            io_window_bytes: 32,
            ..RunStats::default()
        };
        let mut total = RunStats::default();
        total.accumulate(&a);
        total.accumulate(&b);
        assert_eq!(total.input_bytes, 150);
        assert_eq!(total.output_bytes, 30);
        assert_eq!(total.chars_compared, 12);
        assert_eq!(total.io_window_bytes, 64, "windows are sequential, not additive");
    }

    /// Pins the fold rule of **every** field: all counters sum, the
    /// `io_window_bytes` peak max-folds. The exhaustive destructuring
    /// makes this test fail to compile when a field is added without
    /// stating its fold rule here (and mirroring it in `obs::record_run`).
    #[test]
    fn accumulate_fold_rule_per_field() {
        let a = RunStats {
            input_bytes: 1,
            output_bytes: 2,
            chars_compared: 3,
            bytes_scanned: 4,
            shifts: 5,
            shift_total: 6,
            initial_jump_chars: 7,
            tokens_matched: 8,
            false_matches: 9,
            io_window_bytes: 100,
            match_events: 11,
            shards: 12,
        };
        let b = RunStats {
            input_bytes: 10,
            output_bytes: 20,
            chars_compared: 30,
            bytes_scanned: 40,
            shifts: 50,
            shift_total: 60,
            initial_jump_chars: 70,
            tokens_matched: 80,
            false_matches: 90,
            io_window_bytes: 99,
            match_events: 110,
            shards: 120,
        };
        let mut total = RunStats::default();
        total.accumulate(&a);
        total.accumulate(&b);
        let RunStats {
            input_bytes,
            output_bytes,
            chars_compared,
            bytes_scanned,
            shifts,
            shift_total,
            initial_jump_chars,
            tokens_matched,
            false_matches,
            io_window_bytes,
            match_events,
            shards,
        } = total;
        assert_eq!(input_bytes, 11, "sum");
        assert_eq!(output_bytes, 22, "sum");
        assert_eq!(chars_compared, 33, "sum");
        assert_eq!(bytes_scanned, 44, "sum");
        assert_eq!(shifts, 55, "sum");
        assert_eq!(shift_total, 66, "sum");
        assert_eq!(initial_jump_chars, 77, "sum");
        assert_eq!(tokens_matched, 88, "sum");
        assert_eq!(false_matches, 99, "sum");
        assert_eq!(io_window_bytes, 100, "max: windows are sequential, not additive");
        assert_eq!(match_events, 121, "sum");
        assert_eq!(shards, 132, "sum");
    }

    #[test]
    fn zero_safe() {
        let s = RunStats::default();
        assert_eq!(s.char_comp_pct(), 0.0);
        assert_eq!(s.avg_shift(), 0.0);
        assert_eq!(s.projection_ratio(), 0.0);
    }
}
