//! Parse-only throughput baselines (the Xerces comparison of Fig. 7(c)).
//!
//! "We have built a minimal application on top of the Xerces API that just
//! parses the input into tokens. Note that the Xerces SAX parser checks
//! well-formedness by default." — our strict variant does the same
//! (tag-name validation, attribute syntax, balance, single root); the
//! lenient variant skips the per-character checks, standing in for the
//! cheaper SAX reader configuration.

use smpx_xml::{check_well_formed, Token, Tokenizer, XmlError};

/// Tokenize with full well-formedness checking (SAX2-like). Returns the
/// token count so the work cannot be optimized away.
pub fn parse_strict(doc: &[u8]) -> Result<usize, XmlError> {
    check_well_formed(doc)
}

/// Tokenize without name/attribute validation (SAX1-like). Still respects
/// quoting and tag structure; returns token count and a checksum of tag
/// name lengths (keeps the loop honest under optimization).
pub fn parse_lenient(doc: &[u8]) -> Result<(usize, u64), XmlError> {
    let mut count = 0usize;
    let mut checksum = 0u64;
    for t in Tokenizer::lenient(doc) {
        match t? {
            Token::StartTag { name, .. } | Token::EndTag { name, .. } => {
                count += 1;
                checksum = checksum.wrapping_add(name.len() as u64);
            }
            _ => count += 1,
        }
    }
    Ok((count, checksum))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_counts_tokens() {
        let n = parse_strict(b"<a><b>t</b><c/></a>").unwrap();
        assert_eq!(n, 6);
    }

    #[test]
    fn strict_rejects_malformed() {
        assert!(parse_strict(b"<a><b></a></b>").is_err());
        assert!(parse_strict(b"< a></a>").is_err());
    }

    #[test]
    fn lenient_accepts_sloppy_names() {
        // Strict rejects a leading digit in a name; lenient tokenizes it.
        assert!(parse_strict(b"<1a></1a>").is_err());
        let (n, _) = parse_lenient(b"<1a></1a>").unwrap();
        assert_eq!(n, 2);
    }

    #[test]
    fn lenient_checksum_depends_on_names() {
        let (_, c1) = parse_lenient(b"<a></a>").unwrap();
        let (_, c2) = parse_lenient(b"<longer></longer>").unwrap();
        assert_ne!(c1, c2);
    }
}
