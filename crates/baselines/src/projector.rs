//! Token-level projector: the Def. 3 semantics applied per token.
//!
//! Emission rules mirror the SMP runtime exactly so outputs are
//! byte-comparable:
//!
//! * `#`-matched node (C2 at the leaf) → raw copy of the whole subtree,
//! * node selected by a complete named path of `P` → raw copy of its
//!   opening tag (attributes included), constructed `</name>`,
//! * other relevant nodes (prefixes, C3 stopovers) → constructed `<name>`
//!   / `</name>` (or `<name/>` for bachelors),
//! * text, comments, PIs, prolog → only inside raw-copied subtrees,
//! * everything else → dropped.
//!
//! Per-context decisions are cached (parent frame → child name → action),
//! which is what a production tokenizing projector would do; the Table III
//! comparison against SMP is therefore not handicapped by naive repeated
//! path matching.

use smpx_paths::{PathSet, Relevance};
use smpx_xml::{Token, Tokenizer, XmlError};
use std::collections::HashMap;

/// What to do with a node, decided once per (context, name).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Nop,
    Tag,
    TagAtts,
    Subtree,
}

struct Frame {
    name: String,
    cache: HashMap<Vec<u8>, Kind>,
}

/// A tokenizing, stack-based XML projector (oracle + TBP stand-in).
pub struct TokenProjector {
    rel: Relevance,
}

impl TokenProjector {
    /// Compile the relevance test for `paths`.
    pub fn new(paths: &PathSet) -> TokenProjector {
        TokenProjector { rel: Relevance::new(paths) }
    }

    /// Project `doc`, returning the preserved bytes.
    pub fn project(&self, doc: &[u8]) -> Result<Vec<u8>, XmlError> {
        let mut out = Vec::new();
        let mut frames: Vec<Frame> = vec![Frame { name: String::new(), cache: HashMap::new() }];
        // (raw-copy start, stack depth of the copied node's parent).
        let mut copy: Option<(usize, usize)> = None;

        for token in Tokenizer::new(doc) {
            match token? {
                Token::StartTag { name, self_closing, start, end, .. } => {
                    if copy.is_some() {
                        if !self_closing {
                            frames.push(Frame {
                                name: String::from_utf8_lossy(name).into_owned(),
                                cache: HashMap::new(),
                            });
                        }
                        continue;
                    }
                    let kind = self.decide(&mut frames, name);
                    match kind {
                        Kind::Subtree => {
                            if self_closing {
                                out.extend_from_slice(&doc[start..end]);
                            } else {
                                copy = Some((start, frames.len()));
                            }
                        }
                        Kind::TagAtts => out.extend_from_slice(&doc[start..end]),
                        Kind::Tag => {
                            out.push(b'<');
                            out.extend_from_slice(name);
                            if self_closing {
                                out.push(b'/');
                            }
                            out.push(b'>');
                        }
                        Kind::Nop => {}
                    }
                    if !self_closing {
                        frames.push(Frame {
                            name: String::from_utf8_lossy(name).into_owned(),
                            cache: HashMap::new(),
                        });
                    }
                }
                Token::EndTag { name, end, .. } => {
                    frames.pop().ok_or(XmlError {
                        kind: smpx_xml::XmlErrorKind::MismatchedTag,
                        pos: end,
                    })?;
                    if let Some((from, depth)) = copy {
                        if frames.len() == depth {
                            out.extend_from_slice(&doc[from..end]);
                            copy = None;
                        }
                        continue;
                    }
                    // The node's kind is cached in the (now topmost) parent
                    // frame.
                    let kind = self.decide(&mut frames, name);
                    match kind {
                        Kind::Tag | Kind::TagAtts => {
                            out.extend_from_slice(b"</");
                            out.extend_from_slice(name);
                            out.push(b'>');
                        }
                        Kind::Subtree => {
                            // Unreachable on well-nested input: subtree
                            // copies consume their close tag above.
                            out.extend_from_slice(b"</");
                            out.extend_from_slice(name);
                            out.push(b'>');
                        }
                        Kind::Nop => {}
                    }
                }
                Token::Text { .. }
                | Token::Cdata { .. }
                | Token::Comment { .. }
                | Token::Pi { .. }
                | Token::Doctype { .. } => {}
            }
        }
        Ok(out)
    }

    /// Decision for a `name`-child of the current context (cached in the
    /// topmost frame). The document branch is the names of all frames
    /// above the sentinel plus `name` itself.
    fn decide(&self, frames: &mut [Frame], name: &[u8]) -> Kind {
        if let Some(&k) = frames.last().expect("sentinel frame").cache.get(name) {
            return k;
        }
        let name_str = String::from_utf8_lossy(name).into_owned();
        let kind = {
            let mut full: Vec<&str> = frames[1..].iter().map(|f| f.name.as_str()).collect();
            full.push(&name_str);
            if self.rel.c2_leaf(&full) {
                Kind::Subtree
            } else if self.rel.relevant_tag(&full) {
                if self.rel.c1_exact(&full) {
                    Kind::TagAtts
                } else {
                    Kind::Tag
                }
            } else {
                Kind::Nop
            }
        };
        frames.last_mut().expect("sentinel frame").cache.insert(name.to_vec(), kind);
        kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn project(paths: &[&str], doc: &[u8]) -> Vec<u8> {
        let ps = PathSet::parse(paths).unwrap();
        TokenProjector::new(&ps).project(doc).unwrap()
    }

    #[test]
    fn example2_matches_smp_semantics() {
        let out =
            project(&["/*", "/a/b#"], b"<a><c><b>x</b></c><b>keep</b><c><b>y</b><b>z</b></c></a>");
        assert_eq!(out, b"<a><b>keep</b></a>".to_vec());
    }

    #[test]
    fn subtree_copy_is_raw() {
        let out = project(&["/*", "//c#"], b"<a><b>drop</b><c att=\"kept\"><b>in  c</b></c></a>");
        assert_eq!(out, b"<a><c att=\"kept\"><b>in  c</b></c></a>".to_vec());
    }

    #[test]
    fn example6_keeps_c_tags_via_c3() {
        let out = project(&["/*", "/a/b#", "//b#"], b"<a><c><b>T</b></c></a>");
        assert_eq!(out, b"<a><c><b>T</b></c></a>".to_vec());
    }

    #[test]
    fn named_complete_path_keeps_attributes() {
        let out = project(
            &["/*", "/site/person", "/site/person/name#"],
            b"<site><person id=\"p1\" x=\"2\"><name>N</name><junk>j</junk></person></site>",
        );
        assert_eq!(out, b"<site><person id=\"p1\" x=\"2\"><name>N</name></person></site>".to_vec());
    }

    #[test]
    fn prefix_ancestors_lose_attributes() {
        let out = project(
            &["/*", "/site/person/name#"],
            b"<site main=\"1\"><person id=\"p1\"><name>N</name></person></site>",
        );
        assert_eq!(out, b"<site><person><name>N</name></person></site>".to_vec());
    }

    #[test]
    fn bachelor_tags() {
        let out = project(&["/*", "/a/b#", "/a/k"], b"<a><b/><k x=\"1\"/><z/></a>");
        // b is #: raw; k is a complete named path: raw with atts; z: dropped.
        assert_eq!(out, b"<a><b/><k x=\"1\"/></a>".to_vec());
    }

    #[test]
    fn prolog_comments_text_dropped_outside_subtrees() {
        let out = project(
            &["/*", "/a/b#"],
            b"<?xml version=\"1.0\"?><!-- c --><a>text<b>in<!-- inner --></b>tail</a>",
        );
        assert_eq!(out, b"<a><b>in<!-- inner --></b></a>".to_vec());
    }

    #[test]
    fn malformed_input_errors() {
        let ps = PathSet::parse(&["/*"]).unwrap();
        let p = TokenProjector::new(&ps);
        assert!(
            p.project(b"<a><b></a></b>").is_err()
                || !p.project(b"<a><b></a></b>").unwrap().is_empty()
        );
    }
}
