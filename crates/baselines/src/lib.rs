//! Tokenizing comparators for the SMP evaluation.
//!
//! Everything in this crate processes its input **one token (or character)
//! at a time** — exactly the cost model the paper argues against:
//!
//! * [`TokenProjector`] — a schema-independent, stack-based projector that
//!   applies the Def. 3 relevance semantics per token. It plays two roles:
//!   the *correctness oracle* for the SMP runtime (their outputs must be
//!   byte-identical on valid documents) and the *type-based projection
//!   (TBP)* comparator of Table III (like TBP it tokenizes the complete
//!   input, and like TBP it caches per-context decisions rather than
//!   re-matching paths on every token).
//! * [`sax`] — parse-only throughput baselines standing in for Xerces
//!   SAX1/SAX2 (Fig. 7(c)).
//! * [`ac_scan`] — an Aho–Corasick all-tags scanner in the spirit of the
//!   paper's related work \[21\]: finds every tag of a vocabulary while
//!   touching every input character once.
//!
//! # Quick start
//!
//! ```
//! use smpx_baselines::TokenProjector;
//! use smpx_paths::extract;
//!
//! let paths = extract::extract_from_text("//item").unwrap();
//! let projector = TokenProjector::new(&paths);
//! let out = projector
//!     .project(b"<site><item>keep</item><junk>drop</junk></site>")
//!     .unwrap();
//! let out = String::from_utf8(out).unwrap();
//! assert!(out.contains("<item>keep</item>"));
//! assert!(!out.contains("junk"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ac_scan;
mod projector;
pub mod sax;

pub use projector::TokenProjector;
