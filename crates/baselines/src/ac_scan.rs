//! Aho–Corasick all-tags scanner (the related-work \[21\] cost model).
//!
//! Builds one Aho–Corasick automaton over the `<name`/`</name` prefixes of
//! an element vocabulary and drives it over the raw input — every character
//! is inspected exactly once, in contrast to the Commentz–Walter skipping
//! the SMP runtime does. Used by the `ablations` bench to isolate the
//! value of skipping.

use smpx_stringmatch::AhoCorasick;

/// A compiled scanner over a tag-name vocabulary.
pub struct AcTagScanner {
    ac: AhoCorasick,
    patterns: Vec<Vec<u8>>,
}

impl AcTagScanner {
    /// Build from element names (each contributes `<name` and `</name`).
    pub fn new<S: AsRef<str>>(names: &[S]) -> AcTagScanner {
        assert!(!names.is_empty(), "vocabulary must be non-empty");
        let mut patterns = Vec::with_capacity(names.len() * 2);
        for n in names {
            let n = n.as_ref();
            patterns.push(format!("<{n}").into_bytes());
            patterns.push(format!("</{n}").into_bytes());
        }
        AcTagScanner { ac: AhoCorasick::new(&patterns), patterns }
    }

    /// Scan `doc`, returning how many *verified* tag tokens of the
    /// vocabulary occur (boundary-checked like the SMP runtime, so
    /// `<Abstract` does not count inside `<AbstractText`).
    pub fn count_tags(&self, doc: &[u8]) -> usize {
        let mut count = 0usize;
        for m in self.ac.find_iter(doc) {
            let boundary = doc
                .get(m.start + self.patterns[m.pattern].len())
                .is_some_and(|&c| matches!(c, b'>' | b'/' | b' ' | b'\t' | b'\r' | b'\n'));
            if boundary {
                count += 1;
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_open_close_and_bachelor() {
        let s = AcTagScanner::new(&["a", "b"]);
        assert_eq!(s.count_tags(b"<a><b/>x</a>"), 3);
    }

    #[test]
    fn boundary_check_rejects_prefix_names() {
        let s = AcTagScanner::new(&["Abstract"]);
        assert_eq!(s.count_tags(b"<AbstractText>t</AbstractText>"), 0);
        assert_eq!(s.count_tags(b"<Abstract>t</Abstract>"), 2);
        let both = AcTagScanner::new(&["Abstract", "AbstractText"]);
        assert_eq!(both.count_tags(b"<AbstractText>t</AbstractText><Abstract/>"), 3);
    }

    #[test]
    fn unrelated_tags_ignored() {
        let s = AcTagScanner::new(&["item"]);
        assert_eq!(s.count_tags(b"<site><name>item</name><item x=\"1\">i</item></site>"), 2);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_vocabulary_panics() {
        let _ = AcTagScanner::new::<&str>(&[]);
    }
}
