//! DOM-to-bytes serialization.

use crate::dom::{Document, NodeId, NodeKind};
use crate::escape::escape_into;

/// Serialize the subtree rooted at `id` into XML bytes. Text and attribute
/// values are re-escaped; empty elements are written as bachelor tags.
pub fn serialize(doc: &Document, id: NodeId) -> Vec<u8> {
    let mut out = Vec::new();
    write_node(doc, id, &mut out);
    out
}

fn write_node(doc: &Document, id: NodeId, out: &mut Vec<u8>) {
    match doc.kind(id) {
        NodeKind::Text(t) => escape_into(t, out),
        NodeKind::Element { name, attrs } => {
            out.push(b'<');
            out.extend_from_slice(name);
            for (an, av) in attrs {
                out.push(b' ');
                out.extend_from_slice(an);
                out.extend_from_slice(b"=\"");
                escape_into(av, out);
                out.push(b'"');
            }
            let mut children = doc.children(id).peekable();
            if children.peek().is_none() {
                out.extend_from_slice(b"/>");
                return;
            }
            out.push(b'>');
            for c in children {
                write_node(doc, c, out);
            }
            out.extend_from_slice(b"</");
            out.extend_from_slice(name);
            out.push(b'>');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_canonicalizes() {
        let input = br#"<a x="1"><b>t</b><c/></a>"#;
        let d = Document::parse(input).unwrap();
        assert_eq!(serialize(&d, d.root()), input.to_vec());
    }

    #[test]
    fn empty_element_becomes_bachelor() {
        let d = Document::parse(b"<a><b></b></a>").unwrap();
        assert_eq!(serialize(&d, d.root()), b"<a><b/></a>".to_vec());
    }

    #[test]
    fn escaping_applied() {
        let d = Document::parse(b"<a x=\"1&amp;2\">3&lt;4</a>").unwrap();
        assert_eq!(serialize(&d, d.root()), b"<a x=\"1&amp;2\">3&lt;4</a>".to_vec());
    }

    #[test]
    fn parse_serialize_parse_is_stable() {
        let input = br#"<r><p a="&quot;q&quot;">x<y/>z</p></r>"#;
        let d1 = Document::parse(input).unwrap();
        let s1 = serialize(&d1, d1.root());
        let d2 = Document::parse(&s1).unwrap();
        let s2 = serialize(&d2, d2.root());
        assert_eq!(s1, s2);
    }
}
