//! Error type shared by the tokenizer, DOM builder and well-formedness
//! checker.

use std::fmt;

/// What went wrong while reading XML.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XmlErrorKind {
    /// Input ended inside a construct (tag, comment, CDATA, …).
    UnexpectedEof,
    /// A character that may not appear at this point.
    UnexpectedChar(u8),
    /// Tag or attribute name is empty or starts with an illegal byte.
    BadName,
    /// Attribute value not quoted, or quote never closed.
    BadAttribute,
    /// `</a>` closed an element that was not open (or names mismatch).
    MismatchedTag,
    /// Content after the document element, or more than one root.
    TrailingContent,
    /// Document contains no element at all.
    NoRootElement,
    /// `--` inside a comment, or comment not terminated by `-->`.
    BadComment,
    /// Unterminated or malformed processing instruction / CDATA / DOCTYPE.
    BadMarkupDecl,
}

/// An error with the byte offset at which it was detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XmlError {
    /// Classification of the failure.
    pub kind: XmlErrorKind,
    /// Byte offset into the input at which the error was detected.
    pub pos: usize,
}

impl XmlError {
    pub(crate) fn new(kind: XmlErrorKind, pos: usize) -> Self {
        XmlError { kind, pos }
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            XmlErrorKind::UnexpectedEof => write!(f, "unexpected end of input"),
            XmlErrorKind::UnexpectedChar(c) => {
                write!(f, "unexpected character {:?}", c as char)
            }
            XmlErrorKind::BadName => write!(f, "malformed XML name"),
            XmlErrorKind::BadAttribute => write!(f, "malformed attribute"),
            XmlErrorKind::MismatchedTag => write!(f, "mismatched closing tag"),
            XmlErrorKind::TrailingContent => write!(f, "content after document element"),
            XmlErrorKind::NoRootElement => write!(f, "document has no root element"),
            XmlErrorKind::BadComment => write!(f, "malformed comment"),
            XmlErrorKind::BadMarkupDecl => write!(f, "malformed markup declaration"),
        }?;
        write!(f, " at byte {}", self.pos)
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = XmlError::new(XmlErrorKind::BadName, 42);
        assert!(e.to_string().contains("42"));
        assert!(e.to_string().contains("name"));
    }

    #[test]
    fn display_char() {
        let e = XmlError::new(XmlErrorKind::UnexpectedChar(b'<'), 0);
        assert!(e.to_string().contains('<'));
    }
}
