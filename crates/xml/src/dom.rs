//! Arena-based DOM.
//!
//! The in-memory query engine (the evaluation's QizX stand-in) builds this
//! tree; nodes live in a single `Vec` and are addressed by [`NodeId`]
//! indices, which keeps the per-node overhead small and makes the memory
//! accounting needed for the Fig. 7(a) OOM experiment straightforward
//! ([`Document::heap_bytes`]).

use crate::error::{XmlError, XmlErrorKind};
use crate::escape::unescape;
use crate::tokenizer::{Attributes, Token, Tokenizer};

/// Index of a node in a [`Document`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// The document root element.
    pub const ROOT: NodeId = NodeId(0);

    fn idx(self) -> usize {
        self.0 as usize
    }
}

/// One attribute: (name, unescaped value).
pub type OwnedAttr = (Box<[u8]>, Box<[u8]>);

/// Payload of a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// An element with its name and attributes (values unescaped).
    Element {
        /// Element name.
        name: Box<[u8]>,
        /// Attribute (name, value) pairs in document order.
        attrs: Vec<OwnedAttr>,
    },
    /// A text node (entities resolved).
    Text(Box<[u8]>),
}

#[derive(Debug, Clone)]
struct NodeData {
    kind: NodeKind,
    parent: Option<NodeId>,
    first_child: Option<NodeId>,
    next_sibling: Option<NodeId>,
}

/// A parsed XML document; node 0 is the root element.
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<NodeData>,
}

impl Document {
    /// Parse `input` into a tree. Comments, PIs, DOCTYPE and pure-whitespace
    /// text outside the root are dropped; CDATA becomes text.
    pub fn parse(input: &[u8]) -> Result<Document, XmlError> {
        let mut nodes: Vec<NodeData> = Vec::new();
        let mut stack: Vec<NodeId> = Vec::new();
        let mut last_child_of: Vec<Option<NodeId>> = Vec::new();
        let mut root_seen = false;

        let attach = |nodes: &mut Vec<NodeData>,
                      last: &mut Vec<Option<NodeId>>,
                      stack: &[NodeId],
                      kind: NodeKind|
         -> NodeId {
            let id = NodeId(nodes.len() as u32);
            let parent = stack.last().copied();
            nodes.push(NodeData { kind, parent, first_child: None, next_sibling: None });
            last.push(None);
            if let Some(p) = parent {
                match last[p.idx()] {
                    None => nodes[p.idx()].first_child = Some(id),
                    Some(prev) => nodes[prev.idx()].next_sibling = Some(id),
                }
                last[p.idx()] = Some(id);
            }
            id
        };

        for tok in Tokenizer::new(input) {
            match tok? {
                Token::StartTag { name, attrs, self_closing, start, .. } => {
                    if stack.is_empty() {
                        if root_seen {
                            return Err(XmlError::new(XmlErrorKind::TrailingContent, start));
                        }
                        root_seen = true;
                    }
                    let attrs: Vec<OwnedAttr> = Attributes::new(attrs)
                        .map(|(n, v)| {
                            (n.to_vec().into_boxed_slice(), unescape(v).into_boxed_slice())
                        })
                        .collect();
                    let kind = NodeKind::Element { name: name.to_vec().into_boxed_slice(), attrs };
                    let id = attach(&mut nodes, &mut last_child_of, &stack, kind);
                    if !self_closing {
                        stack.push(id);
                    }
                }
                Token::EndTag { name, start, .. } => match stack.pop() {
                    Some(open) => {
                        let open_name = match &nodes[open.idx()].kind {
                            NodeKind::Element { name, .. } => &name[..],
                            NodeKind::Text(_) => unreachable!("only elements are pushed"),
                        };
                        if open_name != name {
                            return Err(XmlError::new(XmlErrorKind::MismatchedTag, start));
                        }
                    }
                    None => return Err(XmlError::new(XmlErrorKind::MismatchedTag, start)),
                },
                Token::Text { text, start, .. } => {
                    if stack.is_empty() {
                        if text.iter().all(|&b| crate::names::is_xml_whitespace(b)) {
                            continue;
                        }
                        return Err(XmlError::new(XmlErrorKind::TrailingContent, start));
                    }
                    let kind = NodeKind::Text(unescape(text).into_boxed_slice());
                    attach(&mut nodes, &mut last_child_of, &stack, kind);
                }
                Token::Cdata { text, start, .. } => {
                    if stack.is_empty() {
                        return Err(XmlError::new(XmlErrorKind::TrailingContent, start));
                    }
                    let kind = NodeKind::Text(text.to_vec().into_boxed_slice());
                    attach(&mut nodes, &mut last_child_of, &stack, kind);
                }
                Token::Comment { .. } | Token::Pi { .. } | Token::Doctype { .. } => {}
            }
        }
        if !stack.is_empty() {
            return Err(XmlError::new(XmlErrorKind::UnexpectedEof, input.len()));
        }
        if nodes.is_empty() {
            return Err(XmlError::new(XmlErrorKind::NoRootElement, input.len()));
        }
        Ok(Document { nodes })
    }

    /// The root element.
    pub fn root(&self) -> NodeId {
        NodeId::ROOT
    }

    /// Number of nodes (elements + text).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the arena is empty (cannot happen for parsed documents).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node payload.
    pub fn kind(&self, id: NodeId) -> &NodeKind {
        &self.nodes[id.idx()].kind
    }

    /// Element name, or `None` for text nodes.
    pub fn name(&self, id: NodeId) -> Option<&[u8]> {
        match &self.nodes[id.idx()].kind {
            NodeKind::Element { name, .. } => Some(name),
            NodeKind::Text(_) => None,
        }
    }

    /// Attribute value by name, or `None`.
    pub fn attr(&self, id: NodeId, attr_name: &[u8]) -> Option<&[u8]> {
        match &self.nodes[id.idx()].kind {
            NodeKind::Element { attrs, .. } => {
                attrs.iter().find(|(n, _)| &n[..] == attr_name).map(|(_, v)| &v[..])
            }
            NodeKind::Text(_) => None,
        }
    }

    /// Parent node.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.idx()].parent
    }

    /// Iterator over direct children in document order.
    pub fn children(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let mut cur = self.nodes[id.idx()].first_child;
        std::iter::from_fn(move || {
            let c = cur?;
            cur = self.nodes[c.idx()].next_sibling;
            Some(c)
        })
    }

    /// Iterator over all descendants (excluding `id` itself), document order.
    pub fn descendants(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let mut stack: Vec<NodeId> = self.children(id).collect();
        stack.reverse();
        std::iter::from_fn(move || {
            let n = stack.pop()?;
            let children: Vec<NodeId> = self.children(n).collect();
            for c in children.into_iter().rev() {
                stack.push(c);
            }
            Some(n)
        })
    }

    /// Concatenated text content of the subtree rooted at `id`.
    pub fn text_content(&self, id: NodeId) -> Vec<u8> {
        let mut out = Vec::new();
        let mut ids = vec![id];
        ids.extend(self.descendants(id));
        for n in ids {
            if let NodeKind::Text(t) = &self.nodes[n.idx()].kind {
                out.extend_from_slice(t);
            }
        }
        out
    }

    /// Approximate heap footprint in bytes: arena entries plus owned name,
    /// attribute and text buffers. Drives the byte-budget cap of the
    /// in-memory engine (Fig. 7(a)).
    pub fn heap_bytes(&self) -> usize {
        let mut total = self.nodes.capacity() * std::mem::size_of::<NodeData>();
        for n in &self.nodes {
            match &n.kind {
                NodeKind::Element { name, attrs } => {
                    total += name.len();
                    total += attrs.capacity() * std::mem::size_of::<OwnedAttr>();
                    for (an, av) in attrs {
                        total += an.len() + av.len();
                    }
                }
                NodeKind::Text(t) => total += t.len(),
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &[u8] = br#"<site><item id="1"><name>TV</name>cheap</item><item id="2"/></site>"#;

    #[test]
    fn structure() {
        let d = Document::parse(DOC).unwrap();
        assert_eq!(d.name(d.root()), Some(&b"site"[..]));
        let items: Vec<NodeId> = d.children(d.root()).collect();
        assert_eq!(items.len(), 2);
        assert_eq!(d.attr(items[0], b"id"), Some(&b"1"[..]));
        assert_eq!(d.attr(items[1], b"id"), Some(&b"2"[..]));
        assert_eq!(d.parent(items[0]), Some(d.root()));
        assert_eq!(d.parent(d.root()), None);
    }

    #[test]
    fn text_content_concatenates() {
        let d = Document::parse(DOC).unwrap();
        let items: Vec<NodeId> = d.children(d.root()).collect();
        assert_eq!(d.text_content(items[0]), b"TVcheap");
        assert_eq!(d.text_content(d.root()), b"TVcheap");
    }

    #[test]
    fn descendants_in_document_order() {
        let d = Document::parse(b"<a><b><c/></b><d/></a>").unwrap();
        let names: Vec<Vec<u8>> =
            d.descendants(d.root()).filter_map(|n| d.name(n).map(|x| x.to_vec())).collect();
        assert_eq!(names, vec![b"b".to_vec(), b"c".to_vec(), b"d".to_vec()]);
    }

    #[test]
    fn entities_unescaped_in_dom() {
        let d = Document::parse(b"<a x=\"1&amp;2\">3&lt;4</a>").unwrap();
        assert_eq!(d.attr(d.root(), b"x"), Some(&b"1&2"[..]));
        assert_eq!(d.text_content(d.root()), b"3<4");
    }

    #[test]
    fn rejects_malformed() {
        assert!(Document::parse(b"<a><b></a></b>").is_err());
        assert!(Document::parse(b"<a/><b/>").is_err());
        assert!(Document::parse(b"").is_err());
    }

    #[test]
    fn heap_bytes_grows_with_content() {
        let small = Document::parse(b"<a/>").unwrap();
        let big = Document::parse(format!("<a>{}</a>", "x".repeat(10_000)).as_bytes()).unwrap();
        assert!(big.heap_bytes() > small.heap_bytes() + 9_000);
    }
}
