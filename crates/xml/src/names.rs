//! XML name character classes (ASCII-focused, permissive for non-ASCII).
//!
//! The SMP setting is schema-driven: every tag name that matters comes from
//! a DTD, and the generators only emit ASCII names. We therefore implement
//! the ASCII subset of the XML 1.0 name rules exactly and accept any byte ≥
//! 0x80 as a name byte, which is a superset of the spec for multi-byte
//! UTF-8 names — good enough for a well-formedness *checker* that must not
//! reject valid documents.

/// May `b` start an XML name?
#[inline]
pub fn is_name_start_byte(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
}

/// May `b` continue an XML name?
#[inline]
pub fn is_name_byte(b: u8) -> bool {
    is_name_start_byte(b) || b.is_ascii_digit() || b == b'-' || b == b'.'
}

/// XML whitespace (space, tab, CR, LF).
#[inline]
pub fn is_xml_whitespace(b: u8) -> bool {
    matches!(b, b' ' | b'\t' | b'\r' | b'\n')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn start_bytes() {
        assert!(is_name_start_byte(b'a'));
        assert!(is_name_start_byte(b'Z'));
        assert!(is_name_start_byte(b'_'));
        assert!(is_name_start_byte(b':'));
        assert!(is_name_start_byte(0xC3)); // UTF-8 lead byte
        assert!(!is_name_start_byte(b'1'));
        assert!(!is_name_start_byte(b'-'));
        assert!(!is_name_start_byte(b' '));
    }

    #[test]
    fn continuation_bytes() {
        assert!(is_name_byte(b'1'));
        assert!(is_name_byte(b'-'));
        assert!(is_name_byte(b'.'));
        assert!(!is_name_byte(b'>'));
        assert!(!is_name_byte(b'/'));
        assert!(!is_name_byte(b'<'));
    }

    #[test]
    fn whitespace() {
        assert!(is_xml_whitespace(b' '));
        assert!(is_xml_whitespace(b'\n'));
        assert!(is_xml_whitespace(b'\t'));
        assert!(is_xml_whitespace(b'\r'));
        assert!(!is_xml_whitespace(b'x'));
    }
}
