//! Escaping and unescaping of XML character data.

/// Append `text` to `out`, escaping `&`, `<`, `>`, `"` and `'`.
pub fn escape_into(text: &[u8], out: &mut Vec<u8>) {
    for &b in text {
        match b {
            b'&' => out.extend_from_slice(b"&amp;"),
            b'<' => out.extend_from_slice(b"&lt;"),
            b'>' => out.extend_from_slice(b"&gt;"),
            b'"' => out.extend_from_slice(b"&quot;"),
            b'\'' => out.extend_from_slice(b"&apos;"),
            _ => out.push(b),
        }
    }
}

/// Escape `text` into a fresh buffer.
pub fn escape_text(text: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(text.len());
    escape_into(text, &mut out);
    out
}

/// Append `text` to `out`, resolving the five predefined entities and
/// decimal/hex character references. Unknown or malformed references are
/// copied through verbatim (lenient, like most SAX consumers in recovery
/// mode).
pub fn unescape_into(text: &[u8], out: &mut Vec<u8>) {
    let mut i = 0;
    while i < text.len() {
        if text[i] != b'&' {
            out.push(text[i]);
            i += 1;
            continue;
        }
        let rest = &text[i..];
        let semi = match rest.iter().take(12).position(|&b| b == b';') {
            Some(s) => s,
            None => {
                out.push(b'&');
                i += 1;
                continue;
            }
        };
        let entity = &rest[1..semi];
        let replaced: Option<Vec<u8>> = match entity {
            b"amp" => Some(b"&".to_vec()),
            b"lt" => Some(b"<".to_vec()),
            b"gt" => Some(b">".to_vec()),
            b"quot" => Some(b"\"".to_vec()),
            b"apos" => Some(b"'".to_vec()),
            _ if entity.first() == Some(&b'#') => decode_char_ref(&entity[1..]),
            _ => None,
        };
        match replaced {
            Some(bytes) => {
                out.extend_from_slice(&bytes);
                i += semi + 1;
            }
            None => {
                out.push(b'&');
                i += 1;
            }
        }
    }
}

/// Unescape `text` into a fresh buffer.
pub fn unescape(text: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(text.len());
    unescape_into(text, &mut out);
    out
}

fn decode_char_ref(body: &[u8]) -> Option<Vec<u8>> {
    let (digits, radix) = match body.first() {
        Some(&b'x') | Some(&b'X') => (&body[1..], 16),
        _ => (body, 10),
    };
    let s = std::str::from_utf8(digits).ok()?;
    let cp = u32::from_str_radix(s, radix).ok()?;
    let ch = char::from_u32(cp)?;
    let mut buf = [0u8; 4];
    Some(ch.encode_utf8(&mut buf).as_bytes().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trip() {
        let raw = b"a<b>&\"'c";
        let esc = escape_text(raw);
        assert_eq!(esc, b"a&lt;b&gt;&amp;&quot;&apos;c");
        assert_eq!(unescape(&esc), raw);
    }

    #[test]
    fn unescape_char_refs() {
        assert_eq!(unescape(b"&#65;&#x42;"), b"AB");
        assert_eq!(unescape(b"&#xE9;"), "é".as_bytes());
    }

    #[test]
    fn unknown_entities_pass_through() {
        assert_eq!(unescape(b"&nbsp;x"), b"&nbsp;x");
        assert_eq!(unescape(b"& loose"), b"& loose");
        assert_eq!(unescape(b"&"), b"&");
    }

    #[test]
    fn plain_text_untouched() {
        assert_eq!(unescape(b"hello world"), b"hello world");
        assert_eq!(escape_text(b"hello world"), b"hello world");
    }
}
