//! Byte-oriented XML substrate: SAX-style tokenizer, arena DOM, serializer.
//!
//! The SMP prefilter itself never tokenizes its input — that is the point of
//! the paper — but everything *around* it does:
//!
//! * the tokenizing baselines (the paper's Xerces and TBP comparators),
//! * the token-level reference prefilter used as a correctness oracle,
//! * the in-memory and streaming query engines of the evaluation,
//! * validity checks for the data generators.
//!
//! The tokenizer is deliberately strict by default (tag-name syntax,
//! attribute quoting, comment rules), mirroring Xerces' default
//! well-formedness checking which the paper calls out when comparing
//! throughput. A [`lenient`](Tokenizer::lenient) mode skips the per-character
//! name checks, standing in for the cheaper SAX configuration of Fig. 7(c).
//!
//! # Example
//!
//! ```
//! use smpx_xml::{Tokenizer, Token};
//!
//! let doc = br#"<site><item id="1">Palm Zire 71</item></site>"#;
//! let names: Vec<String> = Tokenizer::new(doc)
//!     .map(|t| t.unwrap())
//!     .filter_map(|t| match t {
//!         Token::StartTag { name, .. } => Some(String::from_utf8_lossy(name).into_owned()),
//!         _ => None,
//!     })
//!     .collect();
//! assert_eq!(names, ["site", "item"]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dom;
mod error;
mod escape;
mod names;
mod serialize;
mod tokenizer;

pub use dom::{Document, NodeId, NodeKind, OwnedAttr};
pub use error::{XmlError, XmlErrorKind};
pub use escape::{escape_into, escape_text, unescape, unescape_into};
pub use names::{is_name_byte, is_name_start_byte, is_xml_whitespace};
pub use serialize::serialize;
pub use tokenizer::{check_well_formed, Attributes, Token, Tokenizer};
