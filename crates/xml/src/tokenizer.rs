//! Pull-based SAX-style tokenizer.
//!
//! Yields borrowed tokens with absolute byte spans so that consumers (the
//! reference prefilter, the TBP-style baseline) can copy raw input ranges —
//! the same output discipline the SMP runtime uses, which makes outputs
//! byte-comparable.

use crate::error::{XmlError, XmlErrorKind};
use crate::names::{is_name_byte, is_name_start_byte, is_xml_whitespace};

/// One XML token. All slices borrow from the tokenizer input; `start..end`
/// is the absolute byte span of the whole token (for tags this includes the
/// angle brackets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token<'a> {
    /// `<name attrs>` or `<name attrs/>`.
    StartTag {
        /// Element name.
        name: &'a [u8],
        /// Raw bytes between the name and the closing `>` / `/>`.
        attrs: &'a [u8],
        /// True for a bachelor tag `<name/>`.
        self_closing: bool,
        /// Span start (at `<`).
        start: usize,
        /// Span end (one past `>`).
        end: usize,
    },
    /// `</name>`.
    EndTag {
        /// Element name.
        name: &'a [u8],
        /// Span start (at `<`).
        start: usize,
        /// Span end (one past `>`).
        end: usize,
    },
    /// Character data between tags (entity references not resolved).
    Text {
        /// Raw text bytes.
        text: &'a [u8],
        /// Span start.
        start: usize,
        /// Span end.
        end: usize,
    },
    /// `<!-- … -->`.
    Comment {
        /// Span start.
        start: usize,
        /// Span end.
        end: usize,
    },
    /// `<? … ?>` (including the XML declaration).
    Pi {
        /// Span start.
        start: usize,
        /// Span end.
        end: usize,
    },
    /// `<![CDATA[ … ]]>`.
    Cdata {
        /// The bytes between `<![CDATA[` and `]]>`.
        text: &'a [u8],
        /// Span start.
        start: usize,
        /// Span end.
        end: usize,
    },
    /// `<!DOCTYPE … >` including an optional internal subset.
    Doctype {
        /// Span start.
        start: usize,
        /// Span end.
        end: usize,
    },
}

impl<'a> Token<'a> {
    /// Absolute byte span of the token.
    pub fn span(&self) -> std::ops::Range<usize> {
        match *self {
            Token::StartTag { start, end, .. }
            | Token::EndTag { start, end, .. }
            | Token::Text { start, end, .. }
            | Token::Comment { start, end }
            | Token::Pi { start, end }
            | Token::Cdata { start, end, .. }
            | Token::Doctype { start, end } => start..end,
        }
    }
}

/// Iterator over `name="value"` pairs in a start tag's raw attribute bytes.
///
/// Assumes the bytes already passed the tokenizer's strict scan; malformed
/// input simply ends the iteration.
#[derive(Debug, Clone)]
pub struct Attributes<'a> {
    rest: &'a [u8],
}

impl<'a> Attributes<'a> {
    /// Iterate over the `attrs` bytes of a [`Token::StartTag`].
    pub fn new(attrs: &'a [u8]) -> Self {
        Attributes { rest: attrs }
    }
}

impl<'a> Iterator for Attributes<'a> {
    type Item = (&'a [u8], &'a [u8]);

    fn next(&mut self) -> Option<Self::Item> {
        let mut i = 0;
        while i < self.rest.len() && is_xml_whitespace(self.rest[i]) {
            i += 1;
        }
        if i >= self.rest.len() {
            return None;
        }
        let name_start = i;
        while i < self.rest.len() && is_name_byte(self.rest[i]) {
            i += 1;
        }
        if i == name_start {
            return None;
        }
        let name = &self.rest[name_start..i];
        while i < self.rest.len() && is_xml_whitespace(self.rest[i]) {
            i += 1;
        }
        if i >= self.rest.len() || self.rest[i] != b'=' {
            return None;
        }
        i += 1;
        while i < self.rest.len() && is_xml_whitespace(self.rest[i]) {
            i += 1;
        }
        if i >= self.rest.len() {
            return None;
        }
        let quote = self.rest[i];
        if quote != b'"' && quote != b'\'' {
            return None;
        }
        i += 1;
        let val_start = i;
        while i < self.rest.len() && self.rest[i] != quote {
            i += 1;
        }
        if i >= self.rest.len() {
            return None;
        }
        let value = &self.rest[val_start..i];
        self.rest = &self.rest[i + 1..];
        Some((name, value))
    }
}

/// Pull tokenizer over a byte slice.
#[derive(Debug, Clone)]
pub struct Tokenizer<'a> {
    input: &'a [u8],
    pos: usize,
    strict: bool,
    failed: bool,
}

impl<'a> Tokenizer<'a> {
    /// Strict tokenizer: validates names, attribute quoting, comment rules.
    pub fn new(input: &'a [u8]) -> Self {
        Tokenizer { input, pos: 0, strict: true, failed: false }
    }

    /// Lenient tokenizer: finds token boundaries (still respecting quoted
    /// attribute values, which may contain `>`), but skips per-character
    /// name and attribute validation.
    pub fn lenient(input: &'a [u8]) -> Self {
        Tokenizer { input, pos: 0, strict: false, failed: false }
    }

    /// Current read position.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn err(&mut self, kind: XmlErrorKind, pos: usize) -> XmlError {
        self.failed = true;
        XmlError::new(kind, pos)
    }

    fn read_name(&mut self, mut i: usize) -> Result<(usize, usize), XmlError> {
        let start = i;
        if self.strict {
            if i >= self.input.len() {
                return Err(self.err(XmlErrorKind::UnexpectedEof, i));
            }
            if !is_name_start_byte(self.input[i]) {
                return Err(self.err(XmlErrorKind::BadName, i));
            }
            i += 1;
            while i < self.input.len() && is_name_byte(self.input[i]) {
                i += 1;
            }
        } else {
            while i < self.input.len()
                && !is_xml_whitespace(self.input[i])
                && self.input[i] != b'>'
                && self.input[i] != b'/'
            {
                i += 1;
            }
            if i == start {
                return Err(self.err(XmlErrorKind::BadName, i));
            }
        }
        Ok((start, i))
    }

    /// Scan attribute bytes up to `>` or `/>`, respecting quotes (attribute
    /// values may legally contain `>`). Returns (attrs_end,
    /// tag_end_exclusive, self_closing). Strict attribute structure is
    /// validated separately by [`validate_attrs`](Self::validate_attrs) to
    /// keep this scan branch-light.
    fn scan_attrs(&mut self, mut i: usize) -> Result<(usize, usize, bool), XmlError> {
        loop {
            if i >= self.input.len() {
                return Err(self.err(XmlErrorKind::UnexpectedEof, i));
            }
            match self.input[i] {
                b'>' => return Ok((i, i + 1, false)),
                b'/' => {
                    if i + 1 < self.input.len() && self.input[i + 1] == b'>' {
                        return Ok((i, i + 2, true));
                    }
                    return Err(self.err(XmlErrorKind::UnexpectedChar(b'/'), i));
                }
                b'"' | b'\'' => {
                    let quote = self.input[i];
                    i += 1;
                    while i < self.input.len() && self.input[i] != quote {
                        i += 1;
                    }
                    if i >= self.input.len() {
                        return Err(self.err(XmlErrorKind::BadAttribute, i));
                    }
                    i += 1;
                }
                b'<' => return Err(self.err(XmlErrorKind::UnexpectedChar(b'<'), i)),
                _ => i += 1,
            }
        }
    }

    fn validate_attrs(&mut self, attrs: &[u8], base: usize) -> Result<(), XmlError> {
        let mut i = 0;
        while i < attrs.len() {
            if is_xml_whitespace(attrs[i]) {
                i += 1;
                continue;
            }
            let name_start = i;
            if !is_name_start_byte(attrs[i]) {
                return Err(self.err(XmlErrorKind::BadAttribute, base + i));
            }
            while i < attrs.len() && is_name_byte(attrs[i]) {
                i += 1;
            }
            if i == name_start {
                return Err(self.err(XmlErrorKind::BadAttribute, base + i));
            }
            while i < attrs.len() && is_xml_whitespace(attrs[i]) {
                i += 1;
            }
            if i >= attrs.len() || attrs[i] != b'=' {
                return Err(self.err(XmlErrorKind::BadAttribute, base + i));
            }
            i += 1;
            while i < attrs.len() && is_xml_whitespace(attrs[i]) {
                i += 1;
            }
            if i >= attrs.len() || (attrs[i] != b'"' && attrs[i] != b'\'') {
                return Err(self.err(XmlErrorKind::BadAttribute, base + i));
            }
            let quote = attrs[i];
            i += 1;
            while i < attrs.len() && attrs[i] != quote {
                if attrs[i] == b'<' {
                    return Err(self.err(XmlErrorKind::BadAttribute, base + i));
                }
                i += 1;
            }
            if i >= attrs.len() {
                return Err(self.err(XmlErrorKind::BadAttribute, base + i));
            }
            i += 1;
        }
        Ok(())
    }

    fn next_token(&mut self) -> Option<Result<Token<'a>, XmlError>> {
        if self.failed || self.pos >= self.input.len() {
            return None;
        }
        let start = self.pos;
        if self.input[start] != b'<' {
            // Text run.
            let mut i = start;
            while i < self.input.len() && self.input[i] != b'<' {
                i += 1;
            }
            self.pos = i;
            return Some(Ok(Token::Text { text: &self.input[start..i], start, end: i }));
        }
        // Markup.
        let i = start + 1;
        if i >= self.input.len() {
            return Some(Err(self.err(XmlErrorKind::UnexpectedEof, i)));
        }
        match self.input[i] {
            b'/' => {
                let (ns, ne) = match self.read_name(i + 1) {
                    Ok(v) => v,
                    Err(e) => return Some(Err(e)),
                };
                let mut j = ne;
                while j < self.input.len() && is_xml_whitespace(self.input[j]) {
                    j += 1;
                }
                if j >= self.input.len() {
                    return Some(Err(self.err(XmlErrorKind::UnexpectedEof, j)));
                }
                if self.input[j] != b'>' {
                    return Some(Err(self.err(XmlErrorKind::UnexpectedChar(self.input[j]), j)));
                }
                self.pos = j + 1;
                Some(Ok(Token::EndTag { name: &self.input[ns..ne], start, end: j + 1 }))
            }
            b'!' => self.markup_decl(start),
            b'?' => {
                // Processing instruction: scan for "?>".
                let mut j = i + 1;
                loop {
                    if j + 1 >= self.input.len() {
                        return Some(Err(self.err(XmlErrorKind::BadMarkupDecl, j)));
                    }
                    if self.input[j] == b'?' && self.input[j + 1] == b'>' {
                        break;
                    }
                    j += 1;
                }
                self.pos = j + 2;
                Some(Ok(Token::Pi { start, end: j + 2 }))
            }
            _ => {
                let (ns, ne) = match self.read_name(i) {
                    Ok(v) => v,
                    Err(e) => return Some(Err(e)),
                };
                let (attrs_end, tag_end, self_closing) = match self.scan_attrs(ne) {
                    Ok(v) => v,
                    Err(e) => return Some(Err(e)),
                };
                let attrs = &self.input[ne..attrs_end];
                if self.strict {
                    if let Err(e) = self.validate_attrs(attrs, ne) {
                        return Some(Err(e));
                    }
                }
                self.pos = tag_end;
                Some(Ok(Token::StartTag {
                    name: &self.input[ns..ne],
                    attrs,
                    self_closing,
                    start,
                    end: tag_end,
                }))
            }
        }
    }

    fn markup_decl(&mut self, start: usize) -> Option<Result<Token<'a>, XmlError>> {
        let input = self.input;
        let rest = &input[start..];
        if rest.starts_with(b"<!--") {
            // Comment; "--" is not allowed inside (strict only).
            let mut j = start + 4;
            while j + 2 <= input.len().saturating_sub(1) {
                if input[j] == b'-' && input[j + 1] == b'-' {
                    if input[j + 2] == b'>' {
                        self.pos = j + 3;
                        return Some(Ok(Token::Comment { start, end: j + 3 }));
                    }
                    if self.strict {
                        return Some(Err(self.err(XmlErrorKind::BadComment, j)));
                    }
                }
                j += 1;
            }
            return Some(Err(self.err(XmlErrorKind::BadComment, input.len())));
        }
        if rest.starts_with(b"<![CDATA[") {
            let body_start = start + 9;
            let mut j = body_start;
            while j + 2 <= input.len().saturating_sub(1) {
                if input[j] == b']' && input[j + 1] == b']' && input[j + 2] == b'>' {
                    self.pos = j + 3;
                    return Some(Ok(Token::Cdata {
                        text: &input[body_start..j],
                        start,
                        end: j + 3,
                    }));
                }
                j += 1;
            }
            return Some(Err(self.err(XmlErrorKind::BadMarkupDecl, input.len())));
        }
        if rest.len() >= 9 && rest[..9].eq_ignore_ascii_case(b"<!DOCTYPE") {
            // Scan to the matching '>', skipping an internal subset [...].
            let mut j = start + 9;
            let mut in_subset = false;
            loop {
                if j >= input.len() {
                    return Some(Err(self.err(XmlErrorKind::BadMarkupDecl, j)));
                }
                match input[j] {
                    b'[' => in_subset = true,
                    b']' => in_subset = false,
                    b'>' if !in_subset => {
                        self.pos = j + 1;
                        return Some(Ok(Token::Doctype { start, end: j + 1 }));
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        Some(Err(self.err(XmlErrorKind::BadMarkupDecl, start)))
    }
}

impl<'a> Iterator for Tokenizer<'a> {
    type Item = Result<Token<'a>, XmlError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_token()
    }
}

/// Check the input for well-formedness: every tag matched, exactly one root
/// element, no content other than whitespace/comments/PIs outside it.
///
/// Returns the number of tokens read, so throughput baselines have a value
/// that cannot be optimized away.
pub fn check_well_formed(input: &[u8]) -> Result<usize, XmlError> {
    let mut stack: Vec<&[u8]> = Vec::with_capacity(32);
    let mut count = 0usize;
    let mut seen_root = false;
    for tok in Tokenizer::new(input) {
        let tok = tok?;
        count += 1;
        match tok {
            Token::StartTag { name, self_closing, start, .. } => {
                if stack.is_empty() {
                    if seen_root {
                        return Err(XmlError::new(XmlErrorKind::TrailingContent, start));
                    }
                    seen_root = true;
                }
                if !self_closing {
                    stack.push(name);
                }
            }
            Token::EndTag { name, start, .. } => match stack.pop() {
                Some(open) if open == name => {}
                _ => return Err(XmlError::new(XmlErrorKind::MismatchedTag, start)),
            },
            Token::Text { text, start, .. } => {
                if stack.is_empty() && !text.iter().all(|&b| is_xml_whitespace(b)) {
                    return Err(XmlError::new(XmlErrorKind::TrailingContent, start));
                }
            }
            Token::Cdata { start, .. } => {
                if stack.is_empty() {
                    return Err(XmlError::new(XmlErrorKind::TrailingContent, start));
                }
            }
            Token::Comment { .. } | Token::Pi { .. } | Token::Doctype { .. } => {}
        }
    }
    if !stack.is_empty() {
        return Err(XmlError::new(XmlErrorKind::UnexpectedEof, input.len()));
    }
    if !seen_root {
        return Err(XmlError::new(XmlErrorKind::NoRootElement, input.len()));
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(input: &[u8]) -> Vec<Token<'_>> {
        Tokenizer::new(input).map(|t| t.unwrap()).collect()
    }

    #[test]
    fn basic_document() {
        let t = toks(b"<a><b x=\"1\">hi</b><c/></a>");
        assert_eq!(t.len(), 6);
        match t[0] {
            Token::StartTag { name, self_closing, start, end, .. } => {
                assert_eq!(name, b"a");
                assert!(!self_closing);
                assert_eq!((start, end), (0, 3));
            }
            _ => panic!("expected start tag"),
        }
        match t[1] {
            Token::StartTag { name, attrs, .. } => {
                assert_eq!(name, b"b");
                assert_eq!(attrs, b" x=\"1\"");
            }
            _ => panic!(),
        }
        match t[2] {
            Token::Text { text, .. } => assert_eq!(text, b"hi"),
            _ => panic!(),
        }
        match t[4] {
            Token::StartTag { name, self_closing, .. } => {
                assert_eq!(name, b"c");
                assert!(self_closing);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn whitespace_in_tags() {
        // The paper: "<t >" is valid syntax while "< t>" is not.
        let t = toks(b"<t ></t >");
        assert_eq!(t.len(), 2);
        let bad: Vec<_> = Tokenizer::new(b"< t></t>").collect();
        assert!(bad[0].is_err());
    }

    #[test]
    fn attribute_value_containing_gt() {
        let t = toks(b"<a x=\"1>2\">z</a>");
        match t[0] {
            Token::StartTag { attrs, end, .. } => {
                assert_eq!(attrs, b" x=\"1>2\"");
                assert_eq!(end, 11);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn comments_pis_cdata_doctype() {
        let input = b"<?xml version=\"1.0\"?><!DOCTYPE a [<!ELEMENT a (#PCDATA)>]><!--c--><a><![CDATA[<x>]]></a>";
        let t = toks(input);
        assert!(matches!(t[0], Token::Pi { .. }));
        assert!(matches!(t[1], Token::Doctype { .. }));
        assert!(matches!(t[2], Token::Comment { .. }));
        match t[4] {
            Token::Cdata { text, .. } => assert_eq!(text, b"<x>"),
            _ => panic!("{:?}", t[4]),
        }
    }

    #[test]
    fn double_dash_in_comment_rejected_strict() {
        let r: Vec<_> = Tokenizer::new(b"<!-- a -- b --><a/>").collect();
        assert!(r[0].is_err());
        let l: Vec<_> = Tokenizer::lenient(b"<!-- a -- b --><a/>").map(|t| t.unwrap()).collect();
        assert!(matches!(l[0], Token::Comment { .. }));
    }

    #[test]
    fn attributes_iterator() {
        let attrs = b" id=\"a1\"  class = 'x y'  empty=\"\"";
        let got: Vec<(Vec<u8>, Vec<u8>)> =
            Attributes::new(attrs).map(|(n, v)| (n.to_vec(), v.to_vec())).collect();
        assert_eq!(
            got,
            vec![
                (b"id".to_vec(), b"a1".to_vec()),
                (b"class".to_vec(), b"x y".to_vec()),
                (b"empty".to_vec(), b"".to_vec()),
            ]
        );
    }

    #[test]
    fn well_formed_accepts() {
        assert!(check_well_formed(b"<a><b/>text</a>").is_ok());
        assert!(check_well_formed(b"  <?xml?>  <a/>  <!--t-->  ").is_ok());
    }

    #[test]
    fn well_formed_rejects() {
        assert!(check_well_formed(b"<a><b></a></b>").is_err()); // crossing
        assert!(check_well_formed(b"<a>").is_err()); // unclosed
        assert!(check_well_formed(b"<a/><b/>").is_err()); // two roots
        assert!(check_well_formed(b"x<a/>").is_err()); // leading text
        assert!(check_well_formed(b"").is_err()); // no root
        assert!(check_well_formed(b"<a></ a>").is_err()); // bad end-tag name
    }

    #[test]
    fn spans_cover_input_exactly() {
        let input = b"<a attr=\"v\"><b/>hello<!--c--></a>";
        let mut covered = 0usize;
        for t in Tokenizer::new(input) {
            let sp = t.unwrap().span();
            assert_eq!(sp.start, covered);
            covered = sp.end;
        }
        assert_eq!(covered, input.len());
    }

    #[test]
    fn unterminated_constructs_error() {
        assert!(Tokenizer::new(b"<a").last().unwrap().is_err());
        assert!(Tokenizer::new(b"<!-- x").last().unwrap().is_err());
        assert!(Tokenizer::new(b"<![CDATA[ x").last().unwrap().is_err());
        assert!(Tokenizer::new(b"<?pi").last().unwrap().is_err());
        assert!(Tokenizer::new(b"<a x=\"1").last().unwrap().is_err());
    }

    #[test]
    fn errors_fuse_the_iterator() {
        let mut t = Tokenizer::new(b"<a x=>");
        assert!(t.next().unwrap().is_err());
        assert!(t.next().is_none());
    }
}
