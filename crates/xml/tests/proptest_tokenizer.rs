//! Property tests for the tokenizer and DOM.

use proptest::prelude::*;
use smpx_xml::{check_well_formed, serialize, Document, Token, Tokenizer};

/// A small strategy for well-formed documents built top-down.
fn arb_doc() -> impl Strategy<Value = String> {
    // Element tree as nested vectors; names drawn from a prefix-happy pool.
    fn node(depth: u32) -> BoxedStrategy<String> {
        let name = prop_oneof![Just("a"), Just("ab"), Just("abc"), Just("x-y"), Just("n_1")];
        let text = prop_oneof![
            Just(String::new()),
            Just("hello".to_string()),
            Just("a &amp; b".to_string()),
            Just("  spaced  ".to_string()),
        ];
        if depth == 0 {
            (name, text)
                .prop_map(
                    |(n, t)| {
                        if t.is_empty() {
                            format!("<{n}/>")
                        } else {
                            format!("<{n}>{t}</{n}>")
                        }
                    },
                )
                .boxed()
        } else {
            (
                name,
                prop_oneof![
                    Just(String::new()),
                    Just(" id=\"1\"".to_string()),
                    Just(" a=\"x\" b=\"y&gt;z\"".to_string()),
                ],
                proptest::collection::vec(node(depth - 1), 0..3),
                text,
            )
                .prop_map(|(n, attrs, kids, t)| {
                    if kids.is_empty() && t.is_empty() {
                        format!("<{n}{attrs}/>")
                    } else {
                        format!("<{n}{attrs}>{t}{}</{n}>", kids.concat())
                    }
                })
                .boxed()
        }
    }
    node(3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn token_spans_partition_the_input(doc in arb_doc()) {
        let bytes = doc.as_bytes();
        let mut covered = 0usize;
        for t in Tokenizer::new(bytes) {
            let t = t.expect("well-formed by construction");
            let span = t.span();
            prop_assert_eq!(span.start, covered, "gap before token");
            covered = span.end;
        }
        prop_assert_eq!(covered, bytes.len(), "trailing gap");
    }

    #[test]
    fn generated_docs_are_wellformed(doc in arb_doc()) {
        prop_assert!(check_well_formed(doc.as_bytes()).is_ok(), "{}", doc);
    }

    #[test]
    fn dom_round_trip_is_stable(doc in arb_doc()) {
        let d1 = Document::parse(doc.as_bytes()).expect("parse");
        let s1 = serialize(&d1, d1.root());
        let d2 = Document::parse(&s1).expect("reparse");
        let s2 = serialize(&d2, d2.root());
        prop_assert_eq!(s1, s2);
    }

    #[test]
    fn lenient_tokenizer_agrees_on_wellformed_input(doc in arb_doc()) {
        let strict: Vec<String> = Tokenizer::new(doc.as_bytes())
            .map(|t| format!("{:?}", t.unwrap()))
            .collect();
        let lenient: Vec<String> = Tokenizer::lenient(doc.as_bytes())
            .map(|t| format!("{:?}", t.unwrap()))
            .collect();
        prop_assert_eq!(strict, lenient);
    }

    #[test]
    fn tag_balance_invariant(doc in arb_doc()) {
        // Start/End tags balance exactly; text never contains '<'.
        let mut depth = 0i64;
        for t in Tokenizer::new(doc.as_bytes()) {
            match t.unwrap() {
                Token::StartTag { self_closing: false, .. } => depth += 1,
                Token::EndTag { .. } => {
                    depth -= 1;
                    prop_assert!(depth >= 0);
                }
                Token::Text { text, .. } => {
                    prop_assert!(!text.contains(&b'<'));
                }
                _ => {}
            }
        }
        prop_assert_eq!(depth, 0);
    }
}
