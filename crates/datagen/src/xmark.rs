//! XMark-like auction-site generator (non-recursive DTD).
//!
//! Mirrors the structure the XMark benchmark generator produces, with the
//! recursive `parlist`/`listitem` part of item descriptions removed — the
//! same modification the paper applies ("the XMark DTD allows recursive
//! lists within item descriptions. We modified the DTD accordingly",
//! Sec. V-A). Every element and attribute the XM1–XM20 projection paths
//! touch is present.

use crate::text::TextGen;
use crate::util::XmlBuilder;
use crate::GenOptions;

/// The non-recursive XMark-like DTD.
pub const XMARK_DTD: &str = r#"<!DOCTYPE site [
<!ELEMENT site (regions, categories, catgraph, people, open_auctions, closed_auctions)>
<!ELEMENT regions (africa, asia, australia, europe, namerica, samerica)>
<!ELEMENT africa (item*)>
<!ELEMENT asia (item*)>
<!ELEMENT australia (item*)>
<!ELEMENT europe (item*)>
<!ELEMENT namerica (item*)>
<!ELEMENT samerica (item*)>
<!ELEMENT item (location, quantity, name, payment, description, shipping, incategory+, mailbox?)>
<!ATTLIST item id ID #REQUIRED featured CDATA #IMPLIED>
<!ELEMENT location (#PCDATA)>
<!ELEMENT quantity (#PCDATA)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT payment (#PCDATA)>
<!ELEMENT description (text)>
<!ELEMENT text (#PCDATA | bold | keyword | emph)*>
<!ELEMENT bold (#PCDATA)>
<!ELEMENT keyword (#PCDATA)>
<!ELEMENT emph (#PCDATA)>
<!ELEMENT shipping (#PCDATA)>
<!ELEMENT incategory EMPTY>
<!ATTLIST incategory category IDREF #REQUIRED>
<!ELEMENT mailbox (mail*)>
<!ELEMENT mail (from, to, date, text)>
<!ELEMENT from (#PCDATA)>
<!ELEMENT to (#PCDATA)>
<!ELEMENT date (#PCDATA)>
<!ELEMENT categories (category+)>
<!ELEMENT category (name, description)>
<!ATTLIST category id ID #REQUIRED>
<!ELEMENT catgraph (edge*)>
<!ELEMENT edge EMPTY>
<!ATTLIST edge from IDREF #REQUIRED to IDREF #REQUIRED>
<!ELEMENT people (person*)>
<!ELEMENT person (name, emailaddress, phone?, address?, homepage?, creditcard?, profile?, watches?)>
<!ATTLIST person id ID #REQUIRED>
<!ELEMENT emailaddress (#PCDATA)>
<!ELEMENT phone (#PCDATA)>
<!ELEMENT address (street, city, country, province?, zipcode)>
<!ELEMENT street (#PCDATA)>
<!ELEMENT city (#PCDATA)>
<!ELEMENT country (#PCDATA)>
<!ELEMENT province (#PCDATA)>
<!ELEMENT zipcode (#PCDATA)>
<!ELEMENT homepage (#PCDATA)>
<!ELEMENT creditcard (#PCDATA)>
<!ELEMENT profile (interest*, education?, gender?, business, age?)>
<!ATTLIST profile income CDATA #REQUIRED>
<!ELEMENT interest EMPTY>
<!ATTLIST interest category IDREF #REQUIRED>
<!ELEMENT education (#PCDATA)>
<!ELEMENT gender (#PCDATA)>
<!ELEMENT business (#PCDATA)>
<!ELEMENT age (#PCDATA)>
<!ELEMENT watches (watch*)>
<!ELEMENT watch EMPTY>
<!ATTLIST watch open_auction IDREF #REQUIRED>
<!ELEMENT open_auctions (open_auction*)>
<!ELEMENT open_auction (initial, reserve?, bidder*, current, privacy?, itemref, seller, annotation, quantity, type, interval)>
<!ATTLIST open_auction id ID #REQUIRED>
<!ELEMENT initial (#PCDATA)>
<!ELEMENT reserve (#PCDATA)>
<!ELEMENT bidder (date, time, personref, increase)>
<!ELEMENT time (#PCDATA)>
<!ELEMENT personref EMPTY>
<!ATTLIST personref person IDREF #REQUIRED>
<!ELEMENT increase (#PCDATA)>
<!ELEMENT current (#PCDATA)>
<!ELEMENT privacy (#PCDATA)>
<!ELEMENT itemref EMPTY>
<!ATTLIST itemref item IDREF #REQUIRED>
<!ELEMENT seller EMPTY>
<!ATTLIST seller person IDREF #REQUIRED>
<!ELEMENT annotation (author, description, happiness)>
<!ELEMENT author EMPTY>
<!ATTLIST author person IDREF #REQUIRED>
<!ELEMENT happiness (#PCDATA)>
<!ELEMENT type (#PCDATA)>
<!ELEMENT interval (start, end)>
<!ELEMENT start (#PCDATA)>
<!ELEMENT end (#PCDATA)>
<!ELEMENT closed_auctions (closed_auction*)>
<!ELEMENT closed_auction (seller, buyer, itemref, price, date, quantity, type, annotation?)>
<!ELEMENT buyer EMPTY>
<!ATTLIST buyer person IDREF #REQUIRED>
<!ELEMENT price (#PCDATA)>
]>"#;

/// The six region elements, in document order.
pub const REGIONS: [&str; 6] = ["africa", "asia", "australia", "europe", "namerica", "samerica"];

/// Generate an XMark-like document of roughly `opts.target_bytes` bytes.
pub fn generate(opts: GenOptions) -> Vec<u8> {
    let mut g = TextGen::new(opts.seed, vec!["gold", "Palm", "Zire", "LCD"], 40);
    let mut b = XmlBuilder::new();
    let target = opts.target_bytes.max(4096);

    // Budget shares per section, roughly matching real XMark proportions.
    let regions_end = target * 44 / 100;
    let categories_end = target * 47 / 100;
    let catgraph_end = target * 48 / 100;
    let people_end = target * 68 / 100;
    let open_end = target * 89 / 100;

    let mut ids = Ids::default();
    b.open("site");

    b.open("regions");
    for (ri, &region) in REGIONS.iter().enumerate() {
        b.open(region);
        let region_budget = regions_end * (ri + 1) / REGIONS.len();
        while b.len() < region_budget {
            item(&mut b, &mut g, &mut ids);
        }
        b.close();
    }
    b.close();

    b.open("categories");
    // At least one category; XM10/XM20 reference them via IDREFs.
    loop {
        category(&mut b, &mut g, &mut ids);
        if b.len() >= categories_end || ids.category > 64 {
            break;
        }
    }
    b.close();

    b.open("catgraph");
    while b.len() < catgraph_end && ids.category >= 2 {
        let from = format!("category{}", g.below(ids.category));
        let to = format!("category{}", g.below(ids.category));
        b.bachelor("edge", &[("from", &from), ("to", &to)]);
    }
    b.close();

    b.open("people");
    while b.len() < people_end {
        person(&mut b, &mut g, &mut ids);
    }
    b.close();

    b.open("open_auctions");
    while b.len() < open_end {
        open_auction(&mut b, &mut g, &mut ids);
    }
    b.close();

    b.open("closed_auctions");
    while b.len() < target {
        closed_auction(&mut b, &mut g, &mut ids);
    }
    b.close();

    b.finish()
}

#[derive(Default)]
struct Ids {
    item: usize,
    person: usize,
    category: usize,
    open_auction: usize,
}

fn description(b: &mut XmlBuilder, g: &mut TextGen) {
    b.open("description");
    b.open("text");
    b.text(&g.sentence(15, 60));
    if g.chance(30) {
        b.leaf("bold", &g.sentence(1, 3));
        b.text(&g.sentence(3, 10));
    }
    if g.chance(20) {
        b.leaf("keyword", &g.sentence(1, 2));
        b.text(&g.sentence(3, 10));
    }
    if g.chance(15) {
        b.leaf("emph", &g.sentence(1, 2));
    }
    b.close();
    b.close();
}

fn item(b: &mut XmlBuilder, g: &mut TextGen, ids: &mut Ids) {
    let id = format!("item{}", ids.item);
    ids.item += 1;
    b.open_attrs("item", &[("id", &id)]);
    b.leaf("location", if g.chance(60) { "United States" } else { "Egypt" });
    b.leaf("quantity", &g.number(1, 9));
    b.leaf("name", &g.sentence(1, 4));
    b.leaf("payment", if g.chance(50) { "Creditcard" } else { "Check" });
    description(b, g);
    b.leaf("shipping", "Will ship internationally");
    let cats = 1 + g.below(3);
    for _ in 0..cats {
        let c = format!("category{}", g.below(ids.category.max(8)));
        b.bachelor("incategory", &[("category", &c)]);
    }
    if g.chance(25) {
        b.open("mailbox");
        for _ in 0..g.below(3) {
            b.open("mail");
            b.leaf("from", &g.sentence(1, 2));
            b.leaf("to", &g.sentence(1, 2));
            b.leaf("date", &g.date());
            b.open("text");
            b.text(&g.sentence(10, 30));
            b.close();
            b.close();
        }
        b.close();
    }
    b.close();
}

fn category(b: &mut XmlBuilder, g: &mut TextGen, ids: &mut Ids) {
    let id = format!("category{}", ids.category);
    ids.category += 1;
    b.open_attrs("category", &[("id", &id)]);
    b.leaf("name", &g.sentence(1, 3));
    description(b, g);
    b.close();
}

fn person(b: &mut XmlBuilder, g: &mut TextGen, ids: &mut Ids) {
    let id = format!("person{}", ids.person);
    ids.person += 1;
    b.open_attrs("person", &[("id", &id)]);
    b.leaf("name", &g.sentence(2, 3));
    b.leaf("emailaddress", &format!("mailto:{}@example.org", g.word()));
    if g.chance(40) {
        b.leaf("phone", &format!("+1 ({}) {}", g.number(100, 999), g.number(1000000, 9999999)));
    }
    if g.chance(50) {
        b.open("address");
        b.leaf("street", &format!("{} {} St", g.number(1, 99), g.word()));
        b.leaf("city", g.word());
        b.leaf("country", "United States");
        b.leaf("zipcode", &g.number(10000, 99999));
        b.close();
    }
    if g.chance(30) {
        b.leaf("homepage", &format!("http://www.{}.example/~{}", g.word(), g.word()));
    }
    if g.chance(25) {
        b.leaf(
            "creditcard",
            &format!(
                "{} {} {} {}",
                g.number(1000, 9999),
                g.number(1000, 9999),
                g.number(1000, 9999),
                g.number(1000, 9999)
            ),
        );
    }
    if g.chance(70) {
        let income = g.number(9876, 99999);
        b.open_attrs("profile", &[("income", &income)]);
        for _ in 0..g.below(4) {
            let c = format!("category{}", g.below(ids.category.max(8)));
            b.bachelor("interest", &[("category", &c)]);
        }
        if g.chance(60) {
            b.leaf("education", "Graduate School");
        }
        if g.chance(80) {
            b.leaf("gender", if g.chance(50) { "male" } else { "female" });
        }
        b.leaf("business", if g.chance(50) { "Yes" } else { "No" });
        if g.chance(60) {
            b.leaf("age", &g.number(18, 90));
        }
        b.close();
    }
    if g.chance(30) && ids.open_auction > 0 {
        b.open("watches");
        for _ in 0..g.below(3) {
            let w = format!("open_auction{}", g.below(ids.open_auction));
            b.bachelor("watch", &[("open_auction", &w)]);
        }
        b.close();
    }
    b.close();
}

fn open_auction(b: &mut XmlBuilder, g: &mut TextGen, ids: &mut Ids) {
    let id = format!("open_auction{}", ids.open_auction);
    ids.open_auction += 1;
    b.open_attrs("open_auction", &[("id", &id)]);
    b.leaf("initial", &format!("{}.{:02}", g.number(1, 300), g.number(0, 99)));
    if g.chance(40) {
        b.leaf("reserve", &format!("{}.{:02}", g.number(1, 500), g.number(0, 99)));
    }
    for _ in 0..g.below(4) {
        b.open("bidder");
        b.leaf("date", &g.date());
        b.leaf(
            "time",
            &format!("{:02}:{:02}:{:02}", g.number(0, 23), g.number(0, 59), g.number(0, 59)),
        );
        let p = format!("person{}", g.below(ids.person.max(1)));
        b.bachelor("personref", &[("person", &p)]);
        b.leaf("increase", &format!("{}.{:02}", g.number(1, 50), g.number(0, 99)));
        b.close();
    }
    b.leaf("current", &format!("{}.{:02}", g.number(1, 900), g.number(0, 99)));
    if g.chance(30) {
        b.leaf("privacy", "Yes");
    }
    let it = format!("item{}", g.below(ids.item.max(1)));
    b.bachelor("itemref", &[("item", &it)]);
    let s = format!("person{}", g.below(ids.person.max(1)));
    b.bachelor("seller", &[("person", &s)]);
    annotation(b, g, ids);
    b.leaf("quantity", &g.number(1, 9));
    b.leaf("type", if g.chance(60) { "Regular" } else { "Featured" });
    b.open("interval");
    b.leaf("start", &g.date());
    b.leaf("end", &g.date());
    b.close();
    b.close();
}

fn annotation(b: &mut XmlBuilder, g: &mut TextGen, ids: &mut Ids) {
    b.open("annotation");
    let a = format!("person{}", g.below(ids.person.max(1)));
    b.bachelor("author", &[("person", &a)]);
    description(b, g);
    b.leaf("happiness", &g.number(1, 10));
    b.close();
}

fn closed_auction(b: &mut XmlBuilder, g: &mut TextGen, ids: &mut Ids) {
    b.open("closed_auction");
    let s = format!("person{}", g.below(ids.person.max(1)));
    b.bachelor("seller", &[("person", &s)]);
    let buyer = format!("person{}", g.below(ids.person.max(1)));
    b.bachelor("buyer", &[("person", &buyer)]);
    let it = format!("item{}", g.below(ids.item.max(1)));
    b.bachelor("itemref", &[("item", &it)]);
    b.leaf("price", &format!("{}.{:02}", g.number(1, 900), g.number(0, 99)));
    b.leaf("date", &g.date());
    b.leaf("quantity", &g.number(1, 9));
    b.leaf("type", if g.chance(60) { "Regular" } else { "Featured" });
    if g.chance(50) {
        annotation(b, g, ids);
    }
    b.close();
}

#[cfg(test)]
mod tests {
    use super::*;
    use smpx_dtd::{Dtd, DtdAutomaton};
    use smpx_xml::{check_well_formed, Token, Tokenizer};

    #[test]
    fn dtd_parses_and_is_nonrecursive() {
        let dtd = Dtd::parse(XMARK_DTD.as_bytes()).unwrap();
        assert_eq!(dtd.root(), "site");
        assert!(!dtd.is_recursive());
        DtdAutomaton::build(&dtd).unwrap();
    }

    #[test]
    fn generated_document_is_well_formed() {
        let doc = generate(GenOptions::sized(40_000));
        check_well_formed(&doc).unwrap();
    }

    #[test]
    fn generated_document_is_dtd_valid() {
        let dtd = Dtd::parse(XMARK_DTD.as_bytes()).unwrap();
        let auto = DtdAutomaton::build(&dtd).unwrap();
        let doc = generate(GenOptions::sized(30_000));
        let mut tokens: Vec<(String, bool)> = Vec::new();
        for t in Tokenizer::new(&doc) {
            match t.unwrap() {
                Token::StartTag { name, self_closing, .. } => {
                    let n = String::from_utf8(name.to_vec()).unwrap();
                    tokens.push((n.clone(), false));
                    if self_closing {
                        tokens.push((n, true));
                    }
                }
                Token::EndTag { name, .. } => {
                    tokens.push((String::from_utf8(name.to_vec()).unwrap(), true));
                }
                _ => {}
            }
        }
        assert!(auto.accepts(&tokens), "generated document must be DTD-valid");
    }

    #[test]
    fn size_targeting_is_approximate() {
        for target in [8_192usize, 100_000, 400_000] {
            let doc = generate(GenOptions::sized(target));
            assert!(doc.len() >= target, "doc {} >= {target}", doc.len());
            assert!(doc.len() < target * 2, "doc {} < 2×{target}", doc.len());
        }
    }

    #[test]
    fn deterministic() {
        let a = generate(GenOptions::sized(20_000).with_seed(5));
        let b = generate(GenOptions::sized(20_000).with_seed(5));
        assert_eq!(a, b);
        let c = generate(GenOptions::sized(20_000).with_seed(6));
        assert_ne!(a, c);
    }

    #[test]
    fn contains_all_query_relevant_sections() {
        let doc = String::from_utf8(generate(GenOptions::sized(60_000))).unwrap();
        for tag in [
            "<australia>",
            "<europe>",
            "<people>",
            "<person id=",
            "<open_auctions>",
            "<closed_auction>",
            "<description>",
            "<incategory category=",
            "<profile income=",
        ] {
            assert!(doc.contains(tag), "missing {tag}");
        }
    }
}
