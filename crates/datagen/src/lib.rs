//! Deterministic, size-targeted XML data generators.
//!
//! Stand-ins for the paper's evaluation datasets (see DESIGN.md §2):
//!
//! * [`xmark`] — an XMark-like auction site with the recursion-free DTD the
//!   paper uses ("We modified the DTD accordingly", Sec. V-A): regions with
//!   items, people with profiles, open and closed auctions. Drives
//!   Table I, Table III, Fig. 7(a) and 7(c).
//! * [`medline`] — a MEDLINE-like citation corpus: long tag names (larger
//!   BM/CW shifts), many *optional* elements (near-zero initial jumps, as
//!   the paper observes), and elements that are declared but never
//!   generated (query M1 matches nothing). Drives Table II, Fig. 7(b) and
//!   7(c).
//! * [`protein`] — a Protein-Sequence-like database (the paper's third
//!   dataset, results in its technical report \[27\]).
//!
//! All generators are seeded and deterministic: the same
//! [`GenOptions`] always produces the same bytes. Documents are valid
//! w.r.t. the bundled DTDs (tested token-by-token against the
//! DTD-automaton) and contain no comments, CDATA or processing
//! instructions beyond the XML declaration — matching the corpora the
//! paper ran on.
//!
//! # Quick start
//!
//! ```
//! use smpx_datagen::{xmark, GenOptions};
//!
//! let doc = xmark::generate(GenOptions::sized(16 * 1024));
//! // Deterministic: the same options reproduce the same bytes.
//! assert_eq!(doc, xmark::generate(GenOptions::sized(16 * 1024)));
//! // Different seeds give different documents of the same shape.
//! let other = xmark::generate(GenOptions::sized(16 * 1024).with_seed(7));
//! assert_ne!(doc, other);
//! assert!(doc.windows(5).any(|w| w == b"<site"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod medline;
pub mod protein;
mod text;
mod util;
pub mod xmark;

pub use text::TextGen;
pub use util::XmlBuilder;

/// Options shared by all generators.
#[derive(Debug, Clone, Copy)]
pub struct GenOptions {
    /// Approximate output size in bytes; generation stops after the
    /// current top-level record once the target is reached.
    pub target_bytes: usize,
    /// RNG seed (same seed ⇒ same document).
    pub seed: u64,
}

impl GenOptions {
    /// Options for a document of roughly `target_bytes` bytes.
    pub fn sized(target_bytes: usize) -> GenOptions {
        GenOptions { target_bytes, seed: 0x5eed_cafe }
    }

    /// Replace the seed.
    pub fn with_seed(mut self, seed: u64) -> GenOptions {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_builder() {
        let o = GenOptions::sized(1024).with_seed(7);
        assert_eq!(o.target_bytes, 1024);
        assert_eq!(o.seed, 7);
    }
}
